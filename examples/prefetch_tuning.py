#!/usr/bin/env python
"""Ablation: how many first chunks should a node prefetch?

Section IV-B derives the prefetch accuracy analytically from the
within-channel Zipf popularity (26.2% for one chunk in a 25-video
channel, 54.6% for 3-4).  This example sweeps the prefetch window M and
compares the analytical prediction with the measured hit rate and the
startup-delay improvement -- the paper's future-work question about the
overhead/benefit tradeoff.

Run:  python examples/prefetch_tuning.py
"""

from repro.core.model import prefetch_accuracy
from repro.experiments import ExperimentSpec, SimulationConfig, run_spec


def main() -> None:
    base = SimulationConfig.smoke_scale(seed=5)
    print("Analytical accuracy for a 25-video channel (Section IV-B):")
    for m in (0, 1, 2, 3, 4, 6, 8):
        print(f"  M={m}: {prefetch_accuracy(25, m):.3f}")
    print()
    print(f"{'M':>3} {'hit rate':>9} {'startup mean ms':>16} {'startup p99 ms':>15}")
    for window in (0, 1, 3, 6, 10):
        config = SimulationConfig.smoke_scale(seed=5)
        config.prefetch_window = window
        config.enable_prefetch = window > 0
        result = run_spec(ExperimentSpec(protocol="socialtube", config=config))
        metrics = result.metrics
        print(
            f"{window:>3} {result.prefetch_hit_rate:>9.3f} "
            f"{metrics.startup_delay_ms_mean:>16.1f} "
            f"{metrics.startup_delay_ms_p99:>15.1f}"
        )
    print()
    print(
        "Expected shape: hit rate grows with M with diminishing returns "
        "(Zipf mass concentrates in the top ranks), and mean startup "
        "delay drops accordingly."
    )


if __name__ == "__main__":
    main()
