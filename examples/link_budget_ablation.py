#!/usr/bin/env python
"""Ablation: how many overlay links should a node maintain?

The paper's Section VI future work: "study the impact of the different
number of links per node on the video sharing performance and explore
the value that can achieve an optimal tradeoff between the system
maintenance overhead and availability of peer video providers."

Sweeps (N_l, N_h) and the search TTL on a small network, printing
availability (normalized peer bandwidth), startup delay, realised link
overhead, and the derived best tradeoff.

Run:  python examples/link_budget_ablation.py
"""

from repro.experiments.ablations import link_budget_sweep, ttl_sweep
from repro.experiments.config import SimulationConfig
from repro.trace.synthesizer import TraceConfig


def main() -> None:
    config = SimulationConfig(
        num_nodes=200,
        trace=TraceConfig(
            num_users=200, num_channels=30, num_videos=1000,
            num_categories=6, seed=13,
        ),
        sessions_per_user=4,
        videos_per_session=8,
        mean_off_time_s=240.0,
        seed=13,
    )
    links = link_budget_sweep(
        config, budgets=((1, 2), (3, 6), (5, 10), (8, 16), (12, 24))
    )
    print("\n".join(links.render_rows()))
    print()
    ttls = ttl_sweep(config, ttls=(1, 2, 3))
    print("\n".join(ttls.render_rows()))
    print()
    print(
        "Expected shape: availability rises steeply out of the starved "
        "budgets and saturates around the paper's (5, 10); deeper TTLs "
        "trade more peers contacted per query for fewer server "
        "fallbacks, with TTL=2 capturing most of the benefit."
    )


if __name__ == "__main__":
    main()
