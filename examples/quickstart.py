#!/usr/bin/env python
"""Quickstart: run SocialTube on a small synthetic YouTube network.

Synthesizes a social-network trace, runs one SocialTube experiment on
the event-driven simulator, and prints the three metrics the paper
evaluates (startup delay, normalized peer bandwidth, maintenance
overhead).

Run:  python examples/quickstart.py
"""

from repro.experiments import ExperimentSpec, SimulationConfig, run_spec


def main() -> None:
    config = SimulationConfig.smoke_scale(seed=7)
    print(
        f"Running SocialTube: {config.num_nodes} nodes, "
        f"{config.trace.num_channels} channels, {config.trace.num_videos} videos, "
        f"{config.sessions_per_user} sessions x {config.videos_per_session} videos"
    )
    result = run_spec(ExperimentSpec(protocol="socialtube", config=config))
    print()
    print("\n".join(result.render_rows()))
    print()
    print(
        "Reading the output: a node keeps ~N_l + N_h links at all times "
        f"(configured {config.inner_links}+{config.inter_links}), most chunks "
        "come from peers rather than the server, and prefetching the "
        "channel's popular videos gives near-zero startup on hits."
    )


if __name__ == "__main__":
    main()
