#!/usr/bin/env python
"""The paper's headline comparison: SocialTube vs NetTube vs PA-VoD.

Runs the three systems on identical workloads (same trace, same churn,
same seeds) and prints the Fig 16/17/18 data plus the qualitative shape
checks -- who wins, by roughly what factor -- that define a successful
reproduction.

Run:  python examples/protocol_comparison.py          (~2-3 minutes)
      python examples/protocol_comparison.py --quick  (seconds)
"""

import sys

from repro.experiments.config import SimulationConfig
from repro.experiments.figures import EvaluationSuite
from repro.experiments.report import render_report, render_shape_checks, shape_checks


def main() -> None:
    quick = "--quick" in sys.argv
    config = (
        SimulationConfig.smoke_scale(seed=11)
        if quick
        else SimulationConfig.default_scale(seed=11)
    )
    suite = EvaluationSuite(config=config)
    figures = [
        suite.fig15_maintenance_model(),
        suite.fig16_peer_bandwidth("peersim"),
        suite.fig17_startup_delay("peersim"),
        suite.fig18_maintenance_overhead("peersim"),
    ]
    print(render_report(figures))
    print(render_shape_checks(shape_checks(suite)))


if __name__ == "__main__":
    main()
