#!/usr/bin/env python
"""The paper's second environment: a PlanetLab-like wide-area testbed.

Deploys all three systems on 250 emulated WAN nodes (continent-scale
latencies, heavy jitter, congestion episodes, transient connection
failures) at the paper's PlanetLab scale: 6 categories x 10 channels x
40 videos, 50 sessions per user, 2-minute mean off times.

The paper's WAN-specific finding to look for: the 1st-percentile peer
bandwidth of NetTube and PA-VoD collapses toward zero under the
unstable network, while SocialTube stays positive.

Run:  python examples/planetlab_emulation.py
"""

from repro.experiments.config import SimulationConfig
from repro.planetlab.testbed import PlanetLabTestbed


def main() -> None:
    config = SimulationConfig.planetlab_scale(seed=3)
    # Trim the session count so the example finishes in ~a minute; use
    # the full 50-session config for the real benchmark numbers.
    testbed = PlanetLabTestbed(config=config.scaled_sessions(12))
    print(
        f"Emulated PlanetLab: {config.num_nodes} WAN nodes, "
        f"{config.trace.num_categories} categories x "
        f"{config.trace.num_channels // config.trace.num_categories} channels x "
        f"{config.trace.num_videos // config.trace.num_channels} videos"
    )
    results = testbed.compare_protocols()
    for name, result in results.items():
        print()
        print("\n".join(result.render_rows()))

    print()
    p1 = {n: r.metrics.peer_bandwidth_p1 for n, r in results.items()}
    print(
        "WAN 1st-percentile peer bandwidth -- "
        + ", ".join(f"{n}: {v:.3f}" for n, v in p1.items())
    )


if __name__ == "__main__":
    main()
