#!/usr/bin/env python
"""Section III trace analysis on a synthesized YouTube crawl.

Reproduces the paper's trace study: synthesizes a social network with
the crawl's statistical structure, samples it with the same BFS
methodology the paper used against the YouTube Data API, and prints the
data behind Figs 2-13 plus the O1-O5 observation verdicts.

Run:  python examples/trace_analysis.py
"""

import random

from repro.analysis.clustering import build_channel_graph, shared_subscriber_histogram
from repro.analysis.figures import TraceAnalysis
from repro.trace.crawler import BfsCrawler
from repro.trace.synthesizer import TraceConfig, synthesize_trace


def main() -> None:
    dataset = synthesize_trace(TraceConfig(seed=42))
    print("Full synthetic population:", dataset.summary())

    # The paper crawled a BFS sample, not the whole graph.
    crawler = BfsCrawler(dataset, rng=random.Random(42))
    sample = crawler.crawl()
    print("BFS crawl sample:        ", sample.summary())

    analysis = TraceAnalysis(sample)
    for figure in analysis.all_figures():
        print()
        print("\n".join(figure.render_rows(max_rows=6)))

    print()
    graph = build_channel_graph(sample, threshold=15, per_category=5)
    random_baseline = 1.0 / max(1, sample.num_categories)
    print(
        f"Fig 10: {graph.num_nodes} top channels, {graph.num_edges} edges "
        f"(>=15 shared subscribers); intra-category edge fraction "
        f"{graph.intra_category_edge_fraction():.3f} vs random baseline "
        f"{random_baseline:.3f}"
    )
    histogram = shared_subscriber_histogram(sample, per_category=5)
    print(f"        shared-subscriber histogram tail: {histogram[-5:]}")

    print()
    print("Observation verdicts:")
    for name, verdict in analysis.check_observations().items():
        print(f"  [{'PASS' if verdict else 'FAIL'}] {name}")


if __name__ == "__main__":
    main()
