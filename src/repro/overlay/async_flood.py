# shard: module=shard-local -- instances live and die inside one run/shard
"""Message-level (event-driven) TTL flooding.

DESIGN.md §5 documents that the harness resolves Algorithm 1's floods
by synchronous graph traversal and prices latency separately.  This
module is the *un-approximated* version: every query forwarding is a
scheduled message on the event engine, holders answer with a response
message, and the requester takes the first response to arrive.

It exists to validate the approximation (see
tests/test_overlay_async_flood.py: on a static overlay the two
implementations find a holder in agreement, and the async delay equals
the per-hop latency sum along the winning path) and as the building
block for anyone extending the reproduction toward full message-level
simulation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, Optional

from repro.net.latency import LatencyModel
from repro.overlay.flood import FloodResult
from repro.sim.scheduler import Scheduler


@dataclass
class AsyncFloodOutcome:
    """Result of one event-driven flood."""

    result: FloodResult
    #: Wall-clock (virtual) time from query issue to the first response
    #: arriving back at the requester; None when the flood failed.
    response_delay: Optional[float] = None
    #: Total query messages sent (forwarding fan-out).
    messages_sent: int = 0


class AsyncFloodSearch:
    """Event-driven TTL flood over an overlay graph.

    The overlay adjacency and holder predicate are sampled *at message
    delivery time*, so concurrent churn is honoured -- unlike the
    synchronous traversal, which snapshots the graph.  On a static
    graph both produce the same provider at the same hop count
    (BFS-by-delay vs BFS-by-hops may differ when latencies are wildly
    heterogeneous; with homogeneous per-hop latency they agree).
    """

    def __init__(
        self,
        scheduler: Scheduler,
        latency: LatencyModel,
        neighbors_of: Callable[[int], Iterable[int]],
        is_holder: Callable[[int], bool],
        tracer=None,
    ):
        self.scheduler = scheduler
        self.latency = latency
        self.neighbors_of = neighbors_of
        self.is_holder = is_holder
        #: Optional repro.obs tracer: when truthy, every query issue /
        #: message delivery / response / timeout emits a trace event
        #: stamped with the scheduler's virtual clock.
        self.tracer = tracer

    def search(
        self,
        requester: int,
        start_neighbors: Iterable[int],
        ttl: int,
        on_complete: Callable[[AsyncFloodOutcome], None],
        timeout: float = 10.0,
    ) -> None:
        """Issue the query; ``on_complete`` fires exactly once.

        Completion happens at the first holder response, or at
        ``timeout`` seconds after issue when no response arrived (the
        requester then falls back to the server, as in Algorithm 1).
        """
        if ttl < 1:
            raise ValueError("ttl must be >= 1")
        if timeout <= 0:
            raise ValueError("timeout must be positive")
        state = _FloodState(
            requester=requester,
            issued_at=self.scheduler.now,
            on_complete=on_complete,
        )
        state.visited[requester] = None
        if self.tracer:
            state.span = self.tracer.begin_detached(
                "flood.async", node=requester, ttl=ttl
            )
        for neighbor in start_neighbors:
            self._forward(state, sender=requester, receiver=neighbor, depth=1, ttl=ttl)
        # Failure timer: fires unless a response completed the flood.
        state.timeout_event = self.scheduler.schedule(
            timeout, self._timed_out, state
        )

    # -- internals ----------------------------------------------------------

    def _forward(self, state: "_FloodState", sender: int, receiver: int,
                 depth: int, ttl: int) -> None:
        if receiver in state.visited:
            return
        state.visited[receiver] = sender
        state.messages_sent += 1
        delay = self.latency.sample(sender, receiver)
        if self.tracer:
            self.tracer.event(
                "flood.msg.forward", node=sender, receiver=receiver, depth=depth
            )
        self.scheduler.schedule(
            delay, self._deliver, state, receiver, depth, ttl
        )

    def _deliver(self, state: "_FloodState", node: int, depth: int, ttl: int) -> None:
        if state.done:
            return  # a response already won; drop stale traffic
        state.contacted += 1
        if self.is_holder(node):
            response_delay = self.latency.sample(node, state.requester)
            self.scheduler.schedule(
                response_delay, self._respond, state, node, depth
            )
            return
        if depth >= ttl:
            return
        for neighbor in self.neighbors_of(node):
            self._forward(state, sender=node, receiver=neighbor,
                          depth=depth + 1, ttl=ttl)

    def _respond(self, state: "_FloodState", holder: int, depth: int) -> None:
        if state.done:
            return
        state.done = True
        if state.timeout_event is not None:
            state.timeout_event.cancel()
        path = [holder]
        parent = state.visited.get(holder)
        while parent is not None:
            path.append(parent)
            parent = state.visited.get(parent)
        path.reverse()
        outcome = AsyncFloodOutcome(
            result=FloodResult(
                found=holder,
                hops=depth,
                contacted=state.contacted,
                path=path,
            ),
            response_delay=self.scheduler.now - state.issued_at,
            messages_sent=state.messages_sent,
        )
        if self.tracer:
            self.tracer.end(state.span, holder=holder, depth=depth)
        state.on_complete(outcome)

    def _timed_out(self, state: "_FloodState") -> None:
        if state.done:
            return
        state.done = True
        outcome = AsyncFloodOutcome(
            result=FloodResult(found=None, hops=0, contacted=state.contacted),
            response_delay=None,
            messages_sent=state.messages_sent,
        )
        if self.tracer:
            self.tracer.event(
                "flood.timeout", node=state.requester, contacted=state.contacted
            )
            self.tracer.end(state.span)
        state.on_complete(outcome)


@dataclass
class _FloodState:
    requester: int
    issued_at: float
    on_complete: Callable[[AsyncFloodOutcome], None]
    visited: Dict[int, Optional[int]] = field(default_factory=dict)
    contacted: int = 0
    messages_sent: int = 0
    done: bool = False
    timeout_event: Optional[object] = None
    #: Detached tracer span id covering issue -> response/timeout.
    span: Optional[int] = None
