# shard: module=shard-local -- instances live and die inside one run/shard
"""TTL-scoped flooding search.

The query primitive of both SocialTube (Algorithm 1: flood inner-links
with a TTL, then inter-links) and NetTube ("sends a query to its
neighbors within two hops").  The flood is a breadth-first expansion:
hop 1 is the requester's own neighbors, each receiver decrements the
TTL and forwards to its neighbors while TTL remains, and the first
holder encountered (in BFS order, i.e. at minimal hop distance) answers.

Per DESIGN.md, the flood is resolved by synchronous graph traversal --
per-hop network latency is priced separately by the harness using the
returned ``path`` -- which keeps the event count tractable without
changing who is found or at how many hops.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional


@dataclass
class FloodResult:
    """Outcome of one TTL flood."""

    found: Optional[int] = None
    hops: int = 0
    contacted: int = 0
    #: Requester -> ... -> provider node chain (empty when not found).
    path: List[int] = field(default_factory=list)

    @property
    def success(self) -> bool:
        return self.found is not None


def ttl_flood(
    requester: int,
    start_neighbors: Iterable[int],
    neighbors_of: Callable[[int], Iterable[int]],
    is_holder: Callable[[int], bool],
    ttl: int,
    tracer=None,
) -> FloodResult:
    """Flood a query from ``requester`` over an overlay graph.

    Parameters
    ----------
    requester:
        The querying node (never considered a holder; excluded from
        forwarding).
    start_neighbors:
        The nodes that receive the query at hop 1 (the requester's
        links in the overlay being searched).
    neighbors_of:
        Adjacency of the overlay being flooded.  Should only return
        *online* nodes; offline neighbors are the caller's concern
        (lazy failure detection).
    is_holder:
        Whether a node can serve the requested video.
    ttl:
        Maximum number of forwarding hops (the paper uses TTL=2).
    tracer:
        Optional :class:`repro.obs.tracer.Tracer`.  When truthy, each
        BFS hop level becomes a ``flood.hop`` span (BFS visits depths
        monotonically, so hop spans never interleave), a found holder
        emits ``flood.found``, and an exhausted flood emits
        ``flood.ttl_exhausted``.  The default/``NULL_TRACER`` case
        skips all packing -- the search loop stays allocation-free.

    Returns the provider at minimal hop distance, the hop count, the
    number of distinct peers that processed the query, and the node
    path from requester to provider for latency pricing.
    """
    if ttl < 1:
        raise ValueError("ttl must be >= 1")
    visited: Dict[int, Optional[int]] = {requester: None}
    queue: deque = deque()
    contacted = 0
    hop_span = None
    hop_depth = 0
    for neighbor in start_neighbors:
        if neighbor in visited:
            continue
        visited[neighbor] = requester
        queue.append((neighbor, 1))
    while queue:
        node, depth = queue.popleft()
        contacted += 1
        if tracer and depth != hop_depth:
            tracer.end(hop_span)
            hop_span = tracer.begin("flood.hop", node=requester, depth=depth)
            hop_depth = depth
        if is_holder(node):
            path = [node]
            parent = visited[node]
            while parent is not None:
                path.append(parent)
                parent = visited[parent]
            path.reverse()
            if tracer:
                tracer.end(hop_span)
                tracer.event(
                    "flood.found", node=requester, holder=node,
                    depth=depth, contacted=contacted,
                )
            return FloodResult(found=node, hops=depth, contacted=contacted, path=path)
        if depth >= ttl:
            continue
        for neighbor in neighbors_of(node):
            if neighbor in visited:
                continue
            visited[neighbor] = node
            queue.append((neighbor, depth + 1))
    if tracer:
        tracer.end(hop_span)
        tracer.event(
            "flood.ttl_exhausted", node=requester, ttl=ttl, contacted=contacted
        )
    return FloodResult(found=None, hops=ttl, contacted=contacted, path=[])
