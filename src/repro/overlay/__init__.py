"""Overlay substrate shared by SocialTube and the baselines.

* :mod:`repro.overlay.links` -- capped, undirected neighbor-set
  management with the accounting the maintenance-overhead metric reads.
* :mod:`repro.overlay.flood` -- TTL-scoped flooding search over an
  overlay graph, the query primitive of Algorithm 1 and of NetTube's
  two-hop neighbor search.
"""

from repro.overlay.links import LinkSet, LinkTable
from repro.overlay.flood import FloodResult, ttl_flood

__all__ = ["LinkSet", "LinkTable", "FloodResult", "ttl_flood"]
