# shard: module=shard-local -- instances live and die inside one run/shard
"""Probe-traffic accounting: the cost side of maintenance overhead.

Section IV-A: "each node periodically probes its neighbors" (every 10
minutes in the experiments).  The harness models the *repair* behaviour
directly (lazy detection + top-up, DESIGN.md §5) but not the probe
*messages*; this module prices them analytically, which is exact for a
fixed probe period:

    probes sent by a node over a session
        = links_maintained x (session_duration / probe_period)

Since the paper's maintenance-overhead metric (Figs 15/18) is the link
count, probe traffic is simply proportional to the areas under those
curves -- this module turns the measured link-count series into the
message counts a deployment would actually pay, enabling an
apples-to-apples protocol comparison in messages/second.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

#: Section V: "Nodes probe their neighbors every 10 minutes".
DEFAULT_PROBE_PERIOD_S = 600.0  # shard: shared-read

#: Delay between a crash and the survivors' repair sweep (repro.faults).
#: Bounded by the probe period -- a survivor's own cycle would notice
#: the dead neighbor within DEFAULT_PROBE_PERIOD_S anyway; the default
#: models the faster failure-triggered repair path.
DEFAULT_REPAIR_WINDOW_S = 60.0  # shard: shared-read


def record_repair_sweep(tracer, node: int, links: int) -> None:
    """Emit one ``overlay.repair`` event after a crash-repair sweep.

    ``links`` counts the surviving neighbors whose link tables were
    healed (dead entry dropped, budget topped back up).  Called by the
    experiment runner when the repair window elapses after a
    ``churn.crash``; no-op when ``tracer`` is falsy.
    """
    if tracer:
        tracer.event("overlay.repair", node=node, links=links)


def record_link_sample(tracer, node: int, links: int, video_index: int) -> None:
    """Emit one ``overlay.links`` gauge sample for a node's link count.

    Called by the experiment runner after every finished watch (the same
    moment the Fig 18 collector samples), so a traced run carries the
    raw per-node link-count series.  :mod:`repro.obs.timeseries` folds
    these samples into the windowed ``overlay_links`` total -- the
    maintenance-overhead-over-time view (Fig 18's trend, and the link
    count :func:`estimate_probe_traffic` prices).  No-op when ``tracer``
    is falsy.
    """
    if tracer:
        tracer.event("overlay.links", node=node, links=links, index=video_index)


@dataclass
class ProbeTrafficEstimate:
    """Probe-message cost for one protocol over one session."""

    protocol: str
    probe_period_s: float
    session_duration_s: float
    mean_links: float
    probes_per_session: float
    probes_per_second: float

    def render(self) -> str:
        return (
            f"  {self.protocol:12s} mean_links={self.mean_links:5.1f}  "
            f"probes/session={self.probes_per_session:7.1f}  "
            f"probes/s={self.probes_per_second:.4f}"
        )


def estimate_probe_traffic(
    protocol: str,
    overhead_series: Sequence[Tuple[int, float]],
    session_duration_s: float,
    probe_period_s: float = DEFAULT_PROBE_PERIOD_S,
) -> ProbeTrafficEstimate:
    """Price the probe messages implied by a Fig 18 link-count series.

    ``overhead_series`` is the (video index, mean links) series produced
    by :meth:`repro.metrics.collectors.ExperimentMetrics.overhead_series`;
    the time-average link count is taken over the session (videos are
    equally spaced in session time to first order).
    """
    if probe_period_s <= 0:
        raise ValueError("probe_period_s must be positive")
    if session_duration_s <= 0:
        raise ValueError("session_duration_s must be positive")
    if not overhead_series:
        raise ValueError("overhead_series must be non-empty")
    mean_links = sum(links for _idx, links in overhead_series) / len(overhead_series)
    probes_per_session = mean_links * (session_duration_s / probe_period_s)
    return ProbeTrafficEstimate(
        protocol=protocol,
        probe_period_s=probe_period_s,
        session_duration_s=session_duration_s,
        mean_links=mean_links,
        probes_per_session=probes_per_session,
        probes_per_second=probes_per_session / session_duration_s,
    )


def compare_probe_traffic(
    series_by_protocol: Dict[str, Sequence[Tuple[int, float]]],
    session_duration_s: float,
    probe_period_s: float = DEFAULT_PROBE_PERIOD_S,
) -> List[ProbeTrafficEstimate]:
    """Estimate probe traffic for several protocols, sorted cheapest first."""
    estimates = [
        estimate_probe_traffic(name, series, session_duration_s, probe_period_s)
        for name, series in series_by_protocol.items()
    ]
    estimates.sort(key=lambda e: e.probes_per_session)
    return estimates
