# shard: module=shard-local -- instances live and die inside one run/shard
"""Capped neighbor-set management.

A node's overlay links are the thing the paper's maintenance-overhead
metric counts ("the number of links a node must maintain in the
overlays"), so this module keeps the accounting explicit: every add and
remove is visible, insertion order is preserved (useful for oldest-first
eviction), and capacity is enforced at the data-structure level.
"""

from __future__ import annotations

from random import Random
from typing import Dict, Iterator, List, Optional


class LinkSet:
    """An ordered set of neighbor ids with a soft capacity.

    ``add`` refuses new links beyond capacity unless ``evict=True``, in
    which case the oldest link is dropped to make room -- the repair
    behaviour of an unstructured overlay absorbing a newcomer when all
    its members are full.
    """

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._links: Dict[int, None] = {}

    def __len__(self) -> int:
        return len(self._links)

    def __contains__(self, node_id: int) -> bool:
        return node_id in self._links

    def __iter__(self) -> Iterator[int]:
        return iter(self._links)

    @property
    def is_full(self) -> bool:
        return len(self._links) >= self.capacity

    def members(self) -> List[int]:
        """Neighbors in insertion order (a copy, safe to mutate)."""
        return list(self._links)

    def add(self, node_id: int, evict: bool = False) -> Optional[int]:
        """Add a neighbor.

        Returns the evicted neighbor id when eviction occurred, None
        otherwise.  Raises :class:`OverflowError` when full and
        ``evict`` is False; adding an existing neighbor is a no-op.
        """
        if node_id in self._links:
            return None
        evicted: Optional[int] = None
        if self.is_full:
            if not evict:
                raise OverflowError("link set full")
            evicted = next(iter(self._links))
            del self._links[evicted]
        self._links[node_id] = None
        return evicted

    def try_add(self, node_id: int) -> bool:
        """Add if capacity allows; True on success (or already linked)."""
        if node_id in self._links:
            return True
        if self.is_full:
            return False
        self._links[node_id] = None
        return True

    def remove(self, node_id: int) -> bool:
        """Drop a neighbor; True if it was present."""
        if node_id in self._links:
            del self._links[node_id]
            return True
        return False

    def clear(self) -> None:
        self._links.clear()

    def random_member(self, rng: Random) -> Optional[int]:
        if not self._links:
            return None
        return rng.choice(list(self._links))


class LinkTable:
    """Per-node :class:`LinkSet` registry for one overlay level.

    Links are kept *symmetric*: ``connect`` records the link on both
    endpoints (each against its own capacity) and ``disconnect`` removes
    both directions, so a node's ``len`` is exactly the number of links
    it maintains -- the Fig 15 / Fig 18 quantity.
    """

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._table: Dict[int, LinkSet] = {}

    def links_of(self, node_id: int) -> LinkSet:
        links = self._table.get(node_id)
        if links is None:
            links = LinkSet(self.capacity)
            self._table[node_id] = links
        return links

    def nodes(self) -> List[int]:
        """Every node id with a registered link set, in sorted order.

        Sorted so that whole-table sweeps (metrics, invariant checks)
        visit nodes in a deterministic order.
        """
        return sorted(self._table)

    def degree(self, node_id: int) -> int:
        links = self._table.get(node_id)
        return len(links) if links is not None else 0

    def neighbors(self, node_id: int) -> List[int]:
        links = self._table.get(node_id)
        return links.members() if links is not None else []

    def connected(self, a: int, b: int) -> bool:
        return b in self.links_of(a)

    def connect(self, a: int, b: int, evict: bool = False) -> bool:
        """Create the undirected link a--b.

        Without ``evict`` the link forms only if *both* endpoints have
        spare capacity.  With ``evict`` a full endpoint drops its oldest
        link (symmetrically) to make room.  Returns True when the link
        exists afterwards.
        """
        if a == b:
            raise ValueError("a node cannot link to itself")
        la, lb = self.links_of(a), self.links_of(b)
        if b in la:
            return True
        if not evict and (la.is_full or lb.is_full):
            return False
        evicted_a = la.add(b, evict=evict)
        if evicted_a is not None:
            self.links_of(evicted_a).remove(a)
        evicted_b = lb.add(a, evict=evict)
        if evicted_b is not None:
            self.links_of(evicted_b).remove(b)
        return True

    def disconnect(self, a: int, b: int) -> None:
        self.links_of(a).remove(b)
        self.links_of(b).remove(a)

    def drop_all(self, node_id: int) -> None:
        """Remove every link of ``node_id`` (graceful departure notifies
        all neighbors, Section IV-A)."""
        for neighbor in self.links_of(node_id).members():
            self.links_of(neighbor).remove(node_id)
        self.links_of(node_id).clear()

    def total_links(self) -> int:
        """Number of undirected links in the whole table."""
        return sum(len(ls) for ls in self._table.values()) // 2
