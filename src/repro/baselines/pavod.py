"""PA-VoD baseline [Huang, Li & Ross, SIGCOMM 2007] as described in the paper.

"In PA-VOD, when a user requests a video, the server directs the
request to several other users currently watching the video.  When a
user finishes watching a video, it no longer acts as a provider.  Since
videos on YouTube tend to be short, many videos do not have peer
providers so the server must provide the videos instead."

Consequences the evaluation measures: no persistent cache (so low peer
availability, Fig 16), heavy reliance on the server (so long startup
delays once the server saturates, Fig 17), but essentially zero overlay
maintenance (nodes keep no standing links).
"""

from __future__ import annotations

from random import Random
from repro.baselines.protocol import VodProtocol
from repro.net.message import LookupResult
from repro.net.server import CentralServer
from repro.trace.dataset import TraceDataset


class PaVodProtocol(VodProtocol):
    """Server-directed peer assistance from concurrent watchers."""

    name = "PA-VoD"
    uses_cache = False

    def __init__(
        self,
        dataset: TraceDataset,
        server: CentralServer,
        rng: Random,
        watchers_per_referral: int = 3,
        download_speedup: float = 2.0,
    ):
        super().__init__(dataset, server, rng)
        if watchers_per_referral < 1:
            raise ValueError("watchers_per_referral must be >= 1")
        if download_speedup <= 0:
            raise ValueError("download_speedup must be positive")
        self.watchers_per_referral = watchers_per_referral
        #: Download rate relative to the bitrate ("download bandwidths
        #: of at least twice that bitrate", Section IV-B); a watcher
        #: holds the full video only after length / speedup seconds.
        self.download_speedup = download_speedup
        self._watch_started_at: dict = {}

    # -- lifecycle -----------------------------------------------------------

    def on_session_start(self, user_id: int) -> None:
        peer = self.state(user_id)
        peer.online = True
        self.server.node_online(user_id)

    def on_session_end(self, user_id: int) -> None:
        peer = self.state(user_id)
        if peer.current_video is not None:
            self.server.watch_finished(peer.current_video, user_id)
        peer.online = False
        self.server.node_offline(user_id)

    # -- search ------------------------------------------------------------------

    def _has_full_copy(self, watcher_id: int, video_id: int) -> bool:
        """A watcher can serve only once its own download finished.

        Download proceeds at ``download_speedup`` x bitrate, so the full
        video is present after ``length / speedup`` seconds of watching.
        """
        started = self._watch_started_at.get((watcher_id, video_id))
        if started is None:
            return False
        needed = self.dataset.video_length(video_id) / self.download_speedup
        return self.now_fn() - started >= needed

    def locate(self, user_id: int, video_id: int) -> LookupResult:
        """Ask the server for current watchers; else the server serves."""
        watchers = self.server.current_watchers(video_id, exclude=user_id)
        if watchers:
            candidates = (
                self.rng.sample(watchers, self.watchers_per_referral)
                if len(watchers) > self.watchers_per_referral
                else list(watchers)
            )
            for candidate in candidates:
                peer = self.peers.get(candidate)
                if (
                    peer is not None
                    and peer.online
                    and self.can_reach(user_id, candidate)
                    and self._has_full_copy(candidate, video_id)
                ):
                    return LookupResult(
                        video_id=video_id,
                        provider_id=candidate,
                        hops=1,
                        peers_contacted=len(candidates),
                    )
        return LookupResult(video_id=video_id, from_server=True, hops=0)

    def on_watch_started(self, user_id: int, video_id: int) -> None:
        super().on_watch_started(user_id, video_id)
        self.server.watch_started(video_id, user_id)
        self._watch_started_at[(user_id, video_id)] = self.now_fn()

    def on_watch_finished(self, user_id: int, video_id: int) -> None:
        """The node stops providing the moment playback ends."""
        super().on_watch_finished(user_id, video_id)
        self.server.watch_finished(video_id, user_id)
        self._watch_started_at.pop((user_id, video_id), None)

    def reannounce(self, user_id: int) -> int:
        """Tracker recovery: re-file presence plus the current watch.

        PA-VoD's only tracker state beyond presence is the
        currently-watching set, so a watching node files exactly one
        extra report.
        """
        count = super().reannounce(user_id)
        if not count:
            return 0
        peer = self.state(user_id)
        if peer.current_video is not None:
            self.server.watch_started(peer.current_video, user_id)
            count += 1
        return count

    # -- metrics -------------------------------------------------------------------

    def link_count(self, user_id: int) -> int:
        """PA-VoD peers keep no standing overlay links."""
        return 0
