"""GridCast-style baseline: server-directed assistance + peer caching.

Section II cites GridCast [26]: "GridCast identifies that the single
uploading scheme leads to idling in P2P networks and that multiple
video caching can better reduce the server load."  It sits between
PA-VoD and the overlay systems: peers *cache* watched videos and report
replicas to the tracker (so providers are not limited to concurrent
watchers), but there is no P2P overlay -- every lookup is a tracker
query, and nodes keep no standing links.

Included as a fourth system for the ablation question "how much of
NetTube/SocialTube's gain is caching, and how much is the overlay
search?": GridCast isolates the caching contribution.
"""

from __future__ import annotations

from collections import defaultdict
from random import Random
from typing import Dict, Set

from repro.baselines.protocol import VodProtocol
from repro.net.message import LookupResult
from repro.net.server import CentralServer
from repro.trace.dataset import TraceDataset


class GridCastProtocol(VodProtocol):
    """Tracker-directed peer assistance with multi-video caching."""

    name = "GridCast"
    uses_cache = True

    def __init__(
        self,
        dataset: TraceDataset,
        server: CentralServer,
        rng: Random,
        replicas_per_referral: int = 3,
    ):
        super().__init__(dataset, server, rng)
        if replicas_per_referral < 1:
            raise ValueError("replicas_per_referral must be >= 1")
        self.replicas_per_referral = replicas_per_referral
        #: Online replica registry: video -> nodes holding a cached copy.
        #: (Conceptually server-side state; GridCast's tracker knows
        #: replica placement.  Kept here to keep CentralServer generic.)
        self._replicas: Dict[int, Set[int]] = defaultdict(set)

    # -- lifecycle -----------------------------------------------------------

    def on_session_start(self, user_id: int) -> None:
        peer = self.state(user_id)
        peer.online = True
        self.server.node_online(user_id)
        # Returning nodes re-report their cache to the tracker.
        for video_id in peer.cache:
            self._replicas[video_id].add(user_id)
            self.server.subscription_reports += 1

    def on_session_end(self, user_id: int) -> None:
        peer = self.state(user_id)
        for video_id in peer.cache:
            self._replicas[video_id].discard(user_id)
        peer.online = False
        self.server.node_offline(user_id)

    # -- lookup ------------------------------------------------------------------

    def locate(self, user_id: int, video_id: int) -> LookupResult:
        """Tracker lookup over the replica registry; server on miss."""
        peer = self.state(user_id)
        if peer.has_video(video_id):
            return LookupResult(video_id=video_id, from_cache=True)
        self.server.tracker_lookups += 1
        holders = [
            h
            for h in self._replicas.get(video_id, ())
            if h != user_id
            and self.can_reach(user_id, h)
            and self.is_online_holder(h, video_id)
        ]
        if holders:
            candidates = (
                self.rng.sample(holders, self.replicas_per_referral)
                if len(holders) > self.replicas_per_referral
                else holders
            )
            return LookupResult(
                video_id=video_id,
                provider_id=self.rng.choice(candidates),
                hops=1,
                peers_contacted=len(candidates),
            )
        return LookupResult(video_id=video_id, from_server=True, hops=0)

    def on_watch_started(self, user_id: int, video_id: int) -> None:
        super().on_watch_started(user_id, video_id)
        self._replicas[video_id].add(user_id)

    # -- metrics -------------------------------------------------------------------

    def link_count(self, user_id: int) -> int:
        """No overlay: zero standing links (tracker state only)."""
        return 0

    def replica_count(self, video_id: int) -> int:
        """Online replicas of a video (exposed for tests/ablations)."""
        return len(self._replicas.get(video_id, ()))
