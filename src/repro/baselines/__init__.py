"""Baseline P2P VoD systems the paper compares against.

* :mod:`repro.baselines.protocol` -- the protocol interface shared with
  SocialTube, plus common per-peer state (cache, prefetch store).
* :mod:`repro.baselines.nettube` -- NetTube [Cheng & Liu, INFOCOM'09]:
  per-video overlays, two-hop neighbor search, random prefetching from
  neighbors' watched videos.
* :mod:`repro.baselines.pavod` -- PA-VoD [Huang, Li & Ross,
  SIGCOMM'07]: server-directed peer assistance from concurrent
  watchers, no persistent cache.
* :mod:`repro.baselines.gridcast` -- GridCast-style [26] tracker-
  directed assistance with multi-video caching but no overlay; isolates
  the caching contribution from the overlay-search contribution.
"""

from repro.baselines.protocol import PeerState, VodProtocol
from repro.baselines.gridcast import GridCastProtocol
from repro.baselines.nettube import NetTubeProtocol
from repro.baselines.pavod import PaVodProtocol

__all__ = [
    "PeerState",
    "VodProtocol",
    "GridCastProtocol",
    "NetTubeProtocol",
    "PaVodProtocol",
]
