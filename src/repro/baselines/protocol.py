"""The VoD protocol interface and common per-peer state.

All three systems -- SocialTube, NetTube, PA-VoD -- implement
:class:`VodProtocol`; the experiment runner drives them identically and
only the overlay/search/prefetch logic differs.  This mirrors the
paper's evaluation: same workload, same churn, same network, three
protocol stacks.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from random import Random
from typing import Callable, Dict, List, Optional

from repro.core.cache import PrefetchStore, PrefetchedChunk, VideoCache
from repro.net.bandwidth import SharedUploadLink
from repro.net.message import ChunkSource, LookupResult
from repro.net.server import CentralServer
from repro.obs.tracer import NULL_TRACER
from repro.trace.dataset import TraceDataset


class PeerState:
    """Per-peer state common to every protocol.

    * ``cache`` -- full videos the peer can serve (Section IV: "users
      maintain a cache of all videos watched"; persisted across
      sessions per Section V: "Nodes store their cached videos for
      their next session").  PA-VoD disables it.
    * ``prefetched`` -- first chunks fetched ahead of demand, bounded
      ("The value of M is determined by each node's cache size").
    * ``uplink`` -- the peer's shared upload link.
    """

    def __init__(
        self,
        user_id: int,
        upload_capacity_bps: float,
        prefetch_capacity: int = 50,
        cache_capacity: Optional[int] = None,
    ):
        self.user_id = user_id
        self.online = False
        self.cache = VideoCache(max_videos=cache_capacity)
        self.prefetched = PrefetchStore(capacity=prefetch_capacity)
        self.uplink = SharedUploadLink(upload_capacity_bps, owner_id=user_id)
        self.current_video: Optional[int] = None
        self.videos_watched_total = 0
        self.sessions_completed = 0

    def cache_video(self, video_id: int) -> None:
        self.cache.add(video_id)
        # A full copy supersedes a prefetched first chunk.
        self.prefetched.discard(video_id)

    def store_prefetch(self, video_id: int, source: ChunkSource, now: float) -> None:
        """Insert a prefetched first chunk unless the full video is cached."""
        if video_id in self.cache:
            return
        self.prefetched.store(video_id, source, now)

    def take_prefetch(self, video_id: int) -> Optional[PrefetchedChunk]:
        """Consume the prefetched first chunk for ``video_id`` if present."""
        return self.prefetched.take(video_id)

    def has_video(self, video_id: int) -> bool:
        """Whether this peer can serve a full copy of ``video_id``."""
        return video_id in self.cache


class VodProtocol(ABC):
    """Interface between the experiment runner and a protocol stack."""

    #: Human-readable system name, used in reports.
    name: str = "abstract"
    #: Whether peers keep watched videos for later serving.
    uses_cache: bool = True

    def __init__(self, dataset: TraceDataset, server: CentralServer, rng: Random):
        self.dataset = dataset
        self.server = server
        self.rng = rng
        self.peers: Dict[int, PeerState] = {}
        #: Virtual-clock accessor, wired to the event scheduler by the
        #: runner; protocols needing time (e.g. PA-VoD's download
        #: progress) call ``self.now_fn()``.
        self.now_fn = lambda: 0.0
        #: repro.obs tracer, wired by the runner (same pattern as
        #: ``now_fn``).  Defaults to the falsy NULL_TRACER so protocol
        #: code can guard hot paths with ``if self.tracer:``.
        self.tracer = NULL_TRACER
        #: Network-partition reachability predicate, set by the runner
        #: only *during* a partition window (None otherwise, so the
        #: fault-free hot path pays one identity check).  When set,
        #: ``partition_guard(a, b)`` is False for peers on opposite
        #: sides of the severed bisection: searches and maintenance
        #: must skip -- not drop -- unreachable neighbors, because the
        #: links come back when the partition heals.
        self.partition_guard: Optional[Callable[[int, int], bool]] = None

    def can_reach(self, a: int, b: int) -> bool:
        """Whether peers ``a`` and ``b`` can talk right now.

        True outside partition windows; during one, both must be on
        the same side of the bisection.  The server is always
        reachable (it is not a peer and has no side).
        """
        guard = self.partition_guard
        return guard is None or guard(a, b)

    # -- peer registry -------------------------------------------------------

    def register_peer(self, state: PeerState) -> None:
        """Called once per user by the runner before the simulation starts."""
        self.peers[state.user_id] = state

    def state(self, user_id: int) -> PeerState:
        return self.peers[user_id]

    def is_online_holder(self, user_id: int, video_id: int) -> bool:
        """Holder predicate used by flooding searches."""
        peer = self.peers.get(user_id)
        return peer is not None and peer.online and peer.has_video(video_id)

    # -- lifecycle hooks -------------------------------------------------------

    @abstractmethod
    def on_session_start(self, user_id: int) -> None:
        """The user logged in; join overlays / contact the tracker."""

    @abstractmethod
    def on_session_end(self, user_id: int) -> None:
        """The user logged off; leave overlays gracefully."""

    def on_crash(self, user_id: int) -> None:
        """The node died abruptly (crash-churn, see repro.faults).

        Default: identical to a graceful logoff -- correct for
        protocols without standing links (PA-VoD).  Protocols with
        overlay link state override this to leave the dead node's links
        *dangling* until :meth:`repair_after_crash` runs, which is the
        failure mode the paper's probe cycle exists to repair.
        """
        self.on_session_end(user_id)

    def repair_after_crash(self, user_id: int) -> int:
        """Crash-repair sweep, one repair window after ``user_id`` died.

        Survivors drop their links to the dead node and re-link within
        their budget.  Returns the number of surviving neighbors
        repaired (0 by default -- no link state to heal).
        """
        return 0

    @abstractmethod
    def locate(self, user_id: int, video_id: int) -> LookupResult:
        """Find a provider for ``video_id`` (Algorithm 1 or equivalent)."""

    def relocate(self, user_id: int, video_id: int) -> LookupResult:
        """Re-search for a *replacement* provider after an interruption.

        Identical to :meth:`locate` except the requester's own copy is
        masked for the duration of the search: the consumer cached the
        video at watch start (the download-completes-early assumption),
        but a crashed provider means the local copy is incomplete, so a
        cache hit must not satisfy the failover.  Only ever called on
        fault-injected runs.
        """
        peer = self.state(user_id)
        had_copy = video_id in peer.cache
        if had_copy:
            peer.cache.discard(video_id)
        try:
            return self.locate(user_id, video_id)
        finally:
            if had_copy:
                peer.cache.add(video_id)

    def on_watch_started(self, user_id: int, video_id: int) -> None:
        """Playback began; default marks the current video and caches it.

        Caching at watch start models the paper's assumption that the
        download completes well before playback ends (download bandwidth
        at least twice the bitrate, Section IV-B), so a watching node is
        already a provider -- which is also what makes PA-VoD's
        "currently watching" providers workable.
        """
        peer = self.state(user_id)
        peer.current_video = video_id
        if self.uses_cache:
            peer.cache_video(video_id)

    def on_watch_finished(self, user_id: int, video_id: int) -> None:
        """Playback ended; default just clears the current video."""
        peer = self.state(user_id)
        peer.current_video = None
        peer.videos_watched_total += 1

    def on_maintenance(self, user_id: int) -> None:
        """Periodic neighbor maintenance (probe cycle).

        The runner invokes this once per watched video -- comparable
        cadence to the paper's 10-minute probes given ~3.5-minute
        videos.  Default: nothing (PA-VoD keeps no links).
        """

    def reannounce(self, user_id: int) -> int:
        """Re-register this peer's tracker state after a tracker outage.

        The tracker came back *empty* (its state died with it), so
        every online peer pushes its view back up: presence here, plus
        whatever protocol-specific registrations the subclass re-files
        (channel membership, per-video overlays, current watches).
        Returns the number of re-registration reports filed, presence
        included.  Only ever called on fault-injected runs.
        """
        peer = self.peers.get(user_id)
        if peer is None or not peer.online:
            return 0
        self.server.node_online(user_id)
        return 1

    # -- prefetching --------------------------------------------------------------

    def select_prefetch(self, user_id: int, video_id: int, count: int) -> List[int]:
        """Videos whose first chunk to prefetch while watching ``video_id``.

        Default: no prefetching (PA-VoD).
        """
        return []

    def prefetch_source(self, user_id: int, video_id: int) -> ChunkSource:
        """Where a prefetched first chunk would come from.

        Default: the server (protocols with overlays check neighbors).
        """
        return ChunkSource.PREFETCH_SERVER

    # -- metrics ---------------------------------------------------------------------

    @abstractmethod
    def link_count(self, user_id: int) -> int:
        """Number of overlay links the node currently maintains."""
