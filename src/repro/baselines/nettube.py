"""NetTube baseline [Cheng & Liu, INFOCOM 2009] as described in the paper.

Per-video overlays: the viewers of one video form one overlay; a node
that has watched multiple videos stays in multiple overlays ("A node
that has watched multiple videos must stay in multiple overlays and
maintain its links in each of the overlays").  Search: "To find a next
video to watch, the node sends a query to its neighbors within two
hops; if the video is not found, the user resorts to the server."
Prefetching: "a node randomly chooses the videos its neighbors have
watched to prefetch."

The maintenance-overhead pathology the paper measures (Fig 18) falls
out naturally: each watched video adds up to ``links_per_overlay``
links, and within a session the link count grows roughly linearly with
videos watched, while SocialTube's stays near ``N_l + N_h``.
"""

from __future__ import annotations

from collections import defaultdict
from random import Random
from typing import Dict, List, Set

from repro.baselines.protocol import VodProtocol
from repro.net.message import ChunkSource, LookupResult
from repro.net.server import CentralServer
from repro.overlay.flood import ttl_flood
from repro.overlay.links import LinkTable
from repro.trace.dataset import TraceDataset


class NetTubeProtocol(VodProtocol):
    """Per-video overlay P2P video sharing."""

    name = "NetTube"
    uses_cache = True

    def __init__(
        self,
        dataset: TraceDataset,
        server: CentralServer,
        rng: Random,
        links_per_overlay: int = 5,
        search_hops: int = 2,
        prefetch_window: int = 3,
        enable_prefetch: bool = True,
    ):
        super().__init__(dataset, server, rng)
        if links_per_overlay < 1:
            raise ValueError("links_per_overlay must be >= 1")
        self.links_per_overlay = links_per_overlay
        self.search_hops = search_hops
        self.prefetch_window = prefetch_window
        self.enable_prefetch = enable_prefetch
        #: One link table per video overlay, created on demand.
        self._overlays: Dict[int, LinkTable] = {}
        #: The overlays each node currently belongs to.
        self._memberships: Dict[int, Set[int]] = defaultdict(set)

    # -- helpers -------------------------------------------------------------

    def _overlay(self, video_id: int) -> LinkTable:
        table = self._overlays.get(video_id)
        if table is None:
            table = LinkTable(self.links_per_overlay)
            self._overlays[video_id] = table
        return table

    def _is_alive(self, node_id: int) -> bool:
        peer = self.peers.get(node_id)
        return peer is not None and peer.online

    def _union_neighbors(self, node_id: int) -> List[int]:
        """All neighbors across every overlay the node belongs to.

        Redundant links to the same peer in different overlays collapse
        to one entry for forwarding purposes, but each still *counts*
        in :meth:`link_count` -- that redundancy is exactly the overhead
        the paper criticises ("two nodes may need to maintain redundant
        links for different per-video overlays though one link is
        sufficient").
        """
        seen: Dict[int, None] = {}
        for video_id in self._memberships.get(node_id, ()):
            for neighbor in self._overlay(video_id).neighbors(node_id):
                if self._is_alive(neighbor) and self.can_reach(node_id, neighbor):
                    seen[neighbor] = None
        return list(seen)

    def _join_overlay(self, user_id: int, video_id: int, via: int = None) -> None:
        """Join a video's overlay: link to the provider plus tracker picks."""
        table = self._overlay(video_id)
        self._memberships[user_id].add(video_id)
        self.server.register_video_overlay_member(video_id, user_id)
        if via is not None and via != user_id and self._is_alive(via):
            table.connect(user_id, via, evict=True)
        needed = self.links_per_overlay - table.degree(user_id)
        if needed <= 0:
            return
        picks = self.server.random_video_overlay_members(
            video_id, needed + 2, exclude=user_id
        )
        for pick in picks:
            if table.degree(user_id) >= self.links_per_overlay:
                break
            if self._is_alive(pick):
                table.connect(user_id, pick, evict=True)

    # -- lifecycle ----------------------------------------------------------------

    def on_session_start(self, user_id: int) -> None:
        peer = self.state(user_id)
        peer.online = True
        self.server.node_online(user_id)
        # A NetTube node starts its session outside all overlays and
        # accumulates memberships as it watches (Fig 18: "start out
        # with few links but rapidly accumulate more").

    def on_session_end(self, user_id: int) -> None:
        peer = self.state(user_id)
        for video_id in list(self._memberships.get(user_id, ())):
            self._overlay(video_id).drop_all(user_id)
            self.server.unregister_video_overlay_member(video_id, user_id)
        self._memberships.pop(user_id, None)
        peer.online = False
        self.server.node_offline(user_id)

    def on_crash(self, user_id: int) -> None:
        """Abrupt death: per-video overlay links stay dangling.

        The tracker purge (``node_offline``) still happens -- the server
        notices the dead TCP connection -- but no goodbye reaches the
        overlay neighbors, so every per-video link the node held lingers
        in the survivors' tables until :meth:`repair_after_crash` (or a
        survivor's own probe cycle) removes it.
        """
        peer = self.state(user_id)
        peer.online = False
        self.server.node_offline(user_id)

    def repair_after_crash(self, user_id: int) -> int:
        """Sweep the dead node's links out of every overlay it was in.

        Survivors whose link budget freed up refill on their next probe
        cycle.  A no-op when the node rejoined before the repair window
        elapsed (it kept its memberships, so its links are live again).
        """
        if self._is_alive(user_id):
            return 0
        repaired = 0
        for video_id in sorted(self._memberships.get(user_id, ())):
            table = self._overlay(video_id)
            for neighbor in table.neighbors(user_id):
                table.disconnect(user_id, neighbor)
                if self._is_alive(neighbor):
                    repaired += 1
        self._memberships.pop(user_id, None)
        return repaired

    # -- search ---------------------------------------------------------------------

    def locate(self, user_id: int, video_id: int) -> LookupResult:
        peer = self.state(user_id)
        if peer.has_video(video_id):
            return LookupResult(video_id=video_id, from_cache=True)

        # A node's *first* request after login goes to the server, which
        # directs it to providers in the video's overlay ("When a node
        # requests a video for the first time, it sends its request to
        # the server, which directs it to connect to the providers in
        # the overlay of the video").
        if not self._memberships.get(user_id):
            members = self.server.random_video_overlay_members(
                video_id, 2, exclude=user_id
            )
            for member in members:
                if self.can_reach(user_id, member) and self.is_online_holder(
                    member, video_id
                ):
                    return LookupResult(
                        video_id=video_id,
                        provider_id=member,
                        hops=1,
                        peers_contacted=len(members),
                    )
            return LookupResult(video_id=video_id, from_server=True, hops=0)

        # Subsequent requests: two-hop query across the union of the
        # node's overlay links; on a miss "the user resorts to the
        # server", which serves the video itself.
        with self.tracer.span(
            "flood.search", node=user_id, video=video_id, level="video-overlays"
        ):
            result = ttl_flood(
                requester=user_id,
                start_neighbors=self._union_neighbors(user_id),
                neighbors_of=self._union_neighbors,
                is_holder=lambda n: self.is_online_holder(n, video_id),
                ttl=self.search_hops,
                tracer=self.tracer,
            )
        if result.success:
            return LookupResult(
                video_id=video_id,
                provider_id=result.found,
                hops=result.hops,
                peers_contacted=result.contacted,
                query_path=result.path,
            )
        return LookupResult(
            video_id=video_id,
            from_server=True,
            hops=self.search_hops,
            peers_contacted=result.contacted,
        )

    def on_watch_started(self, user_id: int, video_id: int) -> None:
        super().on_watch_started(user_id, video_id)
        # Watching a video makes the node a member of its overlay; it
        # remains there (providing the video) until it logs off.
        self._join_overlay(user_id, video_id)

    def on_maintenance(self, user_id: int) -> None:
        """Probe-cycle repair: prune dead links and refill each overlay."""
        if not self.state(user_id).online:
            return
        for video_id in self._memberships.get(user_id, ()):
            table = self._overlay(video_id)
            for neighbor in table.neighbors(user_id):
                if not self._is_alive(neighbor):
                    table.disconnect(user_id, neighbor)
            needed = self.links_per_overlay - table.degree(user_id)
            if needed <= 0:
                continue
            picks = self.server.random_video_overlay_members(
                video_id, needed + 1, exclude=user_id
            )
            for pick in picks:
                if table.degree(user_id) >= self.links_per_overlay:
                    break
                if self._is_alive(pick):
                    table.connect(user_id, pick, evict=False)

    def reannounce(self, user_id: int) -> int:
        """Tracker recovery: re-file presence plus every overlay membership.

        NetTube pays for its per-video tracker state here too: a node in
        many overlays files one report per overlay (sorted for
        determinism), the same linear-in-videos-watched overhead the
        paper criticises in the maintenance plane.
        """
        count = super().reannounce(user_id)
        if not count:
            return 0
        for video_id in sorted(self._memberships.get(user_id, ())):
            self.server.register_video_overlay_member(video_id, user_id)
            count += 1
        return count

    # -- prefetching -----------------------------------------------------------------

    def select_prefetch(self, user_id: int, video_id: int, count: int) -> List[int]:
        """Random videos from the neighbors' caches (NetTube's strategy)."""
        if not self.enable_prefetch:
            return []
        peer = self.state(user_id)
        pool: Set[int] = set()
        for neighbor in self._union_neighbors(user_id):
            pool.update(self.peers[neighbor].cache)
        pool -= set(peer.cache)
        pool -= set(peer.prefetched.video_ids())
        pool.discard(video_id)
        if not pool:
            return []
        picks = sorted(pool)
        self.rng.shuffle(picks)
        return picks[:count]

    def prefetch_source(self, user_id: int, video_id: int) -> ChunkSource:
        """Prefetch pulls from the neighbor whose cache offered the video."""
        for neighbor in self._union_neighbors(user_id):
            if self.is_online_holder(neighbor, video_id):
                return ChunkSource.PREFETCH_PEER
        return ChunkSource.PREFETCH_SERVER

    # -- metrics -------------------------------------------------------------------------

    def link_count(self, user_id: int) -> int:
        """Sum of per-overlay links (redundant links counted, as deployed)."""
        return sum(
            self._overlay(video_id).degree(user_id)
            for video_id in self._memberships.get(user_id, ())
        )
