"""Metric collection for experiment runs.

Definitions follow Section V verbatim:

* **Startup delay** -- "the time period a user must wait after (s)he
  selects a video before the video playback starts, including the time
  it takes to query peers or the server."
* **Normalized peer bandwidth** -- "the percent of video chunks
  provided by peers out of the total video chunks provided."  Computed
  per node, then summarised at the 1st/50th/99th percentiles as in
  Fig 16.  Chunks replayed from the local cache consumed nobody's
  uplink and are excluded.
* **Maintenance overhead** -- "the number of links a node must maintain
  in the overlays", sampled after each video against the within-session
  video index (Fig 18's x-axis).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.analysis.stats import mean, percentile
from repro.net.message import ChunkSource


@dataclass
class ExperimentMetrics:
    """Summary of one experiment run (one protocol, one environment)."""

    protocol: str
    environment: str
    num_requests: int
    # Startup delay (milliseconds).
    startup_delay_ms_mean: float
    startup_delay_ms_p50: float
    startup_delay_ms_p99: float
    # Normalized peer bandwidth percentiles across nodes (Fig 16).
    peer_bandwidth_p1: float
    peer_bandwidth_p50: float
    peer_bandwidth_p99: float
    # Maintenance overhead by within-session video index (Fig 18).
    overhead_by_video_index: Dict[int, float]
    # Playback continuity (chunk-level streaming model).
    mean_continuity_index: float
    stall_fraction: float
    mean_stall_ms: float
    # Supporting counters.
    server_fallback_fraction: float
    cache_hit_fraction: float
    prefetch_hit_fraction: float
    mean_search_hops: float
    mean_peers_contacted: float
    # Fault recovery (repro.faults; all zero on fault-free runs).
    crashes: int = 0
    interrupted_transfers: int = 0
    failover_peer_resumes: int = 0
    failover_server_fallbacks: int = 0
    failover_latency_ms_mean: float = 0.0
    retries_per_serve: float = 0.0
    degraded_serve_fraction: float = 0.0
    # Correlated & infrastructure faults (repro.faults v2; all zero on
    # fault-free runs *and* on pre-v2 plans, so summaries and baselines
    # captured before these families existed keep their bytes).
    burst_crashes: int = 0
    tracker_lookup_failures: int = 0
    reregistrations: int = 0
    partition_interrupts: int = 0
    healed_nodes: int = 0
    server_sheds: int = 0
    shed_retries: int = 0
    recovery_time_s: float = 0.0

    def overhead_series(self) -> List[Tuple[int, float]]:
        """Fig 18 series: (videos watched, mean links maintained).

        Returns ``(video_index, mean_links)`` pairs sorted by the
        1-based within-session video index, ready to plot::

            >>> m = ExperimentMetrics(..., overhead_by_video_index={2: 8.0, 1: 6.0}, ...)
            ... # doctest: +SKIP
            >>> m.overhead_series()  # doctest: +SKIP
            [(1, 6.0), (2, 8.0)]
        """
        return sorted(self.overhead_by_video_index.items())

    def render_rows(self) -> List[str]:
        """Paper-style text summary, one line per metric family.

        Returns a list of indented strings (suitable for ``print`` or a
        report file): a header line with protocol/environment/request
        count, then startup delay, peer bandwidth, request-outcome
        fractions, search cost, playback continuity, and the Fig 18
        maintenance-overhead series.  Used by the ``trace`` and
        ``compare`` CLI commands.
        """
        rows = [
            f"{self.protocol} on {self.environment} ({self.num_requests} requests)",
            (
                "  startup delay ms: "
                f"mean={self.startup_delay_ms_mean:.1f} "
                f"p50={self.startup_delay_ms_p50:.1f} "
                f"p99={self.startup_delay_ms_p99:.1f}"
            ),
            (
                "  normalized peer bandwidth: "
                f"p1={self.peer_bandwidth_p1:.3f} "
                f"p50={self.peer_bandwidth_p50:.3f} "
                f"p99={self.peer_bandwidth_p99:.3f}"
            ),
            (
                "  fractions: "
                f"server={self.server_fallback_fraction:.3f} "
                f"cache={self.cache_hit_fraction:.3f} "
                f"prefetch_hit={self.prefetch_hit_fraction:.3f}"
            ),
            (
                "  search: "
                f"hops={self.mean_search_hops:.2f} "
                f"contacted={self.mean_peers_contacted:.2f}"
            ),
            (
                "  playback: "
                f"continuity={self.mean_continuity_index:.4f} "
                f"stalled_watches={self.stall_fraction:.3f} "
                f"mean_stall_ms={self.mean_stall_ms:.1f}"
            ),
        ]
        overhead = ", ".join(
            f"{idx}:{links:.1f}" for idx, links in self.overhead_series()
        )
        rows.append(f"  maintenance overhead by video index: {overhead}")
        if self.crashes or self.interrupted_transfers:
            rows.append(
                "  faults: "
                f"crashes={self.crashes} "
                f"interrupted={self.interrupted_transfers} "
                f"peer_resumes={self.failover_peer_resumes} "
                f"server_failovers={self.failover_server_fallbacks} "
                f"failover_ms={self.failover_latency_ms_mean:.1f} "
                f"retries/serve={self.retries_per_serve:.4f} "
                f"degraded={self.degraded_serve_fraction:.3f}"
            )
        if (
            self.burst_crashes
            or self.tracker_lookup_failures
            or self.reregistrations
            or self.partition_interrupts
            or self.healed_nodes
            or self.server_sheds
            or self.shed_retries
            or self.recovery_time_s
        ):
            rows.append(
                "  infra: "
                f"burst={self.burst_crashes} "
                f"lookup_failures={self.tracker_lookup_failures} "
                f"reregistered={self.reregistrations} "
                f"partition_cuts={self.partition_interrupts} "
                f"healed={self.healed_nodes} "
                f"sheds={self.server_sheds} "
                f"shed_retries={self.shed_retries} "
                f"recovery_s={self.recovery_time_s:.1f}"
            )
        return rows


class MetricsCollector:
    """Accumulates raw observations during a run."""

    def __init__(self, protocol: str, environment: str):
        self.protocol = protocol
        self.environment = environment
        self._startup_delays_ms: List[float] = []
        self._peer_chunks: Dict[int, int] = defaultdict(int)
        self._server_chunks: Dict[int, int] = defaultdict(int)
        self._cache_chunks: Dict[int, int] = defaultdict(int)
        self._overhead: Dict[int, List[int]] = defaultdict(list)
        self._hops: List[int] = []
        self._contacted: List[int] = []
        self.requests = 0
        self.server_fallbacks = 0
        self.cache_hits = 0
        self.prefetch_hits = 0
        self.prefetch_misses = 0
        self.peer_transfer_failures = 0
        self._peer_failures_by_user: Dict[int, int] = defaultdict(int)
        self._continuity: List[float] = []
        self._stall_ms: List[float] = []
        self.stalled_watches = 0
        # Fault recovery (repro.faults): crash-churn + failover ledger.
        self.crashes = 0
        self.interrupted_transfers = 0
        self.failover_peer_resumes = 0
        self.failover_server_fallbacks = 0
        self.failover_retries = 0
        self._failover_latencies_ms: List[float] = []
        # Infrastructure faults (repro.faults v2).  The server-side
        # counters (lookup failures, sheds) are copied onto the
        # collector by the runner after the event loop drains.
        self.burst_crashes = 0
        self.tracker_lookup_failures = 0
        self.reregistrations = 0
        self.partition_interrupts = 0
        self.healed_nodes = 0
        self.server_sheds = 0
        self.shed_retries = 0
        #: Instant the first armed infrastructure fault strikes (set by
        #: the runner); 0.0 disables recovery-time measurement.
        self.fault_onset_t = 0.0
        self._last_recovery_t: Optional[float] = None

    # -- recording -----------------------------------------------------------

    def record_request(
        self,
        user_id: int,
        startup_delay_s: float,
        from_server: bool,
        from_cache: bool,
        hops: int,
        peers_contacted: int,
        prefetch_hit: bool,
    ) -> None:
        self.requests += 1
        self._startup_delays_ms.append(startup_delay_s * 1000.0)
        if from_server:
            self.server_fallbacks += 1
        if from_cache:
            self.cache_hits += 1
        if prefetch_hit:
            self.prefetch_hits += 1
        else:
            self.prefetch_misses += 1
        self._hops.append(hops)
        self._contacted.append(peers_contacted)

    def record_chunks(self, user_id: int, source: ChunkSource, count: int) -> None:
        if count < 0:
            raise ValueError("count must be >= 0")
        if source is ChunkSource.CACHE:
            self._cache_chunks[user_id] += count
        elif source.is_peer:
            self._peer_chunks[user_id] += count
        else:
            self._server_chunks[user_id] += count

    def record_overhead(self, user_id: int, video_index: int, links: int) -> None:
        self._overhead[video_index].append(links)

    def record_peer_transfer_failure(self, user_id: int) -> None:
        """Count one peer-transfer failure, attributed to ``user_id``.

        The per-user attribution keeps the metrics ledger in agreement
        with the obs trace's ``request.peer_failure`` events (both key
        failures by the *requesting* node).
        """
        self.peer_transfer_failures += 1
        self._peer_failures_by_user[user_id] += 1

    def peer_transfer_failures_by_user(self) -> Dict[int, int]:
        """Per-requester failure counts; sum equals
        :attr:`peer_transfer_failures`."""
        return dict(self._peer_failures_by_user)

    def record_crash(self, user_id: int) -> None:
        """Count one crash-churn event (the node died mid-session)."""
        self.crashes += 1

    def record_interruption(self, user_id: int) -> None:
        """Count one mid-transfer interruption (provider crashed)."""
        self.interrupted_transfers += 1

    def record_query_retry(self, user_id: int, retries: int) -> None:
        """Count lost-query retries spent on one serve."""
        if retries < 0:
            raise ValueError("retries must be >= 0")
        self.failover_retries += retries

    def record_failover(
        self, user_id: int, latency_s: float, retries: int, to_peer: bool
    ) -> None:
        """Record one resolved failover: latency, retries, destination.

        ``to_peer`` distinguishes a resume from a fresh provider (the
        paper's self-healing path) from the server fallback taken after
        the retry budget -- a *degraded* serve, not a lost session.
        """
        if latency_s < 0:
            raise ValueError("latency must be >= 0")
        if retries < 0:
            raise ValueError("retries must be >= 0")
        if to_peer:
            self.failover_peer_resumes += 1
        else:
            self.failover_server_fallbacks += 1
        self.failover_retries += retries
        self._failover_latencies_ms.append(latency_s * 1000.0)

    def record_burst(self, victims: int) -> None:
        """Record one correlated community-crash burst."""
        if victims < 0:
            raise ValueError("victims must be >= 0")
        self.burst_crashes += victims

    def record_reregistrations(self, reports: int) -> None:
        """Record the tracker-recovery re-registration sweep."""
        if reports < 0:
            raise ValueError("reports must be >= 0")
        self.reregistrations += reports

    def record_partition_interrupts(self, count: int) -> None:
        """Record transfers severed when a partition began."""
        if count < 0:
            raise ValueError("count must be >= 0")
        self.partition_interrupts += count

    def record_heal(self, nodes: int) -> None:
        """Record the heal sweep run when a partition ended."""
        if nodes < 0:
            raise ValueError("nodes must be >= 0")
        self.healed_nodes += nodes

    def record_shed_retry(self, user_id: int) -> None:
        """Count one client-side backoff after an admission-control shed."""
        self.shed_retries += 1

    def note_recovery_action(self, now: float) -> None:
        """Timestamp a recovery action (resume, repair, reannounce, heal).

        ``recovery_time_s`` is the gap between the first armed fault
        striking and the *last* such action -- how long until the system
        was whole again, including the post-heal repair tail.
        """
        self._last_recovery_t = now

    def record_playback(
        self, user_id: int, continuity_index: float, total_stall_s: float
    ) -> None:
        """Record the chunk-level playback outcome of one watch."""
        if not 0.0 <= continuity_index <= 1.0:
            raise ValueError("continuity index must be in [0, 1]")
        if total_stall_s < 0:
            raise ValueError("stall time must be non-negative")
        self._continuity.append(continuity_index)
        self._stall_ms.append(total_stall_s * 1000.0)
        if total_stall_s > 0:
            self.stalled_watches += 1

    # -- summaries --------------------------------------------------------------

    def node_peer_bandwidth(self) -> List[float]:
        """Per-node normalized peer bandwidth (the Fig 16 population)."""
        nodes = set(self._peer_chunks) | set(self._server_chunks)
        fractions = []
        # Sorted: the fractions feed mean(), and float summation order
        # must not depend on set hash order.
        for node in sorted(nodes):
            peer = self._peer_chunks[node]
            server = self._server_chunks[node]
            total = peer + server
            if total > 0:
                fractions.append(peer / total)
        return fractions

    def summarize(self) -> ExperimentMetrics:
        if self.requests == 0:
            raise RuntimeError("no requests recorded")
        delays = self._startup_delays_ms
        bandwidth = self.node_peer_bandwidth() or [0.0]
        overhead = {
            idx: mean([float(v) for v in values])
            for idx, values in self._overhead.items()
        }
        prefetch_total = self.prefetch_hits + self.prefetch_misses
        continuity = self._continuity or [1.0]
        stall_ms = self._stall_ms or [0.0]
        return ExperimentMetrics(
            protocol=self.protocol,
            environment=self.environment,
            num_requests=self.requests,
            startup_delay_ms_mean=mean(delays),
            startup_delay_ms_p50=percentile(delays, 50),
            startup_delay_ms_p99=percentile(delays, 99),
            peer_bandwidth_p1=percentile(bandwidth, 1),
            peer_bandwidth_p50=percentile(bandwidth, 50),
            peer_bandwidth_p99=percentile(bandwidth, 99),
            overhead_by_video_index=overhead,
            mean_continuity_index=mean(continuity),
            stall_fraction=(
                self.stalled_watches / len(self._continuity)
                if self._continuity
                else 0.0
            ),
            mean_stall_ms=mean(stall_ms),
            server_fallback_fraction=self.server_fallbacks / self.requests,
            cache_hit_fraction=self.cache_hits / self.requests,
            prefetch_hit_fraction=(
                self.prefetch_hits / prefetch_total if prefetch_total else 0.0
            ),
            mean_search_hops=mean([float(h) for h in self._hops]),
            mean_peers_contacted=mean([float(c) for c in self._contacted]),
            crashes=self.crashes,
            interrupted_transfers=self.interrupted_transfers,
            failover_peer_resumes=self.failover_peer_resumes,
            failover_server_fallbacks=self.failover_server_fallbacks,
            failover_latency_ms_mean=(
                mean(self._failover_latencies_ms)
                if self._failover_latencies_ms
                else 0.0
            ),
            retries_per_serve=self.failover_retries / self.requests,
            degraded_serve_fraction=(
                self.failover_server_fallbacks / self.requests
            ),
            burst_crashes=self.burst_crashes,
            tracker_lookup_failures=self.tracker_lookup_failures,
            reregistrations=self.reregistrations,
            partition_interrupts=self.partition_interrupts,
            healed_nodes=self.healed_nodes,
            server_sheds=self.server_sheds,
            shed_retries=self.shed_retries,
            recovery_time_s=(
                max(0.0, self._last_recovery_t - self.fault_onset_t)
                if self.fault_onset_t > 0 and self._last_recovery_t is not None
                else 0.0
            ),
        )
