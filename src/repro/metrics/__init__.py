"""Measurement: the three metrics of Section V.

* startup delay,
* normalized peer bandwidth,
* overlay maintenance overhead,

plus the search/prefetch counters used by the ablation benches.
"""

from repro.metrics.collectors import ExperimentMetrics, MetricsCollector

__all__ = ["ExperimentMetrics", "MetricsCollector"]
