"""BFS crawler over the social graph.

Section III: *"we crawled a sample of the graph using a breadth-first
search.  A random user was added to a queue of users to crawl;
information on all of the videos the user has uploaded was collected
[...]  The user's subscriptions were collected using the API and added
to the queue; then, the user was deleted from the queue.  This process
continued until the queue was empty."*

We reproduce that sampling methodology against the synthetic graph:
the crawl frontier expands from users to the *owners* of the channels
they subscribe to (the paper's "user subscriptions" are channel
subscriptions, and a channel belongs to its owner user).  The crawler
returns a :class:`TraceDataset` restricted to the visited subgraph, so
all of the Section III analysis can run either on the full synthetic
population or on a BFS sample of it -- matching the paper's caveat that
partial BFS overestimates degree but leaves the other metrics intact.
"""

from __future__ import annotations

from collections import deque
from random import Random
from typing import Optional, Set

from repro.trace.dataset import TraceDataset
from repro.trace.entities import Category, Channel, User


class BfsCrawler:
    """Breadth-first sampler of a :class:`TraceDataset`."""

    def __init__(self, dataset: TraceDataset, rng: Random):
        self.dataset = dataset
        self._rng = rng

    def crawl(
        self,
        start_user_id: Optional[int] = None,
        max_users: Optional[int] = None,
    ) -> TraceDataset:
        """Run the BFS crawl and return the sampled dataset.

        ``max_users`` truncates the crawl early (the paper notes the
        bias this introduces); by default the crawl runs until the queue
        empties, i.e. it covers the start user's reachable component.
        """
        full = self.dataset
        if not full.users:
            raise ValueError("cannot crawl an empty dataset")
        if start_user_id is None:
            start_user_id = self._rng.choice(list(full.users))
        elif start_user_id not in full.users:
            raise KeyError(f"unknown start user {start_user_id}")

        visited: Set[int] = set()
        queue = deque([start_user_id])
        order = []
        while queue:
            user_id = queue.popleft()
            if user_id in visited:
                continue
            visited.add(user_id)
            order.append(user_id)
            if max_users is not None and len(visited) >= max_users:
                break
            user = full.users[user_id]
            for channel_id in sorted(user.subscribed_channel_ids):
                owner = full.channels[channel_id].owner_user_id
                if owner not in visited:
                    queue.append(owner)
        return self._restrict(visited)

    def _restrict(self, user_ids: Set[int]) -> TraceDataset:
        """Build the dataset induced by the visited user set.

        Included channels are those *owned* by visited users (their
        uploads were collected).  Subscription edges and subscriber sets
        are clipped to the sample on both sides, exactly as a real crawl
        only sees edges between crawled entities.
        """
        full = self.dataset
        sample = TraceDataset(crawl_day=full.crawl_day, seed=full.seed)

        kept_channels = {
            c.channel_id
            for c in full.channels.values()
            if c.owner_user_id in user_ids
        }
        for category in full.categories.values():
            sample.categories[category.category_id] = Category(
                category_id=category.category_id,
                name=category.name,
                channel_ids=[c for c in category.channel_ids if c in kept_channels],
            )
        for channel_id in kept_channels:
            channel = full.channels[channel_id]
            sample.channels[channel_id] = Channel(
                channel_id=channel.channel_id,
                owner_user_id=channel.owner_user_id,
                category_id=channel.category_id,
                video_ids=list(channel.video_ids),
                subscriber_ids={s for s in channel.subscriber_ids if s in user_ids},
                category_mix=dict(channel.category_mix),
            )
            for video_id in channel.video_ids:
                sample.videos[video_id] = full.videos[video_id]
        for user_id in user_ids:
            user = full.users[user_id]
            kept_favs = [v for v in user.favorite_video_ids if v in sample.videos]
            sample.users[user_id] = User(
                user_id=user.user_id,
                interest_ids=set(user.interest_ids),
                subscribed_channel_ids={
                    c for c in user.subscribed_channel_ids if c in kept_channels
                },
                favorite_video_ids=kept_favs,
                owned_channel_id=(
                    user.owned_channel_id
                    if user.owned_channel_id in kept_channels
                    else -1
                ),
            )
        sample.validate()
        return sample
