"""Synthesized YouTube social-network trace.

The paper's Section III analyses a crawl of 20,310 users and 261,110
videos obtained via the YouTube Data API.  That dataset is proprietary
and long gone, so this subpackage synthesizes a social network with the
same *statistical structure* -- which is all the analysis and the
protocol design consume:

* channel sizes, subscriber counts and per-video views follow heavy-
  tailed distributions (Figs 3-8);
* views inside one channel follow Zipf with exponent ~1 (Fig 9);
* channels focus on few categories; users subscribe within their
  interests, producing the shared-subscriber clustering of Fig 10 and
  the similarity CDF of Fig 12;
* favorites are strongly correlated with views (the Pearson observation
  of [35] quoted under Fig 8);
* upload dates follow the two-year growth curve of Fig 2.

:class:`repro.trace.crawler.BfsCrawler` reproduces the paper's sampling
methodology (breadth-first over subscription edges) on the synthetic
graph.
"""

from repro.trace.dataset import TraceDataset
from repro.trace.entities import Category, Channel, User, Video
from repro.trace.synthesizer import TraceConfig, TraceSynthesizer, synthesize_trace

__all__ = [
    "TraceDataset",
    "Category",
    "Channel",
    "User",
    "Video",
    "TraceConfig",
    "TraceSynthesizer",
    "synthesize_trace",
]
