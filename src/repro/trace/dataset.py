"""The trace dataset container.

Holds the synthesized (or crawled) social network and exposes the read
interface shared by the Section III analysis, the central server
(:class:`repro.net.server.CentralServer` duck-types against it), and
the workload generator.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, Iterable, Sequence, Set

from repro.trace.entities import Category, Channel, User, Video


class DatasetError(ValueError):
    """Raised when a dataset fails structural validation."""


@dataclass
class TraceDataset:
    """An in-memory YouTube social-network snapshot."""

    categories: Dict[int, Category] = field(default_factory=dict)
    channels: Dict[int, Channel] = field(default_factory=dict)
    videos: Dict[int, Video] = field(default_factory=dict)
    users: Dict[int, User] = field(default_factory=dict)
    crawl_day: int = 0
    seed: int = 0

    # -- summary ----------------------------------------------------------

    @property
    def num_users(self) -> int:
        return len(self.users)

    @property
    def num_channels(self) -> int:
        return len(self.channels)

    @property
    def num_videos(self) -> int:
        return len(self.videos)

    @property
    def num_categories(self) -> int:
        return len(self.categories)

    def summary(self) -> str:
        """One-line human-readable description."""
        return (
            f"TraceDataset: {self.num_users} users, {self.num_channels} channels, "
            f"{self.num_videos} videos, {self.num_categories} categories, "
            f"crawl day {self.crawl_day}"
        )

    # -- catalog interface (consumed by CentralServer & workload) -----------

    def channel_of_video(self, video_id: int) -> int:
        return self.videos[video_id].channel_id

    def category_of_video(self, video_id: int) -> int:
        return self.videos[video_id].category_id

    def category_of_channel(self, channel_id: int) -> int:
        return self.channels[channel_id].category_id

    def videos_of_channel(self, channel_id: int) -> Sequence[int]:
        return self.channels[channel_id].video_ids

    def channels_of_category(self, category_id: int) -> Sequence[int]:
        return self.categories[category_id].channel_ids

    def video_views(self, video_id: int) -> int:
        return self.videos[video_id].views

    def video_length(self, video_id: int) -> float:
        return self.videos[video_id].length_seconds

    def subscribers_of_channel(self, channel_id: int) -> Set[int]:
        return self.channels[channel_id].subscriber_ids

    def subscriptions_of_user(self, user_id: int) -> Set[int]:
        return self.users[user_id].subscribed_channel_ids

    def channel_total_views(self, channel_id: int) -> int:
        """Sum of views over the channel's videos (Fig 5's y-axis)."""
        return sum(self.videos[v].views for v in self.channels[channel_id].video_ids)

    def channel_view_frequency(self, channel_id: int) -> float:
        """Average per-video view frequency of a channel (Fig 3)."""
        video_ids = self.channels[channel_id].video_ids
        if not video_ids:
            return 0.0
        total = sum(self.videos[v].view_frequency(self.crawl_day) for v in video_ids)
        return total / len(video_ids)

    def iter_videos(self) -> Iterable[Video]:
        return self.videos.values()

    def iter_channels(self) -> Iterable[Channel]:
        return self.channels.values()

    def iter_users(self) -> Iterable[User]:
        return self.users.values()

    # -- validation --------------------------------------------------------

    def validate(self) -> None:
        """Check referential integrity; raise :class:`DatasetError` if broken."""
        for video in self.videos.values():
            if video.channel_id not in self.channels:
                raise DatasetError(f"video {video.video_id} references missing channel")
            if video.category_id not in self.categories:
                raise DatasetError(f"video {video.video_id} references missing category")
            if video.views < 0 or video.favorites < 0:
                raise DatasetError(f"video {video.video_id} has negative statistics")
            if video.length_seconds <= 0:
                raise DatasetError(f"video {video.video_id} has non-positive length")
        for channel in self.channels.values():
            if channel.category_id not in self.categories:
                raise DatasetError(f"channel {channel.channel_id} references missing category")
            for video_id in channel.video_ids:
                if self.videos[video_id].channel_id != channel.channel_id:
                    raise DatasetError(
                        f"channel {channel.channel_id} lists foreign video {video_id}"
                    )
            for sub in channel.subscriber_ids:
                if sub not in self.users:
                    raise DatasetError(
                        f"channel {channel.channel_id} has unknown subscriber {sub}"
                    )
        for category in self.categories.values():
            for channel_id in category.channel_ids:
                if self.channels[channel_id].category_id != category.category_id:
                    raise DatasetError(
                        f"category {category.category_id} lists foreign channel {channel_id}"
                    )
        for user in self.users.values():
            for channel_id in user.subscribed_channel_ids:
                if channel_id not in self.channels:
                    raise DatasetError(
                        f"user {user.user_id} subscribed to missing channel {channel_id}"
                    )
                if user.user_id not in self.channels[channel_id].subscriber_ids:
                    raise DatasetError(
                        f"subscription {user.user_id}->{channel_id} not mirrored on channel"
                    )
            for video_id in user.favorite_video_ids:
                if video_id not in self.videos:
                    raise DatasetError(
                        f"user {user.user_id} favorites missing video {video_id}"
                    )

    # -- serialization -------------------------------------------------------

    def to_json(self) -> str:
        """Serialize to a JSON string (stable field order)."""
        payload = {
            "crawl_day": self.crawl_day,
            "seed": self.seed,
            "categories": [
                {"category_id": c.category_id, "name": c.name, "channel_ids": c.channel_ids}
                for c in self.categories.values()
            ],
            "channels": [
                {
                    "channel_id": c.channel_id,
                    "owner_user_id": c.owner_user_id,
                    "category_id": c.category_id,
                    "video_ids": c.video_ids,
                    "subscriber_ids": sorted(c.subscriber_ids),
                    "category_mix": c.category_mix,
                }
                for c in self.channels.values()
            ],
            "videos": [
                {
                    "video_id": v.video_id,
                    "channel_id": v.channel_id,
                    "category_id": v.category_id,
                    "upload_day": v.upload_day,
                    "length_seconds": v.length_seconds,
                    "views": v.views,
                    "favorites": v.favorites,
                }
                for v in self.videos.values()
            ],
            "users": [
                {
                    "user_id": u.user_id,
                    "interest_ids": sorted(u.interest_ids),
                    "subscribed_channel_ids": sorted(u.subscribed_channel_ids),
                    "favorite_video_ids": u.favorite_video_ids,
                    "owned_channel_id": u.owned_channel_id,
                }
                for u in self.users.values()
            ],
        }
        return json.dumps(payload, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "TraceDataset":
        """Inverse of :meth:`to_json`."""
        payload = json.loads(text)
        dataset = cls(crawl_day=payload["crawl_day"], seed=payload["seed"])
        for c in payload["categories"]:
            dataset.categories[c["category_id"]] = Category(
                category_id=c["category_id"],
                name=c["name"],
                channel_ids=list(c["channel_ids"]),
            )
        for c in payload["channels"]:
            dataset.channels[c["channel_id"]] = Channel(
                channel_id=c["channel_id"],
                owner_user_id=c["owner_user_id"],
                category_id=c["category_id"],
                video_ids=list(c["video_ids"]),
                subscriber_ids=set(c["subscriber_ids"]),
                category_mix={int(k): v for k, v in c["category_mix"].items()},
            )
        for v in payload["videos"]:
            dataset.videos[v["video_id"]] = Video(**v)
        for u in payload["users"]:
            dataset.users[u["user_id"]] = User(
                user_id=u["user_id"],
                interest_ids=set(u["interest_ids"]),
                subscribed_channel_ids=set(u["subscribed_channel_ids"]),
                favorite_video_ids=list(u["favorite_video_ids"]),
                owned_channel_id=u["owned_channel_id"],
            )
        return dataset

    def save(self, path: str) -> None:
        """Write the dataset to ``path`` as JSON."""
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.to_json())

    @classmethod
    def load(cls, path: str) -> "TraceDataset":
        """Read a dataset previously written with :meth:`save`."""
        with open(path, "r", encoding="utf-8") as fh:
            return cls.from_json(fh.read())
