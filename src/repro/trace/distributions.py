"""Heavy-tailed samplers used by the trace synthesizer.

Everything here is implemented from first principles on top of
``random.Random`` so the synthesizer stays deterministic under the
stream-split RNG discipline of :mod:`repro.sim.rng`.
"""

from __future__ import annotations

import math
from bisect import bisect_left
from random import Random
from typing import List, Sequence


def zipf_weights(n: int, exponent: float = 1.0) -> List[float]:
    """Unnormalised Zipf weights ``1/k^s`` for ranks ``k = 1..n``.

    Section IV-B of the paper models within-channel video popularity as
    Zipf with characteristic exponent ``s = 1`` ("views tend to follow
    Zipf's distribution with the characteristic exponent s = 1").
    """
    if n < 1:
        raise ValueError("n must be >= 1")
    if exponent < 0:
        raise ValueError("exponent must be >= 0")
    return [1.0 / (k ** exponent) for k in range(1, n + 1)]


def zipf_probabilities(n: int, exponent: float = 1.0) -> List[float]:
    """Normalised Zipf pmf over ranks ``1..n``."""
    weights = zipf_weights(n, exponent)
    total = sum(weights)
    return [w / total for w in weights]


class DiscreteSampler:
    """O(log n) sampler over a fixed finite weight vector.

    Precomputes the cumulative weights once; each draw is one uniform
    plus a binary search.  Used for channel choice, within-channel video
    choice, category choice -- anywhere the corpus provides the weights.
    """

    def __init__(self, weights: Sequence[float]):
        if not weights:
            raise ValueError("weights must be non-empty")
        if any(w < 0 for w in weights):
            raise ValueError("weights must be non-negative")
        self._cumulative: List[float] = []
        running = 0.0
        for w in weights:
            running += w
            self._cumulative.append(running)
        if running <= 0:
            raise ValueError("total weight must be positive")
        self.total = running

    def __len__(self) -> int:
        return len(self._cumulative)

    def sample(self, rng: Random) -> int:
        """Draw an index with probability proportional to its weight."""
        u = rng.random() * self.total
        return bisect_left(self._cumulative, u)


def bounded_pareto(rng: Random, alpha: float, low: float, high: float) -> float:
    """Draw from a Pareto distribution truncated to ``[low, high]``.

    Inverse-CDF method.  Channel video counts (Fig 6) and subscriber
    counts (Fig 4) in the paper span 3-4 orders of magnitude with
    power-law tails; a bounded Pareto reproduces both the spread and the
    reported quantiles once ``alpha`` is tuned.
    """
    if alpha <= 0:
        raise ValueError("alpha must be positive")
    if low <= 0 or high <= low:
        raise ValueError("need 0 < low < high")
    u = rng.random()
    la = low ** alpha
    ha = high ** alpha
    # Inverse CDF of the truncated Pareto.
    x = (-(u * ha - u * la - ha) / (ha * la)) ** (-1.0 / alpha)
    return min(max(x, low), high)


def lognormal(rng: Random, mu: float, sigma: float) -> float:
    """Plain lognormal draw (thin wrapper for symmetry/naming)."""
    if sigma < 0:
        raise ValueError("sigma must be >= 0")
    return rng.lognormvariate(mu, sigma)


def exponential_growth_day(rng: Random, horizon_days: int, rate: float) -> int:
    """Sample an upload day from an exponential *growth* profile.

    Fig 2 shows the number of videos added per unit time growing roughly
    exponentially over the two crawled years.  We sample the upload day
    ``d`` in ``[0, horizon_days)`` with density proportional to
    ``exp(rate * d / horizon_days)`` via the inverse CDF, so later days
    are denser -- reproducing the figure's accelerating curve.
    """
    if horizon_days < 1:
        raise ValueError("horizon_days must be >= 1")
    if rate <= 0:
        # Degenerate: uniform uploads over the horizon.
        return rng.randrange(horizon_days)
    u = rng.random()
    # Inverse CDF of the truncated exponential-growth density on [0, 1].
    x = math.log(1.0 + u * (math.exp(rate) - 1.0)) / rate
    day = int(x * horizon_days)
    return min(day, horizon_days - 1)


def zipf_sampler(n: int, exponent: float = 1.0) -> DiscreteSampler:
    """Prebuilt :class:`DiscreteSampler` over Zipf ranks ``0..n-1``."""
    return DiscreteSampler(zipf_weights(n, exponent))
