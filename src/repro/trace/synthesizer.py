"""Synthetic YouTube social-network generator.

Replaces the paper's proprietary crawl (20,310 users / 261,110 videos,
18 Jan 2008 - 9 Sept 2010) with a generator that reproduces every
statistical property Section III measures:

========  ==========================================================
Fig 2     upload volume grows ~exponentially over the crawl horizon
Fig 3/4   channel view-frequency and subscriber counts heavy-tailed
Fig 5     channel total views strongly correlated with subscribers
Fig 6     videos-per-channel heavy-tailed
Fig 7/8   per-video views and favorites heavy-tailed and correlated
Fig 9     within-channel views ~ Zipf(s=1) regardless of channel tier
Fig 10    channels cluster by shared subscribers inside categories
Fig 11    each channel spans few categories
Fig 12    users subscribe within their interests (high similarity)
Fig 13    users hold a limited number of interests (<= 18)
========  ==========================================================

The generative story: every channel has a latent *popularity weight*
(bounded Pareto).  Users have latent interests; they subscribe mostly
to popular channels inside those interests; they favorite videos mostly
from subscribed channels; observed interests are then *derived* from
favorite-video categories exactly as the paper does.  Channel weight
drives both subscriber counts and video views, producing the Fig 5
correlation for free.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.sim.rng import RngStreams
from repro.trace.dataset import TraceDataset
from repro.trace.distributions import (
    DiscreteSampler,
    bounded_pareto,
    exponential_growth_day,
    zipf_weights,
)
from repro.trace.entities import (
    DEFAULT_CATEGORY_NAMES,
    Category,
    Channel,
    User,
    Video,
)


@dataclass
class TraceConfig:
    """Knobs of the synthetic social network.

    Defaults are a laptop-friendly scale; :meth:`paper_crawl_scale`
    matches the crawl of Section III and :meth:`table1_scale` matches
    the simulation corpus of Table I.
    """

    num_users: int = 2000
    num_channels: int = 200
    num_videos: int = 8000
    num_categories: int = 15
    horizon_days: int = 970          # 18 Jan 2008 .. 9 Sept 2010
    upload_growth_rate: float = 2.2  # exponent of the Fig 2 growth curve
    seed: int = 20140630             # ICDCS 2014 vintage

    # Channel structure ----------------------------------------------------
    channel_weight_alpha: float = 0.55   # popularity-weight Pareto shape
    channel_weight_max: float = 2.0e4
    channel_size_alpha: float = 0.70     # videos-per-channel Pareto shape
    channel_size_max: float = 2000.0
    primary_category_share: float = 0.80 # fraction of uploads in primary cat
    max_secondary_categories: int = 4

    # Video statistics -----------------------------------------------------
    within_channel_zipf: float = 1.0     # Fig 9 / Section IV-B: s = 1
    view_scale: float = 900.0            # calibrates the corpus view median
    view_noise_sigma: float = 0.35
    favorite_rate: float = 0.012         # favorites ~ 1.2% of views
    favorite_noise_sigma: float = 0.45
    video_length_mu: float = math.log(210.0)  # short videos, median 3.5 min
    video_length_sigma: float = 0.60
    video_length_min: float = 20.0
    video_length_max: float = 900.0

    # User behaviour ---------------------------------------------------------
    mean_interests: float = 4.0          # latent interests; observed (Fig 13) is derived
    max_interests: int = 18              # Fig 13: observed maximum
    interest_zipf: float = 2.0           # user attention skew across interests (Fig 10)
    subscription_alpha: float = 1.3      # subscriptions-per-user Pareto shape
    subscription_min: float = 1.0
    subscription_max: float = 120.0
    in_interest_subscription_prob: float = 0.92  # Fig 12 similarity driver
    mean_favorites: float = 15.0
    favorite_from_subscription_prob: float = 0.60
    favorite_from_interest_prob: float = 0.30
    size_popularity_coupling: float = 0.35  # popular channels upload more (Fig 5)

    def __post_init__(self) -> None:
        if self.num_users < 1 or self.num_channels < 1 or self.num_videos < 1:
            raise ValueError("counts must be positive")
        if self.num_channels > self.num_users:
            raise ValueError("every channel needs a distinct owner user")
        if self.num_videos < self.num_channels:
            raise ValueError("every channel needs at least one video")
        if self.num_categories < 1:
            raise ValueError("need at least one category")
        if not 0.0 <= self.primary_category_share <= 1.0:
            raise ValueError("primary_category_share must be a probability")
        if not 0.0 <= self.in_interest_subscription_prob <= 1.0:
            raise ValueError("in_interest_subscription_prob must be a probability")
        if self.max_interests < 1:
            raise ValueError("max_interests must be >= 1")

    @classmethod
    def paper_crawl_scale(cls, seed: int = 20140630) -> "TraceConfig":
        """The Section III crawl: 20,310 users, 261,110 videos."""
        return cls(
            num_users=20310,
            num_channels=2300,
            num_videos=261110,
            seed=seed,
        )

    @classmethod
    def table1_scale(cls, seed: int = 20140630) -> "TraceConfig":
        """The Table I simulation corpus: 545 channels, ~10,121 videos."""
        return cls(
            num_users=10000,
            num_channels=545,
            num_videos=10121,
            seed=seed,
        )


class TraceSynthesizer:
    """Builds a :class:`TraceDataset` from a :class:`TraceConfig`."""

    def __init__(self, config: TraceConfig):
        self.config = config
        self._streams = RngStreams(config.seed)

    # -- public entry ---------------------------------------------------------

    def synthesize(self) -> TraceDataset:
        """Generate the full dataset.  Deterministic for a fixed config."""
        cfg = self.config
        categories = self._make_categories()
        channel_weights = self._draw_channel_weights()
        channels = self._make_channels(categories, channel_weights)
        videos = self._make_videos(channels, channel_weights)
        users = self._make_users(channels, channel_weights, videos)
        dataset = TraceDataset(
            categories={c.category_id: c for c in categories},
            channels={c.channel_id: c for c in channels},
            videos={v.video_id: v for v in videos},
            users={u.user_id: u for u in users},
            crawl_day=cfg.horizon_days,
            seed=cfg.seed,
        )
        dataset.validate()
        return dataset

    # -- categories -----------------------------------------------------------

    def _make_categories(self) -> List[Category]:
        names = list(DEFAULT_CATEGORY_NAMES)
        while len(names) < self.config.num_categories:
            names.append(f"Category {len(names) + 1}")
        return [
            Category(category_id=i, name=names[i])
            for i in range(self.config.num_categories)
        ]

    def _category_popularity_sampler(self) -> DiscreteSampler:
        """Categories themselves are Zipf-popular (Music >> Nonprofits)."""
        return DiscreteSampler(zipf_weights(self.config.num_categories, 0.8))

    # -- channels ---------------------------------------------------------------

    def _draw_channel_weights(self) -> List[float]:
        rng = self._streams.stream("channel-weights")
        cfg = self.config
        return [
            bounded_pareto(rng, cfg.channel_weight_alpha, 1.0, cfg.channel_weight_max)
            for _ in range(cfg.num_channels)
        ]

    def _make_channels(
        self, categories: List[Category], weights: List[float]
    ) -> List[Channel]:
        cfg = self.config
        rng = self._streams.stream("channels")
        cat_sampler = self._category_popularity_sampler()
        # Channel owners are a random subset of users (one channel each).
        owner_ids = rng.sample(range(cfg.num_users), cfg.num_channels)
        channels: List[Channel] = []
        for channel_id in range(cfg.num_channels):
            primary = cat_sampler.sample(rng)
            channel = Channel(
                channel_id=channel_id,
                owner_user_id=owner_ids[channel_id],
                category_id=primary,
            )
            channels.append(channel)
            categories[primary].channel_ids.append(channel_id)
        return channels

    def _channel_video_counts(self, weights: List[float]) -> List[int]:
        """Split the corpus across channels with a heavy-tailed profile.

        Draw a bounded-Pareto size weight per channel, couple it mildly
        to the channel's popularity weight (popular uploaders are also
        prolific -- this drives the Fig 5 views/subscribers correlation),
        scale so the total matches ``num_videos``, and guarantee >= 1
        video per channel.
        """
        cfg = self.config
        rng = self._streams.stream("channel-sizes")
        raw = [
            bounded_pareto(rng, cfg.channel_size_alpha, 1.0, cfg.channel_size_max)
            * (w ** cfg.size_popularity_coupling)
            for w in weights
        ]
        total_raw = sum(raw)
        counts = [max(1, int(round(w / total_raw * cfg.num_videos))) for w in raw]
        # Nudge the rounding drift back onto the largest channels.
        drift = cfg.num_videos - sum(counts)
        order = sorted(range(cfg.num_channels), key=lambda i: raw[i], reverse=True)
        i = 0
        while drift != 0 and order:
            idx = order[i % len(order)]
            if drift > 0:
                counts[idx] += 1
                drift -= 1
            elif counts[idx] > 1:
                counts[idx] -= 1
                drift += 1
            i += 1
        return counts

    # -- videos --------------------------------------------------------------

    def _make_videos(
        self, channels: List[Channel], weights: List[float]
    ) -> List[Video]:
        cfg = self.config
        rng = self._streams.stream("videos")
        counts = self._channel_video_counts(weights)
        videos: List[Video] = []
        video_id = 0
        num_cats = cfg.num_categories
        for channel, count, weight in zip(channels, counts, weights):
            # The channel's small set of secondary categories (Fig 11).
            num_secondary = rng.randint(0, min(cfg.max_secondary_categories, num_cats - 1))
            secondary = rng.sample(
                [c for c in range(num_cats) if c != channel.category_id],
                num_secondary,
            )
            zipf = zipf_weights(count, cfg.within_channel_zipf)
            ranks = list(range(count))
            rng.shuffle(ranks)  # popularity rank is independent of upload order
            for k in range(count):
                if secondary and rng.random() > cfg.primary_category_share:
                    category_id = rng.choice(secondary)
                else:
                    category_id = channel.category_id
                length = rng.lognormvariate(cfg.video_length_mu, cfg.video_length_sigma)
                length = min(max(length, cfg.video_length_min), cfg.video_length_max)
                noise = rng.lognormvariate(0.0, cfg.view_noise_sigma)
                views = int(round(weight * zipf[ranks[k]] * cfg.view_scale * noise))
                views = max(1, views)
                fav_noise = rng.lognormvariate(0.0, cfg.favorite_noise_sigma)
                favorites = int(round(views * cfg.favorite_rate * fav_noise))
                video = Video(
                    video_id=video_id,
                    channel_id=channel.channel_id,
                    category_id=category_id,
                    upload_day=exponential_growth_day(
                        rng, cfg.horizon_days, cfg.upload_growth_rate
                    ),
                    length_seconds=length,
                    views=views,
                    favorites=favorites,
                )
                videos.append(video)
                channel.video_ids.append(video_id)
                channel.category_mix[category_id] = (
                    channel.category_mix.get(category_id, 0) + 1
                )
                video_id += 1
        return videos

    # -- users ------------------------------------------------------------------

    def _draw_interest_count(self, rng) -> int:
        """Interests per user: most users < 10, hard max 18 (Fig 13)."""
        cfg = self.config
        raw = rng.lognormvariate(math.log(cfg.mean_interests), 0.45)
        return max(1, min(cfg.max_interests, int(round(raw))))

    def _make_users(
        self,
        channels: List[Channel],
        weights: List[float],
        videos: List[Video],
    ) -> List[User]:
        cfg = self.config
        rng = self._streams.stream("users")
        cat_sampler = self._category_popularity_sampler()
        channel_sampler = DiscreteSampler(weights)
        # Per-category channel samplers for interest-driven subscription.
        per_category: Dict[int, DiscreteSampler] = {}
        per_category_ids: Dict[int, List[int]] = {}
        for category_id in range(cfg.num_categories):
            ids = [c.channel_id for c in channels if c.category_id == category_id]
            if ids:
                per_category_ids[category_id] = ids
                per_category[category_id] = DiscreteSampler(
                    [weights[i] for i in ids]
                )
        # Per-channel within-channel video samplers (view-proportional),
        # built lazily and cached: big channels are sampled many times.
        video_views = [v.views for v in videos]
        channel_video_sampler: Dict[int, DiscreteSampler] = {}

        def pick_video_of(channel: Channel) -> int:
            sampler = channel_video_sampler.get(channel.channel_id)
            if sampler is None:
                sampler = DiscreteSampler([video_views[v] for v in channel.video_ids])
                channel_video_sampler[channel.channel_id] = sampler
            return channel.video_ids[sampler.sample(rng)]

        # Attention across a user's interests is itself Zipf-skewed: a
        # gamer with eight interests still spends most time on Gaming.
        # This skew is what concentrates co-subscription inside
        # categories and produces the Fig 10 clusters.
        interest_attention: Dict[int, DiscreteSampler] = {}

        def attention_sampler(k: int) -> DiscreteSampler:
            sampler = interest_attention.get(k)
            if sampler is None:
                sampler = DiscreteSampler(zipf_weights(k, cfg.interest_zipf))
                interest_attention[k] = sampler
            return sampler

        users: List[User] = []
        owner_of = {c.owner_user_id: c.channel_id for c in channels}
        for user_id in range(cfg.num_users):
            user = User(user_id=user_id, owned_channel_id=owner_of.get(user_id, -1))
            # 1. latent interests, ordered by preference ----------------------
            want = self._draw_interest_count(rng)
            latent: List[int] = []
            guard = 0
            while len(latent) < want and guard < 20 * want:
                cat = cat_sampler.sample(rng)
                if cat not in latent and cat in per_category_ids:
                    latent.append(cat)
                guard += 1
            if not latent:
                latent.append(next(iter(per_category_ids)))
            pick_interest = attention_sampler(len(latent))
            # 2. subscriptions -------------------------------------------------
            sub_count = int(round(bounded_pareto(
                rng, cfg.subscription_alpha, cfg.subscription_min, cfg.subscription_max
            )))
            sub_count = min(sub_count, cfg.num_channels)
            guard = 0
            while len(user.subscribed_channel_ids) < sub_count and guard < 30 * sub_count:
                if rng.random() < cfg.in_interest_subscription_prob:
                    cat = latent[pick_interest.sample(rng)]
                    ids = per_category_ids[cat]
                    channel_id = ids[per_category[cat].sample(rng)]
                else:
                    channel_id = channel_sampler.sample(rng)
                user.subscribed_channel_ids.add(channel_id)
                guard += 1
            for channel_id in user.subscribed_channel_ids:
                channels[channel_id].subscriber_ids.add(user_id)
            # 3. favorites (observed interests are *derived* from them,
            #    exactly as Section III-D derives C_u) ------------------------
            fav_count = max(1, int(round(rng.lognormvariate(
                math.log(cfg.mean_favorites), 0.5
            ))))
            subscribed = list(user.subscribed_channel_ids)
            p_sub = cfg.favorite_from_subscription_prob
            p_int = p_sub + cfg.favorite_from_interest_prob
            for _ in range(fav_count):
                roll = rng.random()
                if subscribed and roll < p_sub:
                    channel = channels[rng.choice(subscribed)]
                elif roll < p_int:
                    cat = latent[pick_interest.sample(rng)]
                    ids = per_category_ids[cat]
                    channel = channels[ids[per_category[cat].sample(rng)]]
                else:
                    channel = channels[channel_sampler.sample(rng)]
                picked = pick_video_of(channel)
                user.favorite_video_ids.append(picked)
                user.interest_ids.add(videos[picked].category_id)
            users.append(user)
        return users


def synthesize_trace(config: Optional[TraceConfig] = None) -> TraceDataset:
    """One-call convenience: synthesize with the given (or default) config."""
    return TraceSynthesizer(config or TraceConfig()).synthesize()
