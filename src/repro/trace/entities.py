"""Trace entities: categories, channels, videos, users.

These mirror what the paper crawled via the YouTube Data API: for each
video its id, total views, upload date and length; for each user their
subscriptions; channels group a user's uploads; categories ("interests")
group channels (Fig 1's organisation of YouTube videos).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set

#: YouTube's interest categories circa the paper's crawl (Fig 1 names a
#: few: Gaming, Sports, Comedy, Science & Technology).  The synthesizer
#: cycles through this list and falls back to numbered names beyond it.
DEFAULT_CATEGORY_NAMES = [
    "Music",
    "Entertainment",
    "Comedy",
    "Gaming",
    "Sports",
    "News & Politics",
    "Science & Technology",
    "Education",
    "Film & Animation",
    "Howto & Style",
    "Travel & Events",
    "Autos & Vehicles",
    "Pets & Animals",
    "People & Blogs",
    "Nonprofits & Activism",
]


@dataclass
class Category:
    """An interest category (the higher level of Fig 1)."""

    category_id: int
    name: str
    channel_ids: List[int] = field(default_factory=list)


@dataclass
class Video:
    """One uploaded video and its crawled statistics."""

    video_id: int
    channel_id: int
    category_id: int
    upload_day: int
    length_seconds: float
    views: int
    favorites: int

    def view_frequency(self, crawl_day: int) -> float:
        """Views per day online: ``total views / days since upload``.

        This is the per-video popularity rate behind Fig 3's per-channel
        averages.  Videos uploaded on the crawl day count one day online.
        """
        days_online = max(1, crawl_day - self.upload_day)
        return self.views / days_online


@dataclass
class Channel:
    """A user's channel: the webpage grouping all their uploads.

    ``category_id`` is the channel's *primary* category;
    ``category_mix`` maps every category its videos touch to the number
    of videos in that category (channels focus on a small number of
    categories -- Fig 11).
    """

    channel_id: int
    owner_user_id: int
    category_id: int
    video_ids: List[int] = field(default_factory=list)
    subscriber_ids: Set[int] = field(default_factory=set)
    category_mix: Dict[int, int] = field(default_factory=dict)

    @property
    def num_videos(self) -> int:
        return len(self.video_ids)

    @property
    def num_subscribers(self) -> int:
        return len(self.subscriber_ids)

    @property
    def num_interests(self) -> int:
        """Number of categories this channel's videos span (Fig 11)."""
        return len(self.category_mix)

    def total_views(self) -> int:
        """Filled in by the dataset, which owns the video records."""
        raise NotImplementedError(
            "use TraceDataset.channel_total_views; a Channel does not own Video records"
        )


@dataclass
class User:
    """A crawled user: interests, subscriptions and favorites.

    ``interest_ids`` are the categories of the user's favorite videos --
    exactly how the paper derives personal interests (Section III-D:
    "We determined each user's personal interests by examining the
    categories of the user's favorite videos").
    """

    user_id: int
    interest_ids: Set[int] = field(default_factory=set)
    subscribed_channel_ids: Set[int] = field(default_factory=set)
    favorite_video_ids: List[int] = field(default_factory=list)
    owned_channel_id: int = -1

    @property
    def num_interests(self) -> int:
        """Number of distinct favorite-video categories (Fig 13)."""
        return len(self.interest_ids)

    @property
    def is_uploader(self) -> bool:
        return self.owned_channel_id >= 0
