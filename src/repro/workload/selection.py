"""The 75/15/10 video-selection model.

Each user carries a *current channel* (initially drawn from their
subscriptions, popularity-weighted).  For every next video:

* with ``p_same_channel`` (75%) -- a video of the current channel,
* with ``p_same_category`` (15%) -- a video from another channel of the
  current channel's category (the user then moves to that channel),
* otherwise (10%) -- a video from a channel of a different category.

Within any channel, the video is drawn proportionally to its view
count, reproducing the within-channel Zipf viewing of Fig 9 -- the
paper notes "Other percent values keeping the same magnitude
relationship will not change the relative performance differences".
"""

from __future__ import annotations

from dataclasses import dataclass
from random import Random
from typing import Dict, Optional

from repro.trace.dataset import TraceDataset
from repro.trace.distributions import DiscreteSampler


@dataclass
class SelectionPolicy:
    """The three-way branching probabilities of Section V.

    ``p_subscribed_move`` biases channel *moves* toward the user's own
    subscriptions: when a user leaves the current channel, the
    destination is one of their subscribed channels (in the target
    category) with this probability, else any channel of the category by
    popularity.  This reflects the trace observations the paper builds
    on -- subscribers watch the channels they subscribed to (O2) and
    subscribe within their interests (O5).
    """

    p_same_channel: float = 0.75
    p_same_category: float = 0.15
    p_subscribed_move: float = 0.7
    #: Channel *moves* weight destination channels by (total views)^gamma.
    #: gamma=1 concentrates the population into the few hottest channels
    #: far beyond the member counts the paper's Table I corpus implies
    #: (545 channels / 10k nodes ~ 18 members per channel); the tempered
    #: default keeps channel communities at a size one TTL-2 flood can
    #: cover, which is the regime the protocol was designed for.
    #: Video choice *within* a channel remains fully view-weighted.
    channel_popularity_exponent: float = 0.5

    def __post_init__(self) -> None:
        if not 0 <= self.p_same_channel <= 1 or not 0 <= self.p_same_category <= 1:
            raise ValueError("probabilities must be in [0, 1]")
        if self.p_same_channel + self.p_same_category > 1:
            raise ValueError("p_same_channel + p_same_category must be <= 1")
        if not 0 <= self.p_subscribed_move <= 1:
            raise ValueError("p_subscribed_move must be in [0, 1]")
        if self.channel_popularity_exponent < 0:
            raise ValueError("channel_popularity_exponent must be >= 0")

    @property
    def p_other_category(self) -> float:
        return 1.0 - self.p_same_channel - self.p_same_category


class VideoSelector:
    """Stateful per-user next-video chooser."""

    def __init__(
        self,
        dataset: TraceDataset,
        rng: Random,
        policy: Optional[SelectionPolicy] = None,
    ):
        self.dataset = dataset
        self.rng = rng
        self.policy = policy or SelectionPolicy()
        self._current_channel: Dict[int, int] = {}
        # Cached samplers; channels/videos are static during a run.
        self._video_sampler: Dict[int, DiscreteSampler] = {}
        self._channel_sampler_of_category: Dict[int, DiscreteSampler] = {}
        self._category_ids = [
            c for c in dataset.categories
            if dataset.categories[c].channel_ids
        ]
        if not self._category_ids:
            raise ValueError("dataset has no non-empty category")
        gamma = self.policy.channel_popularity_exponent
        self._category_sampler = DiscreteSampler(
            [
                (
                    sum(
                        dataset.channel_total_views(ch)
                        for ch in dataset.categories[c].channel_ids
                    )
                    or 1.0
                )
                ** gamma
                for c in self._category_ids
            ]
        )

    # -- samplers ------------------------------------------------------------

    def _channel_weight(self, channel_id: int) -> float:
        """Tempered popularity weight for channel-move choices."""
        views = self.dataset.channel_total_views(channel_id) or 1.0
        return views ** self.policy.channel_popularity_exponent


    def _pick_video_in_channel(self, channel_id: int) -> int:
        sampler = self._video_sampler.get(channel_id)
        videos = self.dataset.videos_of_channel(channel_id)
        if sampler is None:
            sampler = DiscreteSampler([self.dataset.video_views(v) for v in videos])
            self._video_sampler[channel_id] = sampler
        return videos[sampler.sample(self.rng)]

    def _pick_channel_in_category(self, category_id: int) -> int:
        sampler = self._channel_sampler_of_category.get(category_id)
        channels = self.dataset.channels_of_category(category_id)
        if sampler is None:
            sampler = DiscreteSampler([self._channel_weight(c) for c in channels])
            self._channel_sampler_of_category[category_id] = sampler
        return channels[sampler.sample(self.rng)]

    def _pick_category(self, exclude: Optional[int] = None) -> int:
        for _ in range(10):
            category = self._category_ids[self._category_sampler.sample(self.rng)]
            if category != exclude:
                return category
        return self._category_ids[0] if exclude != self._category_ids[0] else (
            self._category_ids[-1]
        )

    # -- public API ---------------------------------------------------------------

    def start_session(self, user_id: int) -> None:
        """Pick the session's starting channel from the subscriptions.

        Subscribers gravitate to their subscribed channels (O2);
        popularity-weighted among them.  Users without subscriptions
        start from a popular channel of a popular category.
        """
        # sorted(): the subscription set's hash order depends on its
        # insertion history, which a pickle round trip rewrites -- the
        # trace cache ships snapshots to workers, so iteration order
        # must be canonical for jobs=N to equal jobs=1.
        subscriptions = sorted(self.dataset.subscriptions_of_user(user_id))
        if subscriptions:
            weights = [self._channel_weight(c) for c in subscriptions]
            channel = subscriptions[DiscreteSampler(weights).sample(self.rng)]
        else:
            channel = self._pick_channel_in_category(self._pick_category())
        self._current_channel[user_id] = channel

    def current_channel(self, user_id: int) -> int:
        channel = self._current_channel.get(user_id)
        if channel is None:
            raise KeyError(f"user {user_id} has no active session; call start_session")
        return channel

    def _subscribed_channel_in(
        self, user_id: int, category_id: Optional[int], exclude: Optional[int]
    ) -> Optional[int]:
        """A popularity-weighted subscribed channel, optionally filtered
        to one category; None when the user has no match."""
        # sorted() for pickle-stable iteration order (see start_session).
        candidates = [
            c
            for c in sorted(self.dataset.subscriptions_of_user(user_id))
            if c != exclude
            and (
                category_id is None
                or self.dataset.category_of_channel(c) == category_id
            )
        ]
        if not candidates:
            return None
        weights = [self._channel_weight(c) for c in candidates]
        return candidates[DiscreteSampler(weights).sample(self.rng)]

    def next_video(self, user_id: int) -> int:
        """Draw the next video per the 75/15/10 policy and update state."""
        channel_id = self.current_channel(user_id)
        roll = self.rng.random()
        if roll < self.policy.p_same_channel:
            return self._pick_video_in_channel(channel_id)
        category_id = self.dataset.category_of_channel(channel_id)
        prefer_subscribed = self.rng.random() < self.policy.p_subscribed_move
        if roll < self.policy.p_same_channel + self.policy.p_same_category:
            # Same category, (usually) different channel.
            new_channel = None
            if prefer_subscribed:
                new_channel = self._subscribed_channel_in(
                    user_id, category_id, exclude=channel_id
                )
            if new_channel is None:
                new_channel = self._pick_channel_in_category(category_id)
        else:
            new_channel = None
            if prefer_subscribed:
                pick = self._subscribed_channel_in(user_id, None, exclude=channel_id)
                if pick is not None and (
                    self.dataset.category_of_channel(pick) != category_id
                ):
                    new_channel = pick
            if new_channel is None:
                other = self._pick_category(exclude=category_id)
                new_channel = self._pick_channel_in_category(other)
        self._current_channel[user_id] = new_channel
        return self._pick_video_in_channel(new_channel)
