"""Viewing-behaviour workload (Section V).

"When a node chooses a video to view, it has a 75% chance of selecting
a video in the same channel, a 15% chance of selecting a video in the
same category, and a 10% chance of selecting a video in a different
category."  Within a channel, picks are view-count weighted (the Fig 9
Zipf behaviour is what makes prefetching work).
"""

from repro.workload.selection import SelectionPolicy, VideoSelector
from repro.workload.session import SessionTracker

__all__ = ["SelectionPolicy", "VideoSelector", "SessionTracker"]
