"""Per-user session progress bookkeeping.

The runner needs to know, for every user, how many sessions remain and
how far the current session has progressed; Fig 18 additionally needs
the per-session video index (its x-axis is "number of videos watched"
within a session).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict


@dataclass
class _UserProgress:
    sessions_done: int = 0
    videos_this_session: int = 0
    in_session: bool = False


class SessionTracker:
    """Tracks session/video progress for the whole population."""

    def __init__(
        self, sessions_per_user: int, videos_per_session: int, tracer=None
    ):
        if sessions_per_user < 1 or videos_per_session < 1:
            raise ValueError("session plan values must be >= 1")
        self.sessions_per_user = sessions_per_user
        self.videos_per_session = videos_per_session
        self._progress: Dict[int, _UserProgress] = {}
        self._active = 0
        #: Optional repro.obs tracer: session begin/end trace events
        #: carry the per-user session index plus the population-wide
        #: ``active`` gauge, the raw series behind Fig 18's "links vs
        #: videos watched" accounting and the active-sessions time
        #: series of repro.obs.timeseries.
        self.tracer = tracer

    @property
    def active_count(self) -> int:
        """Number of users currently inside a session (the churn gauge)."""
        return self._active

    def _of(self, user_id: int) -> _UserProgress:
        progress = self._progress.get(user_id)
        if progress is None:
            progress = _UserProgress()
            self._progress[user_id] = progress
        return progress

    def begin_session(self, user_id: int) -> None:
        progress = self._of(user_id)
        if progress.in_session:
            raise RuntimeError(f"user {user_id} already in a session")
        progress.in_session = True
        progress.videos_this_session = 0
        self._active += 1
        if self.tracer:
            self.tracer.event(
                "session.begin",
                user=user_id,
                index=progress.sessions_done + 1,
                active=self._active,
            )

    def record_video(self, user_id: int) -> int:
        """Count one watched video; returns its 1-based session index."""
        progress = self._of(user_id)
        if not progress.in_session:
            raise RuntimeError(f"user {user_id} is not in a session")
        progress.videos_this_session += 1
        return progress.videos_this_session

    def session_finished(self, user_id: int) -> bool:
        """Whether the current session has watched its quota."""
        return self._of(user_id).videos_this_session >= self.videos_per_session

    def end_session(self, user_id: int) -> None:
        progress = self._of(user_id)
        if not progress.in_session:
            raise RuntimeError(f"user {user_id} is not in a session")
        progress.in_session = False
        progress.sessions_done += 1
        self._active -= 1
        if self.tracer:
            self.tracer.event(
                "session.end",
                user=user_id,
                index=progress.sessions_done,
                videos=progress.videos_this_session,
                active=self._active,
            )

    def all_sessions_done(self, user_id: int) -> bool:
        return self._of(user_id).sessions_done >= self.sessions_per_user

    def videos_watched_in_session(self, user_id: int) -> int:
        return self._of(user_id).videos_this_session

    def sessions_done(self, user_id: int) -> int:
        return self._of(user_id).sessions_done
