# shard: module=shard-local -- instances live and die inside one run/shard
"""Analytical models from the paper.

* Section IV-C's maintenance-overhead comparison (Fig 15):
  SocialTube maintains ``log(u_c) + log(u_t)`` links versus NetTube's
  ``m * log(u)`` (m = videos watched from different overlays in a
  session, u = users per video overlay, u_c = users per channel,
  u_t = users per interest).
* Section IV-B's prefetch-accuracy estimate under Zipf(s=1)
  within-channel popularity: a single prefetch in a 25-video channel is
  accurate with probability 26.2%; 3-4 prefetches reach ~54.6%.
"""

from __future__ import annotations

import math
from typing import List, Tuple


def socialtube_maintenance_overhead(users_per_channel: int, users_per_interest: int) -> float:
    """Links per SocialTube node: ``log(u_c) + log(u_t)``.

    Natural log, as in the paper's asymptotic argument; the point of
    Fig 15 is the *constancy* in m, not the base.
    """
    if users_per_channel < 1 or users_per_interest < 1:
        raise ValueError("population sizes must be >= 1")
    return math.log(users_per_channel) + math.log(users_per_interest)


def nettube_maintenance_overhead(videos_watched: int, users_per_video: int) -> float:
    """Links per NetTube node: ``m * log(u)``."""
    if videos_watched < 0:
        raise ValueError("videos_watched must be >= 0")
    if users_per_video < 1:
        raise ValueError("users_per_video must be >= 1")
    return videos_watched * math.log(users_per_video)


def fig15_series(
    max_videos_watched: int = 50,
    users_per_video: int = 500,
    users_per_channel: int = 5000,
    users_per_interest: int = 250000,
) -> Tuple[List[Tuple[int, float]], List[Tuple[int, float]]]:
    """The two Fig 15 curves with the paper's arbitrary constants.

    "with values for u, u_c, and u_t arbitrarily chosen to be 500,
    5,000, and 250,000, respectively."  Returns (socialtube_points,
    nettube_points) over m = 1..max_videos_watched.
    """
    st = socialtube_maintenance_overhead(users_per_channel, users_per_interest)
    socialtube = [(m, st) for m in range(1, max_videos_watched + 1)]
    nettube = [
        (m, nettube_maintenance_overhead(m, users_per_video))
        for m in range(1, max_videos_watched + 1)
    ]
    return socialtube, nettube


def overhead_crossover(
    users_per_video: int = 500,
    users_per_channel: int = 5000,
    users_per_interest: int = 250000,
) -> float:
    """The m beyond which NetTube maintains more links than SocialTube.

    Fig 15's takeaway: "for small values of m, NetTube has very low
    overhead.  As m increases, however, the overhead of NetTube
    increases linearly while the overhead of SocialTube stays constant."
    """
    st = socialtube_maintenance_overhead(users_per_channel, users_per_interest)
    return st / math.log(users_per_video)


def harmonic_number(n: int) -> float:
    """H_n = sum_{k=1..n} 1/k (exact, not the asymptotic)."""
    if n < 1:
        raise ValueError("n must be >= 1")
    return sum(1.0 / k for k in range(1, n + 1))


def zipf_top_k_mass(num_videos: int, k: int, exponent: float = 1.0) -> float:
    """Probability that a Zipf(s)-distributed next pick lands in the top k.

    With s=1 this is ``H_k / H_N``.  Clamps k to the channel size.
    """
    if num_videos < 1:
        raise ValueError("num_videos must be >= 1")
    if k < 0:
        raise ValueError("k must be >= 0")
    if k == 0:
        return 0.0
    k = min(k, num_videos)
    if exponent == 1.0:
        return harmonic_number(k) / harmonic_number(num_videos)
    num = sum(1.0 / (r ** exponent) for r in range(1, k + 1))
    den = sum(1.0 / (r ** exponent) for r in range(1, num_videos + 1))
    return num / den


def prefetch_accuracy(num_videos: int, prefetched: int) -> float:
    """Probability a prefetched first chunk is the next video watched.

    Section IV-B: ``p_k = v_k / v_t`` with Zipf(s=1) views, so
    prefetching the top ``M`` captures ``H_M / H_N`` of the next-pick
    probability.  For a 25-video channel: M=1 gives 26.2%, M=3..4 gives
    ~54.6% (the paper's numbers).
    """
    return zipf_top_k_mass(num_videos, prefetched, exponent=1.0)
