"""SocialTube: the paper's primary contribution.

* :mod:`repro.core.cache` -- the session video cache and the bounded
  prefetch store.
* :mod:`repro.core.structure` -- the interest-based per-community
  two-level overlay (channel overlays + category clusters).
* :mod:`repro.core.prefetch` -- channel-facilitated popularity-based
  prefetching.
* :mod:`repro.core.socialtube` -- the protocol node logic
  (join/leave/search of Algorithm 1) tying the pieces together.
* :mod:`repro.core.model` -- the paper's analytical models: Fig 15
  maintenance overhead and the Zipf prefetch-accuracy formula.
"""

from repro.core.cache import PrefetchStore, VideoCache
from repro.core.prefetch import ChannelPrefetcher
from repro.core.structure import HierarchicalStructure
from repro.core.model import (
    nettube_maintenance_overhead,
    prefetch_accuracy,
    socialtube_maintenance_overhead,
)


def __getattr__(name):
    # SocialTubeProtocol is exported lazily (PEP 562): it depends on the
    # shared VodProtocol interface in repro.baselines.protocol, which in
    # turn uses repro.core.cache -- an eager import here would cycle.
    if name == "SocialTubeProtocol":
        from repro.core.socialtube import SocialTubeProtocol

        return SocialTubeProtocol
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "PrefetchStore",
    "VideoCache",
    "ChannelPrefetcher",
    "SocialTubeProtocol",
    "HierarchicalStructure",
    "nettube_maintenance_overhead",
    "prefetch_accuracy",
    "socialtube_maintenance_overhead",
]
