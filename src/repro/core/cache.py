# shard: module=shard-local -- instances live and die inside one run/shard
"""Video cache and prefetch store.

Section IV: "SocialTube requires users to maintain a cache of all
videos watched during the period of time between logging in and logging
off (termed a session) to increase video availability; since videos are
generally small, this does not unduly burden users."  The evaluation
additionally persists caches across sessions ("Nodes store their cached
videos for their next session"), so :class:`VideoCache` is unbounded by
default but supports an LRU bound for ablations.

The prefetch store holds *first chunks only* (about 15 KB each, Section
V) and is bounded: "The value of M is determined by each node's cache
size".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, Optional

from repro.net.message import ChunkSource


class VideoCache:
    """Set of fully cached videos with optional LRU bound.

    ``touch`` refreshes recency on re-watch; with ``max_videos=None``
    the cache never evicts (the paper's setting).
    """

    def __init__(self, max_videos: Optional[int] = None):
        if max_videos is not None and max_videos < 1:
            raise ValueError("max_videos must be >= 1 or None")
        self.max_videos = max_videos
        self._videos: Dict[int, None] = {}
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._videos)

    def __contains__(self, video_id: int) -> bool:
        return video_id in self._videos

    def __iter__(self) -> Iterator[int]:
        return iter(self._videos)

    def add(self, video_id: int) -> Optional[int]:
        """Insert (or refresh) a video; returns an evicted id or None."""
        if video_id in self._videos:
            del self._videos[video_id]  # refresh recency
            self._videos[video_id] = None
            return None
        evicted = None
        if self.max_videos is not None and len(self._videos) >= self.max_videos:
            evicted = next(iter(self._videos))
            del self._videos[evicted]
            self.evictions += 1
        self._videos[video_id] = None
        return evicted

    def touch(self, video_id: int) -> bool:
        """Refresh recency; True when the video was cached."""
        if video_id not in self._videos:
            return False
        del self._videos[video_id]
        self._videos[video_id] = None
        return True

    def discard(self, video_id: int) -> None:
        self._videos.pop(video_id, None)

    def clear(self) -> None:
        self._videos.clear()


@dataclass
class PrefetchedChunk:
    """One first chunk in the prefetch store."""

    video_id: int
    source: ChunkSource
    fetched_at: float


class PrefetchStore:
    """Bounded store of prefetched first chunks, oldest-first eviction."""

    def __init__(self, capacity: int = 50):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._chunks: Dict[int, PrefetchedChunk] = {}
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._chunks)

    def __contains__(self, video_id: int) -> bool:
        return video_id in self._chunks

    def video_ids(self):
        """Ids currently in the store, oldest first."""
        return list(self._chunks)

    def store(self, video_id: int, source: ChunkSource, now: float) -> None:
        """Insert unless already present; evict oldest beyond capacity."""
        if video_id in self._chunks:
            return
        if len(self._chunks) >= self.capacity:
            oldest = next(iter(self._chunks))  # insertion order = fetch order
            del self._chunks[oldest]
        self._chunks[video_id] = PrefetchedChunk(video_id, source, now)

    def take(self, video_id: int) -> Optional[PrefetchedChunk]:
        """Consume the chunk for ``video_id``; updates hit/miss counters."""
        chunk = self._chunks.pop(video_id, None)
        if chunk is None:
            self.misses += 1
        else:
            self.hits += 1
        return chunk

    def discard(self, video_id: int) -> None:
        self._chunks.pop(video_id, None)

    def hit_rate(self) -> float:
        """Fraction of lookups served from the store (prefetch accuracy)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
