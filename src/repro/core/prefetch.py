# shard: module=shard-local -- instances live and die inside one run/shard
"""Channel-facilitated popularity-based prefetching (Section IV-B).

While a node watches a fully downloaded video, it prefetches the first
chunks of the ``M`` most popular videos of the channel it is watching
(popularity published periodically by the server, which tracks per-video
view counts).  Because within-channel popularity is ~Zipf(s=1), a small
``M`` captures a large probability mass: the paper computes 26.2% for a
single prefetch in a 25-video channel and 54.6% for 3-4 prefetches (see
:func:`repro.core.model.prefetch_accuracy`).
"""

from __future__ import annotations

from typing import List, Set

from repro.net.server import CentralServer
from repro.trace.dataset import TraceDataset


class ChannelPrefetcher:
    """Ranks prefetch candidates for SocialTube nodes."""

    def __init__(self, dataset: TraceDataset, server: CentralServer, window: int = 3):
        """``window`` is M, the number of first chunks fetched per watch.

        "users prefetch the first chunks of 3 top popular videos within
        the channel it currently is watching" (Section V-B).
        """
        if window < 0:
            raise ValueError("window must be >= 0")
        self.dataset = dataset
        self.server = server
        self.window = window

    def candidates(
        self,
        channel_id: int,
        already_have: Set[int],
        currently_watching: int,
        count: int = None,
    ) -> List[int]:
        """Top-popularity videos of the channel worth prefetching.

        Skips the video being watched and anything already cached or
        prefetched; asks the server's popularity feed for a few extra
        entries so skips do not shrink the result below ``count``.
        """
        want = self.window if count is None else count
        if want <= 0:
            return []
        # Over-fetch to survive the skips.
        feed = self.server.top_videos_of_channel(
            channel_id, want + len(already_have) + 1
        )
        picks: List[int] = []
        for video_id in feed:
            if video_id == currently_watching or video_id in already_have:
                continue
            picks.append(video_id)
            if len(picks) >= want:
                break
        return picks

    def ranked_channel_videos(self, channel_id: int) -> List[int]:
        """Full popularity ranking of a channel (most viewed first)."""
        return self.server.top_videos_of_channel(
            channel_id, len(self.dataset.videos_of_channel(channel_id))
        )
