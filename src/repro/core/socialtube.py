# shard: module=shard-local -- instances live and die inside one run/shard
"""The SocialTube protocol (Section IV).

Ties together the two-level hierarchical structure, Algorithm 1's
search, and channel-facilitated prefetching behind the common
:class:`repro.baselines.protocol.VodProtocol` interface.

Algorithm 1 (per node ``u_i`` requesting video ``v_i``)::

    if no channel peers: ask server for peers (join); if channel
        overlay empty, server serves the video
    REQUEST(C_i, K_i):
        flood query with TTL over inner-links (channel peers C_i)
        if not found: flood with TTL through inter-links (category
            peers K_i), each forwarding inside its own channel overlay
        if still not found: request the video from the server
"""

from __future__ import annotations

from random import Random
from typing import List

from repro.baselines.protocol import VodProtocol
from repro.core.prefetch import ChannelPrefetcher
from repro.core.structure import HierarchicalStructure
from repro.net.message import ChunkSource, LookupResult
from repro.net.server import CentralServer
from repro.overlay.flood import ttl_flood
from repro.trace.dataset import TraceDataset


class SocialTubeProtocol(VodProtocol):
    """Interest-based per-community hierarchical P2P video sharing."""

    name = "SocialTube"
    uses_cache = True

    def __init__(
        self,
        dataset: TraceDataset,
        server: CentralServer,
        rng: Random,
        inner_link_limit: int = 5,
        inter_link_limit: int = 10,
        ttl: int = 2,
        prefetch_window: int = 3,
        enable_prefetch: bool = True,
    ):
        super().__init__(dataset, server, rng)
        self.ttl = ttl
        self.enable_prefetch = enable_prefetch
        self.structure = HierarchicalStructure(
            dataset,
            server,
            rng,
            inner_link_limit=inner_link_limit,
            inter_link_limit=inter_link_limit,
        )
        self.prefetcher = ChannelPrefetcher(dataset, server, window=prefetch_window)

    # -- helpers ------------------------------------------------------------

    def _is_alive(self, node_id: int) -> bool:
        peer = self.peers.get(node_id)
        return peer is not None and peer.online

    def _alive_neighbors(self, node_id: int, neighbors: List[int]) -> List[int]:
        """Filter dead neighbors, repairing links lazily (Section IV-A:
        failed neighbors are removed and replaced).

        A neighbor cut off by a network partition is *skipped*, not
        dropped: the peer is alive, only unreachable, and the link is
        live again the moment the partition heals.
        """
        alive = []
        for neighbor in neighbors:
            if not self._is_alive(neighbor):
                self.structure.drop_dead_neighbor(node_id, neighbor)
            elif self.can_reach(node_id, neighbor):
                alive.append(neighbor)
        return alive

    # -- lifecycle --------------------------------------------------------------

    def on_session_start(self, user_id: int) -> None:
        peer = self.state(user_id)
        peer.online = True
        self.server.node_online(user_id)
        # The node enters an overlay on its first video request of the
        # session (it does not know the channel yet); rejoin logic runs
        # in ensure_in_channel.

    def on_session_end(self, user_id: int) -> None:
        peer = self.state(user_id)
        self.structure.leave(user_id)
        peer.online = False
        self.server.node_offline(user_id)

    def on_crash(self, user_id: int) -> None:
        """Abrupt death: neighbors' links to the node stay dangling.

        Unlike :meth:`on_session_end`, the dead node sends no goodbye,
        so its inner/inter links linger in the survivors' tables until
        the repair sweep (or a survivor's own probe cycle) removes them
        -- the failure mode Section IV-A's probe cycle exists to heal.
        """
        peer = self.state(user_id)
        self.structure.crash(user_id)
        peer.online = False
        self.server.node_offline(user_id)

    def repair_after_crash(self, user_id: int) -> int:
        """Sweep the dead node's dangling links; survivors re-link.

        Returns the number of surviving neighbors repaired.  A no-op
        when the node rejoined before the repair window elapsed (its
        old links are live again).
        """
        return self.structure.repair_crashed(user_id, self._is_alive)

    def ensure_in_channel(self, user_id: int, channel_id: int) -> None:
        """Place the node in the right channel overlay before a request."""
        current = self.structure.current_channel(user_id)
        if current == channel_id:
            return
        if current is None:
            # First request after login: try previous neighbors first.
            self.structure.rejoin(user_id, channel_id, self._is_alive)
        else:
            self.structure.enter_channel(user_id, channel_id, self._is_alive)

    # -- Algorithm 1 -----------------------------------------------------------------

    def locate(self, user_id: int, video_id: int) -> LookupResult:
        # Joining the channel overlay happens on every request -- even a
        # cache hit keeps the node registered where other subscribers
        # can find it and its cache.
        channel_id = self.dataset.channel_of_video(video_id)
        self.ensure_in_channel(user_id, channel_id)

        peer = self.state(user_id)
        if peer.has_video(video_id):
            return LookupResult(video_id=video_id, from_cache=True)

        # Phase 1: flood the channel overlay over inner-links.
        inner = self._alive_neighbors(user_id, self.structure.inner_neighbors(user_id))
        with self.tracer.span(
            "flood.search", node=user_id, video=video_id, level="inner"
        ):
            result = ttl_flood(
                requester=user_id,
                start_neighbors=inner,
                neighbors_of=lambda n: self._alive_neighbors(
                    n, self.structure.inner_neighbors(n)
                ),
                is_holder=lambda n: self.is_online_holder(n, video_id),
                ttl=self.ttl,
                tracer=self.tracer,
            )
        if result.success:
            self.structure.adopt_inner_provider(user_id, result.found)
            return LookupResult(
                video_id=video_id,
                provider_id=result.found,
                hops=result.hops,
                peers_contacted=result.contacted,
                query_path=result.path,
            )
        contacted = result.contacted

        # Phase 2: forward through inter-links; each inter-neighbor
        # floods inside its own channel overlay with a fresh TTL
        # ("Within each channel overlay, the request is forwarded along
        # TTL hops"), so total depth is 1 (the inter hop) + TTL.
        inter = self._alive_neighbors(user_id, self.structure.inter_neighbors(user_id))
        with self.tracer.span(
            "flood.search", node=user_id, video=video_id, level="inter"
        ):
            result = ttl_flood(
                requester=user_id,
                start_neighbors=inter,
                neighbors_of=lambda n: self._alive_neighbors(
                    n, self.structure.inner_neighbors(n)
                ),
                is_holder=lambda n: self.is_online_holder(n, video_id),
                ttl=self.ttl + 1,
                tracer=self.tracer,
            )
        if result.success:
            self.structure.adopt_inter_provider(user_id, result.found)
            return LookupResult(
                video_id=video_id,
                provider_id=result.found,
                hops=result.hops,
                peers_contacted=contacted + result.contacted,
                via_inter_link=True,
                query_path=result.path,
            )
        contacted += result.contacted

        # Phase 3: the channel overlay was empty (the node is alone in
        # it), so the join assist applies: the server recommends "a node
        # in each channel overlay (including a node with the video) in
        # the higher-level overlay of the video's interest".
        if len(self.server.channel_members(channel_id)) <= 1:
            category_id = self.dataset.category_of_channel(channel_id)
            holder = self.server.find_holder_in_category(
                category_id,
                # The tracker sees both partition sides; a referral the
                # requester cannot reach is worthless, so reachability
                # joins the holder predicate.
                is_holder=lambda n: self.can_reach(user_id, n)
                and self.is_online_holder(n, video_id),
                exclude=user_id,
            )
            if holder is not None:
                self.structure.adopt_inter_provider(user_id, holder)
                return LookupResult(
                    video_id=video_id,
                    provider_id=holder,
                    hops=1,
                    peers_contacted=contacted + 1,
                    via_inter_link=True,
                )

        # Phase 4: the server serves the video.
        return LookupResult(
            video_id=video_id,
            from_server=True,
            hops=2 * self.ttl,  # both levels were exhausted
            peers_contacted=contacted,
        )

    def on_maintenance(self, user_id: int) -> None:
        """Probe-cycle repair: drop dead neighbors, top links back up."""
        if self.state(user_id).online:
            self.structure.maintain(user_id, self._is_alive)

    def reannounce(self, user_id: int) -> int:
        """Tracker recovery: re-file presence plus channel membership.

        SocialTube's tracker state is cheap by design (Section IV-A:
        subscription reports, not per-video watch reports), so recovery
        is one presence report plus one channel-membership report for
        the overlay the node currently occupies.
        """
        count = super().reannounce(user_id)
        if not count:
            return 0
        channel = self.structure.current_channel(user_id)
        if channel is not None:
            self.server.register_channel_member(channel, user_id)
            count += 1
        return count

    # -- prefetching --------------------------------------------------------------------

    def select_prefetch(self, user_id: int, video_id: int, count: int) -> List[int]:
        """Top-popularity videos of the channel currently being watched."""
        if not self.enable_prefetch:
            return []
        peer = self.state(user_id)
        channel_id = self.dataset.channel_of_video(video_id)
        already = set(peer.cache) | set(peer.prefetched.video_ids())
        return self.prefetcher.candidates(
            channel_id,
            already_have=already,
            currently_watching=video_id,
            count=count,
        )

    def prefetch_source(self, user_id: int, video_id: int) -> ChunkSource:
        """First chunks come from a neighbor when one holds the video."""
        for neighbor in self.structure.inner_neighbors(user_id):
            if self.is_online_holder(neighbor, video_id):
                return ChunkSource.PREFETCH_PEER
        for neighbor in self.structure.inter_neighbors(user_id):
            if self.is_online_holder(neighbor, video_id):
                return ChunkSource.PREFETCH_PEER
        return ChunkSource.PREFETCH_SERVER

    # -- metrics -------------------------------------------------------------------------

    def link_count(self, user_id: int) -> int:
        return self.structure.link_count(user_id)
