# shard: module=shard-local -- instances live and die inside one run/shard
"""The interest-based per-community two-level overlay (Section IV-A).

Lower level: the subscribers/viewers currently engaged with a channel
form that channel's overlay; a node keeps at most ``N_l`` *inner-links*
there.  Higher level: nodes watching channels of the same interest
category are clustered; a node keeps at most ``N_h`` *inter-links* to
nodes in *other* channels of its current category.

Following the paper's example (Fig 14): a node is "in" one channel at a
time (the channel it is currently watching); when it moves to a channel
in the same category its inter-links persist, and when it moves to a
different category it maintains "no links to users outside of his/her
channel or category", so stale inter-links are dropped.

Joining (Section IV-A): the server hands the newcomer one random member
of the channel overlay plus one random member of each other channel in
the category; further links accrete from successful searches ("u9
connects to the video provider ... until the number reaches N_l").
"""

from __future__ import annotations

from random import Random
from typing import Callable, Dict, List, Optional, Set

from repro.net.server import CentralServer
from repro.overlay.links import LinkTable
from repro.trace.dataset import TraceDataset


class HierarchicalStructure:
    """Manages inner/inter link state for every SocialTube node."""

    def __init__(
        self,
        dataset: TraceDataset,
        server: CentralServer,
        rng: Random,
        inner_link_limit: int = 5,
        inter_link_limit: int = 10,
        bootstrap_inner_links: int = 3,
        bootstrap_inter_links: Optional[int] = None,
    ):
        if inner_link_limit < 1 or inter_link_limit < 1:
            raise ValueError("link limits must be >= 1")
        if bootstrap_inter_links is None:
            # The join procedure hands the newcomer "a node in each
            # channel in this channel's higher-level overlay", i.e. the
            # category level is populated up to N_h right away.
            bootstrap_inter_links = inter_link_limit
        if bootstrap_inner_links < 0 or bootstrap_inter_links < 0:
            raise ValueError("bootstrap link counts must be >= 0")
        self.dataset = dataset
        self.server = server
        self.rng = rng
        self.inner_link_limit = inner_link_limit
        self.inter_link_limit = inter_link_limit
        self.bootstrap_inner_links = min(bootstrap_inner_links, inner_link_limit)
        self.bootstrap_inter_links = min(bootstrap_inter_links, inter_link_limit)
        self.inner = LinkTable(inner_link_limit)
        self.inter = LinkTable(inter_link_limit)
        #: The channel overlay each node currently belongs to.
        self.channel_of: Dict[int, Optional[int]] = {}
        #: Remembered neighbors for reconnection after an off period
        #: ("The next time when the node logs in, it first tries to
        #: connect to its previous neighbors").
        self._previous_inner: Dict[int, List[int]] = {}
        self._previous_inter: Dict[int, List[int]] = {}
        #: Nodes that crashed abruptly and whose dangling links await
        #: the crash-repair sweep.  The invariant checker tolerates
        #: violations involving these nodes (an in-flight repair is not
        #: a corrupted structure); see repro.lint.invariants.
        self.pending_repairs: Set[int] = set()

    # -- queries -----------------------------------------------------------

    def current_channel(self, node_id: int) -> Optional[int]:
        return self.channel_of.get(node_id)

    def current_category(self, node_id: int) -> Optional[int]:
        channel = self.channel_of.get(node_id)
        if channel is None:
            return None
        return self.dataset.category_of_channel(channel)

    def inner_neighbors(self, node_id: int) -> List[int]:
        return self.inner.neighbors(node_id)

    def inter_neighbors(self, node_id: int) -> List[int]:
        return self.inter.neighbors(node_id)

    def link_count(self, node_id: int) -> int:
        """Total links the node maintains (the Fig 18 metric)."""
        return self.inner.degree(node_id) + self.inter.degree(node_id)

    # -- joining / leaving ------------------------------------------------------

    def enter_channel(
        self,
        node_id: int,
        channel_id: int,
        is_alive: Callable[[int], bool],
    ) -> None:
        """Move a node into a channel overlay (join or channel switch).

        Switching within the same category *demotes* the old inner-links
        to inter-links instead of dropping them: the old neighbors are
        now nodes in a different channel of the node's category, exactly
        what inter-links are (this is how Fig 18's SocialTube curve
        stays ~constant at N_l + N_h after the initial phase).  Moving
        to a different category drops everything -- "u9 maintains no
        links to users outside of his/her channel or category".

        ``is_alive`` filters remembered neighbors that are no longer
        online (lazy failure detection).  Re-entering the current
        channel is a no-op.
        """
        previous = self.channel_of.get(node_id)
        if previous == channel_id:
            return
        new_category = self.dataset.category_of_channel(channel_id)
        if previous is not None:
            if self.dataset.category_of_channel(previous) == new_category:
                self._demote_inner_links(node_id, is_alive)
                self.server.unregister_channel_member(previous, node_id)
            else:
                self._leave_channel_level(node_id)
                self._leave_category_level(node_id)
        self.channel_of[node_id] = channel_id
        self._register(node_id, channel_id)
        self._bootstrap_inner(node_id, channel_id, is_alive)
        self._bootstrap_inter(node_id, channel_id, new_category, is_alive)

    def _demote_inner_links(
        self, node_id: int, is_alive: Callable[[int], bool]
    ) -> None:
        """Turn the node's inner-links into inter-links (same category)."""
        for neighbor in self.inner.neighbors(node_id):
            self.inner.disconnect(node_id, neighbor)
            if not is_alive(neighbor):
                continue
            if self.inter.degree(node_id) < self.inter_link_limit:
                self.inter.connect(node_id, neighbor, evict=True)

    def leave(self, node_id: int) -> None:
        """Graceful departure: notify and drop all links, remember them."""
        self._previous_inner[node_id] = self.inner.neighbors(node_id)
        self._previous_inter[node_id] = self.inter.neighbors(node_id)
        channel = self.channel_of.get(node_id)
        if channel is not None:
            self.server.unregister_channel_member(channel, node_id)
        self.inner.drop_all(node_id)
        self.inter.drop_all(node_id)
        self.channel_of[node_id] = None

    def crash(self, node_id: int) -> None:
        """Abrupt departure: the node vanishes *without* notifying anyone.

        Unlike :meth:`leave`, the link tables are left intact -- every
        surviving neighbor still holds a link to the dead node (the
        dangling-link state the paper's probe cycle detects).  The
        tracker forgets the node immediately (its lease lapses via
        ``server.node_offline``, handled by the protocol), but peer link
        state heals only when :meth:`repair_crashed` runs at the end of
        the repair window.  Previous-neighbor memory is still recorded
        so the node can attempt reconnection on its next session.
        """
        self._previous_inner[node_id] = self.inner.neighbors(node_id)
        self._previous_inter[node_id] = self.inter.neighbors(node_id)
        channel = self.channel_of.get(node_id)
        if channel is not None:
            self.server.unregister_channel_member(channel, node_id)
        self.channel_of[node_id] = None
        self.pending_repairs.add(node_id)

    def repair_crashed(
        self, node_id: int, is_alive: Callable[[int], bool]
    ) -> int:
        """Crash-repair sweep: survivors shed the dead link and re-link.

        Runs one repair window after :meth:`crash`.  Every surviving
        neighbor drops its link to the dead node and tops its budget
        back up through the regular maintenance path (which respects
        the ``N_l``/``N_h`` bounds by construction).  The dead node's
        own rows are cleared last.  Returns the number of surviving
        neighbors repaired; idempotent, and a no-op for nodes that
        were never crashed (or already repaired).
        """
        if node_id not in self.pending_repairs:
            return 0  # never crashed, already repaired, or rejoined since
        repaired = 0
        for table in (self.inner, self.inter):
            for neighbor in table.neighbors(node_id):
                table.disconnect(node_id, neighbor)
                if is_alive(neighbor):
                    self.maintain(neighbor, is_alive)
                    repaired += 1
        self.inner.drop_all(node_id)
        self.inter.drop_all(node_id)
        self.pending_repairs.discard(node_id)
        return repaired

    def rejoin(
        self,
        node_id: int,
        channel_id: int,
        is_alive: Callable[[int], bool],
    ) -> bool:
        """Reconnect after an off period.

        Tries previous neighbors first; falls back to a server-assisted
        join when none survive.  Returns True when at least one previous
        neighbor was still alive (no server bootstrap was needed).
        """
        alive_inner = [
            n
            for n in self._previous_inner.get(node_id, [])
            if is_alive(n) and self.channel_of.get(n) == channel_id
        ]
        category = self.dataset.category_of_channel(channel_id)
        alive_inter = [
            n
            for n in self._previous_inter.get(node_id, [])
            if is_alive(n)
            and self.current_category(n) == category
            and self.channel_of.get(n) != channel_id
        ]
        if not alive_inner and not alive_inter:
            self.enter_channel(node_id, channel_id, is_alive)
            return False
        self.channel_of[node_id] = channel_id
        self._register(node_id, channel_id)
        for neighbor in alive_inner:
            if self.inner.degree(node_id) >= self.inner_link_limit:
                break
            self.inner.connect(node_id, neighbor, evict=True)
        for neighbor in alive_inter:
            if self.inter.degree(node_id) >= self.inter_link_limit:
                break
            self.inter.connect(node_id, neighbor, evict=True)
        # Top up whatever the surviving neighbors did not cover.
        self._bootstrap_inner(node_id, channel_id, is_alive)
        self._bootstrap_inter(node_id, channel_id, category, is_alive)
        return True

    # -- link accretion from successful searches ----------------------------------

    def adopt_inner_provider(self, node_id: int, provider_id: int) -> bool:
        """Connect to a provider found in the channel overlay.

        "u9 connects to the video provider and ... builds its links to
        other nodes in the lower-level channel overlay until the number
        reaches N_l."
        """
        if provider_id == node_id:
            return False
        if self.inner.degree(node_id) >= self.inner_link_limit:
            return False
        return self.inner.connect(node_id, provider_id, evict=True)

    def adopt_inter_provider(self, node_id: int, provider_id: int) -> bool:
        """Connect to a provider found through the category cluster.

        "u9 connects to u5 if the number of its inter-links is less
        than N_h."
        """
        if provider_id == node_id:
            return False
        if self.inter.degree(node_id) >= self.inter_link_limit:
            return False
        return self.inter.connect(node_id, provider_id, evict=True)

    # -- failure handling -----------------------------------------------------------

    def drop_dead_neighbor(self, node_id: int, neighbor_id: int) -> None:
        """Remove links to a neighbor found dead (lazy probe detection)."""
        self.inner.disconnect(node_id, neighbor_id)
        self.inter.disconnect(node_id, neighbor_id)

    # -- invariants --------------------------------------------------------------

    def check_invariants(self) -> List["InvariantViolation"]:
        """Validate the paper's structural invariants on the live overlay.

        Delegates to :func:`repro.lint.invariants.check_overlay`:
        ``N_l``/``N_h`` capacity bounds, link symmetry, no self-links,
        and no links held by or pointing at departed nodes.  Returns the
        violations (empty on a healthy structure); see
        :func:`repro.lint.invariants.install_invariant_hook` for the
        periodic in-sim variant that fails fast.
        """
        # Imported here so the core layer has no import-time dependency
        # on the lint tooling.
        from repro.lint.invariants import InvariantViolation, check_overlay

        return check_overlay(self)

    def assert_invariants(self) -> None:
        """Raise :class:`OverlayInvariantError` if any invariant is broken."""
        from repro.lint.invariants import OverlayInvariantError

        violations = self.check_invariants()
        if violations:
            raise OverlayInvariantError(violations)

    # -- internals ----------------------------------------------------------------------

    def _register(self, node_id: int, channel_id: int) -> None:
        self.server.register_channel_member(channel_id, node_id)
        # A crashed node that comes back before its repair window
        # elapsed is whole again: its old links are live links now, so
        # the pending sweep (keyed on this set) must become a no-op.
        self.pending_repairs.discard(node_id)

    def _leave_channel_level(self, node_id: int) -> None:
        channel = self.channel_of.get(node_id)
        if channel is not None:
            self.server.unregister_channel_member(channel, node_id)
        self.inner.drop_all(node_id)

    def _leave_category_level(self, node_id: int) -> None:
        self.inter.drop_all(node_id)

    def maintain(self, node_id: int, is_alive: Callable[[int], bool]) -> None:
        """Periodic neighbor maintenance (Section IV-A).

        "Each node periodically probes its neighbors.  If a node finds
        that its neighbors have left the system abruptly or have failed,
        it removes its links to these neighbors and adds more neighbors
        as described previously."  Probe *traffic* is modelled
        analytically (DESIGN.md section 5); this performs the repair:
        drop dead links, then top both levels back up.
        """
        channel_id = self.channel_of.get(node_id)
        if channel_id is None:
            return
        for neighbor in self.inner.neighbors(node_id):
            if not is_alive(neighbor):
                self.inner.disconnect(node_id, neighbor)
        for neighbor in self.inter.neighbors(node_id):
            if not is_alive(neighbor):
                self.inter.disconnect(node_id, neighbor)
        # Repair builds toward the full budgets ("u9 builds its links
        # ... until the number reaches N_l"), unlike the initial join
        # which starts from the server's few recommendations.
        self._bootstrap_inner(
            node_id, channel_id, is_alive, target=self.inner_link_limit
        )
        self._bootstrap_inter(
            node_id,
            channel_id,
            self.dataset.category_of_channel(channel_id),
            is_alive,
        )

    def _bootstrap_inner(
        self,
        node_id: int,
        channel_id: int,
        is_alive: Callable[[int], bool],
        target: Optional[int] = None,
    ) -> None:
        """Server-assisted inner links, retried past dead entries.

        The paper's join hands out one member and lets searches accrete
        the rest up to N_l; we bootstrap a few so the channel overlay is
        searchable immediately at sub-paper scales, and the maintenance
        cycle passes ``target=N_l`` to keep building.  Targets with
        spare capacity are preferred; eviction is the last resort
        (stealing a full node's oldest link shrinks the overlay's total
        edge count).
        """
        goal = self.bootstrap_inner_links if target is None else target
        goal = min(goal, self.inner_link_limit)
        want = goal - self.inner.degree(node_id)
        attempts = 0
        full_targets: List[int] = []
        while want > 0 and attempts < 4 * goal:
            attempts += 1
            pick = self.server.random_channel_member(channel_id, exclude=node_id)
            if pick is None:
                break
            if not is_alive(pick):
                self.server.unregister_channel_member(channel_id, pick)
                continue
            if self.inner.connect(node_id, pick, evict=False):
                want -= 1
            else:
                full_targets.append(pick)
        for pick in full_targets:
            if want <= 0:
                break
            if self.inner.connect(node_id, pick, evict=True):
                want -= 1

    def _bootstrap_inter(
        self,
        node_id: int,
        channel_id: int,
        category_id: int,
        is_alive: Callable[[int], bool],
    ) -> None:
        """Server-assisted inter links into other channels of the category."""
        budget = min(
            self.bootstrap_inter_links,
            self.inter_link_limit - self.inter.degree(node_id),
        )
        if budget <= 0:
            return
        picks = self.server.random_members_per_channel_in_category(
            category_id, exclude=node_id, limit=3 * budget
        )
        added = 0
        full_targets: List[int] = []
        for pick in picks:
            if added >= budget:
                break
            if pick == node_id or not is_alive(pick):
                continue
            if self.channel_of.get(pick) == channel_id:
                continue  # inter-links go to *other* channels
            if self.inter.connect(node_id, pick, evict=False):
                added += 1
            else:
                full_targets.append(pick)
        for pick in full_targets:
            if added >= budget:
                break
            if self.inter.connect(node_id, pick, evict=True):
                added += 1
