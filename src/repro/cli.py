"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``trace``      synthesize a trace and print the Section III analysis
``compare``    run the three protocols and print the comparison
``figures``    regenerate the Section V figures (15-18 + Table I)
``planetlab``  run the emulated PlanetLab testbed comparison
``lint``       determinism/invariant static analysis over the source tree
``profile``    run one protocol under the tracer; write a JSONL trace
               and print the profile summary (see docs/tracing.md)
``dashboard``  render the self-contained HTML time-series dashboard
               for one protocol or a protocol comparison
``regress``    compare fresh runs against the committed baselines
               under per-metric tolerance bands (CI's drift gate)
``chaos``      run one protocol under the demo fault plan (crash
               churn, query loss, slow peers, brownouts) and write the
               canonical recovery time-series (see docs/tracing.md)
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.analysis.clustering import build_channel_graph
from repro.analysis.figures import TraceAnalysis
from repro.experiments.config import SimulationConfig
from repro.experiments.figures import VARIANTS, EvaluationSuite
from repro.experiments.parallel import aggregate_sweep, run_sweep, sweep_specs
from repro.experiments.report import (
    render_ci_table,
    render_report,
    render_shape_checks,
    shape_checks,
)
from repro.planetlab.testbed import PlanetLabTestbed
from repro.trace.synthesizer import TraceConfig, synthesize_trace


def _parse_seeds(text: Optional[str]) -> Optional[List[int]]:
    """``"1,2,3"`` -> ``[1, 2, 3]``; None/empty passes through as None."""
    if not text:
        return None
    try:
        seeds = [int(part) for part in text.split(",") if part.strip()]
    except ValueError as exc:
        raise SystemExit(f"--seeds expects comma-separated integers: {exc}")
    if not seeds:
        raise SystemExit("--seeds expects at least one integer")
    return seeds


def _run_flags_parent() -> argparse.ArgumentParser:
    """The shared flag surface of every run-executing subcommand.

    ``compare``, ``figures``, ``profile``, ``chaos``, ``dashboard`` and
    ``regress`` all attach this parent, so ``--seed/--seeds/--jobs/
    --shards/--workers`` carry the same spelling and help text
    everywhere instead of drifting per-subcommand copies.  ``--seed`` defaults to
    ``argparse.SUPPRESS`` so a subcommand-position ``--seed`` overrides
    the top-level one without clobbering its default when absent.
    """
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument(
        "--seed", type=int, default=argparse.SUPPRESS,
        help="RNG seed (also accepted before the subcommand; default 2014)",
    )
    parent.add_argument(
        "--seeds", default=None,
        help="comma-separated seed list for a multi-seed sweep (e.g. 1,2,3)",
    )
    parent.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes (1 = serial, the default); results are "
        "byte-identical for any value",
    )
    parent.add_argument(
        "--shards", type=int, default=1,
        help="community-partitioned shards per run (1 = classic engine); "
        "the determinism gate makes output byte-identical for any value",
    )
    parent.add_argument(
        "--workers", type=int, default=1,
        help="worker processes for shard-lane scale-out (1 = in-process); "
        "byte-identical output for any value (see docs/scaling.md)",
    )
    return parent


def _single_seed(args: argparse.Namespace, command: str) -> int:
    """The one seed of a single-run command.

    These commands replay exactly one trajectory, so ``--seeds`` is only
    accepted as an alias for ``--seed`` when it names a single value.
    """
    seeds = _parse_seeds(args.seeds)
    if seeds is None:
        return args.seed
    if len(seeds) > 1:
        raise SystemExit(
            f"{command} replays one seed per invocation; "
            f"pass --seed N (got --seeds {args.seeds})"
        )
    return seeds[0]


def _cmd_trace(args: argparse.Namespace) -> int:
    config = TraceConfig(seed=args.seed)
    dataset = synthesize_trace(config)
    print(dataset.summary())
    analysis = TraceAnalysis(dataset)
    for figure in analysis.all_figures():
        print("\n".join(figure.render_rows(max_rows=8)))
    graph = build_channel_graph(dataset, threshold=args.threshold, per_category=5)
    print(
        f"Fig 10: channel graph -- {graph.num_nodes} nodes, {graph.num_edges} edges, "
        f"intra-category edge fraction {graph.intra_category_edge_fraction():.3f}"
    )
    print("Observations:", analysis.check_observations())
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    config = (
        SimulationConfig.smoke_scale(seed=args.seed)
        if args.quick
        else SimulationConfig.default_scale(seed=args.seed)
    )
    seeds = _parse_seeds(args.seeds)
    specs = sweep_specs(
        ("pavod", "nettube", "socialtube"), config, seeds=seeds,
        shards=args.shards, workers=args.workers,
    )
    results = run_sweep(specs, jobs=args.jobs)
    if seeds and len(seeds) > 1:
        aggregates = aggregate_sweep(specs, results)
        for aggregate in aggregates:
            print("\n".join(aggregate.render_rows()))
            print()
        print(render_ci_table(aggregates))
    else:
        for result in results:
            print("\n".join(result.render_rows()))
            print()
    return 0


def _cmd_figures(args: argparse.Namespace) -> int:
    seeds = _parse_seeds(args.seeds)
    suite = EvaluationSuite(
        config=(
            SimulationConfig.smoke_scale(seed=args.seed)
            if args.quick
            else SimulationConfig.default_scale(seed=args.seed)
        ),
        seeds=seeds,
        jobs=args.jobs,
        shards=args.shards,
        workers=args.workers,
    )
    environments = ("peersim",) if args.quick else ("peersim", "planetlab")
    suite.warm(environments=environments)
    print(render_report(suite.all_figures(environments=environments)))
    print(render_shape_checks(shape_checks(suite)))
    if seeds and len(seeds) > 1:
        aggregates = [
            suite.result(label, environments[0])
            for label, _name, _overrides in VARIANTS
        ]
        print(render_ci_table(aggregates))
    return 0


def _cmd_export(args: argparse.Namespace) -> int:
    from repro.experiments.export import export_all

    dataset = synthesize_trace(TraceConfig(seed=args.seed))
    analysis = TraceAnalysis(dataset)
    suite = EvaluationSuite(
        config=(
            SimulationConfig.smoke_scale(seed=args.seed)
            if args.quick
            else SimulationConfig.default_scale(seed=args.seed)
        )
    )
    environments = ("peersim",) if args.quick else ("peersim", "planetlab")
    written = export_all(
        analysis.all_figures(),
        suite.all_figures(environments=environments),
        args.outdir,
    )
    for path in written:
        print(path)
    print(f"wrote {len(written)} artifacts to {args.outdir}")
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.lint.ast_rules import RULE_DESCRIPTIONS
    from repro.lint.explain import explain_rule
    from repro.lint.runner import run_lint

    if args.list_rules:
        for rule_id in sorted(RULE_DESCRIPTIONS):
            print(f"{rule_id}: {RULE_DESCRIPTIONS[rule_id]}")
        return 0
    if args.explain:
        text = explain_rule(args.explain)
        if text is None:
            print(f"unknown rule id {args.explain!r}; see --list-rules")
            return 2
        print(text)
        return 0
    output_format = "json" if args.json else args.format
    return run_lint(
        paths=args.paths or None,
        output_format=output_format,
        baseline_path=args.baseline,
        use_baseline=not args.no_baseline,
        update_baseline=args.update_baseline,
    )


def _cmd_profile(args: argparse.Namespace) -> int:
    import os

    from repro.experiments.spec import ExperimentSpec
    from repro.obs.export import (
        render_profile,
        run_profiled,
        trace_filename,
        write_trace,
    )

    seed = _single_seed(args, "profile")
    config = (
        SimulationConfig.default_scale(seed=seed)
        if args.full
        else SimulationConfig.smoke_scale(seed=seed)
    )
    spec = ExperimentSpec(
        protocol=args.protocol, config=config, environment=args.environment,
        shards=args.shards, workers=args.workers,
    )
    profiled = run_profiled(spec, jobs=args.jobs)
    path = os.path.join(args.outdir, trace_filename(spec))
    write_trace(path, profiled.jsonl)
    print(render_profile(profiled.summary))
    # Pool/shard attribution rides next to the profile (never inside
    # the byte-parity surface); jobs>1 runs lose the in-process result
    # object, so the report is only available on the serial path.
    if profiled.result is not None and profiled.result.shard_report is not None:
        print("\n".join(profiled.result.shard_report.render_rows()))
    print(f"trace: {path} ({len(profiled.jsonl)} bytes)")
    return 0


def _cmd_perf(args: argparse.Namespace) -> int:
    import os

    from repro.experiments.spec import ExperimentSpec
    from repro.obs.export import trace_filename, write_trace
    from repro.obs.perf_report import (
        perf_filename,
        perf_report_to_json_bytes,
        render_perf_report,
        run_perf,
    )

    seed = _single_seed(args, "perf")
    config = (
        SimulationConfig.default_scale(seed=seed)
        if args.full
        else SimulationConfig.smoke_scale(seed=seed)
    )
    spec = ExperimentSpec(
        protocol=args.protocol, config=config, environment=args.environment,
        shards=args.shards, workers=args.workers,
    )
    run = run_perf(spec, top_k=args.top)
    payload = perf_report_to_json_bytes(run.report)
    path = write_trace(os.path.join(args.outdir, perf_filename(spec)), payload)
    print(render_perf_report(run.report))
    if args.trace_out:
        trace_path = write_trace(
            os.path.join(args.trace_out, trace_filename(spec)), run.jsonl
        )
        print(f"trace: {trace_path} ({len(run.jsonl)} bytes)")
    print(f"perf report: {path} ({len(payload)} bytes)")
    return 0


def _cmd_dashboard(args: argparse.Namespace) -> int:
    import os

    from repro.experiments.spec import ExperimentSpec
    from repro.obs.report import (
        collect_dashboard_runs,
        dashboard_filename,
        render_dashboard,
        write_dashboard,
    )

    seed = _single_seed(args, "dashboard")
    config = (
        SimulationConfig.default_scale(seed=seed)
        if args.full
        else SimulationConfig.smoke_scale(seed=seed)
    )
    protocols = [args.protocol]
    for name in args.compare or ():
        if name not in protocols:
            protocols.append(name)
    specs = [
        ExperimentSpec(
            protocol=name, config=config, environment=args.environment,
            shards=args.shards, workers=args.workers,
        )
        for name in protocols
    ]
    runs = collect_dashboard_runs(specs, window_s=args.window, jobs=args.jobs)
    content = render_dashboard(runs, window_s=args.window)
    path = args.out or os.path.join(args.outdir, dashboard_filename(runs))
    write_dashboard(path, content)
    print(f"dashboard: {path} ({len(content)} bytes, {len(runs)} run(s))")
    return 0


def _chaos_worker(task) -> "tuple":
    """Pool worker: one fault-injected spec -> (canonical table bytes, report)."""
    from repro.experiments.trace_cache import shared_trace_cache
    from repro.obs.timeseries import run_with_timeseries

    spec, window_s = task
    run = run_with_timeseries(
        spec,
        window_s=window_s,
        dataset=shared_trace_cache.dataset_for(spec.config.trace),
    )
    return run.table.to_canonical_json(), "\n".join(run.result.render_rows())


def _cmd_chaos(args: argparse.Namespace) -> int:
    import multiprocessing
    import os

    from repro.experiments.spec import ExperimentSpec
    from repro.faults.grid import family_plan
    from repro.faults.plan import FaultPlan

    seed = _single_seed(args, "chaos")
    if args.grid:
        from repro.faults.grid import grid_to_json_bytes, render_grid, run_grid

        scale = "default" if args.full else "smoke"
        cells = run_grid(
            seed=seed,
            scale=scale,
            jobs=args.jobs,
            shards=args.shards,
            workers=args.workers,
            protocols=(args.protocol,) if args.protocol else None,
        )
        payload = grid_to_json_bytes(cells, seed=seed, scale=scale)
        path = args.out or os.path.join(
            args.outdir, f"resilience_grid_{seed}.json"
        )
        parent = os.path.dirname(path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        with open(path, "wb") as handle:
            handle.write(payload)
        print(render_grid(cells))
        print(f"grid: {path} ({len(payload)} bytes)")
        return 0
    if args.protocol is None:
        raise SystemExit("chaos needs a protocol (or --grid for the full grid)")
    config = (
        SimulationConfig.default_scale(seed=seed)
        if args.full
        else SimulationConfig.smoke_scale(seed=seed)
    )
    try:
        plan = family_plan(args.family) if args.family else FaultPlan.demo()
    except ValueError as exc:
        raise SystemExit(str(exc))
    spec = ExperimentSpec(
        protocol=args.protocol, config=config, environment=args.environment,
        shards=args.shards, workers=args.workers,
    ).with_faults(plan)
    task = (spec, args.window)
    if args.jobs > 1:
        with multiprocessing.Pool(processes=min(args.jobs, 2)) as pool:
            payload, report = pool.map(_chaos_worker, [task], chunksize=1)[0]
    else:
        payload, report = _chaos_worker(task)
    path = args.out or os.path.join(
        args.outdir, f"chaos_{spec.protocol}_{spec.content_hash()[:16]}.json"
    )
    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    with open(path, "wb") as handle:
        handle.write(payload)
    print(report)
    print(f"timeseries: {path} ({len(payload)} bytes)")
    return 0


def _cmd_regress(args: argparse.Namespace) -> int:
    from repro.obs.baseline import run_regression

    if args.seeds:
        raise SystemExit(
            "regress re-runs the committed baseline seeds; --seeds has no "
            "effect (update the baseline files to change them)"
        )
    return run_regression(
        baseline_dir=args.baselines,
        jobs=args.jobs,
        strict=args.strict,
        update=args.update,
        quick=args.quick,
        shards=args.shards,
        workers=args.workers,
    )


def _cmd_planetlab(args: argparse.Namespace) -> int:
    testbed = PlanetLabTestbed()
    for name in ("pavod", "nettube", "socialtube"):
        result = testbed.run(name)
        print("\n".join(result.render_rows()))
        print()
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SocialTube (ICDCS 2014) reproduction harness",
    )
    parser.add_argument("--seed", type=int, default=2014, help="master RNG seed")
    sub = parser.add_subparsers(dest="command", required=True)
    run_flags = _run_flags_parent()

    p_trace = sub.add_parser("trace", help="trace synthesis + Section III analysis")
    p_trace.add_argument("--threshold", type=int, default=20)
    p_trace.set_defaults(func=_cmd_trace)

    p_compare = sub.add_parser(
        "compare", help="three-protocol comparison", parents=[run_flags]
    )
    p_compare.add_argument("--quick", action="store_true", help="tiny scale")
    p_compare.set_defaults(func=_cmd_compare)

    p_figures = sub.add_parser(
        "figures", help="regenerate Section V figures", parents=[run_flags]
    )
    p_figures.add_argument("--quick", action="store_true", help="tiny scale")
    p_figures.set_defaults(func=_cmd_figures)

    p_pl = sub.add_parser("planetlab", help="emulated PlanetLab comparison")
    p_pl.set_defaults(func=_cmd_planetlab)

    p_lint = sub.add_parser(
        "lint", help="determinism & overlay-invariant static analysis"
    )
    p_lint.add_argument(
        "paths",
        nargs="*",
        help="files/directories to lint (default: the installed repro package)",
    )
    p_lint.add_argument(
        "--format", choices=("text", "json"), default="text", help="output format"
    )
    p_lint.add_argument(
        "--json", action="store_true", help="shorthand for --format json"
    )
    p_lint.add_argument(
        "--list-rules", action="store_true", help="print every rule id and exit"
    )
    p_lint.add_argument(
        "--explain", metavar="RULE",
        help="print the long-form explanation for one rule id and exit",
    )
    p_lint.add_argument(
        "--baseline", default=None,
        help="explicit baseline file (default: discover tools/lint_baseline.json "
        "above the lint root)",
    )
    p_lint.add_argument(
        "--no-baseline", action="store_true",
        help="report every finding, ignoring the checked-in baseline",
    )
    p_lint.add_argument(
        "--update-baseline", action="store_true",
        help="rewrite the baseline from the current finding set and exit 0",
    )
    p_lint.set_defaults(func=_cmd_lint)

    p_profile = sub.add_parser(
        "profile", help="traced run: JSONL trace + profile summary",
        parents=[run_flags],
    )
    p_profile.add_argument(
        "protocol", choices=("socialtube", "nettube", "pavod"),
        help="protocol stack to profile",
    )
    p_profile.add_argument(
        "--environment", default="peersim", help="named environment (see config)"
    )
    p_profile.add_argument(
        "--full", action="store_true",
        help="profile at the paper's full scale (default: smoke scale)",
    )
    p_profile.add_argument(
        "--outdir", default="traces_out", help="directory for the JSONL trace"
    )
    p_profile.set_defaults(func=_cmd_profile)

    p_perf = sub.add_parser(
        "perf", help="wall-clock perf report: throughput, hotspots, lanes",
        parents=[run_flags],
    )
    p_perf.add_argument(
        "protocol", choices=("socialtube", "nettube", "pavod"),
        help="protocol stack to measure",
    )
    p_perf.add_argument(
        "--environment", default="peersim", help="named environment (see config)"
    )
    p_perf.add_argument(
        "--full", action="store_true",
        help="measure at the paper's full scale (default: smoke scale)",
    )
    p_perf.add_argument(
        "--outdir", default="perf_out", help="directory for the JSON perf report"
    )
    p_perf.add_argument(
        "--trace-out", default=None, metavar="DIR",
        help="also write the run's canonical trace JSONL (byte-identical "
        "to 'repro profile' output; the perf-smoke CI job diffs them)",
    )
    p_perf.add_argument(
        "--top", type=int, default=10, help="hotspot table size (default 10)"
    )
    p_perf.set_defaults(func=_cmd_perf)

    p_dash = sub.add_parser(
        "dashboard", help="self-contained HTML time-series dashboard",
        parents=[run_flags],
    )
    p_dash.add_argument(
        "protocol", choices=("socialtube", "nettube", "pavod"),
        help="primary protocol to render",
    )
    p_dash.add_argument(
        "--compare", nargs="*", choices=("socialtube", "nettube", "pavod"),
        default=(), help="additional protocols overlaid on every chart",
    )
    p_dash.add_argument(
        "--environment", default="peersim", help="named environment (see config)"
    )
    p_dash.add_argument(
        "--full", action="store_true",
        help="render at the paper's full scale (default: smoke scale)",
    )
    p_dash.add_argument(
        "--window", type=float, default=600.0,
        help="window width in virtual seconds (default: 600)",
    )
    p_dash.add_argument(
        "--outdir", default="dashboard_out", help="directory for the HTML file"
    )
    p_dash.add_argument(
        "--out", default=None, help="explicit output path (overrides --outdir)"
    )
    p_dash.set_defaults(func=_cmd_dashboard)

    p_regress = sub.add_parser(
        "regress", help="compare fresh runs against committed metric baselines",
        parents=[run_flags],
    )
    p_regress.add_argument(
        "--baselines", default="baselines", help="baseline directory"
    )
    p_regress.add_argument(
        "--quick", action="store_true", help="only the smoke-scale baselines"
    )
    p_regress.add_argument(
        "--strict", action="store_true",
        help="treat series-digest drift as a failure, not a warning",
    )
    p_regress.add_argument(
        "--update", action="store_true",
        help="rewrite the baseline files from fresh runs",
    )
    p_regress.set_defaults(func=_cmd_regress)

    p_chaos = sub.add_parser(
        "chaos", help="fault-injected run: crash churn + mid-stream failover",
        parents=[run_flags],
    )
    p_chaos.add_argument(
        "protocol", nargs="?", choices=("socialtube", "nettube", "pavod"),
        help="protocol stack to run under the fault plan (optional with "
        "--grid, where it restricts the grid to one protocol)",
    )
    p_chaos.add_argument(
        "--family",
        choices=(
            "community_crash", "tracker_outage", "partition", "flash_crowd",
            "infra",
        ),
        default=None,
        help="run one infrastructure fault family's demo scenario instead "
        "of the classic crash-churn plan ('infra' staggers all four)",
    )
    p_chaos.add_argument(
        "--grid", action="store_true",
        help="run the full resilience grid (protocols x fault families) "
        "and write the degradation scorecard JSON",
    )
    p_chaos.add_argument(
        "--environment", default="peersim", help="named environment (see config)"
    )
    p_chaos.add_argument(
        "--full", action="store_true",
        help="run at the paper's full scale (default: smoke scale)",
    )
    p_chaos.add_argument(
        "--window", type=float, default=600.0,
        help="window width in virtual seconds (default: 600)",
    )
    p_chaos.add_argument(
        "--outdir", default="chaos_out", help="directory for the series JSON"
    )
    p_chaos.add_argument(
        "--out", default=None, help="explicit output path (overrides --outdir)"
    )
    p_chaos.set_defaults(func=_cmd_chaos)

    p_export = sub.add_parser("export", help="export all figures as CSV/JSON")
    p_export.add_argument("--outdir", default="figures_out")
    p_export.add_argument("--quick", action="store_true", help="tiny scale")
    p_export.set_defaults(func=_cmd_export)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
