"""The emulated PlanetLab testbed (Section V, second environment).

Bundles the WAN environment with the paper's PlanetLab-scale
configuration (250 nodes, 6 categories x 10 channels x 40 videos, 50
sessions per user, 2-minute mean off time) and exposes one call that
runs a protocol on it.

Fidelity notes: the paper attributes the baselines' zero 1st-percentile
peer bandwidth partly to "the unstable network environment on
PlanetLab (e.g., connection failure and network congestion)"; the
emulation injects exactly those two pathologies via
:class:`repro.net.latency.WanLatencyModel` (congestion episodes) and
the environment's ``peer_failure_prob`` (connection failures).
"""

from __future__ import annotations

from typing import Optional

from repro.experiments.config import (
    Environment,
    SimulationConfig,
    planetlab_environment,
)
from repro.experiments.registry import resolve_params
from repro.experiments.runner import ExperimentResult, ExperimentRunner
from repro.experiments.spec import ExperimentSpec


class PlanetLabTestbed:
    """Convenience front-end for WAN-environment experiments."""

    def __init__(
        self,
        config: Optional[SimulationConfig] = None,
        environment: Optional[Environment] = None,
    ):
        self.config = config or SimulationConfig.planetlab_scale()
        #: The Environment object; custom testbeds may inject their own,
        #: which overrides the spec's registered "planetlab" factory.
        self.environment = environment or planetlab_environment()

    def run(self, protocol_name: str, **protocol_overrides) -> ExperimentResult:
        """Deploy one protocol on the testbed and run the experiment.

        ``protocol_name`` is one of ``"socialtube"``, ``"nettube"``,
        ``"pavod"``; overrides are forwarded to the protocol
        constructor (e.g. ``enable_prefetch=False``).
        """
        spec = ExperimentSpec(
            protocol=protocol_name,
            config=self.config,
            environment="planetlab",
            params=resolve_params(
                protocol_name, self.config, protocol_overrides or None
            ),
        )
        runner = ExperimentRunner(spec, environment=self.environment)
        return runner.run()

    def compare_protocols(self, names=("pavod", "socialtube", "nettube")):
        """Run several protocols on identical workload seeds."""
        return {name: self.run(name) for name in names}
