"""Emulated PlanetLab wide-area testbed.

The paper's second evaluation environment is 250 globally distributed
PlanetLab nodes.  PlanetLab is retired; we emulate its defining
characteristics on the same event engine (see DESIGN.md section 2):
continent-scale latencies with heavy jitter, congestion episodes, and
transient peer connection failures.
"""

from repro.planetlab.testbed import PlanetLabTestbed

__all__ = ["PlanetLabTestbed"]
