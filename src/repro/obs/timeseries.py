"""Deterministic sim-clock-windowed time series over trace rows.

The paper's evaluation is about *trends*: server load relief as the
overlays warm up (Figs 9-11), startup-delay behaviour under churn
(Figs 12-13), maintenance overhead as sessions progress (Fig 18).  The
end-of-run aggregates of :mod:`repro.metrics` cannot show a trend; this
module folds the deterministic trace-row stream of
:class:`repro.obs.tracer.Tracer` into fixed-width virtual-time windows:

* **counters** per window -- requests, chunk transfers by source,
  server fallbacks, tracker lookups, churn arrivals/departures, TTL
  exhaustions, playback stalls, per-cluster (interest-category) request
  load;
* **rates** per window -- server chunk share, stall rate, mean search
  hops, mean startup delay;
* **gauges** sampled at window close -- active sessions, total overlay
  links, engine heap depth and events processed (via ``engine.tick``).

Two feeding paths, asserted byte-identical
(``tests/test_obs_timeseries.py``):

1. **Live** -- :func:`run_with_timeseries` installs a
   :class:`TimeSeriesCollector` as the tracer's row sink, so windows
   accumulate while the simulation runs;
2. **Replay** -- :func:`series_from_trace` re-feeds an exported JSONL
   artifact through the same collector.

Identity holds because every input is a trace row: rows are emitted in
virtual-time order, canonical JSON round-trips ints and floats exactly,
and the collector consumes nothing else -- no wall clock, no RNG, no
dataset.  A series is therefore a pure function of the
:class:`repro.experiments.spec.ExperimentSpec` that produced the trace,
for ``jobs=1`` and ``jobs=N`` alike.

Example::

    run = run_with_timeseries(spec, window_s=600.0)
    replayed = series_from_trace(run.jsonl, window_s=600.0)
    assert run.table.to_canonical_json() == replayed.to_canonical_json()
    run.table.series("server_share")     # [0.91, 0.54, 0.22, ...]
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.experiments.runner import ExperimentResult, run_spec
from repro.experiments.spec import ExperimentSpec
from repro.experiments.trace_cache import shared_trace_cache
from repro.obs.export import parse_jsonl_bytes, trace_header, trace_to_jsonl_bytes
from repro.obs.tracer import Tracer

#: Bumped whenever the per-window record shape changes, mirroring the
#: trace/spec schema-version discipline so stale series artifacts and
#: baselines can never be misread by newer tooling.
TIMESERIES_SCHEMA_VERSION = 1

#: Default window width in virtual seconds -- the paper's 10-minute
#: probe period (Section V), a natural sampling cadence for overlay
#: health.
DEFAULT_WINDOW_S = 600.0

#: ``transfer.chunks`` sources that consumed a peer uplink.
_PEER_SOURCES = frozenset(("peer", "prefetch_peer"))
#: ``transfer.chunks`` sources that consumed the server uplink.
_SERVER_SOURCES = frozenset(("server", "prefetch_server"))

#: Shared empty-attrs dict for rows without attributes (read-only).
_NO_ATTRS: Dict[str, Any] = {}


@dataclass
class TimeSeriesTable:
    """The windowed series of one run: a list of per-window records.

    ``windows[i]`` is a plain dict (see docs/tracing.md for the field
    catalogue) covering virtual time ``[i * window_s, (i+1) *
    window_s)``; ``content_hash`` keys the table to the spec that
    produced the underlying trace.  The canonical JSON form is the
    byte-identity and baseline-digest surface.
    """

    window_s: float
    content_hash: str
    windows: List[Dict[str, Any]] = field(default_factory=list)
    schema: int = TIMESERIES_SCHEMA_VERSION

    @property
    def num_windows(self) -> int:
        """Number of windows covered (last event's window + 1)."""
        return len(self.windows)

    def series(self, name: str) -> List[Any]:
        """One named per-window field as a list, e.g. ``series("requests")``.

        Example::

            table.series("active_sessions")   # [104, 118, 97, ...]
        """
        return [record[name] for record in self.windows]

    def cluster_ids(self) -> List[str]:
        """Every cluster key appearing in any window, sorted numerically."""
        seen = set()
        for record in self.windows:
            seen.update(record["cluster_requests"])
        return sorted(seen, key=int)

    def cluster_series(self, cluster_id: str) -> List[int]:
        """Per-window request count for one cluster (0 where absent)."""
        return [
            record["cluster_requests"].get(cluster_id, 0)
            for record in self.windows
        ]

    def to_canonical_json(self) -> bytes:
        """Canonical JSON bytes (sorted keys, compact separators).

        Two tables built from the same spec -- live or by replay, on
        any worker layout -- serialize to identical bytes; this is the
        surface the determinism tests and baseline digests hash.
        """
        payload = {
            "schema": self.schema,
            "window_s": self.window_s,
            "content_hash": self.content_hash,
            "windows": self.windows,
        }
        return json.dumps(
            payload, sort_keys=True, separators=(",", ":")
        ).encode("utf-8")

    def digest(self) -> str:
        """SHA-256 hex digest of :meth:`to_canonical_json` (baseline key)."""
        return hashlib.sha256(self.to_canonical_json()).hexdigest()


#: Name -> dispatch code for :meth:`TimeSeriesCollector.observe_row`.
#: A single dict probe decides whether a row carries a windowed metric
#: at all -- rows outside this map (``flood.hop``, span ends, counter
#: footers, ...) exit after two comparisons, which is what holds the
#: streaming sink under the <5%-of-run overhead bar asserted in
#: ``tests/test_obs_timeseries.py``.  Codes are ordered by observed row
#: frequency so the dispatch chain stays shallow for the hot names.
_ROW_CODES: Dict[str, int] = {
    "server.lookup": 1,
    "transfer.chunks": 2,
    "playback.report": 3,
    "request.serve": 4,
    "overlay.links": 5,
    "flood.found": 6,
    "playback.stall": 7,
    "server.request": 8,
    "session.begin": 9,
    "session.end": 10,
    "flood.ttl_exhausted": 11,
    "engine.tick": 12,
}

#: Extra dispatch codes merged in only when the collector is built with
#: ``include_faults`` (the run carried a nonzero FaultPlan).  Kept out
#: of :data:`_ROW_CODES` so fault-free tables -- and the committed
#: baseline digests keyed on their bytes -- are untouched by the fault
#: subsystem's existence.
_FAULT_ROW_CODES: Dict[str, int] = {
    "churn.crash": 13,
    "failover.interrupted": 14,
    "failover.retry": 15,
    "failover.resume": 16,
    "failover.server": 17,
    "overlay.repair": 18,
    # Correlated & infrastructure families (repro.faults v2).
    "fault.community_crash": 19,
    "tracker.outage": 20,
    "tracker.lookup_failed": 21,
    "tracker.reregister": 22,
    "partition.transition": 23,
    "partition.healed": 24,
    "server.shed": 25,
    "server.flash_crowd": 26,
}


class TimeSeriesCollector:
    """Folds a time-ordered trace-row stream into fixed windows.

    Feed it rows via :meth:`observe_row` -- either live (installed as a
    :meth:`repro.obs.tracer.Tracer.set_sink` sink) or replayed from a
    parsed JSONL artifact -- then :meth:`finalize`.  The collector
    consumes only row contents, so the two paths are byte-identical by
    construction.

    Example::

        collector = TimeSeriesCollector(window_s=600.0)
        for row in parse_jsonl_bytes(payload):
            collector.observe_row(row)
        table = collector.finalize(content_hash=spec.content_hash())
    """

    def __init__(
        self, window_s: float = DEFAULT_WINDOW_S, include_faults: bool = False
    ):
        if window_s <= 0:
            raise ValueError("window_s must be positive")
        self.window_s = float(window_s)
        #: Fault-recovery columns appear only when the run was fault-
        #: injected; the per-instance dispatch map keeps the hot path
        #: identical either way (one dict probe).
        self._include_faults = bool(include_faults)
        self._codes = dict(_ROW_CODES)
        if self._include_faults:
            self._codes.update(_FAULT_ROW_CODES)
        self._records: List[Dict[str, Any]] = []
        self._index = 0
        self._window_end = self.window_s
        # Gauges: survive window flushes (carried forward).
        self._active_sessions = 0
        self._overlay_links = 0
        self._links_by_node: Dict[int, int] = {}
        self._pending_events = 0
        self._events_processed = 0
        self._reset_window()

    def _reset_window(self) -> None:
        """Zero the per-window counters (gauges are left alone)."""
        self._rows = 0
        self._requests = 0
        self._cluster_requests: Dict[int, int] = {}
        self._server_chunks = 0
        self._peer_chunks = 0
        self._cache_chunks = 0
        self._server_requests = 0
        self._tracker_lookups = 0
        self._joins = 0
        self._leaves = 0
        self._ttl_exhausted = 0
        self._hops_sum = 0
        self._hops_count = 0
        self._startup_sum_s = 0.0
        self._startup_count = 0
        self._stall_events = 0
        self._reports = 0
        self._stalled_reports = 0
        # Fault-recovery counters (recorded only under include_faults).
        self._crashes = 0
        self._interrupted = 0
        self._failover_retries = 0
        self._failover_resumes = 0
        self._failover_server = 0
        self._failover_latency_sum_s = 0.0
        self._repaired_links = 0
        # Infrastructure-fault counters (repro.faults v2).
        self._burst_crashes = 0
        self._infra_transitions = 0
        self._lookup_failures = 0
        self._reregistrations = 0
        self._healed_nodes = 0
        self._server_sheds = 0

    def _flush_window(self) -> None:
        """Close the current window into a record and start the next."""
        total_shared = self._server_chunks + self._peer_chunks
        record: Dict[str, Any] = {
            "window": self._index,
            "t0": self._index * self.window_s,
            "rows": self._rows,
            "requests": self._requests,
            "cluster_requests": {
                str(cluster): count
                for cluster, count in sorted(self._cluster_requests.items())
            },
            "server_chunks": self._server_chunks,
            "peer_chunks": self._peer_chunks,
            "cache_chunks": self._cache_chunks,
            "server_share": (
                self._server_chunks / total_shared if total_shared else 0.0
            ),
            "server_requests": self._server_requests,
            "tracker_lookups": self._tracker_lookups,
            "joins": self._joins,
            "leaves": self._leaves,
            "ttl_exhausted": self._ttl_exhausted,
            "search_hops_mean": (
                self._hops_sum / self._hops_count if self._hops_count else 0.0
            ),
            "startup_ms_mean": (
                1000.0 * self._startup_sum_s / self._startup_count
                if self._startup_count
                else 0.0
            ),
            "stall_events": self._stall_events,
            "reports": self._reports,
            "stalled_reports": self._stalled_reports,
            "stall_rate": (
                self._stalled_reports / self._reports if self._reports else 0.0
            ),
            "active_sessions": self._active_sessions,
            "overlay_links": self._overlay_links,
            "pending_events": self._pending_events,
            "events_processed": self._events_processed,
        }
        if self._include_faults:
            failovers = self._failover_resumes + self._failover_server
            record["crashes"] = self._crashes
            record["interrupted"] = self._interrupted
            record["failover_retries"] = self._failover_retries
            record["failover_resumes"] = self._failover_resumes
            record["failover_server"] = self._failover_server
            record["failover_latency_ms_mean"] = (
                1000.0 * self._failover_latency_sum_s / failovers
                if failovers
                else 0.0
            )
            record["repaired_links"] = self._repaired_links
            record["burst_crashes"] = self._burst_crashes
            record["infra_transitions"] = self._infra_transitions
            record["lookup_failures"] = self._lookup_failures
            record["reregistrations"] = self._reregistrations
            record["healed_nodes"] = self._healed_nodes
            record["server_sheds"] = self._server_sheds
        self._records.append(record)
        self._index += 1
        self._window_end = (self._index + 1) * self.window_s
        self._reset_window()

    def observe_row(self, row: Dict[str, Any]) -> None:
        """Consume one trace row (rows without a windowed metric are ignored).

        Rows must arrive in non-decreasing ``t`` order -- the order the
        tracer emits and the JSONL artifact stores.  This is the live
        sink's hot path: two comparisons and one dict probe decide
        whether the row contributes at all, and the metric bodies are
        inlined behind integer codes (a bound-method call per row costs
        more than most of the bodies).  Both feeding paths run exactly
        this code, which is what makes them byte-identical.
        """
        kind = row["kind"]
        if kind != "event" and kind != "span_begin":
            return
        code = self._codes.get(row["name"])
        if code is None:
            return
        if row["t"] >= self._window_end:
            window = row["t"] // self.window_s
            while window > self._index:
                self._flush_window()
        self._rows += 1
        if code == 1:  # server.lookup: one tracker-state query
            self._tracker_lookups += 1
            return
        attrs = row.get("attrs") or _NO_ATTRS
        if code == 2:  # transfer.chunks: bucket by supply side
            source = attrs.get("source")
            chunks = attrs.get("chunks", 0)
            if source in _PEER_SOURCES:
                self._peer_chunks += chunks
            elif source in _SERVER_SOURCES:
                self._server_chunks += chunks
            elif source == "cache":
                self._cache_chunks += chunks
        elif code == 3:  # playback.report: startup mean + stalled-watch rate
            self._reports += 1
            self._startup_sum_s += attrs.get("startup_s", 0.0)
            self._startup_count += 1
            if attrs.get("stalls", 0) > 0:
                self._stalled_reports += 1
        elif code == 4:  # request.serve span: total + per-cluster counts
            self._requests += 1
            cluster = attrs.get("cluster")
            if cluster is not None:
                self._cluster_requests[cluster] = (
                    self._cluster_requests.get(cluster, 0) + 1
                )
        elif code == 5:  # overlay.links: fold sample into the link total
            node = attrs.get("node")
            links = attrs.get("links", 0)
            self._overlay_links += links - self._links_by_node.get(node, 0)
            self._links_by_node[node] = links
        elif code == 6:  # flood.found: search depth for the hop mean
            self._hops_sum += attrs.get("depth", 0)
            self._hops_count += 1
        elif code == 7:  # playback.stall: one mid-watch buffer underrun
            self._stall_events += 1
        elif code == 8:  # server.request: one fallback admission
            self._server_requests += 1
        elif code == 9:  # session.begin: arrival + active gauge
            self._active_sessions = attrs.get("active", self._active_sessions)
            self._joins += 1
        elif code == 10:  # session.end: departure + active gauge
            self._active_sessions = attrs.get("active", self._active_sessions)
            self._leaves += 1
        elif code == 11:  # flood.ttl_exhausted: one failed search
            self._ttl_exhausted += 1
        elif code == 12:  # engine.tick: scheduler gauges
            self._pending_events = attrs.get("pending", self._pending_events)
            self._events_processed = attrs.get("events", self._events_processed)
        # Fault-recovery rows (codes mapped only under include_faults).
        elif code == 13:  # churn.crash: one abrupt mid-session death
            self._crashes += 1
        elif code == 14:  # failover.interrupted: one severed transfer
            self._interrupted += 1
        elif code == 15:  # failover.retry: one backed-off re-search
            self._failover_retries += 1
        elif code == 16:  # failover.resume: resumed from a new peer
            self._failover_resumes += 1
            self._failover_latency_sum_s += attrs.get("latency_s", 0.0)
        elif code == 17:  # failover.server: degraded server finish
            self._failover_server += 1
            self._failover_latency_sum_s += attrs.get("latency_s", 0.0)
        elif code == 18:  # overlay.repair: crash-repair sweep outcome
            self._repaired_links += attrs.get("links", 0)
        elif code == 19:  # fault.community_crash: one correlated burst
            self._burst_crashes += attrs.get("victims", 0)
        elif code == 21:  # tracker.lookup_failed: query hit a dark tracker
            self._lookup_failures += 1
        elif code == 22:  # tracker.reregister: recovery reports re-filed
            self._reregistrations += attrs.get("count", 0)
        elif code == 24:  # partition.healed: heal-sweep size at re-link
            self._healed_nodes += attrs.get("nodes", 0)
        elif code == 25:  # server.shed: one admission-control rejection
            self._server_sheds += 1
        else:  # codes 20/23/26: outage / partition / flash-crowd edges
            self._infra_transitions += 1

    def finalize(self, content_hash: str = "") -> TimeSeriesTable:
        """Close the trailing window and return the finished table.

        The final window is the one containing the last observed
        metric-bearing row (partial windows are kept -- their ``t0``
        says how far they reach).  A rowless stream yields an empty
        table.
        """
        if self._rows or self._records:
            self._flush_window()
        return TimeSeriesTable(
            window_s=self.window_s,
            content_hash=content_hash,
            windows=self._records,
        )


@dataclass
class TimeseriesRun:
    """One live-collected run: result, exportable trace, and the table."""

    spec: ExperimentSpec
    result: ExperimentResult
    jsonl: bytes
    table: TimeSeriesTable


def run_with_timeseries(
    spec: ExperimentSpec,
    window_s: float = DEFAULT_WINDOW_S,
    dataset: Optional[object] = None,
) -> TimeseriesRun:
    """Execute one spec with live windowed collection attached.

    The tracer streams every row into a :class:`TimeSeriesCollector`
    as it is emitted and asks the engine for one ``engine.tick`` gauge
    row per window; the returned :class:`TimeseriesRun` carries the
    run result, the canonical JSONL trace (so the replay path can be
    cross-checked), and the finished table.

    Example::

        run = run_with_timeseries(spec)
        print(run.table.series("server_share"))
    """
    tracer = Tracer(tick_every_s=window_s)
    collector = TimeSeriesCollector(
        window_s=window_s, include_faults=spec.has_faults()
    )
    tracer.set_sink(collector.observe_row)
    result = run_spec(
        spec,
        dataset=dataset or shared_trace_cache.dataset_for(spec.config.trace),
        tracer=tracer,
    )
    jsonl = trace_to_jsonl_bytes(
        trace_header(spec), tracer.rows(), tracer.counters(), tracer.histograms()
    )
    table = collector.finalize(content_hash=spec.content_hash())
    return TimeseriesRun(spec=spec, result=result, jsonl=jsonl, table=table)


def series_from_trace(
    payload: bytes, window_s: float = DEFAULT_WINDOW_S
) -> TimeSeriesTable:
    """Rebuild the windowed series by replaying an exported JSONL trace.

    Byte-identical to the live path for the same spec and window: the
    collector sees the same rows in the same order, and canonical JSON
    round-trips every number exactly.  The table's ``content_hash`` is
    read from the trace header.

    Example::

        table = series_from_trace(open(path, "rb").read())
        assert table.to_canonical_json() == live_table.to_canonical_json()
    """
    collector: Optional[TimeSeriesCollector] = None
    content_hash = ""
    for row in parse_jsonl_bytes(payload):
        if row.get("kind") == "header":
            # The header's "faults" marker decides whether the replayed
            # table carries the fault-recovery columns, matching what
            # the live collector saw for the same spec.
            content_hash = row.get("content_hash", "")
            collector = TimeSeriesCollector(
                window_s=window_s, include_faults=bool(row.get("faults"))
            )
            continue
        if collector is None:
            collector = TimeSeriesCollector(window_s=window_s)
        collector.observe_row(row)
    if collector is None:
        collector = TimeSeriesCollector(window_s=window_s)
    return collector.finalize(content_hash=content_hash)
