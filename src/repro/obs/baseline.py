"""Committed metric baselines and the regression gate.

``baselines/*.json`` snapshots the canonical headline metrics and the
time-series digest of each protocol at a known-good revision, keyed by
the producing spec's :meth:`ExperimentSpec.content_hash`.  ``python -m
repro regress`` re-runs each baselined spec and compares fresh values
under per-metric tolerance bands::

    |observed - baseline| <= abs_tol + rel_tol * |baseline|

failing (exit 1, with the metric name and the observed-vs-allowed
delta) on any drift.  This is CI's answer to "did this refactor change
simulation behaviour?": determinism makes the expected drift exactly
zero, and the bands say how much *intentional* drift a change may
smuggle in without updating the baselines in the same commit.

The series digest (the SHA-256 of the windowed table's canonical JSON)
is compared too: a digest mismatch with in-band scalar metrics means
the run's *shape over time* moved even though the endpoints agree --
a warning by default, fatal under ``--strict``.

``--update`` regenerates the files from fresh runs (bootstrapping the
three paper protocols when none exist); commit the diff alongside the
behaviour change that motivated it.
"""

from __future__ import annotations

import json
import multiprocessing
import os
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.experiments.config import SimulationConfig
from repro.experiments.spec import ExperimentSpec
from repro.experiments.trace_cache import shared_trace_cache
from repro.faults.plan import FaultPlan
from repro.obs.timeseries import DEFAULT_WINDOW_S, run_with_timeseries

#: Bumped when the baseline file layout changes.
BASELINE_SCHEMA_VERSION = 1

#: Default directory (repo root) holding the committed baseline files.
DEFAULT_BASELINE_DIR = "baselines"

#: The protocols bootstrapped by ``regress --update`` on an empty dir.
DEFAULT_PROTOCOLS: Tuple[str, ...] = ("pavod", "nettube", "socialtube")

#: Per-metric tolerance bands ``(abs_tol, rel_tol)``.  Deterministic
#: replays make zero the expected drift; the bands bound how far an
#: *intentional* change may move a metric before the gate demands a
#: baseline update in the same commit.  Fractions get a small absolute
#: band, time/count metrics a relative one.
DEFAULT_TOLERANCES: Dict[str, Tuple[float, float]] = {
    "startup_delay_ms_mean": (1.0, 0.05),
    "startup_delay_ms_p50": (1.0, 0.05),
    "startup_delay_ms_p99": (1.0, 0.10),
    "peer_bandwidth_p1": (0.02, 0.0),
    "peer_bandwidth_p50": (0.02, 0.0),
    "peer_bandwidth_p99": (0.02, 0.0),
    "server_fallback_fraction": (0.02, 0.0),
    "cache_hit_fraction": (0.02, 0.0),
    "prefetch_hit_fraction": (0.02, 0.0),
    "mean_search_hops": (0.05, 0.05),
    "mean_peers_contacted": (0.1, 0.05),
    "mean_continuity_index": (0.01, 0.0),
    "stall_fraction": (0.02, 0.0),
    "mean_stall_ms": (5.0, 0.05),
    "num_requests": (0.0, 0.0),
    "server_requests": (0.0, 0.02),
    "tracker_lookups": (0.0, 0.02),
    "events_processed": (0.0, 0.02),
    "prefetch_hit_rate": (0.02, 0.0),
    # Fault-recovery metrics (present only in chaos baselines).  Counts
    # are fully deterministic replays; latency gets the usual time band.
    "crashes": (0.0, 0.0),
    "interrupted_transfers": (0.0, 0.0),
    "failover_peer_resumes": (0.0, 0.0),
    "failover_server_fallbacks": (0.0, 0.0),
    "failover_latency_ms_mean": (1.0, 0.05),
    "retries_per_serve": (0.01, 0.0),
    "degraded_serve_fraction": (0.02, 0.0),
    # Infrastructure-fault metrics (repro.faults v2; chaos baselines
    # only).  Counts replay deterministically; the recovery clock gets
    # the usual time band.
    "burst_crashes": (0.0, 0.0),
    "tracker_lookup_failures": (0.0, 0.0),
    "reregistrations": (0.0, 0.0),
    "partition_interrupts": (0.0, 0.0),
    "healed_nodes": (0.0, 0.0),
    "server_sheds": (0.0, 0.0),
    "shed_retries": (0.0, 0.0),
    "recovery_time_s": (1.0, 0.05),
}

#: Recovery metrics captured only under a nonzero fault plan; all are
#: attributes of :class:`repro.metrics.collectors.ExperimentMetrics`.
CHAOS_METRICS: Tuple[str, ...] = (
    "crashes",
    "interrupted_transfers",
    "failover_peer_resumes",
    "failover_server_fallbacks",
    "failover_latency_ms_mean",
    "retries_per_serve",
    "degraded_serve_fraction",
    "burst_crashes",
    "tracker_lookup_failures",
    "reregistrations",
    "partition_interrupts",
    "healed_nodes",
    "server_sheds",
    "shed_retries",
    "recovery_time_s",
)

#: Band applied to a metric missing from :data:`DEFAULT_TOLERANCES`.
FALLBACK_TOLERANCE: Tuple[float, float] = (0.0, 0.05)

_SCALES = {"smoke": SimulationConfig.smoke_scale, "default": SimulationConfig.default_scale}


@dataclass
class Deviation:
    """One compared metric: observed vs baseline under its band."""

    metric: str
    baseline: float
    observed: float
    abs_tol: float
    rel_tol: float

    @property
    def delta(self) -> float:
        """Signed drift (observed - baseline)."""
        return self.observed - self.baseline

    @property
    def allowed(self) -> float:
        """The band half-width this metric is allowed to drift."""
        return self.abs_tol + self.rel_tol * abs(self.baseline)

    @property
    def ok(self) -> bool:
        """Whether the observed value sits inside the tolerance band."""
        return abs(self.delta) <= self.allowed

    def render(self) -> str:
        """One report line: metric, values, drift vs allowance, verdict."""
        status = "ok" if self.ok else "FAIL"
        return (
            f"  {self.metric:<26} baseline={self.baseline:>12.4f} "
            f"observed={self.observed:>12.4f} "
            f"drift={self.delta:>+10.4f} allowed={self.allowed:>8.4f}  {status}"
        )


def spec_for_baseline(payload: Dict[str, Any]) -> ExperimentSpec:
    """Reconstruct the producing spec from a baseline file's identity."""
    scale = payload.get("scale", "smoke")
    factory = _SCALES.get(scale)
    if factory is None:
        raise ValueError(f"unknown baseline scale {scale!r}")
    spec = ExperimentSpec(
        protocol=payload["protocol"],
        config=factory(seed=payload["seed"]),
        environment=payload.get("environment", "peersim"),
    )
    faults = payload.get("faults")
    if faults:
        spec = spec.with_faults(FaultPlan.from_dict(faults))
    return spec


def _capture(
    spec: ExperimentSpec,
    scale: str,
    window_s: float,
    variant: Optional[str] = None,
) -> Dict[str, Any]:
    """Run one spec and snapshot its baseline payload.

    ``variant`` distinguishes multiple chaos baselines of the same
    protocol/environment (e.g. the ``infra`` grid scenarios from the
    classic crash-churn demo); it feeds the filename via
    :func:`baseline_path` and rides in the payload so ``regress
    --update`` rewrites the right file.
    """
    run = run_with_timeseries(
        spec,
        window_s=window_s,
        dataset=shared_trace_cache.dataset_for(spec.config.trace),
    )
    metrics = run.result.metrics
    values: Dict[str, float] = {
        "startup_delay_ms_mean": metrics.startup_delay_ms_mean,
        "startup_delay_ms_p50": metrics.startup_delay_ms_p50,
        "startup_delay_ms_p99": metrics.startup_delay_ms_p99,
        "peer_bandwidth_p1": metrics.peer_bandwidth_p1,
        "peer_bandwidth_p50": metrics.peer_bandwidth_p50,
        "peer_bandwidth_p99": metrics.peer_bandwidth_p99,
        "server_fallback_fraction": metrics.server_fallback_fraction,
        "cache_hit_fraction": metrics.cache_hit_fraction,
        "prefetch_hit_fraction": metrics.prefetch_hit_fraction,
        "mean_search_hops": metrics.mean_search_hops,
        "mean_peers_contacted": metrics.mean_peers_contacted,
        "mean_continuity_index": metrics.mean_continuity_index,
        "stall_fraction": metrics.stall_fraction,
        "mean_stall_ms": metrics.mean_stall_ms,
        "num_requests": float(metrics.num_requests),
        "server_requests": float(run.result.server_requests),
        "tracker_lookups": float(run.result.tracker_lookups),
        "events_processed": float(run.result.events_processed),
        "prefetch_hit_rate": run.result.prefetch_hit_rate,
    }
    if spec.has_faults():
        # Only chaos baselines carry the recovery metrics: fault-free
        # capture payloads stay byte-identical to pre-fault ones.
        values.update(
            {name: float(getattr(metrics, name)) for name in CHAOS_METRICS}
        )
    payload = {
        "schema": BASELINE_SCHEMA_VERSION,
        "protocol": spec.protocol,
        "environment": spec.environment,
        "seed": spec.seed,
        "scale": scale,
        "window_s": window_s,
        "content_hash": spec.content_hash(),
        "series_digest": run.table.digest(),
        "num_windows": run.table.num_windows,
        "metrics": values,
    }
    if spec.has_faults():
        payload["faults"] = spec.faults.to_dict()
    if variant:
        payload["variant"] = variant
    return payload


def capture_baseline(
    protocol: str,
    scale: str = "smoke",
    seed: int = 2014,
    environment: str = "peersim",
    window_s: float = DEFAULT_WINDOW_S,
    faults: Optional[FaultPlan] = None,
    shards: int = 1,
    workers: int = 1,
    variant: Optional[str] = None,
) -> Dict[str, Any]:
    """Snapshot one protocol's baseline payload from a fresh run.

    A nonzero ``faults`` plan produces a *chaos* baseline: the payload
    carries the plan plus the recovery metrics, and lands in a separate
    ``baseline_<protocol>_<environment>_chaos.json`` file.

    ``shards`` selects community-partitioned execution for the capture
    run, ``workers`` the lane scale-out fan-out.  Both are hash-neutral
    and byte-identical by the determinism gates, so ``regress --shards
    N --workers M`` compares those runs against baselines captured
    unsharded -- any drift is a real parity bug.

    Example::

        payload = capture_baseline("socialtube")
        write_baseline(baseline_path("baselines", payload), payload)
    """
    factory = _SCALES.get(scale)
    if factory is None:
        raise ValueError(f"unknown baseline scale {scale!r}")
    spec = ExperimentSpec(
        protocol=protocol, config=factory(seed=seed), environment=environment
    )
    if faults is not None:
        spec = spec.with_faults(faults)
    if shards != 1:
        spec = spec.with_shards(shards)
    if workers != 1:
        spec = spec.with_workers(workers)
    return _capture(spec, scale, window_s, variant=variant)


def _capture_worker(task: Dict[str, Any]) -> Dict[str, Any]:
    """Pool worker: one baseline identity -> one fresh capture payload."""
    faults = task.get("faults")
    return capture_baseline(
        protocol=task["protocol"],
        scale=task.get("scale", "smoke"),
        seed=task["seed"],
        environment=task.get("environment", "peersim"),
        window_s=task.get("window_s", DEFAULT_WINDOW_S),
        faults=FaultPlan.from_dict(faults) if faults else None,
        shards=task.get("shards", 1),
        workers=task.get("workers", 1),
        variant=task.get("variant"),
    )


def baseline_path(baseline_dir: str, payload: Dict[str, Any]) -> str:
    """Canonical file path for one baseline payload."""
    suffix = "_chaos" if payload.get("faults") else ""
    variant = payload.get("variant")
    if variant:
        suffix += f"_{variant}"
    name = f"baseline_{payload['protocol']}_{payload['environment']}{suffix}.json"
    return os.path.join(baseline_dir, name)


def write_baseline(path: str, payload: Dict[str, Any]) -> str:
    """Write a baseline file (sorted keys, indented -- reviewable diffs)."""
    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, sort_keys=True, indent=2)
        handle.write("\n")
    return path


def load_baselines(baseline_dir: str) -> List[Tuple[str, Dict[str, Any]]]:
    """Every committed ``(path, payload)`` in the dir, filename-sorted."""
    if not os.path.isdir(baseline_dir):
        return []
    entries: List[Tuple[str, Dict[str, Any]]] = []
    for name in sorted(os.listdir(baseline_dir)):
        if not (name.startswith("baseline_") and name.endswith(".json")):
            continue
        path = os.path.join(baseline_dir, name)
        with open(path, "r", encoding="utf-8") as handle:
            entries.append((path, json.load(handle)))
    return entries


def compare_to_baseline(
    baseline: Dict[str, Any], fresh: Dict[str, Any]
) -> List[Deviation]:
    """Per-metric deviations of a fresh capture against one baseline.

    Metrics present in the baseline but missing from the fresh capture
    (or vice versa) surface as deviations against 0.0, so a renamed or
    dropped metric cannot silently pass the gate.
    """
    names = sorted(set(baseline["metrics"]) | set(fresh["metrics"]))
    deviations = []
    for name in names:
        abs_tol, rel_tol = DEFAULT_TOLERANCES.get(name, FALLBACK_TOLERANCE)
        deviations.append(
            Deviation(
                metric=name,
                baseline=float(baseline["metrics"].get(name, 0.0)),
                observed=float(fresh["metrics"].get(name, 0.0)),
                abs_tol=abs_tol,
                rel_tol=rel_tol,
            )
        )
    return deviations


def run_regression(
    baseline_dir: str = DEFAULT_BASELINE_DIR,
    jobs: int = 1,
    strict: bool = False,
    update: bool = False,
    quick: bool = False,
    protocols: Optional[Tuple[str, ...]] = None,
    shards: int = 1,
    workers: int = 1,
) -> int:
    """The ``python -m repro regress`` entry point; returns the exit code.

    Re-runs every committed baseline spec (``--quick`` keeps only the
    smoke-scale ones) and prints a per-metric drift table.  Exit 1 on:
    an out-of-band metric, a content-hash mismatch (the spec itself
    changed -- the baseline no longer describes this code), or -- under
    ``strict`` -- a series-digest mismatch.  ``update=True`` instead
    rewrites the files from the fresh captures (bootstrapping
    :data:`DEFAULT_PROTOCOLS` when the directory is empty).
    ``shards > 1`` re-runs each baseline community-partitioned and
    ``workers > 1`` records the lane scale-out fan-out; the determinism
    gates make the expected drift still exactly zero.
    """
    entries = load_baselines(baseline_dir)
    if quick:
        entries = [(p, b) for p, b in entries if b.get("scale") == "smoke"]
    if not entries:
        if not update:
            print(f"no baseline files under {baseline_dir}/ -- run with --update")
            return 1
        entries = [
            (
                "",
                {
                    "protocol": name,
                    "environment": "peersim",
                    "seed": 2014,
                    "scale": "smoke",
                    "window_s": DEFAULT_WINDOW_S,
                    "metrics": {},
                },
            )
            for name in (protocols or DEFAULT_PROTOCOLS)
        ]
    tasks = [
        {
            "protocol": payload["protocol"],
            "environment": payload.get("environment", "peersim"),
            "seed": payload["seed"],
            "scale": payload.get("scale", "smoke"),
            "window_s": payload.get("window_s", DEFAULT_WINDOW_S),
            "faults": payload.get("faults"),
            "variant": payload.get("variant"),
            "shards": shards,
            "workers": workers,
        }
        for _path, payload in entries
    ]
    if jobs > 1:
        with multiprocessing.Pool(processes=min(jobs, len(tasks))) as pool:
            captures = pool.map(_capture_worker, tasks, chunksize=1)
    else:
        captures = [_capture_worker(task) for task in tasks]

    if update:
        for (_old_path, _payload), fresh in zip(entries, captures):
            path = write_baseline(baseline_path(baseline_dir, fresh), fresh)
            print(f"wrote {path}")
        return 0

    failures = 0
    for (path, payload), fresh in zip(entries, captures):
        label = f"{payload['protocol']}/{payload.get('environment', 'peersim')}"
        print(f"{label} ({path})")
        if payload.get("content_hash") != fresh["content_hash"]:
            print(
                "  FAIL content_hash mismatch: baseline "
                f"{payload.get('content_hash', '?')[:16]} vs spec "
                f"{fresh['content_hash'][:16]} -- the spec's behaviour "
                "recipe changed; regenerate with `repro regress --update`"
            )
            failures += 1
            continue
        deviations = compare_to_baseline(payload, fresh)
        for deviation in deviations:
            print(deviation.render())
            if not deviation.ok:
                failures += 1
        if payload.get("series_digest") != fresh["series_digest"]:
            marker = "FAIL" if strict else "warn"
            print(
                f"  {marker} series digest drift: {payload.get('series_digest', '?')[:16]} "
                f"-> {fresh['series_digest'][:16]} (shape-over-time changed)"
            )
            if strict:
                failures += 1
        else:
            print(f"  series digest ok ({fresh['series_digest'][:16]})")
    if failures:
        print(f"regress: {failures} failure(s)")
        return 1
    print(f"regress: all {len(entries)} baseline(s) within tolerance")
    return 0
