"""Canonical JSONL trace export and the profile summary.

A trace artifact is a JSON-Lines file: one header row identifying the
run (schema version, :meth:`ExperimentSpec.content_hash`, protocol,
seed, environment), the span/event rows in emission order, and footer
rows summarising counters and histograms.  Serialization is canonical
-- sorted keys, compact separators, ``repr``-stable floats -- so the
bytes of a trace are a pure function of its spec: running the same
spec twice, or through the process-pool path, produces byte-identical
files (tested by ``tests/test_obs_determinism.py``).

The profile summary folds a trace into the table behind
``python -m repro profile``: simulated time per span name
("time-in-phase"), row counts by name ("events-by-type"), per-node
hotspots, and counter totals.

Example::

    from repro.obs.export import run_profiled, render_profile

    profiled = run_profiled(spec)
    open(path, "wb").write(profiled.jsonl)
    print(render_profile(profiled.summary))
"""

from __future__ import annotations

import json
import multiprocessing
import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.experiments.runner import ExperimentResult, run_spec
from repro.experiments.spec import ExperimentSpec
from repro.experiments.trace_cache import shared_trace_cache
from repro.obs.tracer import TRACE_SCHEMA_VERSION, Tracer


def trace_header(spec: ExperimentSpec) -> Dict[str, Any]:
    """The identifying first row of a trace artifact.

    Fault-injected runs (a nonzero ``spec.faults``) carry a ``faults``
    marker, which tells the time-series replay path to enable the
    fault-recovery columns; fault-free headers are byte-identical to
    headers predating fault injection.

    Example::

        header = trace_header(spec)
        assert header["content_hash"] == spec.content_hash()
    """
    header = {
        "kind": "header",
        "schema": TRACE_SCHEMA_VERSION,
        "content_hash": spec.content_hash(),
        "protocol": spec.protocol,
        "environment": spec.environment,
        "seed": spec.seed,
    }
    if spec.has_faults():
        header["faults"] = True
    return header


def _canonical_row(row: Dict[str, Any]) -> str:
    """One row as canonical JSON (sorted keys, compact separators)."""
    return json.dumps(row, sort_keys=True, separators=(",", ":"), default=str)


def trace_to_jsonl_bytes(
    header: Dict[str, Any],
    rows: List[Dict[str, Any]],
    counters: Optional[Dict[str, float]] = None,
    histograms: Optional[Dict[str, List[float]]] = None,
) -> bytes:
    """Serialize header + rows + footer summaries to canonical JSONL.

    Counter and histogram footers are emitted in sorted-name order, so
    the byte stream never depends on dict insertion history.
    """
    lines = [_canonical_row(header)]
    lines.extend(_canonical_row(row) for row in rows)
    for name in sorted(counters or {}):
        lines.append(
            _canonical_row({"kind": "counter", "name": name, "value": counters[name]})
        )
    for name in sorted(histograms or {}):
        values = histograms[name]
        lines.append(
            _canonical_row(
                {
                    "kind": "hist",
                    "name": name,
                    "count": len(values),
                    "min": min(values) if values else 0.0,
                    "max": max(values) if values else 0.0,
                    "sum": sum(values),
                }
            )
        )
    return ("\n".join(lines) + "\n").encode("utf-8")


def parse_jsonl_bytes(payload: bytes) -> List[Dict[str, Any]]:
    """Inverse of :func:`trace_to_jsonl_bytes` (header and footers included)."""
    return [json.loads(line) for line in payload.decode("utf-8").splitlines() if line]


def write_trace(path: str, payload: bytes) -> str:
    """Write trace bytes to ``path`` (creating parent dirs); returns ``path``."""
    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    with open(path, "wb") as handle:
        handle.write(payload)
    return path


def trace_filename(spec: ExperimentSpec) -> str:
    """Artifact name keyed by the spec's identity: protocol + hash prefix."""
    return f"trace_{spec.protocol}_{spec.content_hash()[:16]}.jsonl"


# ---------------------------------------------------------------------------
# profile summary


@dataclass
class PhaseStat:
    """Aggregate of one span name: how often, how much simulated time."""

    name: str
    count: int = 0
    total_sim_s: float = 0.0


@dataclass
class ProfileSummary:
    """The folded view of one trace: phases, event counts, hotspots.

    ``phases`` maps span name to :class:`PhaseStat` (time is
    *inclusive* simulated time: a parent span's total contains its
    children).  ``events_by_type`` counts every named row.
    ``node_hotspots`` ranks nodes by how many rows carry their
    ``node`` attribute -- the per-node instrumentation cost/activity
    view.  ``counters`` holds the footer counter totals.
    """

    phases: Dict[str, PhaseStat] = field(default_factory=dict)
    events_by_type: Dict[str, int] = field(default_factory=dict)
    node_hotspots: List[Tuple[int, int]] = field(default_factory=list)
    counters: Dict[str, float] = field(default_factory=dict)
    total_rows: int = 0

    @classmethod
    def from_rows(cls, rows: List[Dict[str, Any]], top_nodes: int = 10) -> "ProfileSummary":
        """Fold parsed trace rows (header/footers tolerated) into a summary.

        Example::

            summary = ProfileSummary.from_rows(parse_jsonl_bytes(payload))
            print(summary.phases["engine.run"].total_sim_s)
        """
        summary = cls()
        span_names: Dict[int, str] = {}
        node_rows: Dict[int, int] = {}
        for row in rows:
            kind = row.get("kind")
            if kind in ("header",):
                continue
            summary.total_rows += 1
            if kind == "counter":
                summary.counters[row["name"]] = row["value"]
                continue
            if kind == "hist":
                summary.events_by_type[f"hist:{row['name']}"] = row["count"]
                continue
            name = row.get("name")
            if kind == "span_begin":
                span_names[row["span"]] = name
                stat = summary.phases.setdefault(name, PhaseStat(name=name))
                stat.count += 1
            elif kind == "span_end":
                name = span_names.get(row["span"])
                if name is not None:
                    summary.phases[name].total_sim_s += row.get("dur", 0.0)
                continue  # span_end rows carry no name; counted at begin
            if name is not None:
                summary.events_by_type[name] = summary.events_by_type.get(name, 0) + 1
            node = row.get("attrs", {}).get("node")
            if isinstance(node, int):
                node_rows[node] = node_rows.get(node, 0) + 1
        ranked = sorted(node_rows.items(), key=lambda item: (-item[1], item[0]))
        summary.node_hotspots = ranked[:top_nodes]
        return summary


def render_profile(summary: ProfileSummary) -> str:
    """The ``python -m repro profile`` summary table as text.

    Three sections: time-in-phase (span names sorted by inclusive
    simulated time), events-by-type (row counts), and the busiest
    nodes.  Output is deterministic: ties break on name/id.
    """
    lines: List[str] = []
    lines.append("time in phase (inclusive sim seconds)")
    phases = sorted(
        summary.phases.values(), key=lambda s: (-s.total_sim_s, s.name)
    )
    for stat in phases:
        lines.append(
            f"  {stat.name:<24} {stat.count:>8} spans  {stat.total_sim_s:>14.3f} s"
        )
    lines.append("events by type")
    for name in sorted(summary.events_by_type):
        lines.append(f"  {name:<24} {summary.events_by_type[name]:>8} rows")
    if summary.counters:
        lines.append("counters")
        for name in sorted(summary.counters):
            lines.append(f"  {name:<24} {summary.counters[name]:>8g}")
    if summary.node_hotspots:
        lines.append("busiest nodes (trace rows)")
        for node, count in summary.node_hotspots:
            lines.append(f"  node {node:<19} {count:>8} rows")
    lines.append(f"{summary.total_rows} trace rows")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# traced / profiled execution


@dataclass
class ProfiledRun:
    """One traced experiment: its result, trace bytes, and summary."""

    spec: ExperimentSpec
    result: Optional[ExperimentResult]
    jsonl: bytes
    summary: ProfileSummary


def run_traced(
    spec: ExperimentSpec, dataset: Optional[object] = None
) -> Tuple[ExperimentResult, Tracer]:
    """Execute one spec with a live tracer attached; returns both.

    The tracer is created here (one per run -- tracers are not shared
    across runs, matching the per-run RNG stream discipline) and wired
    through the runner into every instrumented substrate.

    Example::

        result, tracer = run_traced(spec)
        rows = tracer.rows()
    """
    tracer = Tracer()
    result = run_spec(spec, dataset=dataset, tracer=tracer)
    return result, tracer


def _profile_worker(spec: ExperimentSpec) -> bytes:
    """Pool worker: trace one spec and return the canonical JSONL bytes."""
    _result, tracer = run_traced(
        spec, dataset=shared_trace_cache.dataset_for(spec.config.trace)
    )
    return trace_to_jsonl_bytes(
        trace_header(spec), tracer.rows(), tracer.counters(), tracer.histograms()
    )


def run_profiled(spec: ExperimentSpec, jobs: int = 1) -> ProfiledRun:
    """Trace one spec and fold the trace into a profile summary.

    ``jobs=1`` runs in-process; ``jobs>1`` routes the run through a
    process pool (the same execution shape as
    :func:`repro.experiments.parallel.run_sweep`), which must -- and
    does -- produce byte-identical trace artifacts, because a trace is
    a pure function of its spec.

    Example::

        profiled = run_profiled(spec, jobs=2)
        print(render_profile(profiled.summary))
    """
    if jobs <= 1:
        result, tracer = run_traced(
            spec, dataset=shared_trace_cache.dataset_for(spec.config.trace)
        )
        payload = trace_to_jsonl_bytes(
            trace_header(spec), tracer.rows(), tracer.counters(), tracer.histograms()
        )
        return ProfiledRun(
            spec=spec,
            result=result,
            jsonl=payload,
            summary=ProfileSummary.from_rows(parse_jsonl_bytes(payload)),
        )
    with multiprocessing.Pool(processes=min(jobs, 2)) as pool:
        payload = pool.map(_profile_worker, [spec], chunksize=1)[0]
    return ProfiledRun(
        spec=spec,
        result=None,
        jsonl=payload,
        summary=ProfileSummary.from_rows(parse_jsonl_bytes(payload)),
    )
