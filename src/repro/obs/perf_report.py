"""The sidecar perf report: schema-versioned wall-clock artifact.

A perf report is the wall-clock sibling of the canonical trace: one
JSON document keyed by the spec's ``content_hash`` holding everything
:class:`repro.obs.perf.PerfMeter` and the worker pool measured --
engine throughput, hotspot attribution, lane utilization, coordinator
overheads.  It lives *next to* the trace, never inside it: running
``repro perf`` produces a trace byte-identical to ``repro profile``'s
plus this separate artifact (the perf-smoke CI job diffs the former).

Example::

    run = run_perf(spec)
    open(report_path, "wb").write(perf_report_to_json_bytes(run.report))
    print(render_perf_report(run.report))
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.experiments.runner import ExperimentResult, run_spec
from repro.experiments.spec import ExperimentSpec
from repro.experiments.trace_cache import shared_trace_cache
from repro.obs.export import trace_header, trace_to_jsonl_bytes
from repro.obs.perf import PERF_SCHEMA_VERSION, PerfMeter, PoolPerf
from repro.obs.tracer import Tracer
from repro.shard.workers import LaneProgram, LaneRunResult, run_lane_program

#: Top-level keys of a perf report (:func:`build_perf_report`).
#: Documented in docs/performance.md (cross-checked by
#: tools/check_docs.py).
PERF_REPORT_FIELDS: Tuple[str, ...] = (
    "schema",
    "content_hash",
    "protocol",
    "environment",
    "seed",
    "shards",
    "workers",
    "engine",
    "hotspots",
    "lanes",
    "pool",
)


class PerfProbeProgram(LaneProgram):
    """The lane program ``repro perf`` runs to exercise the worker pool.

    The paper-metric pipeline still executes exact mode in one process
    (shared tracker/server state -- see docs/scaling.md), so pool
    introspection needs a live pool: each lane ticks once per simulated
    second, burns a small deterministic compute kernel (so busy time is
    measurable), emits one row, and pings its ring neighbour two
    lookahead windows out.  Output rows are byte-identical across
    worker counts -- the same contract every lane program carries.
    """

    #: LCG iterations per tick; sized so a probe run's busy time
    #: dominates its barrier overhead without taking seconds.
    SPIN = 400

    def setup(self, lane: Any) -> None:
        """Plant the lane's first tick one simulated second out."""
        lane.post(1.0, self._tick, lane, 0)

    def _tick(self, lane: Any, step: int) -> None:
        acc = (lane.index + 1) * 2654435761 % 2**32
        for _ in range(self.SPIN):
            acc = (acc * 1103515245 + 12345) % 2**31
        lane.emit("probe", step, acc % 97)
        if lane.num_shards > 1:
            lane.send(
                (lane.index + 1) % lane.num_shards,
                lane.now + 2.0 * lane.lookahead_s,
                "probe-ping",
                (step,),
            )
        lane.post(1.0, self._tick, lane, step + 1)

    def on_message(self, lane: Any, message: Any) -> None:
        """Absorb a neighbour's ping (delivery cost is the measurement)."""


def run_pool_probe(
    spec: ExperimentSpec,
    perf: Optional[PoolPerf] = None,
    horizon_s: float = 120.0,
) -> LaneRunResult:
    """Run the pool probe at the spec's requested shard/worker fan-out.

    ``num_shards`` is at least the worker count (a lane is the unit of
    placement), lookahead is a fixed 1.0 s grid.  Pass a
    :class:`PoolPerf` to collect the introspection payload on
    ``result.perf``; pass None for the inert reference run.
    """
    return run_lane_program(
        PerfProbeProgram,
        num_shards=max(spec.shards, spec.workers, 1),
        lookahead_s=1.0,
        horizon_s=horizon_s,
        seed=spec.seed,
        workers=spec.workers,
        perf=perf,
    )


def build_perf_report(
    spec: ExperimentSpec,
    result: ExperimentResult,
    meter: PerfMeter,
    pool: Optional[Dict[str, Any]] = None,
    top_k: int = 10,
) -> Dict[str, Any]:
    """Fold one armed run into the :data:`PERF_REPORT_FIELDS` dict.

    ``pool`` is the :data:`repro.obs.perf.POOL_PERF_FIELDS` payload of
    a pool-probe run (None when ``spec.workers <= 1``).  Unsharded runs
    synthesize a single lane from the engine totals so the lane section
    is always present.
    """
    lanes = meter.lanes()
    if not lanes:
        lanes = [
            {"lane": 0, "events": meter.events, "busy_s": meter.wall_s}
        ]
    return {
        "schema": PERF_SCHEMA_VERSION,
        "content_hash": spec.content_hash(),
        "protocol": spec.protocol,
        "environment": spec.environment,
        "seed": spec.seed,
        "shards": spec.shards,
        "workers": spec.workers,
        "engine": {
            "wall_s": meter.wall_s,
            "events": meter.events,
            "events_per_s": meter.events_per_s(),
            "rows": meter.rows,
            "rows_per_s": meter.rows_per_s(),
            "sim_duration_s": result.sim_duration_s,
        },
        "hotspots": meter.hotspots(top_k),
        "lanes": lanes,
        "pool": pool,
    }


def perf_report_to_json_bytes(report: Dict[str, Any]) -> bytes:
    """Serialize one report to canonical JSON bytes (sorted keys)."""
    return (
        json.dumps(report, sort_keys=True, indent=2, default=str) + "\n"
    ).encode("utf-8")


def perf_filename(spec: ExperimentSpec) -> str:
    """Artifact name keyed by the spec's identity: protocol + hash prefix."""
    return f"perf_{spec.protocol}_{spec.content_hash()[:16]}.json"


def render_perf_report(report: Dict[str, Any]) -> str:
    """The ``python -m repro perf`` human summary as text."""
    engine = report["engine"]
    lines: List[str] = [
        f"perf report (schema {report['schema']}) -- "
        f"{report['protocol']} / {report['environment']} / "
        f"seed {report['seed']} / {report['content_hash'][:16]}",
        f"  engine: {engine['events']} events in {engine['wall_s']:.2f} s "
        f"wall ({engine['events_per_s']:.0f} events/s, "
        f"{engine['rows_per_s']:.0f} rows/s, "
        f"{engine['sim_duration_s'] / 3600.0:.1f} sim hours)",
        "hotspots (attributed wall seconds)",
    ]
    for spot in report["hotspots"]:
        lines.append(
            f"  {spot['name']:<24} {spot['rows']:>9} rows "
            f"{spot['wall_s']:>9.3f} s  {100.0 * spot['share']:>5.1f}%"
        )
    lines.append("lane utilization (busy wall seconds)")
    for lane in report["lanes"]:
        lines.append(
            f"  lane {lane['lane']:<4} {lane['events']:>9} events "
            f"{lane['busy_s']:>9.3f} s busy"
        )
    pool = report.get("pool")
    if pool:
        coord = pool["coordinator"]
        lines.append(
            f"worker pool ({pool['execution']}, {pool['workers']} workers, "
            f"{pool['wall_s']:.2f} s wall)"
        )
        for entry in pool["worker_utilization"]:
            lines.append(
                f"  worker {entry['worker']}: lanes {entry['lanes']} "
                f"busy {entry['busy_s']:.3f} s / idle {entry['idle_s']:.3f} s "
                f"({100.0 * entry['utilization']:.0f}% busy)"
            )
        lines.append(
            f"  coordinator: barrier wait {coord['barrier_wait_s']:.3f} s, "
            f"merge {coord['merge_s']:.3f} s, "
            f"{coord['deliver_messages']} messages over "
            f"{coord['deliver_batches']} batches "
            f"({coord['pipe_payload_bytes']} pipe payload bytes)"
        )
    return "\n".join(lines)


@dataclass
class PerfRun:
    """One armed run: its result, perf report, and (untouched) trace."""

    spec: ExperimentSpec
    result: ExperimentResult
    report: Dict[str, Any]
    jsonl: bytes


def run_perf(
    spec: ExperimentSpec,
    top_k: int = 10,
    probe_horizon_s: float = 120.0,
) -> PerfRun:
    """Execute one spec with the perf layer armed; the ``repro perf`` core.

    Runs the paper-metric pipeline with a live tracer *and* an attached
    :class:`PerfMeter` (the trace bytes stay identical to an unarmed
    ``run_profiled``), then -- when the spec asks for ``workers > 1``
    -- runs the pool probe under a :class:`PoolPerf` for the
    worker-utilization section.

    Example::

        run = run_perf(spec.with_workers(4))
        assert run.report["pool"]["workers"] == 4
    """
    dataset = shared_trace_cache.dataset_for(spec.config.trace)
    tracer = Tracer()
    meter = PerfMeter()
    meter.attach(tracer)
    result = run_spec(spec, dataset=dataset, tracer=tracer, perf=meter)
    jsonl = trace_to_jsonl_bytes(
        trace_header(spec), tracer.rows(), tracer.counters(), tracer.histograms()
    )
    pool: Optional[Dict[str, Any]] = None
    if spec.workers > 1:
        probe = run_pool_probe(
            spec, perf=PoolPerf(), horizon_s=probe_horizon_s
        )
        pool = probe.perf
    report = build_perf_report(spec, result, meter, pool=pool, top_k=top_k)
    return PerfRun(spec=spec, result=result, report=report, jsonl=jsonl)
