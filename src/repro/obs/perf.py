"""Wall-clock performance telemetry: armed-opt-in, inert-by-default.

Every other observability layer in this tree is deliberately
sim-clock-only -- traces, time-series, metrics are pure functions of
the :class:`repro.experiments.spec.ExperimentSpec` and byte-identical
across machines.  This module is the one sanctioned home of the *other*
clock: it measures where **wall** time goes (events/s, per-phase
hotspots, lane busy/idle/barrier-wait breakdowns) so the ROADMAP's
"make the engine fast" work has numbers to aim at.

Three rules keep the determinism story intact:

1. **Hash-neutral by construction.**  Wall-clock readings live only in
   the sidecar perf report (:mod:`repro.obs.perf_report`), keyed by the
   spec's ``content_hash`` -- never in canonical rows, traces, or
   hashes.  Arming a :class:`PerfMeter` must not change a single byte
   of canonical output (``tests/test_obs_perf.py`` diffs it).
2. **Zero-cost when off.**  :data:`NULL_PERF` mirrors the
   :data:`repro.obs.tracer.NULL_TRACER` discipline: it is falsy, so
   every hook in the engine and the worker pool reduces to one
   truthiness check (``if perf: ...``) on the inert path.
3. **Lint-sanctioned namespace.**  The ``wall-clock`` analyzer rule
   bans ``time.perf_counter`` and friends everywhere *except* this
   module (mirroring how ``faults.*`` owns its RNG namespace); other
   modules obtain wall time only through a perf object handed to them.

Example::

    meter = PerfMeter()
    meter.attach(tracer)                  # tee: observes every trace row
    result = run_spec(spec, tracer=tracer, perf=meter)
    print(meter.events_per_s(), meter.hotspots(5))
"""

from __future__ import annotations

import pickle
import time
from typing import Any, Callable, Dict, List, Optional, Tuple

#: Bumped whenever the perf-report shape changes, mirroring the trace
#: schema discipline so stale perf artifacts can never be misread.
PERF_SCHEMA_VERSION = 1

#: Top-level keys of the worker-pool section of a perf report
#: (:meth:`PoolPerf.finalize`).  Documented in docs/performance.md
#: (cross-checked by tools/check_docs.py).
POOL_PERF_FIELDS: Tuple[str, ...] = (
    "execution",
    "workers",
    "wall_s",
    "lanes",
    "worker_utilization",
    "coordinator",
)


class NullPerfMeter:
    """The zero-cost disabled perf meter.

    Implements the armed :class:`PerfMeter` surface with no-op bodies
    and evaluates as *false*, so hot paths guard wall-clock sampling
    with a single truthiness check (``if perf:``) and pay nothing when
    perf is off.  There is one shared instance, :data:`NULL_PERF`; it
    holds no state and is safe to share across schedulers and runs.
    """

    __slots__ = ()

    #: Mirrors :attr:`PerfMeter.enabled`; always False here.
    enabled = False

    def __bool__(self) -> bool:
        return False

    def attach(self, tracer: Any) -> None:
        """No-op; the null meter never observes trace rows."""

    def run_begin(self) -> None:
        """No-op; the null meter never reads a clock."""

    def run_end(self, events: int) -> None:
        """No-op; accepts and discards the engine's event count."""

    def lane_event_begin(self) -> float:
        """No-op begin; returns 0.0 (accepted by :meth:`lane_event_end`)."""
        return 0.0

    def lane_event_end(self, shard: int, began: float) -> None:
        """No-op end; tolerates the 0.0 its begins hand out."""


#: The shared do-nothing perf meter every hook site defaults to.
NULL_PERF = NullPerfMeter()


class PerfMeter:
    """Engine-side wall-clock meter: throughput plus hotspot attribution.

    Two independent feeds:

    * :meth:`attach` installs a pass-through tee on a
      :class:`repro.obs.tracer.Tracer` sink, charging the wall-clock
      delta since the previous row to the current row's span/event name
      -- sampling attribution at the trace's own span boundaries, so
      the sim-clock trace itself is untouched.  Any previously
      installed sink (the time-series collector) keeps receiving every
      row.
    * :meth:`lane_event_begin` / :meth:`lane_event_end` bracket one
      sharded-scheduler event, accumulating per-shard busy wall time
      for the lane-utilization view.

    :meth:`run_begin` / :meth:`run_end` bracket the whole event loop
    for the headline events/s number.
    """

    __slots__ = (
        "_run_began",
        "_wall_s",
        "_events",
        "_rows",
        "_by_name",
        "_span_names",
        "_last_row_t",
        "_lane_busy",
        "_lane_events",
    )

    #: Mirrors :attr:`NullPerfMeter.enabled`; always True here.
    enabled = True

    def __init__(self) -> None:
        self._run_began: Optional[float] = None
        self._wall_s = 0.0
        self._events = 0
        self._rows = 0
        #: name -> [row count, attributed wall seconds]
        self._by_name: Dict[str, List[Any]] = {}
        self._span_names: Dict[int, str] = {}
        self._last_row_t: Optional[float] = None
        self._lane_busy: Dict[int, float] = {}
        self._lane_events: Dict[int, int] = {}

    # -- clock ---------------------------------------------------------------

    @staticmethod
    def clock() -> float:
        """The wall clock every perf consumer reads (monotonic seconds).

        This is the only sanctioned wall-clock source in the tree; the
        lint ``wall-clock`` rule bans direct reads everywhere else.
        """
        return time.perf_counter()

    # -- tracer tee ----------------------------------------------------------

    def attach(self, tracer: Any) -> None:
        """Install the observing tee on ``tracer``'s row sink.

        The previous sink (if any -- e.g. the time-series collector)
        is chained after the meter's observer, so downstream consumers
        see exactly the rows they would have seen unarmed, in the same
        order.  Rows are never mutated.
        """
        previous: Optional[Callable[[Dict[str, Any]], None]] = getattr(
            tracer, "_sink", None
        )
        observe = self._observe_row
        if previous is None:
            tracer.set_sink(observe)
            return

        def tee(row: Dict[str, Any]) -> None:
            """Observe the row, then forward it to the prior sink."""
            observe(row)
            previous(row)

        tracer.set_sink(tee)

    def _observe_row(self, row: Dict[str, Any]) -> None:
        """Charge the wall delta since the previous row to this row's name.

        ``span_end`` rows carry no name; they resolve through the
        span-id map recorded at ``span_begin``, which makes the
        attribution robust to detached spans ending out of order.
        """
        now = time.perf_counter()
        last = self._last_row_t
        self._last_row_t = now
        kind = row.get("kind")
        if kind == "span_begin":
            name = row["name"]
            self._span_names[row["span"]] = name
        elif kind == "span_end":
            name = self._span_names.get(row["span"], "span_end")
        else:
            name = row.get("name") or str(kind)
        entry = self._by_name.get(name)
        if entry is None:
            entry = [0, 0.0]
            self._by_name[name] = entry
        entry[0] += 1
        if last is not None:
            entry[1] += now - last
        self._rows += 1

    # -- run bracket ---------------------------------------------------------

    def run_begin(self) -> None:
        """Mark the start of the event loop (called by the runner)."""
        self._run_began = time.perf_counter()
        self._last_row_t = self._run_began

    def run_end(self, events: int) -> None:
        """Mark the end of the event loop; record its event count."""
        if self._run_began is not None:
            self._wall_s += time.perf_counter() - self._run_began
            self._run_began = None
        self._events += int(events)

    # -- sharded-scheduler lane hooks ----------------------------------------

    def lane_event_begin(self) -> float:
        """Timestamp one sharded event's start; pair with
        :meth:`lane_event_end`."""
        return time.perf_counter()

    def lane_event_end(self, shard: int, began: float) -> None:
        """Accumulate one sharded event's wall time against its shard."""
        self._lane_busy[shard] = self._lane_busy.get(shard, 0.0) + (
            time.perf_counter() - began
        )
        self._lane_events[shard] = self._lane_events.get(shard, 0) + 1

    # -- read-out ------------------------------------------------------------

    @property
    def wall_s(self) -> float:
        """Wall seconds spent inside the event loop."""
        return self._wall_s

    @property
    def events(self) -> int:
        """Engine events processed between run_begin and run_end."""
        return self._events

    @property
    def rows(self) -> int:
        """Trace rows observed by the tee."""
        return self._rows

    def events_per_s(self) -> float:
        """Headline throughput: engine events per wall second."""
        return self._events / self._wall_s if self._wall_s > 0 else 0.0

    def rows_per_s(self) -> float:
        """Trace rows emitted per wall second."""
        return self._rows / self._wall_s if self._wall_s > 0 else 0.0

    def hotspots(self, top_k: int = 10) -> List[Dict[str, Any]]:
        """Top-K span/event names by attributed wall time.

        Each entry is ``{"name", "rows", "wall_s", "share"}`` where
        ``share`` is the fraction of all *attributed* wall time (ties
        break on name, so the ranking is stable for equal timings).
        """
        total = sum(entry[1] for entry in self._by_name.values())
        ranked = sorted(
            self._by_name.items(), key=lambda item: (-item[1][1], item[0])
        )
        return [
            {
                "name": name,
                "rows": entry[0],
                "wall_s": entry[1],
                "share": entry[1] / total if total > 0 else 0.0,
            }
            for name, entry in ranked[: max(0, int(top_k))]
        ]

    def lanes(self) -> List[Dict[str, Any]]:
        """Per-shard busy wall time collected by the lane hooks.

        Empty on unsharded runs (the classic engine carries no lane
        hooks; callers synthesize one lane from the engine totals).
        """
        return [
            {
                "lane": shard,
                "events": self._lane_events.get(shard, 0),
                "busy_s": self._lane_busy[shard],
            }
            for shard in sorted(self._lane_busy)
        ]


class LanePerf:
    """Worker-process-side perf accumulator for the lane pool.

    One instance lives inside each worker process (or one total for
    in-process execution), timing lane windows and barrier deliveries.
    :meth:`snapshot` reduces it to a plain dict that rides back to the
    coordinator on the final ``stats`` control frame -- pickle-safe,
    no live objects cross the pipe.
    """

    __slots__ = ("_started", "_busy_by_lane", "_deliver_s", "_delivered")

    def __init__(self) -> None:
        self._started = time.perf_counter()
        self._busy_by_lane: Dict[int, float] = {}
        self._deliver_s = 0.0
        self._delivered = 0

    @staticmethod
    def clock() -> float:
        """Monotonic wall clock for bracketing lane work."""
        return time.perf_counter()

    def add_busy(self, lane_index: int, began: float) -> None:
        """Charge wall time since ``began`` to one lane's busy total."""
        self._busy_by_lane[lane_index] = self._busy_by_lane.get(
            lane_index, 0.0
        ) + (time.perf_counter() - began)

    def add_deliver(self, began: float, messages: int) -> None:
        """Charge one barrier-delivery batch (wall time + message count)."""
        self._deliver_s += time.perf_counter() - began
        self._delivered += int(messages)

    def snapshot(self) -> Dict[str, Any]:
        """Plain-dict reduction for the ``stats`` control frame."""
        return {
            "wall_s": time.perf_counter() - self._started,
            "busy_s_by_lane": dict(self._busy_by_lane),
            "deliver_s": self._deliver_s,
            "messages_delivered": self._delivered,
        }


class PoolPerf:
    """Coordinator-side perf accumulator for the lane pool.

    Armed by passing an instance to
    :func:`repro.shard.workers.run_lane_program`; the coordinator times
    its barrier waits, mailbox routing (batch sizes and pickled pipe
    payload bytes), and the canonical row merge, then
    :meth:`finalize` folds everything -- including the per-worker
    :class:`LanePerf` snapshots -- into the :data:`POOL_PERF_FIELDS`
    dict that answers "are 4 workers spending 4 cores?".
    """

    __slots__ = (
        "_started",
        "_barrier_wait_s",
        "_merge_s",
        "_deliver_batches",
        "_deliver_messages",
        "_pipe_payload_bytes",
    )

    #: PoolPerf is always armed; the inert path passes ``perf=None``.
    enabled = True

    def __init__(self) -> None:
        self._started = time.perf_counter()
        self._barrier_wait_s = 0.0
        self._merge_s = 0.0
        self._deliver_batches: List[int] = []
        self._deliver_messages = 0
        self._pipe_payload_bytes = 0

    def __bool__(self) -> bool:
        return True

    @staticmethod
    def clock() -> float:
        """Monotonic wall clock for bracketing coordinator work."""
        return time.perf_counter()

    def lane_perf(self) -> LanePerf:
        """A fresh worker-side accumulator (in-process mode uses one)."""
        return LanePerf()

    def add_barrier_wait(self, began: float) -> None:
        """Charge wall time since ``began`` to barrier-reply waiting."""
        self._barrier_wait_s += time.perf_counter() - began

    def add_merge(self, began: float) -> None:
        """Charge wall time since ``began`` to the canonical row merge."""
        self._merge_s += time.perf_counter() - began

    def record_deliver(self, routed: List[List[Any]]) -> None:
        """Record one barrier's routed mailbox batches.

        ``routed`` is the per-worker message batch list; batch sizes
        and pickled payload bytes quantify pipe pressure.  Pickling
        here is measurement overhead the armed path accepts -- the
        inert path never reaches this method.
        """
        for batch in routed:
            if not batch:
                continue
            self._deliver_batches.append(len(batch))
            self._deliver_messages += len(batch)
            self._pipe_payload_bytes += len(
                pickle.dumps(batch, protocol=pickle.HIGHEST_PROTOCOL)
            )

    def finalize(
        self,
        stats: Dict[str, Any],
        lane_stats: List[Tuple[int, int, int, int]],
        worker_snapshots: List[Optional[Dict[str, Any]]],
        assignments: Optional[List[List[int]]] = None,
    ) -> Dict[str, Any]:
        """Fold everything into the :data:`POOL_PERF_FIELDS` dict.

        ``stats`` is the run's :data:`repro.shard.workers.STATS_FIELDS`
        payload, ``lane_stats`` the per-lane counter tuples,
        ``worker_snapshots`` one :meth:`LanePerf.snapshot` per worker
        (None when a worker carried no accumulator), ``assignments``
        the lane->worker layout (None for in-process execution).
        """
        wall_s = time.perf_counter() - self._started
        busy_by_lane: Dict[int, float] = {}
        for snapshot in worker_snapshots:
            if snapshot:
                for lane, busy in snapshot["busy_s_by_lane"].items():
                    busy_by_lane[int(lane)] = busy_by_lane.get(int(lane), 0.0) + busy
        lanes = [
            {
                "lane": index,
                "events": events,
                "messages_sent": sent,
                "rows": emitted,
                "busy_s": busy_by_lane.get(index, 0.0),
            }
            for index, events, sent, emitted in sorted(lane_stats)
        ]
        if assignments is None:
            assignments = [[entry["lane"] for entry in lanes]]
        utilization = []
        for worker, lane_indices in enumerate(assignments):
            snapshot = (
                worker_snapshots[worker] if worker < len(worker_snapshots) else None
            )
            busy = sum(busy_by_lane.get(index, 0.0) for index in lane_indices)
            worker_wall = snapshot["wall_s"] if snapshot else wall_s
            utilization.append(
                {
                    "worker": worker,
                    "lanes": list(lane_indices),
                    "wall_s": worker_wall,
                    "busy_s": busy,
                    "deliver_s": snapshot["deliver_s"] if snapshot else 0.0,
                    "idle_s": max(0.0, worker_wall - busy),
                    "utilization": busy / worker_wall if worker_wall > 0 else 0.0,
                }
            )
        batches = self._deliver_batches
        return {
            "execution": stats["execution"],
            "workers": stats["workers"],
            "wall_s": wall_s,
            "lanes": lanes,
            "worker_utilization": utilization,
            "coordinator": {
                "barrier_wait_s": self._barrier_wait_s,
                "merge_s": self._merge_s,
                "deliver_batches": len(batches),
                "max_batch_messages": max(batches) if batches else 0,
                "deliver_messages": self._deliver_messages,
                "pipe_payload_bytes": self._pipe_payload_bytes,
            },
        }
