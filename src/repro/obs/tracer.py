"""Deterministic, sim-clock-timestamped tracing primitives.

The tracer answers the questions the end-of-run aggregates of
:mod:`repro.metrics` cannot: *which hop of which flood found this
chunk*, *what did prefetching cost node 37*, *where did the run spend
its simulated time*.  Three design rules make traces reproducible:

1. **Sim-clock timestamps only.**  Every row is stamped with the
   virtual time of the bound clock (``EventScheduler.now``), never the
   wall clock, so a trace is a pure function of the
   :class:`repro.experiments.spec.ExperimentSpec` that produced it --
   byte-identical across repeats, seeds permitting, and across
   ``jobs=1`` vs ``jobs=N`` execution.
2. **Deterministic identifiers.**  Span ids are a monotonically
   increasing per-tracer counter; no uuids, no object addresses.
3. **Zero-cost no-op mode.**  :data:`NULL_TRACER` implements the same
   interface with empty bodies and is *falsy*, so hot paths guard
   per-hop instrumentation with a single truthiness check
   (``if tracer: tracer.event(...)``) and pay nothing when tracing is
   off.

Example::

    tracer = Tracer()
    tracer.bind_clock(lambda: scheduler.now)
    with tracer.span("flood.search", node=3, video=77):
        tracer.event("flood.ttl_exhausted", requester=3, ttl=2)
    tracer.count("requests")
    rows = tracer.rows()          # list of dict rows, in emission order
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

#: Bumped whenever the row shape changes, mirroring the spec's
#: ``schema_version`` discipline so stale trace artifacts can never be
#: misread by newer tooling (see DESIGN.md section 8).
TRACE_SCHEMA_VERSION = 1


class _NullSpan:
    """The do-nothing context manager returned by :class:`NullTracer`."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class NullTracer:
    """The zero-cost disabled tracer.

    Implements the full :class:`Tracer` interface with no-op bodies and
    evaluates as *false*, so instrumentation sites can either call it
    directly (cheap) or skip attribute packing entirely behind an
    ``if tracer:`` guard (cheapest).  There is one shared instance,
    :data:`NULL_TRACER`; it holds no state and is safe to share across
    schedulers, protocols, and runs.

    Example::

        tracer = NULL_TRACER
        if tracer:                       # False -- branch not taken
            tracer.event("never", x=1)
        tracer.count("still-a-no-op")    # direct calls are no-ops too
    """

    __slots__ = ()

    #: Mirrors :attr:`Tracer.enabled`; always False here.
    enabled = False

    def __bool__(self) -> bool:
        return False

    #: Mirrors :attr:`Tracer.tick_every_s`; always None here (the null
    #: tracer never asks the engine for window ticks).
    tick_every_s = None

    def bind_clock(self, clock: Callable[[], float]) -> None:
        """No-op; the null tracer never reads a clock."""

    def set_sink(self, sink: Optional[Callable[[Dict[str, Any]], None]]) -> None:
        """No-op; the null tracer emits no rows to stream."""

    def span(self, name: str, **attrs: Any) -> _NullSpan:
        """Return the shared no-op context manager."""
        return _NULL_SPAN

    def begin(self, name: str, **attrs: Any) -> Optional[int]:
        """No-op begin; returns None (accepted by :meth:`end`)."""
        return None

    def begin_detached(self, name: str, **attrs: Any) -> Optional[int]:
        """No-op detached begin; returns None (accepted by :meth:`end`)."""
        return None

    def end(self, span_id: Optional[int], **attrs: Any) -> None:
        """No-op end; tolerates the None ids its begins hand out."""

    def event(self, name: str, **attrs: Any) -> None:
        """No-op point event."""

    def count(self, name: str, delta: float = 1) -> None:
        """No-op counter increment."""

    def observe(self, name: str, value: float) -> None:
        """No-op histogram observation."""


#: The shared do-nothing tracer every instrumented component defaults to.
NULL_TRACER = NullTracer()


class SpanHandle:
    """Context manager for one live span of a real :class:`Tracer`.

    Created by :meth:`Tracer.span`; entering records the ``span_begin``
    row and pushes the span onto the tracer's stack (so rows emitted
    inside nest under it), exiting records ``span_end`` with the
    simulated duration.

    Example::

        with tracer.span("request.serve", node=3, video=77):
            tracer.event("prefetch.lookup", node=3, hit=True)
    """

    __slots__ = ("_tracer", "_name", "_attrs", "_span_id")

    def __init__(self, tracer: "Tracer", name: str, attrs: Dict[str, Any]):
        self._tracer = tracer
        self._name = name
        self._attrs = attrs
        self._span_id: Optional[int] = None

    def __enter__(self) -> "SpanHandle":
        self._span_id = self._tracer._begin(self._name, self._attrs, attach=True)
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> bool:
        self._tracer.end(self._span_id)
        return False


class Tracer:
    """Collects spans, events, counters, and histograms in memory.

    All timestamps come from the bound ``clock`` callable -- wire it to
    ``EventScheduler.now`` via :meth:`bind_clock` (the experiment
    runner does this) so rows carry virtual seconds.  Rows are plain
    dicts in emission order; :mod:`repro.obs.export` turns them into
    the canonical JSONL artifact and profile summaries.

    Example::

        tracer = Tracer(clock=lambda: scheduler.now)
        with tracer.span("flood.search", node=1, video=9, level="inner"):
            tracer.event("flood.hop", depth=1, peer=4)
        tracer.observe("flood.contacted", 7)
        assert tracer.rows()[0]["kind"] == "span_begin"
    """

    __slots__ = ("_clock", "_rows", "_counters", "_hists", "_stack",
                 "_next_span", "_begin_times", "_sink", "tick_every_s")

    #: Mirrors :attr:`NullTracer.enabled`; always True here.
    enabled = True

    def __init__(
        self,
        clock: Optional[Callable[[], float]] = None,
        sink: Optional[Callable[[Dict[str, Any]], None]] = None,
        tick_every_s: Optional[float] = None,
    ):
        self._clock: Callable[[], float] = clock or (lambda: 0.0)
        self._rows: List[Dict[str, Any]] = []
        self._counters: Dict[str, float] = {}
        self._hists: Dict[str, List[float]] = {}
        self._stack: List[int] = []
        self._next_span = 0
        self._begin_times: Dict[int, float] = {}
        self._sink = sink
        #: When set, the experiment runner asks the engine to emit one
        #: ``engine.tick`` row per ``tick_every_s`` of virtual time (the
        #: gauge samples behind repro.obs.timeseries); None disables.
        self.tick_every_s = tick_every_s

    def bind_clock(self, clock: Callable[[], float]) -> None:
        """Point timestamps at a (virtual) clock, e.g. ``lambda: sched.now``."""
        self._clock = clock

    def set_sink(self, sink: Optional[Callable[[Dict[str, Any]], None]]) -> None:
        """Stream every future row to ``sink(row)`` as it is emitted.

        The sink sees exactly the rows :meth:`rows` accumulates, in the
        same order and at emission time -- the live feed consumed by
        :class:`repro.obs.timeseries.TimeSeriesCollector`.  Rows must be
        treated as read-only: mutating them would corrupt the trace.
        """
        self._sink = sink

    # -- spans ---------------------------------------------------------------

    def span(self, name: str, **attrs: Any) -> SpanHandle:
        """A ``with``-able span; begin/end rows bracket the body.

        Example::

            with tracer.span("transfer.chunks", source="peer", node=2):
                ...
        """
        return SpanHandle(self, name, attrs)

    def _begin(self, name: str, attrs: Dict[str, Any], attach: bool) -> int:
        span_id = self._next_span
        self._next_span += 1
        now = self._clock()
        parent = self._stack[-1] if self._stack else None
        row: Dict[str, Any] = {
            "t": now, "kind": "span_begin", "name": name, "span": span_id,
        }
        if parent is not None:
            row["parent"] = parent
        if attrs:
            row["attrs"] = attrs
        self._rows.append(row)
        if self._sink is not None:
            self._sink(row)
        self._begin_times[span_id] = now
        if attach:
            self._stack.append(span_id)
        return span_id

    def begin(self, name: str, **attrs: Any) -> int:
        """Open a span explicitly; pair with :meth:`end`.

        The span joins the nesting stack, so prefer :meth:`span` unless
        control flow (early returns, callbacks) makes ``with`` awkward.
        Returns the span id.
        """
        return self._begin(name, attrs, attach=True)

    def begin_detached(self, name: str, **attrs: Any) -> int:
        """Open a span that will end in a *different* event callback.

        The span records its parent (the innermost open span at begin
        time) but is not pushed onto the nesting stack, so spans opened
        afterwards do not nest under it and :meth:`end` may arrive in
        any order.  This is the shape of asynchronous work: a chunk
        transfer that completes when playback finishes, a flood message
        in flight.  Returns the span id.

        Example::

            sid = tracer.begin_detached("request.stream", node=7, source="peer")
            scheduler.schedule(watch_time, finish, sid)   # later: tracer.end(sid)
        """
        return self._begin(name, attrs, attach=False)

    def end(self, span_id: Optional[int], **attrs: Any) -> None:
        """Close a span by id, recording its simulated duration.

        ``None`` (what :class:`NullTracer` begins return) is ignored, so
        call sites never need to branch on which tracer they hold.
        """
        if span_id is None:
            return
        now = self._clock()
        began = self._begin_times.pop(span_id, now)
        row: Dict[str, Any] = {
            "t": now, "kind": "span_end", "span": span_id,
            "dur": now - began,
        }
        if attrs:
            row["attrs"] = attrs
        self._rows.append(row)
        if self._sink is not None:
            self._sink(row)
        if span_id in self._stack:
            self._stack.remove(span_id)

    # -- events, counters, histograms ---------------------------------------

    def event(self, name: str, **attrs: Any) -> None:
        """Record one point-in-time row under the innermost open span.

        Example::

            tracer.event("churn.leave", node=12)
        """
        row: Dict[str, Any] = {"t": self._clock(), "kind": "event", "name": name}
        if self._stack:
            row["parent"] = self._stack[-1]
        if attrs:
            row["attrs"] = attrs
        self._rows.append(row)
        if self._sink is not None:
            self._sink(row)

    def count(self, name: str, delta: float = 1) -> None:
        """Add ``delta`` to a named counter (aggregated, not per-row)."""
        self._counters[name] = self._counters.get(name, 0) + delta

    def observe(self, name: str, value: float) -> None:
        """Append one observation to a named histogram."""
        self._hists.setdefault(name, []).append(float(value))

    # -- read-out ------------------------------------------------------------

    def rows(self) -> List[Dict[str, Any]]:
        """The recorded rows, in emission order (a shallow copy)."""
        return list(self._rows)

    def counters(self) -> Dict[str, float]:
        """Snapshot of every counter's current value."""
        return dict(self._counters)

    def histograms(self) -> Dict[str, List[float]]:
        """Snapshot of every histogram's raw observations."""
        return {name: list(values) for name, values in self._hists.items()}

    def open_spans(self) -> int:
        """Number of spans begun but not yet ended (0 after a clean run)."""
        return len(self._begin_times)
