"""Observability: deterministic tracing and profiling (`repro.obs`).

* :mod:`repro.obs.tracer` -- the span/event/counter/histogram API with
  sim-clock timestamps and a zero-cost :data:`NULL_TRACER` no-op mode.
* :mod:`repro.obs.export` -- canonical JSONL trace export keyed by
  ``ExperimentSpec.content_hash`` plus the profile summary behind
  ``python -m repro profile``.

This ``__init__`` deliberately re-exports only the tracer primitives:
:mod:`repro.obs.export` pulls in the experiment runner, and the
substrates (``sim.engine`` et al.) import the tracer, so importing the
export layer here would create a cycle.  Import it explicitly::

    from repro.obs import Tracer, NULL_TRACER
    from repro.obs.export import run_profiled
"""

from repro.obs.tracer import (
    NULL_TRACER,
    TRACE_SCHEMA_VERSION,
    NullTracer,
    SpanHandle,
    Tracer,
)

__all__ = [
    "NULL_TRACER",
    "TRACE_SCHEMA_VERSION",
    "NullTracer",
    "SpanHandle",
    "Tracer",
]
