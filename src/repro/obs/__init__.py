"""Observability: deterministic tracing and profiling (`repro.obs`).

* :mod:`repro.obs.tracer` -- the span/event/counter/histogram API with
  sim-clock timestamps and a zero-cost :data:`NULL_TRACER` no-op mode.
* :mod:`repro.obs.export` -- canonical JSONL trace export keyed by
  ``ExperimentSpec.content_hash`` plus the profile summary behind
  ``python -m repro profile``.
* :mod:`repro.obs.perf` -- the sanctioned wall-clock telemetry layer
  (hash-neutral, inert behind the falsy :data:`NULL_PERF`), and
  :mod:`repro.obs.perf_report` -- the sidecar perf report behind
  ``python -m repro perf``.

This ``__init__`` deliberately re-exports only the leaf primitives:
:mod:`repro.obs.export` and :mod:`repro.obs.perf_report` pull in the
experiment runner, and the substrates (``sim.engine`` et al.) import
the tracer/perf layers, so importing the report layers here would
create a cycle.  Import them explicitly::

    from repro.obs import Tracer, NULL_TRACER, PerfMeter, NULL_PERF
    from repro.obs.export import run_profiled
    from repro.obs.perf_report import run_perf
"""

from repro.obs.perf import (
    NULL_PERF,
    PERF_SCHEMA_VERSION,
    LanePerf,
    NullPerfMeter,
    PerfMeter,
    PoolPerf,
)
from repro.obs.tracer import (
    NULL_TRACER,
    TRACE_SCHEMA_VERSION,
    NullTracer,
    SpanHandle,
    Tracer,
)

__all__ = [
    "NULL_PERF",
    "NULL_TRACER",
    "PERF_SCHEMA_VERSION",
    "TRACE_SCHEMA_VERSION",
    "LanePerf",
    "NullPerfMeter",
    "NullTracer",
    "PerfMeter",
    "PoolPerf",
    "SpanHandle",
    "Tracer",
]
