"""Self-contained static HTML dashboard over the windowed time series.

``python -m repro dashboard <protocol> [--compare ...]`` renders one
HTML file -- inline CSS + inline SVG, zero runtime dependencies, no
external fonts or scripts -- showing the trends the paper's evaluation
argues from: server chunk share falling as the overlays warm up (Figs
9-11), startup delay and stall rate over time (Figs 12-13), churn and
maintenance load (Fig 18).  In compare mode the same charts overlay
every protocol, one fixed color per protocol.

Rendering discipline:

* **Deterministic bytes.** The HTML is a pure function of the
  :class:`DashboardRun` payloads, which are pure functions of their
  specs -- no wall-clock timestamps, no environment probes -- so
  ``--jobs 1`` and ``--jobs 2`` builds are byte-identical (tested by
  ``tests/test_obs_report.py`` and diffed in CI).
* **Color carries identity, text carries values.**  Protocols own
  fixed palette slots (color follows the entity, never its position in
  a particular run list); all text is ink-colored.  The palette's
  adjacent pairs are colorblind-validated; dark mode is a selected
  palette behind ``prefers-color-scheme``, not an automatic flip.
* **Nothing is hover-gated.**  Charts carry a CSS-only crosshair +
  tooltip layer (every series' value at the hovered window), and every
  plotted number is also reachable in the per-run data tables.
"""

from __future__ import annotations

import html
import multiprocessing
import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Sequence, Tuple

from repro.experiments.spec import ExperimentSpec
from repro.experiments.trace_cache import shared_trace_cache
from repro.obs.timeseries import (
    DEFAULT_WINDOW_S,
    TimeSeriesTable,
    run_with_timeseries,
)

#: Fixed palette slot per protocol (light, dark) -- the entity->color
#: contract.  Slots are the first three of the validated categorical
#: order (blue, orange, aqua), which clear the colorblind floors on
#: every pairlist; extra/unknown protocols take the later slots.
PROTOCOL_COLORS: Dict[str, Tuple[str, str]] = {
    "socialtube": ("#2a78d6", "#3987e5"),
    "nettube": ("#eb6834", "#d95926"),
    "pavod": ("#1baf7a", "#199e70"),
}

#: Later validated categorical slots, handed to protocols (or cluster
#: series) beyond the three the paper compares, in fixed order.
_EXTRA_SLOTS: Tuple[Tuple[str, str], ...] = (
    ("#eda100", "#c98500"),
    ("#e87ba4", "#d55181"),
    ("#008300", "#008300"),
    ("#4a3aa7", "#9085e9"),
    ("#e34948", "#e66767"),
)

#: The charted per-window fields: (field, chart title, y-axis hint).
CHART_METRICS: Tuple[Tuple[str, str, str], ...] = (
    ("server_share", "Server chunk share", "fraction of shared chunks"),
    ("active_sessions", "Active sessions", "users in a session"),
    ("requests", "Video requests", "per window"),
    ("startup_ms_mean", "Mean startup delay", "ms"),
    ("stall_rate", "Stalled-watch rate", "fraction of reports"),
    ("search_hops_mean", "Mean search hops", "hops to hit"),
    ("overlay_links", "Overlay links (total)", "maintained links"),
    ("tracker_lookups", "Tracker lookups", "per window"),
    ("server_requests", "Server fallback serves", "per window"),
)

#: Extra per-window fields charted only for fault-injected runs (their
#: tables carry the fault-recovery columns; fault-free dashboards are
#: byte-identical to pages predating repro.faults).
FAULT_CHART_METRICS: Tuple[Tuple[str, str, str], ...] = (
    ("crashes", "Node crashes", "per window"),
    ("interrupted", "Interrupted transfers", "per window"),
    ("failover_resumes", "Failover resumes (peer)", "per window"),
    ("failover_server", "Failover server finishes", "per window"),
    ("failover_latency_ms_mean", "Mean failover latency", "ms"),
    ("repaired_links", "Crash-repaired links", "per window"),
)

#: Headline scalar columns shown in the metrics table: (key, label).
SCALAR_COLUMNS: Tuple[Tuple[str, str], ...] = (
    ("startup_delay_ms_mean", "startup ms (mean)"),
    ("peer_bandwidth_p50", "peer bw p50"),
    ("server_fallback_fraction", "server frac"),
    ("prefetch_hit_fraction", "prefetch hit"),
    ("mean_continuity_index", "continuity"),
    ("stall_fraction", "stalled watches"),
    ("mean_stall_ms", "mean stall ms"),
)

_PLOT = {"x0": 46.0, "x1": 544.0, "y0": 16.0, "y1": 206.0, "w": 560, "h": 240}


@dataclass
class DashboardRun:
    """One run's dashboard payload: identity, headline scalars, series.

    Deliberately plain (dataclass of builtins + the series table) so
    pool workers can pickle it back and rendering stays a pure
    function of a list of these.
    """

    protocol: str
    environment: str
    seed: int
    content_hash: str
    scalars: Dict[str, float] = field(default_factory=dict)
    table: TimeSeriesTable = field(default_factory=lambda: TimeSeriesTable(1.0, ""))


def _scalars_of(result) -> Dict[str, float]:
    """Headline scalars of an :class:`ExperimentResult` for the tiles/table."""
    metrics = result.metrics
    return {
        "startup_delay_ms_mean": metrics.startup_delay_ms_mean,
        "peer_bandwidth_p50": metrics.peer_bandwidth_p50,
        "server_fallback_fraction": metrics.server_fallback_fraction,
        "prefetch_hit_fraction": metrics.prefetch_hit_fraction,
        "mean_continuity_index": metrics.mean_continuity_index,
        "stall_fraction": metrics.stall_fraction,
        "mean_stall_ms": metrics.mean_stall_ms,
    }


def dashboard_run(spec: ExperimentSpec, window_s: float = DEFAULT_WINDOW_S) -> DashboardRun:
    """Execute one spec and fold it into a :class:`DashboardRun`."""
    run = run_with_timeseries(
        spec,
        window_s=window_s,
        dataset=shared_trace_cache.dataset_for(spec.config.trace),
    )
    return DashboardRun(
        protocol=spec.protocol,
        environment=spec.environment,
        seed=spec.seed,
        content_hash=spec.content_hash(),
        scalars=_scalars_of(run.result),
        table=run.table,
    )


def _dashboard_worker(task: Tuple[ExperimentSpec, float]) -> DashboardRun:
    """Pool worker: one spec -> one picklable :class:`DashboardRun`."""
    spec, window_s = task
    return dashboard_run(spec, window_s=window_s)


def collect_dashboard_runs(
    specs: Sequence[ExperimentSpec],
    window_s: float = DEFAULT_WINDOW_S,
    jobs: int = 1,
) -> List[DashboardRun]:
    """Collect dashboard payloads for several specs, serially or pooled.

    ``jobs>1`` uses the same process-pool shape as
    :func:`repro.experiments.parallel.run_sweep`; each payload is a
    pure function of its spec, so the worker layout cannot change the
    rendered dashboard (CI diffs the HTML across ``--jobs 1/2``).
    """
    tasks = [(spec, window_s) for spec in specs]
    if jobs <= 1:
        return [_dashboard_worker(task) for task in tasks]
    with multiprocessing.Pool(processes=min(jobs, len(tasks))) as pool:
        return pool.map(_dashboard_worker, tasks, chunksize=1)


# ---------------------------------------------------------------------------
# formatting helpers


def _fmt(value: Any) -> str:
    """Human-scale deterministic number formatting for labels/tables."""
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, int) or (isinstance(value, float) and value == int(value)):
        return f"{int(value):,}"
    if abs(value) < 1:
        return f"{value:.3f}"
    if abs(value) < 100:
        return f"{value:.1f}"
    return f"{value:,.0f}"


def _nice_ceiling(value: float) -> float:
    """Smallest 1/2/5 x 10^k at or above ``value`` (clean axis maxima)."""
    if value <= 0:
        return 1.0
    magnitude = 1.0
    while magnitude < value:
        magnitude *= 10.0
    while magnitude / 10.0 >= value:
        magnitude /= 10.0
    for factor in (0.1, 0.2, 0.5, 1.0):
        if magnitude * factor >= value:
            return magnitude * factor
    return magnitude


def _color_for(protocol: str, taken: Dict[str, Tuple[str, str]]) -> Tuple[str, str]:
    """The (light, dark) pair owned by ``protocol`` (stable across runs)."""
    if protocol in PROTOCOL_COLORS:
        return PROTOCOL_COLORS[protocol]
    if protocol not in taken:
        taken[protocol] = _EXTRA_SLOTS[len(taken) % len(_EXTRA_SLOTS)]
    return taken[protocol]


# ---------------------------------------------------------------------------
# SVG line chart


def _line_chart(
    chart_id: str,
    title: str,
    hint: str,
    series: List[Dict[str, Any]],
    window_s: float,
) -> str:
    """One metric card: legend (if >1 series), SVG lines, hover layer.

    ``series`` entries are ``{"label", "css" (a CSS class carrying the
    stroke/fill color), "values"}``; all series share the x grid (window
    index) and one y scale.  The hover layer is CSS-only: one invisible
    band per window whose ``:hover`` reveals a crosshair plus a tooltip
    listing every series' value at that window.
    """
    x0, x1, y0, y1 = _PLOT["x0"], _PLOT["x1"], _PLOT["y0"], _PLOT["y1"]
    n = max(len(entry["values"]) for entry in series) if series else 0
    if n == 0:
        return ""
    span = max(n - 1, 1)
    y_max = _nice_ceiling(
        max((max(entry["values"]) for entry in series if entry["values"]), default=1.0)
    )

    def x_at(i: int) -> float:
        return x0 + (x1 - x0) * i / span

    def y_at(v: float) -> float:
        return y1 - (y1 - y0) * (v / y_max)

    parts: List[str] = []
    parts.append(f'<div class="card" id="{html.escape(chart_id)}">')
    parts.append(
        f'<div class="chart-head"><span class="chart-title">{html.escape(title)}</span>'
        f'<span class="chart-hint">{html.escape(hint)}</span></div>'
    )
    if len(series) > 1:
        keys = "".join(
            f'<span class="lg"><svg width="14" height="6" aria-hidden="true">'
            f'<line x1="1" y1="3" x2="13" y2="3" class="{entry["css"]}" '
            f'stroke-width="2.5" stroke-linecap="round"/></svg>'
            f"{html.escape(entry['label'])}</span>"
            for entry in series
        )
        parts.append(f'<div class="legend">{keys}</div>')
    parts.append(
        f'<svg viewBox="0 0 {_PLOT["w"]} {_PLOT["h"]}" role="img" '
        f'aria-label="{html.escape(title)}">'
    )
    # Gridlines + y ticks (labels at 0 / half / max).
    for frac in (0.0, 0.25, 0.5, 0.75, 1.0):
        gy = y1 - (y1 - y0) * frac
        cls = "axis" if frac == 0.0 else "grid"
        parts.append(
            f'<line x1="{x0}" y1="{gy:.1f}" x2="{x1}" y2="{gy:.1f}" class="{cls}"/>'
        )
        if frac in (0.0, 0.5, 1.0):
            parts.append(
                f'<text x="{x0 - 6}" y="{gy + 3.5:.1f}" class="tick" '
                f'text-anchor="end">{_fmt(y_max * frac)}</text>'
            )
    # X ticks: every ~sixth window, as minutes of virtual time.
    stride = max(1, n // 6)
    for i in range(0, n, stride):
        parts.append(
            f'<text x="{x_at(i):.1f}" y="{y1 + 16:.1f}" class="tick" '
            f'text-anchor="middle">{_fmt(i * window_s / 60.0)}m</text>'
        )
    # Series lines + ringed end markers.
    for entry in series:
        values = entry["values"]
        points = " ".join(
            f"{x_at(i):.1f},{y_at(v):.1f}" for i, v in enumerate(values)
        )
        parts.append(
            f'<polyline points="{points}" fill="none" class="{entry["css"]}" '
            f'stroke-width="2" stroke-linejoin="round" stroke-linecap="round"/>'
        )
        if values:
            i = len(values) - 1
            parts.append(
                f'<circle cx="{x_at(i):.1f}" cy="{y_at(values[i]):.1f}" r="4" '
                f'class="dot {entry["css"]}"/>'
            )
    # CSS-only hover layer: one band per window.
    band = (x1 - x0) / span
    tip_w = 164.0
    tip_h = 20.0 + 15.0 * len(series)
    for i in range(n):
        cx = x_at(i)
        left = max(x0, cx - band / 2.0)
        right = min(x1, cx + band / 2.0)
        tx = cx + 10.0 if cx + 10.0 + tip_w <= x1 else cx - 10.0 - tip_w
        ty = y0 + 4.0
        rows = [
            f'<text x="{tx + 8:.1f}" y="{ty + 14:.1f}" class="tipt">'
            f"window {i} &#183; {_fmt(i * window_s / 60.0)}m</text>"
        ]
        for j, entry in enumerate(series):
            ly = ty + 30.0 + 15.0 * j
            value = entry["values"][i] if i < len(entry["values"]) else 0
            rows.append(
                f'<line x1="{tx + 8:.1f}" y1="{ly - 3.5:.1f}" x2="{tx + 20:.1f}" '
                f'y2="{ly - 3.5:.1f}" class="{entry["css"]}" stroke-width="2.5" '
                f'stroke-linecap="round"/>'
            )
            rows.append(
                f'<text x="{tx + 26:.1f}" y="{ly:.1f}" class="tipv">{_fmt(value)}'
                f'<tspan class="tips"> {html.escape(entry["label"])}</tspan></text>'
            )
        parts.append(
            '<g class="hb">'
            f'<rect x="{left:.1f}" y="{y0}" width="{max(right - left, 1.0):.1f}" '
            f'height="{y1 - y0}" class="hit"/>'
            f'<line x1="{cx:.1f}" y1="{y0}" x2="{cx:.1f}" y2="{y1}" class="ch"/>'
            f'<g class="tip"><rect x="{tx:.1f}" y="{ty:.1f}" width="{tip_w}" '
            f'height="{tip_h:.1f}" rx="4" class="tipbox"/>{"".join(rows)}</g>'
            "</g>"
        )
    parts.append("</svg></div>")
    return "".join(parts)


def _cluster_series(table: TimeSeriesTable, top: int = 4) -> List[Dict[str, Any]]:
    """Per-cluster request series: the ``top`` busiest clusters + Other.

    Folding beyond ``top`` keeps the chart within the palette slots
    that stay distinguishable; "Other" wears the muted gray so it never
    competes with a real cluster.
    """
    totals = [
        (sum(table.cluster_series(cid)), cid) for cid in table.cluster_ids()
    ]
    totals.sort(key=lambda item: (-item[0], int(item[1])))
    keep = [cid for _total, cid in totals[:top]]
    rest = [cid for _total, cid in totals[top:]]
    series: List[Dict[str, Any]] = []
    for rank, cid in enumerate(keep):
        series.append(
            {
                "label": f"cluster {cid}",
                "css": f"ck{rank}",
                "values": table.cluster_series(cid),
            }
        )
    if rest:
        other = [0] * table.num_windows
        for cid in rest:
            for i, value in enumerate(table.cluster_series(cid)):
                other[i] += value
        series.append({"label": "other", "css": "ckx", "values": other})
    return series


# ---------------------------------------------------------------------------
# page assembly


def _page_css(runs: List[DashboardRun]) -> str:
    """The inline stylesheet: chrome tokens, per-protocol series classes."""
    taken: Dict[str, Tuple[str, str]] = {}
    light_rules = []
    dark_rules = []
    for run in runs:
        light, dark = _color_for(run.protocol, taken)
        css = f"s-{run.protocol}"
        light_rules.append(f".{css}{{stroke:{light};fill:{light}}}")
        dark_rules.append(f".{css}{{stroke:{dark};fill:{dark}}}")
    cluster_slots = (
        ("ck0", "#2a78d6", "#3987e5"),
        ("ck1", "#eb6834", "#d95926"),
        ("ck2", "#1baf7a", "#199e70"),
        ("ck3", "#eda100", "#c98500"),
        ("ckx", "#898781", "#898781"),
    )
    for css, light, dark in cluster_slots:
        light_rules.append(f".{css}{{stroke:{light};fill:{light}}}")
        dark_rules.append(f".{css}{{stroke:{dark};fill:{dark}}}")
    return f"""
:root {{
  color-scheme: light;
  --surface: #fcfcfb; --plane: #f9f9f7;
  --ink: #0b0b0b; --ink2: #52514e; --muted: #898781;
  --grid: #e1e0d9; --axis: #c3c2b7;
  --ring: rgba(11,11,11,0.10);
}}
@media (prefers-color-scheme: dark) {{
  :root {{
    color-scheme: dark;
    --surface: #1a1a19; --plane: #0d0d0d;
    --ink: #ffffff; --ink2: #c3c2b7; --muted: #898781;
    --grid: #2c2c2a; --axis: #383835;
    --ring: rgba(255,255,255,0.10);
  }}
  {' '.join(dark_rules)}
}}
* {{ box-sizing: border-box; }}
body {{
  margin: 0; padding: 24px; background: var(--plane); color: var(--ink);
  font-family: system-ui, -apple-system, "Segoe UI", sans-serif; font-size: 14px;
}}
h1 {{ font-size: 20px; margin: 0 0 4px; }}
.sub {{ color: var(--ink2); margin-bottom: 20px; }}
.sub code {{ font-size: 12px; color: var(--muted); }}
.tiles {{ display: flex; flex-wrap: wrap; gap: 12px; margin-bottom: 20px; }}
.tile {{
  background: var(--surface); border: 1px solid var(--ring); border-radius: 8px;
  padding: 12px 16px; min-width: 150px;
}}
.tile .lbl {{ color: var(--ink2); font-size: 12px; }}
.tile .val {{ font-size: 28px; font-weight: 600; margin-top: 2px; }}
.grid2 {{ display: grid; grid-template-columns: repeat(auto-fill, minmax(420px, 1fr));
         gap: 16px; }}
.card {{ background: var(--surface); border: 1px solid var(--ring);
        border-radius: 8px; padding: 14px 14px 6px; }}
.chart-head {{ display: flex; justify-content: space-between; align-items: baseline; }}
.chart-title {{ font-weight: 600; }}
.chart-hint {{ color: var(--muted); font-size: 12px; }}
.legend {{ display: flex; gap: 14px; margin: 6px 0 2px; color: var(--ink2);
          font-size: 12px; }}
.lg {{ display: inline-flex; align-items: center; gap: 5px; }}
svg {{ width: 100%; height: auto; display: block; }}
.grid {{ stroke: var(--grid); stroke-width: 1; }}
.axis {{ stroke: var(--axis); stroke-width: 1; }}
.tick {{ fill: var(--muted); font-size: 10px; font-variant-numeric: tabular-nums; }}
.dot {{ stroke: var(--surface); stroke-width: 2; }}
.hit {{ fill: transparent; }}
.ch {{ stroke: var(--muted); stroke-width: 1; }}
.tip, .ch {{ opacity: 0; pointer-events: none; transition: opacity .08s; }}
.hb:hover .tip, .hb:hover .ch {{ opacity: 1; }}
.tipbox {{ fill: var(--surface); stroke: var(--grid); }}
.tipt {{ fill: var(--ink2); font-size: 10px; }}
.tipv {{ fill: var(--ink); font-size: 11px; font-weight: 600;
        font-variant-numeric: tabular-nums; }}
.tips {{ fill: var(--ink2); font-weight: 400; }}
table {{ border-collapse: collapse; background: var(--surface);
        border: 1px solid var(--ring); border-radius: 8px; margin-bottom: 20px; }}
th, td {{ padding: 6px 12px; text-align: right; font-variant-numeric: tabular-nums; }}
th {{ color: var(--ink2); font-weight: 600; border-bottom: 1px solid var(--grid); }}
td:first-child, th:first-child {{ text-align: left; }}
details {{ margin: 16px 0; }}
summary {{ cursor: pointer; color: var(--ink2); }}
details table {{ font-size: 12px; margin-top: 8px; }}
{' '.join(light_rules)}
"""


def _scalar_table(runs: List[DashboardRun]) -> str:
    """The headline metrics table: one row per run, the full metric set."""
    head = "".join(f"<th>{html.escape(label)}</th>" for _key, label in SCALAR_COLUMNS)
    body = []
    for run in runs:
        cells = "".join(
            f"<td>{_fmt(run.scalars.get(key, 0.0))}</td>" for key, _label in SCALAR_COLUMNS
        )
        body.append(f"<tr><td>{html.escape(run.protocol)}</td>{cells}</tr>")
    return f"<table><tr><th>protocol</th>{head}</tr>{''.join(body)}</table>"


def _has_fault_columns(run: DashboardRun) -> bool:
    """True when the run's windows carry the fault-recovery columns."""
    return bool(run.table.windows) and "crashes" in run.table.windows[0]


def _window_table(run: DashboardRun) -> str:
    """Collapsible per-window data table (the no-hover path to every value)."""
    fields = [name for name, _title, _hint in CHART_METRICS]
    if _has_fault_columns(run):
        fields.extend(name for name, _title, _hint in FAULT_CHART_METRICS)
    head = "".join(f"<th>{html.escape(name)}</th>" for name in fields)
    body = []
    for record in run.table.windows:
        cells = "".join(f"<td>{_fmt(record[name])}</td>" for name in fields)
        body.append(f"<tr><td>{record['window']}</td>{cells}</tr>")
    return (
        f"<details><summary>Window data &#8212; {html.escape(run.protocol)} "
        f"({run.table.num_windows} windows)</summary>"
        f"<table><tr><th>window</th>{head}</tr>{''.join(body)}</table></details>"
    )


def render_dashboard(runs: List[DashboardRun], window_s: float = DEFAULT_WINDOW_S) -> str:
    """The full dashboard page for one or more runs, as an HTML string.

    Single run: headline tiles + per-metric charts + the run's
    per-cluster request-load chart.  Multiple runs: the same charts
    with one line per protocol (fixed protocol colors), the scalar
    comparison table, and one cluster chart per run.
    """
    if not runs:
        raise ValueError("render_dashboard needs at least one run")
    primary = runs[0]
    title = " vs ".join(run.protocol for run in runs)
    hashes = ", ".join(f"{run.protocol}:{run.content_hash[:12]}" for run in runs)
    parts: List[str] = []
    parts.append(
        "<!DOCTYPE html>\n<html lang=\"en\"><head><meta charset=\"utf-8\">"
        f"<title>{html.escape(title)} &#8212; time series</title>"
        f"<style>{_page_css(runs)}</style></head><body>"
    )
    parts.append(f"<h1>{html.escape(title)} &#8212; sim-clock time series</h1>")
    parts.append(
        f'<div class="sub">window {_fmt(window_s)}s &#183; seed {primary.seed} '
        f"&#183; environment {html.escape(primary.environment)} &#183; "
        f"<code>{html.escape(hashes)}</code></div>"
    )
    tiles = (
        ("Startup delay", f"{_fmt(primary.scalars.get('startup_delay_ms_mean', 0.0))} ms"),
        ("Server fraction", _fmt(primary.scalars.get("server_fallback_fraction", 0.0))),
        ("Continuity index", _fmt(primary.scalars.get("mean_continuity_index", 0.0))),
        ("Stalled watches", _fmt(primary.scalars.get("stall_fraction", 0.0))),
    )
    tile_html = "".join(
        f'<div class="tile"><div class="lbl">{html.escape(label)} '
        f"&#8212; {html.escape(primary.protocol)}</div>"
        f'<div class="val">{value}</div></div>'
        for label, value in tiles
    )
    parts.append(f'<div class="tiles">{tile_html}</div>')
    parts.append(_scalar_table(runs))
    parts.append('<div class="grid2">')
    metrics = list(CHART_METRICS)
    if all(_has_fault_columns(run) for run in runs):
        metrics.extend(FAULT_CHART_METRICS)
    for name, chart_title, hint in metrics:
        series = [
            {
                "label": run.protocol,
                "css": f"s-{run.protocol}",
                "values": run.table.series(name),
            }
            for run in runs
        ]
        parts.append(_line_chart(f"m-{name}", chart_title, hint, series, window_s))
    for run in runs:
        parts.append(
            _line_chart(
                f"c-{run.protocol}",
                f"Per-cluster request load &#8212; {run.protocol}",
                "requests per window",
                _cluster_series(run.table),
                window_s,
            )
        )
    parts.append("</div>")
    for run in runs:
        parts.append(_window_table(run))
    parts.append("</body></html>\n")
    return "".join(parts)


def dashboard_filename(runs: Sequence[DashboardRun]) -> str:
    """Artifact name keyed by the compared protocols + primary hash."""
    protocols = "_vs_".join(run.protocol for run in runs)
    return f"dashboard_{protocols}_{runs[0].content_hash[:12]}.html"


def write_dashboard(path: str, content: str) -> str:
    """Write dashboard HTML to ``path`` (creating parents); returns ``path``."""
    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(content)
    return path
