# shard: module=shard-local -- instances live and die inside one run/shard
"""Event-driven simulation kernel.

The engine is a classic calendar-queue simulator: a binary heap of
``(fire_time, sequence_number, Event, generation)`` entries and a
virtual clock that jumps from event to event.  Determinism matters for
a reproduction, so

* ties in fire time are broken by a monotonically increasing sequence
  number (FIFO among simultaneous events), and
* the engine itself never consumes randomness -- randomness lives in
  :mod:`repro.sim.rng` and is injected by callers.

Cancellation is O(1): events carry a ``cancelled`` flag and are skipped
lazily when popped, which is the standard approach for simulators with
many speculative timers (e.g. neighbor probes that are rescheduled).
Rescheduling is the same trick one level up: each heap entry is stamped
with the event's *generation* at push time, and :meth:`Event.reschedule`
bumps the generation, so the stale entry dies in place and exactly one
new entry is pushed -- no paired cancel-then-schedule, no second handle
object.  To keep lazy deletion honest under heavy rescheduling the heap
is *compacted* -- rebuilt without dead entries -- whenever dead entries
outnumber live ones, so memory stays proportional to the number of
pending events rather than the number ever cancelled.  Compaction
preserves each entry's ``(fire_time, sequence)`` key, so FIFO ordering
among simultaneous events is unaffected.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional, Tuple

from repro.obs.tracer import NULL_TRACER


class SimulationError(RuntimeError):
    """Raised for invalid uses of the simulation kernel.

    Examples: scheduling an event in the past, or running a scheduler
    that was already stopped with an inconsistent horizon.
    """


class Event:
    """A scheduled callback.

    Instances are returned by :meth:`EventScheduler.schedule` and can be
    cancelled or rescheduled before they fire.  An event fires at most
    once per arming; :meth:`reschedule` re-arms it.
    """

    __slots__ = ("time", "fn", "args", "cancelled", "fired", "_generation", "_scheduler")

    def __init__(self, time: float, fn: Callable[..., Any], args: Tuple[Any, ...]):
        self.time = time
        self.fn = fn
        self.args = args
        self.cancelled = False
        self.fired = False
        #: Bumped by :meth:`reschedule`; heap entries stamped with an
        #: older generation are dead and skipped when popped.
        self._generation = 0
        #: Set by the scheduler that owns the event so ``cancel`` /
        #: ``reschedule`` can update its live pending/cancelled
        #: accounting.  Duck-typed: any object with ``_note_cancelled``
        #: and ``_reschedule_event`` (the sharded coordinator wraps an
        #: inner engine and interposes here for mailbox routing).
        self._scheduler: Optional[Any] = None

    def cancel(self) -> bool:
        """Prevent the event from firing.

        Returns True when this call actually cancelled a pending event,
        False when there was nothing to cancel (already cancelled or
        already fired).  Idempotent; safe after firing.
        """
        if self.cancelled or self.fired:
            return False
        self.cancelled = True
        if self._scheduler is not None:
            self._scheduler._note_cancelled()
        return True

    def reschedule(self, delay: float, *args: Any) -> "Event":
        """Re-arm this event ``delay`` seconds from now; returns ``self``.

        One call replaces the cancel-then-schedule pattern: the old heap
        entry is invalidated in place (generation bump) and exactly one
        new entry is pushed, so the caller keeps a single live handle.
        Works from any state -- a *pending* event is moved, a
        *cancelled* event is revived, a *fired* event is re-armed (the
        periodic-timer pattern).  Positional ``args``, when given,
        replace the callback arguments.
        """
        if self._scheduler is None:
            raise SimulationError("cannot reschedule an unscheduled event")
        self._scheduler._reschedule_event(self, delay, args if args else None)
        return self

    @property
    def pending(self) -> bool:
        """True while the event is still going to fire."""
        return not self.cancelled and not self.fired

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else ("fired" if self.fired else "pending")
        name = getattr(self.fn, "__name__", repr(self.fn))
        return f"Event(t={self.time:.3f}, fn={name}, {state})"


class EventScheduler:
    """The simulation clock and event heap.

    Typical usage::

        sched = EventScheduler()
        sched.schedule(10.0, node.wake_up)
        sched.run_until(3600.0)

    Time is a float in *seconds* of virtual time.  The engine makes no
    assumption about wall-clock pacing; a 30-day simulation is just a
    large horizon.  This class is the reference implementation of the
    :class:`repro.sim.scheduler.Scheduler` protocol; the sharded
    coordinator (:mod:`repro.shard.scheduler`) implements the same
    protocol around one of these.
    """

    def __init__(self, start_time: float = 0.0):
        self._now = float(start_time)
        self._heap: List[Tuple[float, int, Event, int]] = []
        self._seq = 0
        self._running = False
        self._stopped = False
        self.events_processed = 0
        #: Live count of not-yet-cancelled, not-yet-fired events.
        self._pending = 0
        #: Dead events still occupying heap slots (lazy removal):
        #: cancelled entries plus entries orphaned by a reschedule.
        self._cancelled_in_heap = 0
        #: Number of times the heap was rebuilt to shed dead entries.
        self.compactions = 0
        #: Observability sink (set by the experiment runner).  Defaults
        #: to the falsy NULL_TRACER so the hot path pays one truthiness
        #: check at the coarse instrumentation points and nothing in
        #: ``step``; timestamps it records are this scheduler's ``now``.
        self.tracer = NULL_TRACER
        #: Virtual-time tick period (seconds) for the ``engine.tick``
        #: gauge rows consumed by repro.obs.timeseries; None disables
        #: and keeps ``step`` tick-free.  Set via :meth:`enable_ticks`.
        self._tick_every: Optional[float] = None
        self._next_tick = 0.0

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    def schedule(self, delay: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` to run ``delay`` seconds from now.

        Returns the :class:`Event`, which may be cancelled.  A negative
        delay is an error: the past cannot be scheduled.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay!r} seconds in the past")
        return self.schedule_at(self._now + delay, fn, *args)

    def schedule_at(self, time: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` at absolute virtual time ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time!r}, clock already at t={self._now!r}"
            )
        event = Event(float(time), fn, args)
        event._scheduler = self
        self._seq += 1
        heapq.heappush(self._heap, (event.time, self._seq, event, 0))
        self._pending += 1
        return event

    def _note_cancelled(self) -> None:
        """Called by :meth:`Event.cancel`; keeps counters live and
        compacts the heap once dead entries outnumber pending ones."""
        self._pending -= 1
        self._cancelled_in_heap += 1
        if self._cancelled_in_heap * 2 > len(self._heap):
            self._compact()

    def _reschedule_event(
        self, event: Event, delay: float, args: Optional[Tuple[Any, ...]]
    ) -> None:
        """Back end of :meth:`Event.reschedule` (see there for semantics)."""
        if delay < 0:
            raise SimulationError(f"cannot reschedule {delay!r} seconds in the past")
        was_pending = event.pending
        event.cancelled = False
        event.fired = False
        event.time = self._now + delay
        if args is not None:
            event.args = args
        event._generation += 1
        self._seq += 1
        heapq.heappush(self._heap, (event.time, self._seq, event, event._generation))
        if was_pending:
            # The superseded entry is dead weight exactly like a
            # cancelled one; the event itself stays pending (net 0).
            self._cancelled_in_heap += 1
            if self._cancelled_in_heap * 2 > len(self._heap):
                self._compact()
        else:
            # Revived (cancelled) or re-armed (fired): one new live
            # entry; any old entry was already accounted dead.
            self._pending += 1

    def _compact(self) -> None:
        """Rebuild the heap without dead entries.

        Entries keep their original ``(fire_time, sequence)`` keys, so
        relative ordering -- including FIFO among ties -- is preserved.
        O(pending), amortised O(1) per cancellation since compaction
        only triggers when at least half the heap is dead weight.
        """
        self._heap = [
            entry
            for entry in self._heap
            if not entry[2].cancelled and entry[3] == entry[2]._generation
        ]
        heapq.heapify(self._heap)
        self._cancelled_in_heap = 0
        self.compactions += 1
        if self.tracer:
            self.tracer.event("engine.compact", live=len(self._heap))

    def enable_ticks(self, period_s: float) -> None:
        """Emit one ``engine.tick`` trace row per ``period_s`` virtual seconds.

        The tick is the engine-level gauge feed of the time-series
        layer: each row samples ``pending`` (live heap entries) and
        ``events`` (events processed so far).  Ticks piggyback on event
        execution -- no extra events are scheduled, so enabling them
        never perturbs event ordering, RNG consumption, or metrics; a
        window without events simply produces no tick and the series
        layer carries the last gauge forward.
        """
        if period_s <= 0:
            raise SimulationError("tick period must be positive")
        self._tick_every = float(period_s)
        self._next_tick = self._next_tick_after(self._now)

    def _next_tick_after(self, now: float) -> float:
        """First tick boundary strictly after ``now`` (period multiples)."""
        period = self._tick_every or 0.0
        return (int(now // period) + 1) * period

    def stop(self) -> None:
        """Stop a running :meth:`run_until` / :meth:`run` loop after the
        current event finishes."""
        self._stopped = True

    def peek_time(self) -> Optional[float]:
        """Fire time of the next pending event, or None if the heap is empty."""
        while self._heap:
            time, _seq, event, generation = self._heap[0]
            if event.cancelled or generation != event._generation:
                heapq.heappop(self._heap)
                self._cancelled_in_heap -= 1
                continue
            return time
        return None

    def pending_count(self) -> int:
        """Number of not-yet-cancelled events still in the heap.  O(1)."""
        return self._pending

    def advance_to(self, time: float) -> None:
        """Move the clock forward to ``time`` without firing anything.

        Used by run loops (here and in the sharded coordinator) to park
        the clock at the horizon after the heap drains, so periodic
        re-scheduling relative to ``now`` stays consistent across
        successive calls.  Never moves the clock backwards.
        """
        if time > self._now:
            self._now = float(time)

    def step(self) -> bool:
        """Fire the single next pending event.

        Returns False when no pending event remains.
        """
        while self._heap:
            _time, _seq, event, generation = heapq.heappop(self._heap)
            if event.cancelled or generation != event._generation:
                self._cancelled_in_heap -= 1
                continue
            self._now = event.time
            if self._tick_every is not None and self._now >= self._next_tick:
                if self.tracer:
                    self.tracer.event(
                        "engine.tick",
                        pending=self._pending,
                        events=self.events_processed,
                    )
                self._next_tick = self._next_tick_after(self._now)
            event.fired = True
            self._pending -= 1
            self.events_processed += 1
            event.fn(*event.args)
            return True
        return False

    def run_until(self, horizon: float) -> None:
        """Fire events in order until the clock would pass ``horizon``.

        The clock is left at ``horizon`` (even if the heap drained
        earlier), so periodic re-scheduling relative to ``now`` stays
        consistent across successive calls.
        """
        if horizon < self._now:
            raise SimulationError(
                f"horizon t={horizon!r} is before current time t={self._now!r}"
            )
        self._stopped = False
        self._running = True
        span = self.tracer.begin("engine.run", horizon=horizon) if self.tracer else None
        try:
            while not self._stopped:
                next_time = self.peek_time()
                if next_time is None or next_time > horizon:
                    break
                self.step()
        finally:
            self._running = False
        if not self._stopped:
            self.advance_to(horizon)
        self.tracer.end(span, events=self.events_processed)

    def run(self) -> None:
        """Fire every pending event until the heap drains."""
        self._stopped = False
        self._running = True
        span = self.tracer.begin("engine.run") if self.tracer else None
        try:
            while not self._stopped and self.step():
                pass
        finally:
            self._running = False
        self.tracer.end(span, events=self.events_processed)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"EventScheduler(now={self._now:.3f}, pending={self.pending_count()}, "
            f"processed={self.events_processed})"
        )
