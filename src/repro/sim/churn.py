# shard: module=shard-local -- instances live and die inside one run/shard
"""Churn: the session on/off process.

Section V of the paper: *"Each node is assumed to watch ten videos in one
session.  One experiment consists of 250 sessions for each user.  Each
node leaves the system after each session and joins in the system for the
next session; the off time periods for a user's sessions are determined
using a Poisson distribution with mean of 500s."*

We model a user's lifetime as alternating ON (session) and OFF periods.
The OFF period lengths are exponential draws with the configured mean
(the paper's "Poisson distribution" for off-times describes the Poisson
arrival process whose inter-arrival gaps are exponential; we follow the
standard reading, matching [27]'s Poisson user-arrival observation).
Session length is implied by watching a fixed number of videos, so the
churn model only decides *when* the next session starts once the current
one ends.
"""

from __future__ import annotations

from dataclasses import dataclass
from random import Random


@dataclass
class SessionPlan:
    """The static per-user session parameters for an experiment."""

    sessions_per_user: int
    videos_per_session: int
    mean_off_time: float

    def __post_init__(self) -> None:
        if self.sessions_per_user < 1:
            raise ValueError("sessions_per_user must be >= 1")
        if self.videos_per_session < 1:
            raise ValueError("videos_per_session must be >= 1")
        if self.mean_off_time < 0:
            raise ValueError("mean_off_time must be >= 0")


class ChurnModel:
    """Draws per-user off-period durations and initial join jitter.

    The initial join times are spread uniformly over ``warmup_window``
    seconds so that 10,000 nodes do not all hit the server at t=0 (the
    paper's simulator likewise staggers arrivals; an instantaneous flash
    crowd is not the phenomenon under study).
    """

    def __init__(
        self,
        plan: SessionPlan,
        rng: Random,
        warmup_window: float = 600.0,
        tracer=None,
    ):
        if warmup_window < 0:
            raise ValueError("warmup_window must be >= 0")
        self.plan = plan
        self._rng = rng
        self.warmup_window = warmup_window
        #: Optional repro.obs tracer: each drawn delay becomes a trace
        #: event, making the churn process inspectable without touching
        #: the RNG stream.
        self.tracer = tracer

    def initial_join_delay(self) -> float:
        """Delay before a user's first session begins."""
        delay = self._rng.uniform(0.0, self.warmup_window)
        if self.tracer:
            self.tracer.event("churn.join_delay", delay=delay)
        return delay

    def off_duration(self) -> float:
        """Length of the OFF gap between two consecutive sessions."""
        if self.plan.mean_off_time == 0:
            return 0.0
        duration = self._rng.expovariate(1.0 / self.plan.mean_off_time)
        if self.tracer:
            self.tracer.event("churn.off_time", dur=duration)
        return duration

    def session_count(self) -> int:
        """Number of sessions each user performs in one experiment."""
        return self.plan.sessions_per_user

    def videos_per_session(self) -> int:
        """Number of videos watched back-to-back within one session."""
        return self.plan.videos_per_session
