# shard: module=shard-local -- protocol definitions only; no state
"""The ``Scheduler`` protocol: the engine seam of the simulator.

Everything above the kernel -- the experiment runner, protocol stacks,
the async overlay flood, the runtime invariant checker -- talks to the
event engine through this structural interface rather than the concrete
:class:`repro.sim.engine.EventScheduler`.  Two implementations exist:

* :class:`repro.sim.engine.EventScheduler` -- the single-heap reference
  kernel (``shards=1``);
* :class:`repro.shard.scheduler.ShardedScheduler` -- the
  community-partitioned coordinator that tags every event with an
  owning shard, routes cross-shard sends through the typed inter-shard
  mailbox, and advances in conservative lookahead windows
  (``shards>1``).

The protocol is deliberately the *exact* surface the call sites already
used, so adopting it changed no behaviour: satisfying it is a fact
about ``EventScheduler``, not a refactor of it.  It is
``runtime_checkable`` so tests can assert conformance structurally.
"""

from __future__ import annotations

from typing import Any, Callable, Optional, Protocol, runtime_checkable

from repro.sim.engine import Event


@runtime_checkable
class Scheduler(Protocol):
    """Structural interface of the simulation clock and event queue.

    Implementations must provide deterministic FIFO tie-breaking among
    simultaneous events and must never consume randomness themselves
    (randomness lives in :mod:`repro.sim.rng` and is injected by
    callers).  ``tracer`` and ``events_processed`` are plain attributes
    on both implementations; the protocol lists them for completeness
    but structural ``isinstance`` checks only see the methods.
    """

    #: Observability sink; falsy NULL_TRACER disables instrumentation.
    tracer: Any
    #: Total events fired so far (monotonic).
    events_processed: int

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        ...

    def schedule(self, delay: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` ``delay`` seconds from now; returns a handle."""
        ...

    def schedule_at(self, time: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` at absolute virtual time ``time``."""
        ...

    def peek_time(self) -> Optional[float]:
        """Fire time of the next pending event, or None when drained."""
        ...

    def pending_count(self) -> int:
        """Number of live (not cancelled, not fired) events."""
        ...

    def step(self) -> bool:
        """Fire the single next pending event; False when drained."""
        ...

    def run_until(self, horizon: float) -> None:
        """Fire events in order until the clock would pass ``horizon``."""
        ...

    def run(self) -> None:
        """Fire every pending event until the queue drains."""
        ...

    def stop(self) -> None:
        """Stop a running loop after the current event finishes."""
        ...

    def enable_ticks(self, period_s: float) -> None:
        """Emit one ``engine.tick`` gauge row per ``period_s`` virtual seconds."""
        ...
