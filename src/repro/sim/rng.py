# shard: module=shard-local -- instances live and die inside one run/shard
"""Deterministic, named random-number streams.

A reproduction must be bit-for-bit repeatable from a single seed, yet a
simulation has many independent consumers of randomness (workload
selection, latency sampling, churn, failure injection...).  Giving each
consumer its own :class:`random.Random` derived deterministically from a
master seed keeps streams decoupled: adding one extra draw in the latency
model does not perturb the workload sequence.

``RngStreams`` hands out per-name streams; the same ``(seed, name)`` pair
always yields the same sequence.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict


def derive_seed(master_seed: int, name: str) -> int:
    """Derive a 64-bit child seed from ``master_seed`` and a stream name.

    Uses SHA-256 so that child seeds are uncorrelated even for adjacent
    master seeds or similar names (``"latency"`` vs ``"latency2"``).
    """
    digest = hashlib.sha256(f"{master_seed}:{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class RngStreams:
    """A factory of named, independently seeded ``random.Random`` streams."""

    def __init__(self, master_seed: int):
        self.master_seed = int(master_seed)
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it on first use.

        Repeated calls with the same name return the *same* object, so a
        stream's state advances across call sites that share a name.
        """
        rng = self._streams.get(name)
        if rng is None:
            rng = random.Random(derive_seed(self.master_seed, name))
            self._streams[name] = rng
        return rng

    def fork(self, name: str) -> "RngStreams":
        """Create a child ``RngStreams`` rooted at a derived seed.

        Useful to give each node its own family of streams:
        ``streams.fork(f"node:{node_id}")``.
        """
        return RngStreams(derive_seed(self.master_seed, name))

    @classmethod
    def for_run(cls, master_seed: int, *qualifiers: str) -> "RngStreams":
        """The stream family owned by one experiment run.

        This is the parallel-determinism contract of the fan-out
        harness (see :mod:`repro.experiments.parallel`): every run
        constructs its *own* ``RngStreams`` rooted only at its spec's
        seed (plus optional ``qualifiers``, folded in one
        :func:`derive_seed` step at a time), and no stream object is
        ever shared between runs.  Because a run's draws depend on
        nothing but this root, executing runs across N worker
        processes, in any order, yields byte-identical results to
        executing them serially.

        With no qualifiers this is exactly ``RngStreams(master_seed)``,
        so adopting it changed no existing output.
        """
        seed = int(master_seed)
        for qualifier in qualifiers:
            seed = derive_seed(seed, qualifier)
        return cls(seed)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RngStreams(seed={self.master_seed}, streams={sorted(self._streams)})"
