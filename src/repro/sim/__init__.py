"""Discrete-event simulation substrate.

This subpackage is the reproduction's stand-in for PeerSim: a small,
deterministic, event-driven simulation kernel on which every protocol
(SocialTube and the baselines) runs.

Public API:

* :class:`repro.sim.scheduler.Scheduler` -- the structural protocol the
  rest of the system codes against (engine seam).
* :class:`repro.sim.engine.EventScheduler` -- the event heap and clock
  (the reference implementation of the protocol).
* :class:`repro.sim.engine.Event` -- a cancellable, reschedulable
  scheduled callback handle.
* :class:`repro.sim.rng.RngStreams` -- named, independently seeded random
  streams so that sub-systems draw from decoupled sequences.
* :class:`repro.sim.churn.ChurnModel` -- per-node session on/off process
  with Poisson-distributed off periods (Section V of the paper).
"""

from repro.sim.engine import Event, EventScheduler, SimulationError
from repro.sim.churn import ChurnModel, SessionPlan
from repro.sim.rng import RngStreams
from repro.sim.scheduler import Scheduler

__all__ = [
    "Event",
    "EventScheduler",
    "Scheduler",
    "SimulationError",
    "ChurnModel",
    "SessionPlan",
    "RngStreams",
]
