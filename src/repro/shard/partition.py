# shard: module=shard-local -- built once per run, then read-only
"""Deterministic interest-community partitioner.

Nodes are grouped by *primary interest* -- the video category a user's
channel subscriptions concentrate in, the same community signal the
paper's per-community hierarchy keys on -- and whole interest clusters
are assigned to shards by greedy balancing.  Keeping a cluster intact
on one shard is the point: intra-community traffic (the vast majority,
per the Orkut interest-locality observation) stays shard-local, and
only inter-cluster link searches, tracker lookups, and server traffic
cross the partition.

Every step is a pure function of ``(dataset, num_shards, num_nodes)``
with all ties broken by id, so the same spec always yields the same
partition -- a precondition for the ``shards=1 == shards=N``
determinism gate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Tuple

from repro.trace.dataset import TraceDataset

#: Cluster id for users with no subscriptions and no recorded interests.
UNAFFILIATED = -1  # shard: shared-read


def primary_interest(dataset: TraceDataset, user_id: int) -> int:
    """The category a user's subscriptions concentrate in.

    Majority category over subscribed channels, ties to the lowest
    category id; falls back to the lowest favorite-video interest, then
    to :data:`UNAFFILIATED` for users with neither signal.
    """
    counts: Dict[int, int] = {}
    for channel_id in dataset.subscriptions_of_user(user_id):
        category = dataset.category_of_channel(channel_id)
        counts[category] = counts.get(category, 0) + 1
    if counts:
        return min(counts, key=lambda c: (-counts[c], c))
    interests = dataset.users[user_id].interest_ids
    if interests:
        return min(interests)
    return UNAFFILIATED


@dataclass(frozen=True)
class CommunityPartition:
    """A frozen node -> shard assignment keyed by interest community."""

    num_shards: int
    #: ``shard_of_node[node_id]`` is the owning shard; node ids are the
    #: runner's dense ``0..num_nodes-1`` range.
    shard_of_node: Tuple[int, ...]
    #: Interest cluster id -> shard (diagnostics; empty for ``single``).
    shard_of_cluster: Mapping[int, int]

    def owner(self, node_id: int) -> int:
        """The shard owning ``node_id``.

        Out-of-range actors -- the central server (node id -1), tracker
        lookups keyed by no node -- belong to shard 0, the coordinator
        shard.
        """
        if 0 <= node_id < len(self.shard_of_node):
            return self.shard_of_node[node_id]
        return 0

    def shard_sizes(self) -> Tuple[int, ...]:
        """Node count per shard (empty shards report 0)."""
        sizes = [0] * self.num_shards
        for shard in self.shard_of_node:
            sizes[shard] += 1
        return tuple(sizes)

    @classmethod
    def single(cls, num_nodes: int) -> "CommunityPartition":
        """The trivial one-shard partition (``shards=1``)."""
        return cls(1, tuple(0 for _ in range(num_nodes)), {})

    @classmethod
    def from_dataset(
        cls, dataset: TraceDataset, num_shards: int, num_nodes: int
    ) -> "CommunityPartition":
        """Partition ``num_nodes`` users into ``num_shards`` shards.

        Clusters (primary-interest groups) are placed whole: largest
        first onto the least-loaded shard, ties by lowest cluster /
        shard id.  ``num_shards`` may exceed the number of clusters, in
        which case the surplus shards simply stay empty -- a legal,
        load-free configuration the edge-case tests cover.
        """
        if num_shards < 1:
            raise ValueError(f"num_shards must be >= 1, got {num_shards}")
        if num_shards == 1:
            return cls.single(num_nodes)
        members: Dict[int, List[int]] = {}
        for node_id in range(num_nodes):
            members.setdefault(primary_interest(dataset, node_id), []).append(node_id)
        loads = [0] * num_shards
        shard_of_cluster: Dict[int, int] = {}
        assignment = [0] * num_nodes
        for cluster in sorted(members, key=lambda c: (-len(members[c]), c)):
            shard = min(range(num_shards), key=lambda k: (loads[k], k))
            shard_of_cluster[cluster] = shard
            loads[shard] += len(members[cluster])
            for node_id in members[cluster]:
                assignment[node_id] = shard
        return cls(num_shards, tuple(assignment), shard_of_cluster)
