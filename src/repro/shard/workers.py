# shard: module=shard-local -- the pool and its lanes belong to one run
"""Multiprocess shard lanes: the window-barrier worker pool.

:class:`repro.shard.lanes.LaneEngine` made window-batched per-shard
lanes fast on one core; this module is the step the ROADMAP names next
-- mapping those lanes onto **real worker processes** so one simulated
system finally exceeds one core.  The shape follows the clustered-
overlay literature the design leans on (CliqueStream's per-clique
units, the Orkut social-locality argument): interest communities are
shared-nothing, so a lane -- its shard's nodes, links and
``RngStreams.for_run(seed, "shard:<k>")`` fork -- can live wholly
inside one process and synchronize only at window barriers.

Execution model
---------------

A :class:`LaneProgram` describes one shard's behaviour: ``setup`` plants
the lane's initial events, ``on_message`` handles barrier-delivered
cross-lane messages.  :func:`run_lane_program` executes ``num_shards``
program instances under one of three execution modes, chosen by the
``(lookahead, workers)`` pair -- **all three produce byte-identical
rows and counters**:

* ``multiprocess`` -- ``workers > 1`` and positive lookahead: lanes are
  distributed round-robin over a persistent pool of worker processes.
  Per-lane state never crosses a pipe; only the window-barrier control
  messages (see :data:`CONTROL_OPS`), pickled
  :class:`~repro.shard.mailbox.ShardMessage` batches and emitted rows
  do.  The coordinator drives the conservative window grid, routes
  mailbox batches between workers at barriers, and merges per-lane rows
  in canonical order.
* ``in-process`` -- ``workers <= 1`` with positive lookahead: the same
  coordinator loop over local lanes, no processes, no pickling.  This
  is the reference implementation the byte-parity tests compare
  against.
* ``serialized`` -- zero lookahead (planar/WAN jitter is unbounded
  below unless the bounded-jitter variant is enabled; see
  ``LatencyModel.min_one_way_s``): every distinct event time is a
  barrier, so there is no parallelism to extract and the run falls
  back to in-process serialized execution -- slower, never deadlocked,
  still byte-identical.

Determinism contract
--------------------

* Each lane owns an ``RngStreams.for_run(seed, "shard:<k>")`` fork --
  created inside the process that executes the lane, consumed by no one
  else, so draw sequences are independent of worker count and layout.
* Cross-lane messages carry the canonical ``(fire_time, origin_shard,
  seq)`` key of :mod:`repro.shard.mailbox`; barriers deliver every
  pending batch in that order, which is a pure function of simulation
  state, never of wall-clock arrival.
* Emitted rows are tagged ``(sim_time, lane, emit_seq)`` and merged by
  that key.  Window time ranges are disjoint (an event in window ``w``
  has ``time in [w*L, (w+1)*L)``), so the merged stream is identical
  whether windows ran on one process or eight.

Failure surface: a worker process that dies (or raises) is detected at
the next barrier round-trip and surfaced as :class:`WorkerCrashError`
carrying the lane set and remote traceback -- the coordinator tears the
pool down instead of hanging on a dead pipe.
"""

from __future__ import annotations

import heapq
import multiprocessing
import traceback
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.obs.perf import LanePerf, PoolPerf
from repro.shard.mailbox import ShardMessage, ShardViolation, canonical_order
from repro.sim.engine import SimulationError
from repro.sim.rng import RngStreams

#: Wire vocabulary of the coordinator<->worker barrier protocol, in
#: lifecycle order.  Documented in docs/scaling.md (cross-checked by
#: tools/check_docs.py).
CONTROL_OPS: Tuple[str, ...] = (  # shard: shared-read
    "ready",
    "deliver",
    "delivered",
    "run",
    "done",
    "stop",
    "stats",
    "error",
)

#: Keys of :attr:`LaneRunResult.stats`.  Documented in docs/tracing.md
#: (cross-checked by tools/check_docs.py).
STATS_FIELDS: Tuple[str, ...] = (  # shard: shared-read
    "execution",
    "workers",
    "num_shards",
    "lookahead_s",
    "windows",
    "total_events",
    "events_by_lane",
    "messages_sent",
    "messages_delivered",
    "rows_emitted",
)

#: Seconds the coordinator waits on one barrier round-trip before
#: declaring a worker hung.  Generous: a window should take
#: milliseconds; minutes means a dead or livelocked worker.
DEFAULT_BARRIER_TIMEOUT_S = 300.0  # shard: shared-read


class WorkerCrashError(RuntimeError):
    """A lane worker process died, raised, or stopped answering barriers."""


class LaneProgram:
    """One shard's behaviour under the lane pool; instances never cross
    process boundaries (the *factory* does -- it must be picklable).

    Subclass and implement :meth:`setup`; implement :meth:`on_message`
    when the program sends cross-lane messages.  One instance is
    constructed per lane, inside whichever process owns that lane, so
    instance state is shard-local by construction.
    """

    def setup(self, lane: "WorkerLane") -> None:
        """Plant the lane's initial events (``lane.post``)."""
        raise NotImplementedError

    def on_message(self, lane: "WorkerLane", message: ShardMessage) -> None:
        """Handle one barrier-delivered cross-lane message.

        Typically re-files the payload as a lane-local event via
        ``lane.post_at(message.fire_time, ...)``.
        """
        raise NotImplementedError(
            f"lane {lane.index} received {message.kind!r} but "
            f"{type(self).__name__} does not implement on_message"
        )


class WorkerLane:
    """One shard's lane: local clock, bucket calendar, RNG fork, outbox.

    This is the per-process counterpart of
    :class:`repro.shard.lanes.Lane` with the program-facing surface
    attached: :meth:`post`/:meth:`post_at` (lane-local events),
    :meth:`send` (cross-lane message, delivered at the next barrier),
    :meth:`emit` (one canonical result row).  All state is owned by the
    single process executing the lane.
    """

    __slots__ = (
        "index",
        "num_shards",
        "lookahead_s",
        "rng",
        "now",
        "events_run",
        "sent",
        "program",
        "_buckets",
        "_bucket_keys",
        "_heap",
        "_seq",
        "_msg_seq",
        "_emit_seq",
        "_outbox",
        "_rows",
        "_in_event",
        "_active_window",
        "_spilled",
        "_window_end",
    )

    def __init__(self, index: int, num_shards: int, lookahead_s: float, seed: int):
        self.index = index
        self.num_shards = num_shards
        self.lookahead_s = float(lookahead_s)
        #: Partition-local stream family; forked from the run seed with
        #: the reserved ``shard:<k>`` qualifier, owned by this process.
        self.rng = RngStreams.for_run(seed, f"shard:{index}")
        self.now = 0.0
        self.events_run = 0
        self.sent = 0
        self.program: Optional[LaneProgram] = None
        #: Window index -> unsorted batch of ``(time, seq, fn, args)``.
        self._buckets: Dict[int, List[Tuple[float, int, Any, Tuple[Any, ...]]]] = {}
        self._bucket_keys: List[int] = []
        #: Serialized-mode storage (``lookahead_s == 0``).
        self._heap: List[Tuple[float, int, Any, Tuple[Any, ...]]] = []
        self._seq = 0
        self._msg_seq = 0
        self._emit_seq = 0
        self._outbox: List[ShardMessage] = []
        self._rows: List[Tuple[Any, ...]] = []
        self._in_event = False
        self._active_window: Optional[int] = None
        self._spilled = False
        self._window_end = 0.0

    # -- program-facing surface ---------------------------------------------

    def post(self, delay: float, fn: Callable[..., Any], *args: Any) -> None:
        """Schedule ``fn(*args)`` on this lane, ``delay`` after its clock."""
        if delay < 0:
            raise SimulationError(f"cannot post {delay!r} seconds in the past")
        self.post_at(self.now + delay, fn, args)

    def post_at(
        self, fire_time: float, fn: Callable[..., Any], args: Tuple[Any, ...] = ()
    ) -> None:
        """Schedule at an absolute lane time (message re-filing)."""
        if fire_time < self.now:
            raise SimulationError(
                f"cannot post at t={fire_time!r}, lane {self.index} clock "
                f"already at t={self.now!r}"
            )
        self._seq += 1
        entry = (fire_time, self._seq, fn, args)
        if self.lookahead_s > 0:
            key = int(fire_time / self.lookahead_s)
            bucket = self._buckets.get(key)
            if bucket is None:
                self._buckets[key] = [entry]
                heapq.heappush(self._bucket_keys, key)
            else:
                bucket.append(entry)
            if key == self._active_window:
                self._spilled = True
        else:
            heapq.heappush(self._heap, entry)

    def send(
        self,
        dest_shard: int,
        fire_time: float,
        kind: str,
        payload: Tuple[Any, ...] = (),
    ) -> ShardMessage:
        """Emit a cross-lane message (strict lookahead; pickle-safe payload).

        Buffered in the lane outbox; the coordinator routes it at the
        next window barrier in canonical ``(fire_time, origin_shard,
        seq)`` order.  ``fire_time`` must land at or past the end of the
        sender's current window -- the conservative contract that makes
        running whole windows without peeking at other lanes legal.
        """
        if not self._in_event:
            raise SimulationError("send() is only legal from inside an event")
        if not 0 <= dest_shard < self.num_shards:
            raise ValueError(
                f"dest_shard {dest_shard!r} out of range 0..{self.num_shards - 1}"
            )
        fire = float(fire_time)
        if fire < self._window_end:
            raise ShardViolation(
                f"{kind!r} from lane {self.index} to {dest_shard} fires at "
                f"t={fire:.6f}, inside the sender's window (ends "
                f"t={self._window_end:.6f}); the lookahead bound is broken"
            )
        message = ShardMessage(
            fire_time=fire,
            origin_shard=self.index,
            dest_shard=dest_shard,
            seq=self._msg_seq,
            kind=kind,
            payload=tuple(payload),
        )
        self._msg_seq += 1
        self.sent += 1
        self._outbox.append(message)
        return message

    def emit(self, *values: Any) -> None:
        """Append one result row, tagged ``(sim_time, lane, emit_seq)``.

        The tag is the canonical merge key: the coordinator's merged
        stream is sorted by it, so row order is a pure function of
        simulation state -- independent of worker count and layout.
        """
        self._rows.append((self.now, self.index, self._emit_seq) + values)
        self._emit_seq += 1

    # -- coordinator-facing surface -----------------------------------------

    def run_window(self, window: int) -> None:
        """Drain this lane's bucket for ``window``, batch-sorted.

        Same contract as ``LaneEngine._run_lane_window``: one
        ``list.sort`` plus a straight scan, with same-window spills
        (lane-local causality) merged into the unfired remainder so
        ``(fire_time, seq)`` order holds and the clock never reverses.
        """
        self._window_end = (window + 1) * self.lookahead_s
        batch = self._buckets.pop(window, None)
        if not batch:
            return
        self._active_window = window
        self._in_event = True
        batch.sort()
        i = 0
        while i < len(batch):
            time, _seq, fn, args = batch[i]
            i += 1
            self.now = time
            self.events_run += 1
            fn(*args)
            if self._spilled:
                self._spilled = False
                extra = self._buckets.pop(window, None)
                if extra:
                    remainder = batch[i:]
                    remainder.extend(extra)
                    remainder.sort()
                    batch = remainder
                    i = 0
        self._active_window = None
        self._in_event = False

    def run_at(self, fire_time: float) -> None:
        """Serialized mode: run every pending event at exactly ``fire_time``."""
        self._window_end = fire_time
        heap = self._heap
        self._in_event = True
        # Exact by construction: fire_time IS the heap head returned by
        # next_window_key(), bitwise-identical -- no accumulation here.
        while heap and heap[0][0] == fire_time:  # lint: disable=float-time-eq
            time, _seq, fn, args = heapq.heappop(heap)
            self.now = time
            self.events_run += 1
            fn(*args)
        self._in_event = False

    def next_window_key(self) -> Optional[float]:
        """Smallest pending bucket key (windowed) or fire time (serialized)."""
        if self.lookahead_s > 0:
            keys = self._bucket_keys
            while keys and not self._buckets.get(keys[0]):
                self._buckets.pop(keys[0], None)
                heapq.heappop(keys)
            return keys[0] if keys else None
        return self._heap[0][0] if self._heap else None

    def deliver(self, message: ShardMessage) -> None:
        """Hand one barrier-delivered message to the lane's program."""
        self.program.on_message(self, message)

    def take_outbox(self) -> List[ShardMessage]:
        """Drain and return the window's outgoing cross-lane messages."""
        out = self._outbox
        self._outbox = []
        return out

    def take_rows(self) -> List[Tuple[Any, ...]]:
        """Drain and return the rows emitted since the last barrier."""
        rows = self._rows
        self._rows = []
        return rows

    def lane_stats(self) -> Tuple[int, int, int, int]:
        """``(index, events_run, sent, emit_seq)`` -- plain, pickle-safe."""
        return (self.index, self.events_run, self.sent, self._emit_seq)


@dataclass
class LaneRunResult:
    """Merged output of one lane-program run.

    ``rows`` is the canonical merged row stream (sorted by the
    ``(sim_time, lane, emit_seq)`` tag every ``emit`` prepends);
    ``stats`` carries the :data:`STATS_FIELDS` counters.  Both are
    byte-identical across execution modes and worker counts -- the
    worker-parity gate diffs them directly.
    """

    rows: List[Tuple[Any, ...]] = field(default_factory=list)
    stats: Dict[str, Any] = field(default_factory=dict)
    #: Wall-clock pool introspection (repro.obs.perf.POOL_PERF_FIELDS)
    #: when the run was armed with a PoolPerf, else None.  Deliberately
    #: a separate field from ``stats``: stats is part of the byte-parity
    #: surface across execution modes; perf legitimately differs per run.
    perf: Optional[Dict[str, Any]] = None

    @property
    def execution(self) -> str:
        """Which mode ran: ``multiprocess``, ``in-process``, ``serialized``."""
        return self.stats["execution"]


# ---------------------------------------------------------------------------
# worker process side


def _build_lanes(
    lane_indices: List[int],
    num_shards: int,
    lookahead_s: float,
    seed: int,
    program_factory: Callable[[], LaneProgram],
) -> List[WorkerLane]:
    """Construct and set up the lanes one worker owns (ascending order)."""
    lanes = []
    for index in lane_indices:
        lane = WorkerLane(index, num_shards, lookahead_s, seed)
        lane.program = program_factory()
        lane.program.setup(lane)
        lanes.append(lane)
    return lanes


def _worker_main(
    conn: Any,
    lane_indices: List[int],
    num_shards: int,
    lookahead_s: float,
    seed: int,
    program_factory: Callable[[], LaneProgram],
    perf_enabled: bool = False,
) -> None:
    """Entry point of one pool worker: serve barrier rounds until ``stop``.

    Every reply is one of :data:`CONTROL_OPS`.  Any exception -- in the
    program, the lane, or the protocol -- is reported as an ``error``
    frame carrying the traceback, then the worker exits; the coordinator
    turns that into a :class:`WorkerCrashError`.  ``perf_enabled`` arms
    a :class:`repro.obs.perf.LanePerf` whose snapshot rides back on the
    final ``stats`` frame; the inert path takes no timestamps.
    """
    try:
        lane_perf = LanePerf() if perf_enabled else None
        lanes = _build_lanes(
            lane_indices, num_shards, lookahead_s, seed, program_factory
        )
        by_index = {lane.index: lane for lane in lanes}
        conn.send(("ready", [(lane.index, lane.next_window_key()) for lane in lanes]))
        while True:
            frame = conn.recv()
            op = frame[0]
            if op == "deliver":
                began = lane_perf.clock() if lane_perf else 0.0
                for message in frame[1]:
                    by_index[message.dest_shard].deliver(message)
                if lane_perf:
                    lane_perf.add_deliver(began, len(frame[1]))
                conn.send(
                    ("delivered", [(l.index, l.next_window_key()) for l in lanes])
                )
            elif op == "run":
                window = frame[1]
                outgoing: List[ShardMessage] = []
                rows: List[Tuple[Any, ...]] = []
                for lane in lanes:
                    began = lane_perf.clock() if lane_perf else 0.0
                    lane.run_window(window)
                    if lane_perf:
                        lane_perf.add_busy(lane.index, began)
                    outgoing.extend(lane.take_outbox())
                    rows.extend(lane.take_rows())
                conn.send(
                    (
                        "done",
                        outgoing,
                        rows,
                        [(lane.index, lane.next_window_key()) for lane in lanes],
                    )
                )
            elif op == "stop":
                conn.send(
                    (
                        "stats",
                        [lane.lane_stats() for lane in lanes],
                        lane_perf.snapshot() if lane_perf else None,
                    )
                )
                conn.close()
                return
            else:  # pragma: no cover - defensive: unknown coordinator frame
                raise SimulationError(f"unknown control op {op!r}")
    except EOFError:  # coordinator died; exit quietly
        return
    # Deliberately total: ANY failure must become an error frame the
    # coordinator can surface -- swallowing is the coordinator's call.
    except BaseException:  # lint: disable=broad-except
        try:
            conn.send(("error", traceback.format_exc()))
        except (OSError, ValueError):  # pipe already gone
            pass


# ---------------------------------------------------------------------------
# coordinator side


class _ProcessPool:
    """Persistent worker processes plus the crash-safe pipe plumbing."""

    def __init__(
        self,
        assignments: List[List[int]],
        num_shards: int,
        lookahead_s: float,
        seed: int,
        program_factory: Callable[[], LaneProgram],
        timeout_s: float,
        perf_enabled: bool = False,
    ):
        self.timeout_s = timeout_s
        self.assignments = assignments
        self.procs: List[multiprocessing.Process] = []
        self.conns: List[Any] = []
        for lane_indices in assignments:
            parent, child = multiprocessing.Pipe()
            proc = multiprocessing.Process(
                target=_worker_main,
                args=(
                    child,
                    lane_indices,
                    num_shards,
                    lookahead_s,
                    seed,
                    program_factory,
                    perf_enabled,
                ),
                daemon=True,
            )
            proc.start()
            child.close()
            self.procs.append(proc)
            self.conns.append(parent)

    def send(self, worker: int, frame: Tuple[Any, ...]) -> None:
        try:
            self.conns[worker].send(frame)
        except (BrokenPipeError, OSError):
            self._crash(worker, "its pipe closed mid-send")

    def recv(self, worker: int) -> Tuple[Any, ...]:
        """One reply frame, or :class:`WorkerCrashError` -- never a hang."""
        conn = self.conns[worker]
        try:
            if not conn.poll(self.timeout_s):
                self._crash(
                    worker,
                    f"no barrier reply within {self.timeout_s:.0f}s (hung?)",
                )
            frame = conn.recv()
        except (EOFError, ConnectionResetError, OSError):
            self._crash(worker, "its pipe closed mid-reply")
        if frame[0] == "error":
            self._crash(worker, f"the program raised:\n{frame[1]}")
        return frame

    def _crash(self, worker: int, why: str) -> None:
        proc = self.procs[worker]
        proc.join(timeout=1.0)
        code = proc.exitcode
        self.terminate()
        raise WorkerCrashError(
            f"lane worker {worker} (lanes {self.assignments[worker]}) "
            f"failed: {why} (exit code {code})"
        )

    def terminate(self) -> None:
        """Tear the pool down unconditionally (error paths)."""
        for conn in self.conns:
            try:
                conn.close()
            except OSError:  # pragma: no cover - already closed
                pass
        for proc in self.procs:
            if proc.is_alive():
                proc.terminate()
            proc.join(timeout=5.0)

    def shutdown(
        self,
    ) -> Tuple[List[Tuple[int, int, int, int]], List[Optional[Dict[str, Any]]]]:
        """Graceful stop: collect per-lane stats (and, when armed, each
        worker's :class:`repro.obs.perf.LanePerf` snapshot), join every
        worker."""
        stats: List[Tuple[int, int, int, int]] = []
        snapshots: List[Optional[Dict[str, Any]]] = []
        for worker in range(len(self.procs)):
            self.send(worker, ("stop",))
        for worker in range(len(self.procs)):
            frame = self.recv(worker)
            stats.extend(frame[1])
            snapshots.append(frame[2] if len(frame) > 2 else None)
        for proc in self.procs:
            proc.join(timeout=5.0)
        return stats, snapshots


def _round_robin(num_shards: int, workers: int) -> List[List[int]]:
    """Lane -> worker assignment: lane ``k`` on worker ``k % workers``."""
    return [list(range(w, num_shards, workers)) for w in range(workers)]


def _merge_rows(rows: List[Tuple[Any, ...]]) -> List[Tuple[Any, ...]]:
    """Canonical row order: sort by the ``(sim_time, lane, emit_seq)`` tag.

    Within a lane the tag is strictly increasing, and window time
    ranges are disjoint, so this single sort equals per-window
    concatenation of per-window sorts -- one rule for every mode.
    """
    rows.sort(key=lambda row: (row[0], row[1], row[2]))
    return rows


def _stats_payload(
    execution: str,
    workers: int,
    num_shards: int,
    lookahead_s: float,
    windows: int,
    lane_stats: List[Tuple[int, int, int, int]],
    delivered: int,
) -> Dict[str, Any]:
    """Fold per-lane counters into the :data:`STATS_FIELDS` dict."""
    by_lane = {index: (events, sent, emitted) for index, events, sent, emitted in lane_stats}
    ordered = [by_lane[index] for index in sorted(by_lane)]
    return {
        "execution": execution,
        "workers": workers,
        "num_shards": num_shards,
        "lookahead_s": lookahead_s,
        "windows": windows,
        "total_events": sum(events for events, _sent, _rows in ordered),
        "events_by_lane": [events for events, _sent, _rows in ordered],
        "messages_sent": sum(sent for _events, sent, _rows in ordered),
        "messages_delivered": delivered,
        "rows_emitted": sum(rows for _events, _sent, rows in ordered),
    }


def _run_multiprocess(
    program_factory: Callable[[], LaneProgram],
    num_shards: int,
    lookahead_s: float,
    horizon_s: float,
    seed: int,
    workers: int,
    timeout_s: float,
    perf: Optional[PoolPerf] = None,
) -> LaneRunResult:
    """The windowed barrier loop over a live process pool."""
    assignments = _round_robin(num_shards, workers)
    owner = {k: k % workers for k in range(num_shards)}
    pool = _ProcessPool(
        assignments,
        num_shards,
        lookahead_s,
        seed,
        program_factory,
        timeout_s,
        perf_enabled=bool(perf),
    )
    try:
        next_key: Dict[int, Optional[float]] = {}
        for worker in range(workers):
            frame = pool.recv(worker)  # ("ready", [(lane, key), ...])
            next_key.update(dict(frame[1]))
        pending: List[ShardMessage] = []
        rows: List[Tuple[Any, ...]] = []
        windows = 0
        delivered = 0

        def barrier_deliver() -> None:
            """Route every pending message; refresh post-delivery keys."""
            nonlocal pending, delivered
            batch = canonical_order(pending)
            pending = []
            delivered += len(batch)
            routed: List[List[ShardMessage]] = [[] for _ in range(workers)]
            for message in batch:
                routed[owner[message.dest_shard]].append(message)
            if perf:
                perf.record_deliver(routed)
            for worker in range(workers):
                pool.send(worker, ("deliver", routed[worker]))
            began = perf.clock() if perf else 0.0
            for worker in range(workers):
                frame = pool.recv(worker)
                next_key.update(dict(frame[1]))
            if perf:
                perf.add_barrier_wait(began)

        while True:
            if pending:
                barrier_deliver()
            keys = sorted(k for k in next_key.values() if k is not None)
            if not keys or keys[0] * lookahead_s >= horizon_s:
                break
            window = int(keys[0])
            for worker in range(workers):
                pool.send(worker, ("run", window))
            began = perf.clock() if perf else 0.0
            for worker in range(workers):
                frame = pool.recv(worker)
                pending.extend(frame[1])
                rows.extend(frame[2])
                next_key.update(dict(frame[3]))
            if perf:
                perf.add_barrier_wait(began)
            windows += 1
        if pending:
            # Final barrier: last-window sends still reach their
            # destination programs (their events just never run).
            barrier_deliver()
        lane_stats, snapshots = pool.shutdown()
    except BaseException:
        pool.terminate()
        raise
    began = perf.clock() if perf else 0.0
    merged = _merge_rows(rows)
    if perf:
        perf.add_merge(began)
    stats = _stats_payload(
        "multiprocess",
        workers,
        num_shards,
        lookahead_s,
        windows,
        lane_stats,
        delivered,
    )
    return LaneRunResult(
        rows=merged,
        stats=stats,
        perf=(
            perf.finalize(stats, lane_stats, snapshots, assignments)
            if perf
            else None
        ),
    )


def _run_in_process(
    program_factory: Callable[[], LaneProgram],
    num_shards: int,
    lookahead_s: float,
    horizon_s: float,
    seed: int,
    perf: Optional[PoolPerf] = None,
) -> LaneRunResult:
    """The same barrier loop over local lanes (reference implementation)."""
    lanes = _build_lanes(
        list(range(num_shards)), num_shards, lookahead_s, seed, program_factory
    )
    lane_perf = perf.lane_perf() if perf else None
    pending: List[ShardMessage] = []
    rows: List[Tuple[Any, ...]] = []
    windows = 0
    delivered = 0
    serialized = lookahead_s <= 0

    def barrier_deliver() -> None:
        nonlocal pending, delivered
        batch = canonical_order(pending)
        pending = []
        delivered += len(batch)
        began = lane_perf.clock() if lane_perf else 0.0
        for message in batch:
            lanes[message.dest_shard].deliver(message)
        if lane_perf:
            lane_perf.add_deliver(began, len(batch))

    def run_lane(lane: WorkerLane, key: float) -> None:
        """Advance one lane a window (or serialized instant), timed when armed."""
        began = lane_perf.clock() if lane_perf else 0.0
        if serialized:
            lane.run_at(key)
        else:
            lane.run_window(int(key))
        if lane_perf:
            lane_perf.add_busy(lane.index, began)

    while True:
        if pending:
            barrier_deliver()
        keys = sorted(k for k in (lane.next_window_key() for lane in lanes) if k is not None)
        if serialized:
            if not keys or keys[0] > horizon_s:
                break
        else:
            if not keys or keys[0] * lookahead_s >= horizon_s:
                break
        for lane in lanes:
            run_lane(lane, keys[0])
        for lane in lanes:
            pending.extend(lane.take_outbox())
            rows.extend(lane.take_rows())
        windows += 1
    if pending:
        barrier_deliver()
    lane_stats = [lane.lane_stats() for lane in lanes]
    began = perf.clock() if perf else 0.0
    merged = _merge_rows(rows)
    if perf:
        perf.add_merge(began)
    stats = _stats_payload(
        "serialized" if serialized else "in-process",
        1,
        num_shards,
        lookahead_s,
        windows,
        lane_stats,
        delivered,
    )
    return LaneRunResult(
        rows=merged,
        stats=stats,
        perf=(
            perf.finalize(
                stats,
                lane_stats,
                [lane_perf.snapshot() if lane_perf else None],
            )
            if perf
            else None
        ),
    )


def run_lane_program(
    program_factory: Callable[[], LaneProgram],
    num_shards: int,
    lookahead_s: float,
    horizon_s: float,
    seed: int = 0,
    workers: int = 1,
    barrier_timeout_s: float = DEFAULT_BARRIER_TIMEOUT_S,
    perf: Optional[PoolPerf] = None,
) -> LaneRunResult:
    """Run one :class:`LaneProgram` per shard up to ``horizon_s``.

    The execution mode is an implementation detail the result does not
    depend on: ``workers > 1`` with positive lookahead runs the
    multiprocess pool, ``workers <= 1`` runs the same loop in-process,
    and zero lookahead always falls back to in-process serialized
    execution (every event time is a barrier -- there is no parallelism
    to extract, only pipe overhead to pay).  ``workers`` above
    ``num_shards`` is clamped: a lane is the unit of placement.

    ``perf`` (a :class:`repro.obs.perf.PoolPerf`) arms wall-clock pool
    introspection -- lane busy time, barrier waits, pipe payload bytes,
    merge time -- surfaced on :attr:`LaneRunResult.perf`.  Armed or
    not, ``rows`` and ``stats`` are byte-identical: wall-clock readings
    never touch the parity surface.

    Example::

        class Pinger(LaneProgram):
            def setup(self, lane):
                lane.post(1.0, self.tick, lane)
            def tick(self, lane):
                lane.emit("tick")
                lane.post(1.0, self.tick, lane)

        result = run_lane_program(Pinger, num_shards=4, lookahead_s=1.0,
                                  horizon_s=60.0, workers=4)
        assert result.rows == run_lane_program(
            Pinger, num_shards=4, lookahead_s=1.0, horizon_s=60.0).rows
    """
    if num_shards < 1:
        raise ValueError(f"num_shards must be >= 1, got {num_shards}")
    if lookahead_s < 0:
        raise ValueError(f"lookahead_s must be >= 0, got {lookahead_s}")
    if horizon_s < 0:
        raise SimulationError(f"horizon t={horizon_s!r} is before t=0.0")
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    workers = min(int(workers), num_shards)
    if workers > 1 and lookahead_s > 0:
        return _run_multiprocess(
            program_factory,
            num_shards,
            lookahead_s,
            horizon_s,
            seed,
            workers,
            barrier_timeout_s,
            perf=perf,
        )
    return _run_in_process(
        program_factory, num_shards, lookahead_s, horizon_s, seed, perf=perf
    )
