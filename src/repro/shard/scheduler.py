# shard: module=shard-local -- one coordinator per run, owned by the runner
"""``ShardedScheduler``: the exact-mode sharded coordinator.

This is the second implementation of the
:class:`repro.sim.scheduler.Scheduler` protocol.  It wraps one inner
:class:`repro.sim.engine.EventScheduler` and adds the sharding layer on
top:

* every scheduled event is tagged with its **owning shard** (resolved
  by the ``owner_of`` hook, typically a
  :class:`repro.shard.partition.CommunityPartition` lookup on the
  callback's node-id argument);
* a send whose destination differs from the currently executing shard
  is a **cross-shard interaction** and is recorded as a typed message
  in the :class:`repro.shard.mailbox.Mailbox`;
* the run loop advances in conservative **lookahead windows** of
  ``lookahead_s`` (the minimum cross-shard one-way latency from
  :meth:`repro.net.latency.LatencyModel.min_one_way_s`), counting a
  barrier whenever the clock crosses a window boundary.  A zero
  lookahead degenerates to one barrier per event -- fully serialized,
  always sound, never deadlocked.

**Determinism contract.**  Exact mode preserves the inner engine's
global ``(fire_time, seq)`` total order -- cross-shard messages are
logged in the mailbox but delivered eagerly into the shared heap -- so
a run with ``shards=N`` is byte-identical to ``shards=1``: same metrics
rows, same trace and time-series digests, same RNG consumption.  The
sharding layer only *attributes* work (events per shard, messages per
shard pair, windows) and *validates* the lookahead bound; its report
rides next to the result, never inside it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, List, Optional, Tuple

from repro.obs.perf import NULL_PERF
from repro.shard.mailbox import Mailbox
from repro.sim.engine import Event, EventScheduler, SimulationError

#: Resolves the shard owning one scheduled callback: ``(fn, args) ->
#: shard id`` or None for "no affinity" (stays on the sending shard).
OwnerHook = Callable[[Callable[..., Any], Tuple[Any, ...]], Optional[int]]


@dataclass(frozen=True)
class ShardReport:
    """Per-shard attribution of one run; plain types, pickle-safe.

    Produced by :meth:`ShardedScheduler.shard_report` after a run.
    Deliberately *not* part of :class:`ExperimentResult.render_rows`
    output: the parity gate byte-diffs those rows across shard counts,
    and this report legitimately differs (it names the shard count).
    """

    num_shards: int
    lookahead_s: float
    windows: int
    events_by_shard: Tuple[int, ...]
    messages_sent: int
    messages_delivered: int
    lookahead_violations: int
    #: ``(origin, dest, count)`` per shard pair, sorted.
    messages_by_pair: Tuple[Tuple[int, int, int], ...]
    #: Worker processes the spec asked for.  Exact mode always executes
    #: single-process (byte parity is structural: one shared heap); real
    #: multiprocess execution lives in :mod:`repro.shard.workers`, and
    #: this field records the requested fan-out for the report.
    workers: int = 1
    #: Which execution model produced the run: ``"exact"`` here; the
    #: lane pool reports ``"in-process"``/``"multiprocess"``/
    #: ``"serialized"`` through its own stats payload.
    execution: str = "exact"

    def render_rows(self) -> List[str]:
        total = max(1, sum(self.events_by_shard))
        rows = [
            f"  shards: {self.num_shards} "
            f"(lookahead {self.lookahead_s * 1000.0:.1f} ms, "
            f"{self.windows} windows, {self.execution} mode, "
            f"workers {self.workers})"
        ]
        for shard, events in enumerate(self.events_by_shard):
            rows.append(
                f"    shard {shard}: {events} events ({100.0 * events / total:.1f}%)"
            )
        rows.append(
            f"    mailbox: {self.messages_sent} cross-shard messages, "
            f"{self.lookahead_violations} lookahead violations"
        )
        busiest = sorted(
            self.messages_by_pair, key=lambda pair: (-pair[2], pair[0], pair[1])
        )[:5]
        for origin, dest, count in busiest:
            rows.append(f"    pair {origin}->{dest}: {count} messages")
        return rows


class ShardedScheduler:
    """Community-partitioned coordinator; implements the Scheduler protocol.

    ``owner_of`` maps a callback to its owning shard; ``lookahead_s``
    bounds how far any shard may run ahead of a window barrier.  The
    inner engine owns the clock, the heap, tick emission, and tracing,
    which is what makes byte-parity with ``shards=1`` structural rather
    than coincidental.
    """

    def __init__(
        self,
        num_shards: int,
        owner_of: OwnerHook,
        lookahead_s: float = 0.0,
        start_time: float = 0.0,
        *,
        strict: bool = False,
    ):
        if num_shards < 1:
            raise ValueError(f"num_shards must be >= 1, got {num_shards}")
        if lookahead_s < 0:
            raise ValueError(f"lookahead_s must be >= 0, got {lookahead_s}")
        self._core = EventScheduler(start_time)
        self.num_shards = num_shards
        self.lookahead_s = float(lookahead_s)
        self._owner_of = owner_of
        self.mailbox = Mailbox(num_shards, strict=strict)
        #: Shard whose event is currently executing; None between events.
        self._current_shard: Optional[int] = None
        self._window_end = float(start_time)
        self.windows = 0
        self.events_by_shard = [0] * num_shards
        self._stopped = False
        #: Wall-clock meter (repro.obs.perf); the falsy NULL_PERF keeps
        #: the per-event hook in _fire a single truthiness check.  Its
        #: readings never enter rows or hashes -- sidecar report only.
        self.perf = NULL_PERF

    # -- protocol surface: clock, queue, accounting -------------------------

    @property
    def now(self) -> float:
        return self._core.now

    @property
    def tracer(self) -> Any:
        return self._core.tracer

    @tracer.setter
    def tracer(self, value: Any) -> None:
        self._core.tracer = value

    @property
    def events_processed(self) -> int:
        return self._core.events_processed

    @property
    def compactions(self) -> int:
        return self._core.compactions

    def pending_count(self) -> int:
        return self._core.pending_count()

    def peek_time(self) -> Optional[float]:
        return self._core.peek_time()

    def enable_ticks(self, period_s: float) -> None:
        self._core.enable_ticks(period_s)

    def advance_to(self, time: float) -> None:
        self._core.advance_to(time)

    def stop(self) -> None:
        self._stopped = True
        self._core.stop()

    # -- scheduling ---------------------------------------------------------

    def schedule(self, delay: float, fn: Callable[..., Any], *args: Any) -> Event:
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay!r} seconds in the past")
        return self.schedule_at(self._core.now + delay, fn, *args)

    def schedule_at(self, time: float, fn: Callable[..., Any], *args: Any) -> Event:
        if time < self._core.now:
            raise SimulationError(
                f"cannot schedule at t={time!r}, clock already at t={self._core.now!r}"
            )
        dest = self._resolve_owner(fn, args)
        self._log_if_cross_shard(dest, float(time), fn)
        event = self._core.schedule_at(time, self._fire, dest, fn, args)
        # Interpose on the handle so cancel/reschedule flow back through
        # the coordinator (Event._scheduler is duck-typed for this).
        event._scheduler = self
        return event

    def _resolve_owner(self, fn: Callable[..., Any], args: Tuple[Any, ...]) -> int:
        owner = self._owner_of(fn, args)
        if owner is None:
            # No affinity: keep the event on the shard that created it
            # (shard 0 for events planted before the run starts).
            return self._current_shard if self._current_shard is not None else 0
        if not 0 <= owner < self.num_shards:
            raise ValueError(
                f"owner_of returned shard {owner!r} for {fn!r}; "
                f"valid shards are 0..{self.num_shards - 1}"
            )
        return owner

    def _log_if_cross_shard(
        self, dest: int, fire_time: float, fn: Callable[..., Any]
    ) -> None:
        origin = self._current_shard
        if origin is None or origin == dest:
            return
        self.mailbox.send(
            origin,
            dest,
            fire_time,
            kind=getattr(fn, "__name__", "callback"),
            window_end=self._window_end,
            defer=False,  # exact mode: the shared heap is the delivery
        )

    def _fire(self, dest: int, fn: Callable[..., Any], args: Tuple[Any, ...]) -> None:
        """Inner-engine callback: run one event in its owning shard."""
        previous = self._current_shard
        self._current_shard = dest
        self.events_by_shard[dest] += 1
        perf = self.perf
        began = perf.lane_event_begin() if perf else 0.0
        try:
            fn(*args)
        finally:
            if perf:
                perf.lane_event_end(dest, began)
            self._current_shard = previous

    # -- Event handle back ends (duck-typed from Event) ---------------------

    def _note_cancelled(self) -> None:
        self._core._note_cancelled()

    def _reschedule_event(
        self, event: Event, delay: float, args: Optional[Tuple[Any, ...]]
    ) -> None:
        """Re-arm a wrapped event; see :meth:`Event.reschedule`.

        The event's stored args are the coordinator's ``(dest, fn,
        inner_args)`` wrapper, so replacement args re-resolve the owner
        and re-wrap; bare reschedules keep the original destination.
        """
        if delay < 0:
            raise SimulationError(f"cannot reschedule {delay!r} seconds in the past")
        dest, fn, _inner = event.args
        wrapped: Optional[Tuple[Any, ...]] = None
        if args is not None:
            dest = self._resolve_owner(fn, args)
            wrapped = (dest, fn, args)
        self._log_if_cross_shard(dest, self._core.now + delay, fn)
        self._core._reschedule_event(event, delay, wrapped)

    # -- window advancement and run loops -----------------------------------

    def _advance_window(self, next_time: float) -> None:
        """Cross window barriers up to the one containing ``next_time``.

        With a positive lookahead, windows are the fixed grid
        ``[k*L, (k+1)*L)``; with zero lookahead every event time is its
        own barrier (fully serialized -- the sound fallback when the
        latency model admits arbitrarily small cross-shard delays).
        """
        if next_time < self._window_end:
            return
        if self.lookahead_s > 0:
            self._window_end = (
                int(next_time / self.lookahead_s) + 1
            ) * self.lookahead_s
        else:
            self._window_end = next_time
        self.windows += 1

    def step(self) -> bool:
        next_time = self._core.peek_time()
        if next_time is None:
            return False
        self._advance_window(next_time)
        return self._core.step()

    def run_until(self, horizon: float) -> None:
        core = self._core
        if horizon < core.now:
            raise SimulationError(
                f"horizon t={horizon!r} is before current time t={core.now!r}"
            )
        self._stopped = False
        span = core.tracer.begin("engine.run", horizon=horizon) if core.tracer else None
        while not self._stopped:
            next_time = core.peek_time()
            if next_time is None or next_time > horizon:
                break
            self._advance_window(next_time)
            core.step()
        if not self._stopped:
            core.advance_to(horizon)
        core.tracer.end(span, events=core.events_processed)

    def run(self) -> None:
        core = self._core
        self._stopped = False
        span = core.tracer.begin("engine.run") if core.tracer else None
        while not self._stopped:
            next_time = core.peek_time()
            if next_time is None:
                break
            self._advance_window(next_time)
            core.step()
        core.tracer.end(span, events=core.events_processed)

    # -- reporting -----------------------------------------------------------

    def shard_report(self) -> ShardReport:
        summary = self.mailbox.summary()
        return ShardReport(
            num_shards=self.num_shards,
            lookahead_s=self.lookahead_s,
            windows=self.windows,
            events_by_shard=tuple(self.events_by_shard),
            messages_sent=summary["sent"],
            messages_delivered=summary["delivered"],
            lookahead_violations=summary["violations"],
            messages_by_pair=tuple(summary["by_pair"]),
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ShardedScheduler(shards={self.num_shards}, now={self.now:.3f}, "
            f"lookahead={self.lookahead_s:.3f}, windows={self.windows})"
        )
