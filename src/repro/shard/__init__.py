# shard: module=shard-local -- re-exports only; no state of its own
"""Community-partitioned sharded simulation.

The paper's per-community hierarchy (Sections O1-O5) makes interest
clusters the natural partition key for parallel discrete-event
simulation: most traffic is intra-community, so cross-shard
interactions are rare and conservative synchronization is cheap (the
same observation CliqueStream exploits for clustered overlays).

The package has four parts:

* :mod:`repro.shard.partition` -- the deterministic interest-community
  partitioner mapping nodes to shards;
* :mod:`repro.shard.mailbox` -- typed inter-shard messages with the
  canonical ``(fire_time, origin_shard, seq)`` ordering key;
* :mod:`repro.shard.scheduler` -- :class:`ShardedScheduler`, the
  *exact-mode* coordinator implementing the
  :class:`repro.sim.scheduler.Scheduler` protocol: every event is
  tagged with its owning shard, cross-shard sends are logged through
  the mailbox, and execution preserves the global total order so
  ``shards=N`` is byte-identical to ``shards=1``;
* :mod:`repro.shard.lanes` -- :class:`LaneEngine`, the *throughput
  mode*: per-shard event lanes advance independently inside
  conservative lookahead windows bounded by the minimum cross-shard
  latency, exchanging mailbox batches at window barriers;
* :mod:`repro.shard.workers` -- the *scale-out mode*:
  :func:`run_lane_program` executes one :class:`LaneProgram` per shard
  on a persistent ``multiprocessing`` pool, shared-nothing lane state,
  mailbox batches over pipes only at window barriers, rows merged in
  canonical order -- byte-identical to the in-process run for any
  worker count (see docs/scaling.md).
"""

from repro.shard.lanes import LaneEngine, run_program_on_lane_engine
from repro.shard.mailbox import Mailbox, ShardMessage, ShardViolation
from repro.shard.partition import CommunityPartition, primary_interest
from repro.shard.scheduler import ShardedScheduler, ShardReport
from repro.shard.workers import (
    LaneProgram,
    LaneRunResult,
    WorkerCrashError,
    WorkerLane,
    run_lane_program,
)

__all__ = [
    "CommunityPartition",
    "LaneEngine",
    "LaneProgram",
    "LaneRunResult",
    "Mailbox",
    "ShardMessage",
    "ShardReport",
    "ShardViolation",
    "ShardedScheduler",
    "WorkerCrashError",
    "WorkerLane",
    "primary_interest",
    "run_lane_program",
    "run_program_on_lane_engine",
]
