# shard: module=shard-local -- one mailbox per run, owned by its coordinator
"""The typed inter-shard mailbox.

Cross-shard interactions -- inter-cluster link searches, tracker
lookups, server traffic, crash-repair routed to the owning shard --
are not direct Python callbacks across the partition; they are
:class:`ShardMessage` records funneled through one :class:`Mailbox`.
Two properties make the mailbox the determinism backbone of
:mod:`repro.shard`:

* **Canonical order.**  Every delivery batch is sorted by the key
  ``(fire_time, origin_shard, seq)`` where ``seq`` is the per-origin
  send counter.  The key is a pure function of simulation state, never
  of wall-clock arrival, so any interleaving of shard progress yields
  the same delivery order.
* **Lookahead accounting.**  A conservative sender may not post a
  message that fires inside its own current window (before
  ``window_end``): such a send is a *lookahead violation*, counted
  always and fatal under ``strict=True``.  The exact-mode coordinator
  runs lax (violations are impossible there by construction, the
  counter is a cross-check); the windowed lane engine runs strict.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple


class ShardViolation(RuntimeError):
    """A cross-shard message fired inside the sender's lookahead window."""


@dataclass(frozen=True)
class ShardMessage:
    """One typed cross-shard interaction record."""

    fire_time: float
    origin_shard: int
    dest_shard: int
    #: Per-origin-shard send sequence number (third ordering component).
    seq: int
    #: Interaction type, e.g. ``"_finish_video"`` or ``"repair"``.
    kind: str
    payload: Tuple[Any, ...] = ()

    @property
    def sort_key(self) -> Tuple[float, int, int]:
        return (self.fire_time, self.origin_shard, self.seq)


def canonical_order(messages: List[ShardMessage]) -> List[ShardMessage]:
    """Sort a batch by the canonical ``(fire_time, origin_shard, seq)`` key."""
    return sorted(messages, key=lambda m: (m.fire_time, m.origin_shard, m.seq))


class Mailbox:
    """Collects cross-shard sends; drains them in canonical order.

    Deferred sends (the windowed lane engine) buffer until the next
    barrier calls :meth:`deliver_all`; eager sends (the exact-mode
    coordinator, which keeps the global event order itself) are counted
    as delivered immediately and never buffer.
    """

    def __init__(self, num_shards: int, *, strict: bool = False):
        if num_shards < 1:
            raise ValueError(f"num_shards must be >= 1, got {num_shards}")
        self.num_shards = num_shards
        self.strict = strict
        self._next_seq = [0] * num_shards
        self._pending: List[ShardMessage] = []
        self.sent = 0
        self.delivered = 0
        self.violations = 0
        #: (origin, dest) -> message count, for the shard report.
        self.by_pair: Dict[Tuple[int, int], int] = {}

    def send(
        self,
        origin: int,
        dest: int,
        fire_time: float,
        kind: str,
        payload: Tuple[Any, ...] = (),
        *,
        window_end: Optional[float] = None,
        defer: bool = True,
    ) -> ShardMessage:
        """Record one cross-shard interaction.

        ``window_end`` is the end of the sender's current lookahead
        window; a ``fire_time`` before it violates the conservative
        synchronization contract.  ``defer=False`` marks the message
        delivered immediately (exact mode).
        """
        seq = self._next_seq[origin]
        self._next_seq[origin] = seq + 1
        message = ShardMessage(
            fire_time=float(fire_time),
            origin_shard=origin,
            dest_shard=dest,
            seq=seq,
            kind=kind,
            payload=tuple(payload),
        )
        if window_end is not None and message.fire_time < window_end:
            self.violations += 1
            if self.strict:
                raise ShardViolation(
                    f"{kind!r} from shard {origin} to {dest} fires at "
                    f"t={message.fire_time:.6f}, inside the sender's window "
                    f"(ends t={window_end:.6f}); the lookahead bound is broken"
                )
        self.sent += 1
        pair = (origin, dest)
        self.by_pair[pair] = self.by_pair.get(pair, 0) + 1
        if defer:
            self._pending.append(message)
        else:
            self.delivered += 1
        return message

    def pending_count(self) -> int:
        return len(self._pending)

    def deliver_all(self) -> List[ShardMessage]:
        """Drain every buffered message, sorted canonically (a barrier)."""
        batch = canonical_order(self._pending)
        self._pending.clear()
        self.delivered += len(batch)
        return batch

    def summary(self) -> Dict[str, Any]:
        """Counters for the shard report; plain types, pickle-safe."""
        return {
            "sent": self.sent,
            "delivered": self.delivered,
            "violations": self.violations,
            "by_pair": sorted(
                (origin, dest, count)
                for (origin, dest), count in self.by_pair.items()
            ),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Mailbox(shards={self.num_shards}, sent={self.sent}, "
            f"pending={len(self._pending)}, violations={self.violations})"
        )
