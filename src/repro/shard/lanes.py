# shard: module=shard-local -- one engine per run; lanes never alias
"""``LaneEngine``: window-batched per-shard event lanes (throughput mode).

Where :class:`repro.shard.scheduler.ShardedScheduler` preserves the
global event order (the byte-parity gate), the lane engine is the mode
that actually buys throughput: each shard owns a *lane* -- its own
clock, its own event storage, its own ``RngStreams.for_run(seed,
"shard:k")`` family -- and lanes only synchronize at window barriers.

The speed does not come from extra cores (the engine is single-process
and deterministic); it comes from replacing the global binary heap with
a **bucket calendar**: events land in per-window buckets via an O(1)
dict append, and each window is sorted once as a batch (Timsort over a
contiguous list) instead of paying per-event ``heappush``/``heappop``
log-factors through one shared heap.  The conservative lookahead
contract is what makes window batching legal: no cross-lane interaction
can take effect inside the window it was sent in, so a window's batch
is complete when it starts.

Ordering contract (weaker than exact mode, still deterministic):

* within a lane, events run in ``(fire_time, seq)`` order;
* within a window, lanes run in ascending lane index;
* cross-lane messages are delivered at the barrier after their send
  window, in the canonical ``(fire_time, origin_shard, seq)`` order,
  and must respect the lookahead bound (``strict`` mailbox -- a
  violating send raises :class:`repro.shard.mailbox.ShardViolation`).

With ``lookahead_s == 0`` the engine falls back to serialized windows:
every distinct event time is a barrier, progress is one timestamp at a
time, and delivery-at-barrier trivially satisfies the (empty) lookahead
bound -- slower, never deadlocked.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.shard.mailbox import Mailbox, ShardMessage
from repro.sim.engine import SimulationError
from repro.sim.rng import RngStreams

#: Receives each barrier-delivered message: ``(engine, lane, message)``.
MessageHandler = Callable[["LaneEngine", "Lane", ShardMessage], None]


class Lane:
    """One shard's event lane: local clock, bucket calendar, RNG family."""

    __slots__ = ("index", "rng", "now", "events_run", "_buckets", "_bucket_keys", "_heap", "_seq")

    def __init__(self, index: int, rng: RngStreams):
        self.index = index
        #: Partition-local stream family (``shard:<index>`` fork).
        self.rng = rng
        self.now = 0.0
        self.events_run = 0
        #: Window index -> unsorted batch of ``(time, seq, fn, args)``.
        self._buckets: Dict[int, List[Tuple[float, int, Any, Tuple[Any, ...]]]] = {}
        #: Min-heap of bucket keys (pushed once per bucket creation).
        self._bucket_keys: List[int] = []
        #: Serialized-mode storage (``lookahead_s == 0``).
        self._heap: List[Tuple[float, int, Any, Tuple[Any, ...]]] = []
        self._seq = 0


class LaneEngine:
    """Deterministic windowed PDES over per-shard lanes.

    The workload drives it through three calls: :meth:`post` (schedule
    a lane-local callback), :meth:`send` (emit a typed cross-lane
    message; delivered to ``on_message`` at the next barrier), and
    :meth:`run_until`.

    With a positive lookahead the horizon is quantized: ``run_until``
    processes whole windows while any starts before the horizon, so
    events in the window containing the horizon still run (the barrier
    grid, not the horizon, is the unit of progress).  Lanes park at
    ``max(lane.now, horizon)``.
    """

    def __init__(
        self,
        num_shards: int,
        lookahead_s: float,
        seed: int = 0,
        *,
        on_message: Optional[MessageHandler] = None,
        strict: bool = True,
    ):
        if num_shards < 1:
            raise ValueError(f"num_shards must be >= 1, got {num_shards}")
        if lookahead_s < 0:
            raise ValueError(f"lookahead_s must be >= 0, got {lookahead_s}")
        self.num_shards = num_shards
        self.lookahead_s = float(lookahead_s)
        self.mailbox = Mailbox(num_shards, strict=strict)
        self.lanes = [
            Lane(k, RngStreams.for_run(seed, f"shard:{k}")) for k in range(num_shards)
        ]
        self.on_message = on_message
        self.windows = 0
        self._window_end = 0.0
        self._current_lane: Optional[Lane] = None
        #: Window index being executed; posts into it set ``_spilled``.
        self._active_window: Optional[int] = None
        self._spilled = False

    @property
    def total_events(self) -> int:
        return sum(lane.events_run for lane in self.lanes)

    # -- scheduling ---------------------------------------------------------

    def post(self, lane: Lane, delay: float, fn: Callable[..., Any], *args: Any) -> None:
        """Schedule ``fn(*args)`` on ``lane``, ``delay`` after its clock."""
        if delay < 0:
            raise SimulationError(f"cannot post {delay!r} seconds in the past")
        self.post_at(lane, lane.now + delay, fn, args)

    def post_at(
        self,
        lane: Lane,
        fire_time: float,
        fn: Callable[..., Any],
        args: Tuple[Any, ...] = (),
    ) -> None:
        """Schedule at an absolute time (barrier handlers re-filing messages)."""
        if fire_time < lane.now:
            raise SimulationError(
                f"cannot post at t={fire_time!r}, lane {lane.index} clock "
                f"already at t={lane.now!r}"
            )
        lane._seq += 1
        entry = (fire_time, lane._seq, fn, args)
        if self.lookahead_s > 0:
            key = int(fire_time / self.lookahead_s)
            bucket = lane._buckets.get(key)
            if bucket is None:
                lane._buckets[key] = [entry]
                heapq.heappush(lane._bucket_keys, key)
            else:
                bucket.append(entry)
            if lane is self._current_lane and key == self._active_window:
                # Posted into the window being executed: the run loop
                # must merge before firing anything later than this.
                self._spilled = True
        else:
            heapq.heappush(lane._heap, entry)

    def send(
        self,
        dest_shard: int,
        fire_time: float,
        kind: str,
        payload: Tuple[Any, ...] = (),
    ) -> ShardMessage:
        """Emit a typed cross-lane message from the executing lane.

        Buffered in the mailbox and delivered to ``on_message`` at the
        next window barrier; ``fire_time`` must respect the lookahead
        bound (at or after the end of the sender's current window).
        """
        if self._current_lane is None:
            raise SimulationError("send() is only legal from inside an event")
        return self.mailbox.send(
            self._current_lane.index,
            dest_shard,
            fire_time,
            kind,
            payload,
            window_end=self._window_end,
        )

    # -- run loop -----------------------------------------------------------

    def run_until(self, horizon: float) -> None:
        if horizon < 0:
            raise SimulationError(f"horizon t={horizon!r} is before t=0.0")
        if self.lookahead_s > 0:
            self._run_windowed(horizon)
        else:
            self._run_serialized(horizon)
        for lane in self.lanes:
            if horizon > lane.now:
                lane.now = horizon

    def _next_window(self) -> Optional[int]:
        """Smallest nonempty bucket key across lanes (lazy key cleanup)."""
        best: Optional[int] = None
        for lane in self.lanes:
            keys = lane._bucket_keys
            while keys and not lane._buckets.get(keys[0]):
                lane._buckets.pop(keys[0], None)
                heapq.heappop(keys)
            if keys and (best is None or keys[0] < best):
                best = keys[0]
        return best

    def _run_windowed(self, horizon: float) -> None:
        lookahead = self.lookahead_s
        while True:
            window = self._next_window()
            if window is None or window * lookahead >= horizon:
                break
            self._window_end = (window + 1) * lookahead
            for lane in self.lanes:
                self._run_lane_window(lane, window)
            self._barrier()
            self.windows += 1

    def _run_lane_window(self, lane: Lane, window: int) -> None:
        """Drain one lane's bucket for ``window``, batch-sorted.

        The fast path is one ``list.sort`` and a straight scan -- the
        win over a binary heap.  Events posted *into the same window*
        while it runs (lane-local causality allows that; cross-lane
        sends do not) flag ``_spilled``, and the loop merges them into
        the unfired remainder before continuing, so ``(fire_time,
        seq)`` order holds among not-yet-run events and the lane clock
        never moves backwards.
        """
        batch = lane._buckets.pop(window, None)
        if not batch:
            return
        self._current_lane = lane
        self._active_window = window
        batch.sort()
        i = 0
        while i < len(batch):
            time, _seq, fn, args = batch[i]
            i += 1
            lane.now = time
            lane.events_run += 1
            fn(*args)
            if self._spilled:
                self._spilled = False
                extra = lane._buckets.pop(window, None)
                if extra:
                    remainder = batch[i:]
                    remainder.extend(extra)
                    remainder.sort()
                    batch = remainder
                    i = 0
        self._active_window = None
        self._current_lane = None

    def _run_serialized(self, horizon: float) -> None:
        """Zero-lookahead fallback: every event time is a barrier.

        Each pass runs *all* events across lanes at the earliest pending
        timestamp (ascending lane order), then exchanges messages, so
        progress is guaranteed -- one timestamp per iteration -- and no
        lane ever runs ahead of another: deadlock-free by construction.
        """
        while True:
            next_time: Optional[float] = None
            for lane in self.lanes:
                if lane._heap and (next_time is None or lane._heap[0][0] < next_time):
                    next_time = lane._heap[0][0]
            if next_time is None or next_time > horizon:
                break
            self._window_end = next_time
            for lane in self.lanes:
                heap = lane._heap
                self._current_lane = lane
                while heap and heap[0][0] == next_time:
                    time, _seq, fn, args = heapq.heappop(heap)
                    lane.now = time
                    lane.events_run += 1
                    fn(*args)
                self._current_lane = None
            self._barrier()
            self.windows += 1

    def _barrier(self) -> None:
        """Exchange mailbox batches: the window-barrier synchronization."""
        batch = self.mailbox.deliver_all()
        if not batch:
            return
        handler = self.on_message
        if handler is None:
            raise SimulationError(
                "cross-lane messages delivered but no on_message handler is set"
            )
        for message in batch:
            handler(self, self.lanes[message.dest_shard], message)

    def stats(self) -> Dict[str, Any]:
        """Counters for benches and tests; plain types only."""
        return {
            "num_shards": self.num_shards,
            "lookahead_s": self.lookahead_s,
            "windows": self.windows,
            "total_events": self.total_events,
            "events_by_lane": [lane.events_run for lane in self.lanes],
            "mailbox": self.mailbox.summary(),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"LaneEngine(shards={self.num_shards}, "
            f"lookahead={self.lookahead_s:.3f}, events={self.total_events})"
        )


class _ProgramLaneFacade:
    """Adapts one :class:`Lane` to the :class:`repro.shard.workers.WorkerLane`
    program surface (``post``/``post_at``/``send``/``emit``/``rng``/``now``),
    so the same :class:`~repro.shard.workers.LaneProgram` runs unchanged on
    this engine -- the third leg of the worker-parity cross-validation.
    """

    __slots__ = (
        "index",
        "num_shards",
        "program",
        "_engine",
        "_lane",
        "_rows",
        "_emit_seq",
    )

    def __init__(self, engine: "LaneEngine", lane: Lane):
        self.index = lane.index
        self.num_shards = len(engine.lanes)
        self.program: Any = None
        self._engine = engine
        self._lane = lane
        self._rows: List[Tuple[Any, ...]] = []
        self._emit_seq = 0

    @property
    def rng(self) -> RngStreams:
        return self._lane.rng

    @property
    def now(self) -> float:
        return self._lane.now

    def post(self, delay: float, fn: Callable[..., Any], *args: Any) -> None:
        self._engine.post(self._lane, delay, fn, *args)

    def post_at(
        self, fire_time: float, fn: Callable[..., Any], args: Tuple[Any, ...] = ()
    ) -> None:
        self._engine.post_at(self._lane, fire_time, fn, args)

    def send(
        self,
        dest_shard: int,
        fire_time: float,
        kind: str,
        payload: Tuple[Any, ...] = (),
    ) -> ShardMessage:
        return self._engine.send(dest_shard, fire_time, kind, payload)

    def emit(self, *values: Any) -> None:
        self._rows.append((self._lane.now, self.index, self._emit_seq) + values)
        self._emit_seq += 1


def run_program_on_lane_engine(
    program_factory: Callable[[], Any],
    num_shards: int,
    lookahead_s: float,
    horizon_s: float,
    seed: int = 0,
) -> Tuple[List[Tuple[Any, ...]], Dict[str, Any]]:
    """Run a :class:`repro.shard.workers.LaneProgram` on this engine.

    Returns ``(rows, stats)`` with rows in the canonical ``(sim_time,
    lane, emit_seq)`` merge order -- byte-comparable against
    :func:`repro.shard.workers.run_lane_program` output for the same
    program, which is exactly how the parity tests use it.
    """

    def deliver(engine: "LaneEngine", lane: Lane, message: ShardMessage) -> None:
        facade = facades[lane.index]
        facade.program.on_message(facade, message)

    engine = LaneEngine(
        num_shards, lookahead_s, seed, on_message=deliver, strict=True
    )
    facades = [_ProgramLaneFacade(engine, lane) for lane in engine.lanes]
    for facade in facades:
        facade.program = program_factory()
        facade.program.setup(facade)
    engine.run_until(horizon_s)
    rows: List[Tuple[Any, ...]] = []
    for facade in facades:
        rows.extend(facade._rows)
    rows.sort(key=lambda row: (row[0], row[1], row[2]))
    return rows, engine.stats()
