"""Typed protocol registry: the one sanctioned way to build a stack.

The experiment layer used to hold a raw ``{name: class}`` dict and pass
free-form ``**protocol_overrides`` straight into constructors, which
made specs unpicklable (classes travel badly), overrides untypable, and
the set of runnable systems invisible to tooling.  This module replaces
that with:

* one frozen *parameter dataclass* per protocol, whose field names are
  exactly the keyword arguments of the protocol constructor, so a
  params value is a complete, hashable, picklable description of a
  stack's tuning;
* a :class:`ProtocolEntry` binding name -> (factory, params type,
  defaults-from-config), registered via :func:`register_protocol`;
* :func:`create_protocol`, the only call site that instantiates a
  ``*Protocol`` class (enforced by the ``direct-protocol-instantiation``
  lint rule).

``repro.experiments.spec.ExperimentSpec`` stores the protocol *name*
plus a params value; workers re-resolve the factory through this
registry, so specs pickle cleanly across process boundaries.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from random import Random
from typing import Any, Callable, Dict, List, Optional, Type

from repro.baselines.gridcast import GridCastProtocol
from repro.baselines.nettube import NetTubeProtocol
from repro.baselines.pavod import PaVodProtocol
from repro.baselines.protocol import VodProtocol
from repro.core.socialtube import SocialTubeProtocol
from repro.experiments.config import SimulationConfig
from repro.net.server import CentralServer
from repro.trace.dataset import TraceDataset

# ---------------------------------------------------------------------------
# per-protocol parameter dataclasses
#
# Field names match the protocol constructors verbatim: a params value
# expands to constructor kwargs via dataclasses.asdict().


@dataclass(frozen=True)
class SocialTubeParams:
    """SocialTube tuning (Section IV / Section V defaults)."""

    inner_link_limit: int = 5
    inter_link_limit: int = 10
    ttl: int = 2
    prefetch_window: int = 3
    enable_prefetch: bool = True


@dataclass(frozen=True)
class NetTubeParams:
    """NetTube tuning (per-video overlays)."""

    links_per_overlay: int = 5
    search_hops: int = 2
    prefetch_window: int = 3
    enable_prefetch: bool = True


@dataclass(frozen=True)
class PaVodParams:
    """PA-VoD tuning (server-directed peer assistance)."""

    watchers_per_referral: int = 3
    download_speedup: float = 2.0


@dataclass(frozen=True)
class GridCastParams:
    """GridCast tuning (tracker-directed multi-video caching)."""

    replicas_per_referral: int = 3


# ---------------------------------------------------------------------------
# registry


@dataclass(frozen=True)
class ProtocolEntry:
    """One runnable protocol stack: its factory and its typed knobs."""

    name: str
    factory: Callable[..., VodProtocol]
    params_type: Type[Any]
    #: Derives the protocol's default params from a SimulationConfig,
    #: so Table-I-style config fields (inner_links, ttl...) keep
    #: steering the stacks they always steered.
    defaults_from_config: Callable[[SimulationConfig], Any]


_REGISTRY: Dict[str, ProtocolEntry] = {}  # shard: shared-mutable


def register_protocol(
    name: str,
    factory: Callable[..., VodProtocol],
    params_type: Type[Any],
    defaults_from_config: Optional[Callable[[SimulationConfig], Any]] = None,
) -> ProtocolEntry:
    """Register a protocol stack under ``name``; returns its entry.

    ``params_type`` must be a frozen dataclass whose fields mirror the
    factory's keyword arguments.  Re-registering a name replaces the
    entry (tests register throwaway stacks).

    Example::

        register_protocol("mystack", MyStackProtocol, MyStackParams)
        protocol = create_protocol("mystack", dataset, server, rng)
    """
    if not dataclasses.is_dataclass(params_type):
        raise TypeError(f"params_type for {name!r} must be a dataclass")
    entry = ProtocolEntry(
        name=name,
        factory=factory,
        params_type=params_type,
        defaults_from_config=defaults_from_config or (lambda _config: params_type()),
    )
    _REGISTRY[name] = entry
    return entry


def unregister_protocol(name: str) -> None:
    """Remove a registered stack (test cleanup for throwaway entries)."""
    _REGISTRY.pop(name, None)


def get_protocol(name: str) -> ProtocolEntry:
    """The registry entry for ``name``; raises ValueError when unknown."""
    entry = _REGISTRY.get(name)
    if entry is None:
        raise ValueError(
            f"unknown protocol {name!r}; choose from {protocol_names()}"
        )
    return entry


def protocol_names() -> List[str]:
    """Sorted names of every registered stack."""
    return sorted(_REGISTRY)


def default_params(name: str, config: SimulationConfig) -> Any:
    """The typed default params of ``name`` under ``config``."""
    return get_protocol(name).defaults_from_config(config)


def resolve_params(
    name: str, config: SimulationConfig, overrides: Optional[Dict[str, Any]] = None
) -> Any:
    """Defaults-from-config with field overrides applied and type-checked.

    Raises TypeError on an override key the params dataclass does not
    declare -- the typo-safety the old ``**protocol_overrides`` lacked.

    Example::

        params = resolve_params("socialtube", config, {"ttl": 3})
        assert params.ttl == 3        # other fields keep config defaults
    """
    params = default_params(name, config)
    if overrides:
        try:
            params = dataclasses.replace(params, **overrides)
        except TypeError as exc:
            raise TypeError(
                f"invalid parameter for protocol {name!r}: {exc}; "
                f"valid fields are "
                f"{[f.name for f in dataclasses.fields(params)]}"
            ) from None
    return params


def create_protocol(
    name: str,
    dataset: TraceDataset,
    server: CentralServer,
    rng: Random,
    params: Optional[Any] = None,
) -> VodProtocol:
    """Instantiate the stack registered under ``name``.

    ``params`` defaults to the entry's params defaults (not derived
    from any SimulationConfig); pass :func:`resolve_params` output to
    honour config-level knobs.

    Example::

        protocol = create_protocol(
            "socialtube", dataset, server, rng,
            params=resolve_params("socialtube", config),
        )
    """
    entry = get_protocol(name)
    if params is None:
        params = entry.params_type()
    if not isinstance(params, entry.params_type):
        raise TypeError(
            f"protocol {name!r} expects params of type "
            f"{entry.params_type.__name__}, got {type(params).__name__}"
        )
    return entry.factory(dataset, server, rng, **dataclasses.asdict(params))


# ---------------------------------------------------------------------------
# the built-in stacks


def _socialtube_defaults(config: SimulationConfig) -> SocialTubeParams:
    return SocialTubeParams(
        inner_link_limit=config.inner_links,
        inter_link_limit=config.inter_links,
        ttl=config.ttl,
        prefetch_window=config.prefetch_window,
        enable_prefetch=config.enable_prefetch,
    )


def _nettube_defaults(config: SimulationConfig) -> NetTubeParams:
    return NetTubeParams(
        links_per_overlay=config.nettube_links_per_overlay,
        search_hops=config.nettube_search_hops,
        prefetch_window=config.prefetch_window,
        enable_prefetch=config.enable_prefetch,
    )


register_protocol(
    "socialtube", SocialTubeProtocol, SocialTubeParams, _socialtube_defaults
)
register_protocol("nettube", NetTubeProtocol, NetTubeParams, _nettube_defaults)
register_protocol("pavod", PaVodProtocol, PaVodParams)
register_protocol("gridcast", GridCastProtocol, GridCastParams)
