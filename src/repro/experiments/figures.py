"""Regenerates every evaluation figure of Section V.

The three measurement figures (16, 17, 18) all derive from the same
five experiment runs per environment -- PA-VoD, SocialTube and NetTube
with their prefetching, plus SocialTube and NetTube without it -- so
:class:`EvaluationSuite` runs each (variant, environment) pair once and
caches the result; the ``figNN_*`` methods then just reshape the data
into the rows the paper plots.

Fig 15 and the prefetch-accuracy numbers are analytical
(:mod:`repro.core.model`) and need no simulation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.core.model import fig15_series, overhead_crossover, prefetch_accuracy
from repro.experiments.config import SimulationConfig
from repro.experiments.parallel import (
    AggregatedResult,
    aggregate_runs,
    run_sweep,
)
from repro.experiments.registry import resolve_params
from repro.experiments.runner import ExperimentResult
from repro.experiments.spec import ExperimentSpec
from repro.experiments.trace_cache import shared_trace_cache
from repro.trace.dataset import TraceDataset

#: The five systems of Fig 17 (Fig 16/18 use the with-prefetch three).
VARIANTS: List[Tuple[str, str, Dict]] = [  # shard: shared-mutable
    ("PA-VoD", "pavod", {}),
    ("SocialTube w/ PF", "socialtube", {"enable_prefetch": True}),
    ("SocialTube w/o PF", "socialtube", {"enable_prefetch": False}),
    ("NetTube w/ PF", "nettube", {"enable_prefetch": True}),
    ("NetTube w/o PF", "nettube", {"enable_prefetch": False}),
]


@dataclass
class FigureRow:
    """One printable row of an evaluation figure."""

    label: str
    values: Dict[str, float]

    def render(self) -> str:
        body = "  ".join(f"{k}={v:.4g}" for k, v in self.values.items())
        return f"  {self.label:24s} {body}"


@dataclass
class EvaluationFigure:
    """A regenerated table/figure: rows plus free-form notes."""

    figure: str
    title: str
    rows: List[FigureRow] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def render_rows(self) -> List[str]:
        out = [f"{self.figure}: {self.title}"]
        out.extend(row.render() for row in self.rows)
        out.extend(f"  note: {n}" for n in self.notes)
        return out


#: A single run or a multi-seed aggregate; both expose ``.metrics``.
SuiteResult = Union[ExperimentResult, AggregatedResult]


class EvaluationSuite:
    """Runs and caches the Section V experiment grid.

    ``seeds``/``jobs`` widen every (variant, environment) cell from one
    run into a seed sweep executed through the parallel orchestrator;
    :meth:`result` then returns an :class:`AggregatedResult` (means +
    95% CIs) instead of a single :class:`ExperimentResult`.  Both shapes
    expose ``.metrics``, so the ``figNN_*`` methods are agnostic.
    ``shards`` selects community-partitioned execution per run
    (repro.shard) and ``workers`` the lane scale-out fan-out -- both
    byte-identical output under the determinism gates.
    """

    def __init__(
        self,
        config: Optional[SimulationConfig] = None,
        planetlab_config: Optional[SimulationConfig] = None,
        seeds: Optional[Sequence[int]] = None,
        jobs: int = 1,
        shards: int = 1,
        workers: int = 1,
    ):
        self.config = config or SimulationConfig.default_scale()
        self.planetlab_config = planetlab_config or SimulationConfig.planetlab_scale()
        self.seeds = tuple(int(s) for s in seeds) if seeds else None
        self.jobs = max(1, int(jobs))
        self.shards = max(1, int(shards))
        self.workers = max(1, int(workers))
        self._results: Dict[Tuple[str, str], SuiteResult] = {}

    def _config_for(self, environment: str) -> SimulationConfig:
        return self.planetlab_config if environment == "planetlab" else self.config

    def _dataset_for(self, environment: str) -> TraceDataset:
        """The trace corpus for one environment, via the shared cache.

        Content-hash keying means two environments (or two suites) with
        the same ``TraceConfig`` share one synthesized corpus instead of
        rebuilding it per environment.
        """
        return shared_trace_cache.dataset_for(self._config_for(environment).trace)

    def _specs_for(
        self, variant_label: str, environment: str
    ) -> List[ExperimentSpec]:
        variant = next((v for v in VARIANTS if v[0] == variant_label), None)
        if variant is None:
            raise KeyError(f"unknown variant {variant_label!r}")
        _label, protocol_name, overrides = variant
        cfg = self._config_for(environment)
        base = ExperimentSpec(
            protocol=protocol_name,
            config=cfg,
            environment=environment,
            params=resolve_params(protocol_name, cfg, overrides or None),
            shards=self.shards,
            workers=self.workers,
        )
        seeds = self.seeds or (cfg.seed,)
        return [base.with_seed(seed) for seed in seeds]

    def _store(self, key: Tuple[str, str], specs, results) -> None:
        if len(results) == 1:
            self._results[key] = results[0]
        else:
            self._results[key] = aggregate_runs(specs, results)

    def warm(
        self,
        variant_labels: Optional[Sequence[str]] = None,
        environments: Sequence[str] = ("peersim",),
    ) -> None:
        """Run every uncached (variant, environment, seed) cell in one
        sweep, so ``jobs > 1`` parallelizes across the whole grid rather
        than one cell at a time."""
        labels = list(variant_labels) if variant_labels is not None else [
            label for label, _name, _overrides in VARIANTS
        ]
        pending: List[Tuple[Tuple[str, str], List[ExperimentSpec]]] = []
        flat: List[ExperimentSpec] = []
        for environment in environments:
            for label in labels:
                key = (label, environment)
                if key in self._results:
                    continue
                specs = self._specs_for(label, environment)
                pending.append((key, specs))
                flat.extend(specs)
        if not pending:
            return
        results = run_sweep(flat, jobs=self.jobs)
        cursor = 0
        for key, specs in pending:
            chunk = results[cursor:cursor + len(specs)]
            cursor += len(specs)
            self._store(key, specs, chunk)

    def result(self, variant_label: str, environment: str = "peersim") -> SuiteResult:
        """The cached outcome for one (variant, environment) pair.

        One seed -> an :class:`ExperimentResult`; several seeds -> an
        :class:`AggregatedResult` of means and confidence intervals.
        """
        key = (variant_label, environment)
        if key not in self._results:
            specs = self._specs_for(variant_label, environment)
            results = run_sweep(specs, jobs=self.jobs)
            self._store(key, specs, results)
        return self._results[key]

    # -- Fig 15 (analytical) --------------------------------------------------

    def fig15_maintenance_model(self, max_videos: int = 50) -> EvaluationFigure:
        """Analytical overhead: SocialTube constant vs NetTube m*log(u)."""
        socialtube, nettube = fig15_series(max_videos_watched=max_videos)
        figure = EvaluationFigure(
            figure="Fig 15",
            title="Analytical overlay maintenance overhead vs videos watched",
        )
        for m in (1, 2, 5, 10, 20, 50):
            if m > max_videos:
                continue
            figure.rows.append(
                FigureRow(
                    label=f"m={m}",
                    values={
                        "SocialTube": socialtube[m - 1][1],
                        "NetTube": nettube[m - 1][1],
                    },
                )
            )
        figure.notes.append(
            f"crossover at m={overhead_crossover():.2f} "
            "(NetTube cheaper below, costlier above)"
        )
        figure.notes.append(
            "paper prefetch accuracy check: "
            f"M=1,N=25 -> {prefetch_accuracy(25, 1):.3f} (paper 0.262), "
            f"M=4,N=25 -> {prefetch_accuracy(25, 4):.3f} (paper 0.546)"
        )
        return figure

    # -- Fig 16 ------------------------------------------------------------------

    def fig16_peer_bandwidth(self, environment: str = "peersim") -> EvaluationFigure:
        """1st/50th/99th percentile normalized peer bandwidth per system."""
        figure = EvaluationFigure(
            figure="Fig 16" + ("a" if environment == "peersim" else "b"),
            title=f"Normalized peer bandwidth percentiles ({environment})",
        )
        for label in ("PA-VoD", "SocialTube w/ PF", "NetTube w/ PF"):
            metrics = self.result(label, environment).metrics
            figure.rows.append(
                FigureRow(
                    label=label.replace(" w/ PF", ""),
                    values={
                        "p1": metrics.peer_bandwidth_p1,
                        "p50": metrics.peer_bandwidth_p50,
                        "p99": metrics.peer_bandwidth_p99,
                    },
                )
            )
        return figure

    # -- Fig 17 --------------------------------------------------------------------

    def fig17_startup_delay(self, environment: str = "peersim") -> EvaluationFigure:
        """Startup delay for the five systems of the paper's bar chart."""
        figure = EvaluationFigure(
            figure="Fig 17" + ("a" if environment == "peersim" else "b"),
            title=f"Startup delay, with and without prefetching ({environment})",
        )
        for label, _name, _overrides in VARIANTS:
            metrics = self.result(label, environment).metrics
            figure.rows.append(
                FigureRow(
                    label=label,
                    values={
                        "mean_ms": metrics.startup_delay_ms_mean,
                        "p50_ms": metrics.startup_delay_ms_p50,
                        "p99_ms": metrics.startup_delay_ms_p99,
                    },
                )
            )
        return figure

    # -- Fig 18 ----------------------------------------------------------------------

    def fig18_maintenance_overhead(self, environment: str = "peersim") -> EvaluationFigure:
        """Mean maintained links vs videos watched in a session."""
        figure = EvaluationFigure(
            figure="Fig 18" + ("a" if environment == "peersim" else "b"),
            title=f"Overlay maintenance overhead over a session ({environment})",
        )
        for label in ("SocialTube w/ PF", "NetTube w/ PF"):
            metrics = self.result(label, environment).metrics
            series = metrics.overhead_series()
            figure.rows.append(
                FigureRow(
                    label=label.replace(" w/ PF", ""),
                    values={f"v{idx}": links for idx, links in series},
                )
            )
        return figure

    # -- Table I -----------------------------------------------------------------------

    def table1_parameters(self) -> EvaluationFigure:
        """The experiment's default parameters (paper's Table I)."""
        cfg = self.config
        figure = EvaluationFigure(
            figure="Table I", title="Experiment default parameters"
        )
        paper = SimulationConfig.paper_scale()
        rows = [
            ("Number of nodes", cfg.num_nodes, paper.num_nodes),
            ("Number of videos", cfg.trace.num_videos, paper.trace.num_videos),
            ("Number of channels", cfg.trace.num_channels, paper.trace.num_channels),
            ("Sessions per user", cfg.sessions_per_user, paper.sessions_per_user),
            ("Videos per session", cfg.videos_per_session, paper.videos_per_session),
            ("Mean off time (s)", cfg.mean_off_time_s, paper.mean_off_time_s),
            ("Chunks per video", cfg.chunks_per_video, paper.chunks_per_video),
            ("Video bitrate (kbps)", cfg.video_bitrate_bps / 1000,
             paper.video_bitrate_bps / 1000),
            ("Server bandwidth (Mbps)", cfg.effective_server_bandwidth_bps / 1e6,
             paper.effective_server_bandwidth_bps / 1e6),
            ("Inner links / inter links", cfg.inner_links * 100 + cfg.inter_links,
             paper.inner_links * 100 + paper.inter_links),
            ("TTL", cfg.ttl, paper.ttl),
        ]
        for label, ours, papers in rows:
            figure.rows.append(
                FigureRow(label=label, values={"this_run": float(ours), "paper": float(papers)})
            )
        figure.notes.append(
            "inner/inter links encoded as inner*100+inter (5/10 -> 510)"
        )
        return figure

    # -- everything ------------------------------------------------------------------------

    def all_figures(self, environments=("peersim", "planetlab")) -> List[EvaluationFigure]:
        figures = [self.fig15_maintenance_model(), self.table1_parameters()]
        for environment in environments:
            figures.append(self.fig16_peer_bandwidth(environment))
            figures.append(self.fig17_startup_delay(environment))
            figures.append(self.fig18_maintenance_overhead(environment))
        return figures
