"""Experiment configuration: Table I and the two environments.

Table I of the paper (values recovered from the OCR-mangled text; see
DESIGN.md section 5):

=========================  ==========================================
Simulation duration        30 days
Number of nodes            10,000
Number of videos           ~10,121
Number of channels         545
Video size                 YouTube video size distribution
Number of chunks per video 20
Video bitrate              320 kbps
Server bandwidth           500 Mbps
=========================  ==========================================

Plus Section V text: inner-links 5, inter-links 10, TTL 2, 10 videos
per session, 250 sessions per user, Poisson off-times with mean 500 s,
prefetch window 3.  The PlanetLab experiment scales down to 250 nodes,
6 categories x 10 channels x 40 videos, 50 sessions, mean off time 2
minutes.

Full paper scale is expensive in pure Python, so :func:`default_scale`
returns a proportionally scaled-down configuration for tests and
benchmarks; :func:`paper_scale` returns Table I verbatim.  The server
bandwidth scales with the node count (50 kbps per node, the Table I
ratio) so that the server-saturation regime -- the phenomenon behind
Fig 17 -- is preserved at every scale.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from random import Random
from typing import Callable, Dict, Optional

from repro.net.latency import (
    LatencyModel,
    PlanarLatencyModel,
    WanLatencyModel,
)
from repro.trace.synthesizer import TraceConfig


@dataclass
class Environment:
    """A network environment: latency shape + injected pathologies."""

    name: str
    latency_factory: Callable[[Random], LatencyModel]
    #: Probability that a chosen peer transfer fails mid-setup and the
    #: request falls back to the server (PlanetLab's "connection
    #: failure and network congestion").
    peer_failure_prob: float = 0.0
    #: Extra fixed signalling overhead per server interaction (s).
    server_processing_delay: float = 0.005


def simulator_environment() -> Environment:
    """The PeerSim-style simulation environment (Fig 16a/17a/18a)."""
    return Environment(
        name="peersim",
        latency_factory=lambda rng: PlanarLatencyModel(rng),
        peer_failure_prob=0.0,
    )


def planetlab_environment() -> Environment:
    """The PlanetLab-style WAN environment (Fig 16b/17b/18b).

    Heavy jitter, congestion episodes and transient peer connection
    failures -- the pathologies the paper credits for the baselines'
    1st-percentile peer bandwidth collapsing to zero.
    """
    return Environment(
        name="planetlab",
        latency_factory=lambda rng: WanLatencyModel(rng),
        peer_failure_prob=0.06,
        server_processing_delay=0.010,
    )


def simulator_bounded_environment() -> Environment:
    """``peersim`` with the bounded-below jitter variant.

    Identical topology, but the lognormal jitter multiplier is clamped
    at 0.25 (it falls below that with probability ~2e-8 at sigma 0.25),
    which gives the planar model a sound ``min_one_way_s`` of
    ``0.010 * 0.25 = 2.5 ms`` -- positive shard lookahead instead of
    serialized windows.  This is the environment the scale-out
    benchmarks and the worker-parity gate run on (docs/scaling.md).
    """
    return Environment(
        name="peersim-bounded",
        latency_factory=lambda rng: PlanarLatencyModel(rng, jitter_floor=0.25),
        peer_failure_prob=0.0,
    )


def planetlab_bounded_environment() -> Environment:
    """``planetlab`` with the bounded-below jitter variant.

    Same WAN matrix, congestion episodes and failure probability; the
    jitter clamp at 0.25 yields ``min_one_way_s`` of ``0.015 * 0.25 =
    3.75 ms`` so WAN runs also get a positive lookahead.
    """
    return Environment(
        name="planetlab-bounded",
        latency_factory=lambda rng: WanLatencyModel(rng, jitter_floor=0.25),
        peer_failure_prob=0.06,
        server_processing_delay=0.010,
    )


#: Named environment factories.  ExperimentSpec stores an environment
#: *name* (Environment itself holds latency-model closures that do not
#: pickle across process boundaries); the runner resolves the name on
#: whichever process executes the spec.
ENVIRONMENT_FACTORIES: Dict[str, Callable[[], Environment]] = {  # shard: shared-mutable
    "peersim": simulator_environment,
    "planetlab": planetlab_environment,
    "peersim-bounded": simulator_bounded_environment,
    "planetlab-bounded": planetlab_bounded_environment,
}


def environment_by_name(name: str) -> Environment:
    """A fresh Environment for a registered name; ValueError when unknown."""
    factory = ENVIRONMENT_FACTORIES.get(name)
    if factory is None:
        raise ValueError(
            f"unknown environment {name!r}; "
            f"choose from {sorted(ENVIRONMENT_FACTORIES)}"
        )
    return factory()


@dataclass
class SimulationConfig:
    """Everything one experiment run needs."""

    # Population / corpus (Table I).
    num_nodes: int = 1000
    trace: TraceConfig = field(
        default_factory=lambda: TraceConfig(
            num_users=1000, num_channels=120, num_videos=4000
        )
    )
    # Session plan (Section V).
    sessions_per_user: int = 10
    videos_per_session: int = 10
    mean_off_time_s: float = 500.0
    # Video / transport model (Table I).
    chunks_per_video: int = 20
    video_bitrate_bps: float = 320_000.0
    startup_buffer_s: float = 2.0
    server_bandwidth_bps: Optional[float] = None  # None -> 50 kbps/node
    peer_upload_min_bps: float = 1_000_000.0
    peer_upload_max_bps: float = 4_000_000.0
    # Protocol parameters (Section V).
    inner_links: int = 5
    inter_links: int = 10
    ttl: int = 2
    nettube_links_per_overlay: int = 5
    nettube_search_hops: int = 2
    prefetch_window: int = 3
    prefetch_store_capacity: int = 50
    enable_prefetch: bool = True
    # Misc.
    local_playback_delay_s: float = 0.010  # local decode/render startup
    seed: int = 2014

    def __post_init__(self) -> None:
        if self.num_nodes < 2:
            raise ValueError("need at least two nodes")
        if self.num_nodes > self.trace.num_users:
            raise ValueError("num_nodes cannot exceed the trace's user count")
        if self.chunks_per_video < 1:
            raise ValueError("chunks_per_video must be >= 1")
        if self.video_bitrate_bps <= 0 or self.startup_buffer_s <= 0:
            raise ValueError("bitrate and startup buffer must be positive")
        if self.peer_upload_min_bps <= 0 or self.peer_upload_max_bps < self.peer_upload_min_bps:
            raise ValueError("invalid peer upload range")

    @property
    def effective_server_bandwidth_bps(self) -> float:
        """Explicit value, or the Table I ratio of 50 kbps per node."""
        if self.server_bandwidth_bps is not None:
            return self.server_bandwidth_bps
        return 50_000.0 * self.num_nodes

    def video_bits(self, length_seconds: float) -> float:
        """Size of a video in bits at the configured bitrate."""
        return self.video_bitrate_bps * length_seconds

    def startup_buffer_bits(self) -> float:
        """Bits a player must buffer before playback starts."""
        return self.video_bitrate_bps * self.startup_buffer_s

    # -- canonical scales ------------------------------------------------------

    @classmethod
    def paper_scale(cls, seed: int = 2014) -> "SimulationConfig":
        """Table I verbatim: 10,000 nodes, 545 channels, 250 sessions."""
        return cls(
            num_nodes=10000,
            trace=TraceConfig.table1_scale(seed=seed),
            sessions_per_user=250,
            videos_per_session=10,
            mean_off_time_s=500.0,
            server_bandwidth_bps=500_000_000.0,
            seed=seed,
        )

    @classmethod
    def default_scale(cls, seed: int = 2014) -> "SimulationConfig":
        """Scaled-down Table I preserving all the ratios that matter.

        1,000 nodes (1/10), same sessions-per-user structure but 10
        sessions (enough for caches and overlays to reach steady
        state), server bandwidth at the Table I per-node ratio.
        """
        return cls(seed=seed)

    @classmethod
    def smoke_scale(cls, seed: int = 2014) -> "SimulationConfig":
        """Tiny config for unit tests (seconds, not minutes)."""
        return cls(
            num_nodes=120,
            trace=TraceConfig(
                num_users=120, num_channels=24, num_videos=600, seed=seed
            ),
            sessions_per_user=3,
            videos_per_session=5,
            mean_off_time_s=120.0,
            seed=seed,
        )

    @classmethod
    def planetlab_scale(cls, seed: int = 2014) -> "SimulationConfig":
        """The PlanetLab deployment of Section V.

        250 nodes; 6 categories x 10 channels x 40 videos = 2,400
        videos; inner/inter links 5/10; 50 sessions per user; off times
        Poisson with mean 2 minutes.
        """
        return cls(
            num_nodes=250,
            trace=TraceConfig(
                num_users=250,
                num_channels=60,
                num_videos=2400,
                num_categories=6,
                seed=seed,
            ),
            sessions_per_user=50,
            videos_per_session=10,
            mean_off_time_s=120.0,
            seed=seed,
        )

    def scaled_sessions(self, sessions: int) -> "SimulationConfig":
        """Copy with a different session count (benchmark shortening)."""
        return replace(self, sessions_per_user=sessions)
