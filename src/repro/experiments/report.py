"""Paper-style text rendering of evaluation results.

Keeps the harness output greppable and diffable: every figure renders
to plain rows, and :func:`shape_checks` states the paper's qualitative
claims next to the measured verdicts (the reproduction contract is the
*shape* -- who wins and by roughly what factor -- not absolute values).
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.experiments.figures import EvaluationFigure, EvaluationSuite
from repro.experiments.parallel import AggregatedResult


def render_ci_table(aggregates: Sequence[AggregatedResult]) -> str:
    """Mean [95% CI] table of a multi-seed sweep, one row per system.

    This is the aggregated view the ``--seeds a,b,c`` CLI flag prints:
    headline metrics as ``mean [low, high]`` over the seed list.
    """
    if not aggregates:
        return "no aggregated results"
    seeds = ", ".join(str(s) for s in aggregates[0].seeds)
    lines = [f"Multi-seed aggregate over seeds [{seeds}] (mean [95% CI]):"]
    columns = (
        ("startup_ms", "startup_delay_ms_mean"),
        ("peer_bw_p50", "peer_bandwidth_p50"),
        ("server_frac", "server_fallback_fraction"),
        ("prefetch_hit", "prefetch_hit_fraction"),
        ("continuity", "mean_continuity_index"),
        ("stall_frac", "stall_fraction"),
        ("stall_ms", "mean_stall_ms"),
    )
    for agg in aggregates:
        cells = []
        for label, name in columns:
            m, lo, hi = agg.interval(name)
            cells.append(f"{label}={m:.4g} [{lo:.4g}, {hi:.4g}]")
        lines.append(
            f"  {agg.protocol:12s} {agg.environment:9s} "
            f"n={agg.num_runs}  " + "  ".join(cells)
        )
    return "\n".join(lines)


def render_report(figures: List[EvaluationFigure]) -> str:
    """All figures as one text block."""
    lines: List[str] = []
    for figure in figures:
        lines.extend(figure.render_rows())
        lines.append("")
    return "\n".join(lines)


def shape_checks(suite: EvaluationSuite, environment: str = "peersim") -> Dict[str, bool]:
    """The paper's qualitative claims, evaluated on a suite's runs.

    Returns a name -> verdict map; every entry should be True for a
    successful reproduction.
    """
    st = suite.result("SocialTube w/ PF", environment).metrics
    st_nopf = suite.result("SocialTube w/o PF", environment).metrics
    nt = suite.result("NetTube w/ PF", environment).metrics
    nt_nopf = suite.result("NetTube w/o PF", environment).metrics
    pa = suite.result("PA-VoD", environment).metrics

    checks: Dict[str, bool] = {}
    # Fig 16: SocialTube > NetTube > PA-VoD at the median.
    checks["fig16_socialtube_beats_nettube"] = (
        st.peer_bandwidth_p50 > nt.peer_bandwidth_p50
    )
    checks["fig16_nettube_beats_pavod"] = (
        nt.peer_bandwidth_p50 > pa.peer_bandwidth_p50
    )
    # Fig 17: PA-VoD worst; SocialTube < NetTube with and without PF;
    # prefetching helps each system.
    checks["fig17_pavod_worst"] = pa.startup_delay_ms_mean > max(
        st.startup_delay_ms_mean,
        nt.startup_delay_ms_mean,
        st_nopf.startup_delay_ms_mean,
        nt_nopf.startup_delay_ms_mean,
    )
    checks["fig17_socialtube_beats_nettube_with_pf"] = (
        st.startup_delay_ms_mean < nt.startup_delay_ms_mean
    )
    checks["fig17_socialtube_beats_nettube_without_pf"] = (
        st_nopf.startup_delay_ms_mean < nt_nopf.startup_delay_ms_mean
    )
    checks["fig17_prefetch_helps_socialtube"] = (
        st.startup_delay_ms_mean < st_nopf.startup_delay_ms_mean
    )
    checks["fig17_prefetch_helps_nettube"] = (
        nt.startup_delay_ms_mean < nt_nopf.startup_delay_ms_mean
    )
    # SocialTube's channel-based prefetch is more accurate than
    # NetTube's random one (the mechanism behind its larger gain).
    checks["prefetch_socialtube_more_accurate"] = (
        st.prefetch_hit_fraction > nt.prefetch_hit_fraction
    )
    # Fig 18: NetTube grows with videos watched; SocialTube ~flat.
    st_series = st.overhead_series()
    nt_series = nt.overhead_series()
    if len(st_series) >= 2 and len(nt_series) >= 2:
        st_first, st_last = st_series[0][1], st_series[-1][1]
        nt_first, nt_last = nt_series[0][1], nt_series[-1][1]
        checks["fig18_nettube_grows"] = nt_last > 1.8 * max(nt_first, 1.0)
        checks["fig18_socialtube_flat"] = st_last < 1.4 * max(st_first, 1.0)
        checks["fig18_nettube_ends_higher"] = nt_last > st_last
    return checks


def render_shape_checks(checks: Dict[str, bool]) -> str:
    lines = ["Qualitative shape checks (paper's claims):"]
    for name, verdict in checks.items():
        status = "PASS" if verdict else "FAIL"
        lines.append(f"  [{status}] {name}")
    return "\n".join(lines)
