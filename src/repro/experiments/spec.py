"""The frozen, hashable description of one experiment run.

An :class:`ExperimentSpec` is the unit of work of the whole evaluation
layer: the CLI, :class:`repro.experiments.figures.EvaluationSuite`, the
ablation sweeps and the process-pool orchestrator all construct specs,
and a spec is everything a worker process needs to reproduce a run
bit-for-bit -- protocol *name* (resolved through the typed registry, so
specs pickle without dragging classes along), full
:class:`SimulationConfig` (including the run seed and the trace
recipe), environment *name*, and a typed params value.

Two hashes matter:

* :meth:`content_hash` -- SHA-256 over the canonical JSON of the fully
  resolved spec.  Equal hashes mean byte-identical runs; the sweep
  layer uses it to deduplicate work and key result caches.
* :meth:`trace_hash` -- the same digest over only ``config.trace``.
  Runs whose specs share a trace hash watch the *same* synthesized
  corpus, which is what lets the trace cache synthesize once and ship
  one serialized snapshot to every worker.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass, replace
from typing import Any, Dict, Iterable, Optional, Tuple

from repro.experiments.config import SimulationConfig
from repro.experiments.registry import get_protocol, resolve_params
from repro.faults.plan import FaultPlan

#: Bumped when the canonical serialization changes shape, so stale
#: on-disk caches keyed by content_hash can never alias a new layout.
_SPEC_SCHEMA_VERSION = 1  # shard: shared-read


def canonical_json(value: Any) -> str:
    """Deterministic JSON for dataclasses/dicts/scalars (sorted keys).

    Example::

        >>> canonical_json({"b": 2, "a": 1})
        '{"a":1,"b":2}'
    """
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        value = dataclasses.asdict(value)
    return json.dumps(value, sort_keys=True, separators=(",", ":"), default=str)


def content_digest(value: Any) -> str:
    """SHA-256 hex digest of :func:`canonical_json`.

    Example::

        >>> content_digest({"a": 1}) == content_digest({"a": 1})
        True
    """
    return hashlib.sha256(canonical_json(value).encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class ExperimentSpec:
    """Everything that determines one ``(protocol, seed, environment)`` run.

    ``params=None`` means "derive the protocol's defaults from
    ``config``"; the resolution is deterministic, so a None-params spec
    and its explicitly resolved twin share a :meth:`content_hash` (and
    therefore a cache slot) even though ``==`` distinguishes them.

    ``environment`` is a *name* (see
    ``repro.experiments.config.ENVIRONMENT_FACTORIES``) because
    :class:`Environment` carries latency-model closures that do not
    pickle; the runner resolves the name on whichever process executes
    the spec.

    Example::

        spec = ExperimentSpec(
            protocol="socialtube",
            config=SimulationConfig.smoke_scale(seed=2014),
        )
        result = run_spec(spec)              # repro.experiments.runner
        cache_key = spec.content_hash()
    """

    protocol: str
    config: SimulationConfig
    environment: str = "peersim"
    params: Optional[Any] = None
    #: Optional fault model (see repro.faults).  ``None`` and an
    #: all-zero plan are hash-equivalent: both are omitted from the
    #: canonical payload, so fault-free specs keep their pre-fault
    #: content hashes (and the committed baselines keyed by them).
    faults: Optional[FaultPlan] = None
    #: Shard count for community-partitioned execution (repro.shard).
    #: Excluded from the canonical payload: the determinism gate makes
    #: ``shards`` an execution detail, never an identity -- any shard
    #: count produces byte-identical results, so baselines and result
    #: caches keyed by :meth:`content_hash` stay valid across it.
    shards: int = 1
    #: Worker processes for lane scale-out (repro.shard.workers).
    #: Hash-neutral for the same reason as ``shards``: worker count is
    #: how the run executes, never what it computes -- ``--workers M``
    #: is byte-identical to ``--workers 1`` (the worker-parity gate).
    workers: int = 1

    def __post_init__(self) -> None:
        entry = get_protocol(self.protocol)  # raises ValueError when unknown
        if self.params is not None and not isinstance(
            self.params, entry.params_type
        ):
            raise TypeError(
                f"protocol {self.protocol!r} expects params of type "
                f"{entry.params_type.__name__}, "
                f"got {type(self.params).__name__}"
            )
        if not isinstance(self.config, SimulationConfig):
            raise TypeError("config must be a SimulationConfig")
        if self.faults is not None and not isinstance(self.faults, FaultPlan):
            raise TypeError("faults must be a FaultPlan or None")
        if not isinstance(self.shards, int) or self.shards < 1:
            raise ValueError(f"shards must be an int >= 1, got {self.shards!r}")
        if not isinstance(self.workers, int) or self.workers < 1:
            raise ValueError(f"workers must be an int >= 1, got {self.workers!r}")

    # -- derived views -------------------------------------------------------

    @property
    def seed(self) -> int:
        """The run seed (the RngStreams root of this run)."""
        return self.config.seed

    def resolved_params(self) -> Any:
        """The typed params this run will use (defaults filled in)."""
        if self.params is not None:
            return self.params
        return resolve_params(self.protocol, self.config)

    def has_faults(self) -> bool:
        """True when a nonzero :class:`FaultPlan` governs this run."""
        return self.faults is not None and not self.faults.is_zero()

    def resolved_faults(self) -> Optional[FaultPlan]:
        """The effective fault plan: ``None`` unless nonzero faults apply."""
        return self.faults if self.has_faults() else None

    def canonical_payload(self) -> Dict[str, Any]:
        """The fully resolved, JSON-ready description of this run.

        A nonzero fault plan contributes a ``"faults"`` key; ``None``
        and all-zero plans contribute nothing, so their specs hash
        identically to specs predating fault injection.
        """
        payload = {
            "version": _SPEC_SCHEMA_VERSION,
            "protocol": self.protocol,
            "environment": self.environment,
            "config": dataclasses.asdict(self.config),
            "params": dataclasses.asdict(self.resolved_params()),
        }
        if self.has_faults():
            payload["faults"] = self.faults.to_dict()
        return payload

    def content_hash(self) -> str:
        """SHA-256 hex digest identifying this run's full behaviour."""
        return content_digest(self.canonical_payload())

    def trace_hash(self) -> str:
        """Digest of the trace recipe alone (the trace-cache key)."""
        return content_digest(self.config.trace)

    # -- builders ------------------------------------------------------------

    def with_seed(self, seed: int) -> "ExperimentSpec":
        """Same run under a different RNG seed (same trace corpus).

        Only ``config.seed`` changes: the trace recipe keeps its own
        seed, so a seed sweep replays the paper's methodology --
        repeated randomized trials over one corpus -- and every spec in
        the sweep shares a :meth:`trace_hash`.
        """
        return replace(self, config=replace(self.config, seed=seed))

    def with_params(self, **overrides: Any) -> "ExperimentSpec":
        """Copy with typed parameter overrides applied over the defaults.

        Unknown field names raise TypeError -- the typo-safety the old
        free-form ``**protocol_overrides`` never had.
        """
        params = dataclasses.replace(self.resolved_params(), **overrides)
        return replace(self, params=params)

    def with_faults(self, faults: Optional[FaultPlan]) -> "ExperimentSpec":
        """Copy with a fault plan attached (or removed with ``None``).

        Example::

            chaos = spec.with_faults(FaultPlan.demo())
            assert chaos.content_hash() != spec.content_hash()
            assert spec.with_faults(FaultPlan()).content_hash() == spec.content_hash()
        """
        return replace(self, faults=faults)

    def with_shards(self, shards: int) -> "ExperimentSpec":
        """Copy running under ``shards`` community partitions.

        Hash-neutral by design::

            assert spec.with_shards(4).content_hash() == spec.content_hash()
        """
        return replace(self, shards=shards)

    def with_workers(self, workers: int) -> "ExperimentSpec":
        """Copy running lane scale-out on ``workers`` processes.

        Hash-neutral like :meth:`with_shards`::

            assert spec.with_workers(4).content_hash() == spec.content_hash()
        """
        return replace(self, workers=workers)

    def label(self) -> str:
        """Compact human-readable identity for logs and progress rows."""
        return f"{self.protocol}/{self.environment}/seed={self.seed}"

    def __hash__(self) -> int:
        return int(self.content_hash()[:16], 16)


def seed_sweep(
    spec: ExperimentSpec, seeds: Iterable[int]
) -> Tuple[ExperimentSpec, ...]:
    """One spec per seed, in the given order (duplicates preserved).

    Example::

        specs = seed_sweep(base_spec, [1, 2, 3])
        assert [s.seed for s in specs] == [1, 2, 3]
        assert len({s.trace_hash() for s in specs}) == 1  # same corpus
    """
    return tuple(spec.with_seed(int(seed)) for seed in seeds)
