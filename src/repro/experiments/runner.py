"""Drives one :class:`ExperimentSpec` end to end.

The runner wires together every substrate: the synthesized trace, the
event engine, the latency/bandwidth models, the central server, one
protocol stack (resolved through the typed registry), the 75/15/10
workload, churned sessions, and the metrics collectors.  The per-user
lifecycle is::

    join (staggered) -> session: [select video -> locate -> startup ->
    watch -> prefetch -> sample overhead] x videos_per_session ->
    graceful leave -> Poisson off time -> next session -> ...

Entry point: :func:`run_spec` -- the canonical call: one frozen
:class:`ExperimentSpec` in, one :class:`ExperimentResult` out.  This is
also what sweep workers execute (see :mod:`repro.experiments.parallel`).

``spec.shards > 1`` swaps the event engine for the community-
partitioned :class:`repro.shard.scheduler.ShardedScheduler`: nodes are
partitioned by interest community, every event runs on its owning
shard, cross-shard interactions are logged through the typed mailbox,
and the lookahead window is bounded by the latency model's minimum
cross-shard one-way delay.  The determinism gate guarantees the result
is byte-identical to ``shards=1``; the per-shard attribution rides
along as ``result.shard_report``.

``spec.workers`` is recorded on that report but the paper-metric
pipeline always executes exact mode in one process: the protocol stack
shares server/tracker/overlay state across shards, so honest lane
decomposition would change which RNG stream serves which draw.  Real
multiprocess execution lives at the lane-program level
(:mod:`repro.shard.workers`), where state is shared-nothing by
construction; docs/scaling.md spells out the split.

Delay model (documented in DESIGN.md section 5):

* peer provider found by flooding: one one-way latency per hop along
  the actual query path, plus the provider's one-way response, plus the
  startup-buffer transfer at the provider's granted upload share;
* tracker referral: a server round trip plus the provider round trip;
* server fallback: the failed flood phases (2 x TTL one-way samples
  each), a server round trip, and the buffer transfer at the server's
  granted share -- which is where saturation turns into seconds;
* prefetched first chunk or cached video: playback starts locally.
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.baselines.protocol import PeerState
from repro.experiments.config import Environment, environment_by_name
from repro.experiments.registry import create_protocol
from repro.experiments.spec import ExperimentSpec
from repro.experiments.trace_cache import shared_trace_cache
from repro.faults.injector import FaultInjector, NULL_INJECTOR
from repro.metrics.collectors import ExperimentMetrics, MetricsCollector
from repro.net.latency import SERVER_NODE_ID
from repro.net.message import ChunkSource, LookupResult
from repro.net.streaming import simulate_playback, simulate_resume
from repro.net.server import CentralServer, ServerOverloadError
from repro.obs.perf import NULL_PERF
from repro.obs.tracer import NULL_TRACER
from repro.overlay.maintenance import record_link_sample, record_repair_sweep
from repro.shard.partition import CommunityPartition, primary_interest
from repro.shard.scheduler import ShardedScheduler, ShardReport
from repro.sim.churn import ChurnModel, SessionPlan
from repro.sim.engine import EventScheduler
from repro.sim.rng import RngStreams
from repro.sim.scheduler import Scheduler
from repro.trace.dataset import TraceDataset
from repro.workload.selection import VideoSelector
from repro.workload.session import SessionTracker


@dataclass
class _ActiveWatch:
    """One in-flight watch, tracked only on fault-injected runs.

    ``offset`` is the number of chunks already local when the *current*
    transfer began (1 after a prefetch hit, ``chunks_done`` after a
    failover resume), so the interruption handler can convert elapsed
    transfer time into delivered chunks.  ``transfer_start_t`` is
    approximated by the request instant -- chunk-granularity slack the
    failover model absorbs.
    """

    video_id: int
    provider_id: Optional[int]  # None for server- or cache-sourced watches
    grant: object  # TransferGrant, or None on a cache hit
    rate_bps: float  # effective (possibly fault-degraded) transfer rate
    request_t: float
    startup_s: float
    chunks: int
    offset: int
    transfer_start_t: float
    span_id: object
    finish_event: object


@dataclass
class _FailoverState:
    """One consumer between losing its provider and resuming."""

    watch: _ActiveWatch
    interrupted_at: float
    chunks_done: int
    attempt: int = 0


@dataclass
class ExperimentResult:
    """Everything a bench needs from one run."""

    metrics: ExperimentMetrics
    server_requests: int
    tracker_lookups: int
    events_processed: int
    sim_duration_s: float
    prefetch_hit_rate: float
    #: Per-shard attribution when the run was sharded, else None.
    #: Deliberately NOT rendered by render_rows: those rows are the
    #: byte-parity surface across shard counts, and this report
    #: legitimately names the shard count.
    shard_report: Optional[ShardReport] = None

    def render_rows(self):
        rows = list(self.metrics.render_rows())
        rows.append(
            f"  server: {self.server_requests} direct serves, "
            f"{self.tracker_lookups} tracker lookups; "
            f"{self.events_processed} events over {self.sim_duration_s/3600.0:.1f} sim hours"
        )
        return rows


class ExperimentRunner:
    """Builds and runs the experiment one spec describes.

    ``dataset`` short-circuits trace synthesis with a pre-built corpus
    (the shared trace cache, a worker's deserialized snapshot);
    ``environment`` overrides the spec's named environment with a
    custom :class:`Environment` instance (testbed emulations).
    """

    def __init__(
        self,
        spec: ExperimentSpec,
        dataset: Optional[TraceDataset] = None,
        environment: Optional[Environment] = None,
        tracer=None,
        perf=None,
    ):
        if not isinstance(spec, ExperimentSpec):
            raise TypeError(
                "ExperimentRunner takes an ExperimentSpec; build one "
                "(see ExperimentSpec.with_params/with_seed) and call run_spec"
            )
        self.spec = spec
        config = spec.config
        self.config = config
        self.environment = environment or environment_by_name(spec.environment)
        self.protocol_name = spec.protocol
        self.params = spec.resolved_params()

        # Each run owns an independent stream family rooted at its
        # spec's seed -- the contract that makes parallel sweeps
        # byte-identical to serial execution (see RngStreams.for_run).
        streams = RngStreams.for_run(config.seed)
        self._rng_workload = streams.stream("workload")
        self._rng_churn = streams.stream("churn")
        self._rng_latency = streams.stream("latency")
        self._rng_protocol = streams.stream("protocol")
        self._rng_capacity = streams.stream("peer-capacity")
        self._rng_failures = streams.stream("failures")

        # Fault injection (repro.faults).  The injector draws from its
        # own "faults.*" substreams, so a zero plan leaves every other
        # stream's sequence untouched; NULL_INJECTOR is falsy, so every
        # fault hook below reduces to one truthiness check when off.
        plan = spec.resolved_faults()
        self.fault_plan = plan
        self.faults = FaultInjector(plan, streams) if plan else NULL_INJECTOR
        self._crash_events: Dict[int, object] = {}  # user -> pending crash
        self._watches: Dict[int, _ActiveWatch] = {}
        #: provider -> ordered set of consumers mid-transfer from it.
        self._consumers: Dict[int, Dict[int, None]] = {}
        self._failovers: Dict[int, _FailoverState] = {}
        self._serve_ctx = None  # (provider_id, rate_bps) of the last serve
        #: True only while retrying a request past the shed budget: the
        #: server must admit it even under flash-crowd admission control.
        self._serve_forced = False
        #: node -> partition side, populated lazily while a network
        #: partition is active (None otherwise).
        self._partition_sides: Optional[Dict[int, int]] = None

        self.dataset = dataset or shared_trace_cache.dataset_for(config.trace)
        if config.num_nodes > self.dataset.num_users:
            raise ValueError("config.num_nodes exceeds dataset population")

        # The latency model precedes the engine because the sharded
        # coordinator's lookahead window is bounded by the model's
        # minimum cross-shard one-way delay (no draws happen at model
        # construction, so the move is stream-neutral).
        self.latency = self.environment.latency_factory(self._rng_latency)
        self._partition: Optional[CommunityPartition] = None
        self.scheduler: Scheduler
        if spec.shards > 1:
            self._partition = CommunityPartition.from_dataset(
                self.dataset, spec.shards, config.num_nodes
            )
            self.scheduler = ShardedScheduler(
                spec.shards,
                self._shard_owner,
                lookahead_s=self.latency.min_one_way_s(),
            )
        else:
            self.scheduler = EventScheduler()
        # Wall-clock perf telemetry (repro.obs.perf).  NULL_PERF is
        # falsy, so the engine's hooks reduce to one truthiness check
        # when perf is off; an armed meter never touches canonical
        # output -- its readings live only in the sidecar perf report.
        self.perf = perf if perf is not None else NULL_PERF
        if self.perf and isinstance(self.scheduler, ShardedScheduler):
            self.scheduler.perf = self.perf
        # One tracer flows through every substrate; it reads the
        # scheduler's virtual clock so traces are a pure function of the
        # spec (byte-identical across serial and parallel execution).
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.tracer.bind_clock(lambda: self.scheduler.now)
        self.scheduler.tracer = self.tracer
        # Time-series runs ask for periodic engine.tick gauge rows; the
        # period rides on the tracer so one object configures the whole
        # observation pipeline (see repro.obs.timeseries).
        tick_every = getattr(self.tracer, "tick_every_s", None)
        if tick_every:
            self.scheduler.enable_ticks(tick_every)
        self.server = CentralServer(
            self.dataset,
            capacity_bps=config.effective_server_bandwidth_bps,
            rng=streams.stream("server"),
        )
        self.protocol = create_protocol(
            spec.protocol,
            self.dataset,
            self.server,
            self._rng_protocol,
            params=self.params,
        )
        self.protocol.now_fn = lambda: self.scheduler.now
        self.protocol.tracer = self.tracer
        self.server.tracer = self.tracer
        self.server.uplink.tracer = self.tracer
        self.selector = VideoSelector(self.dataset, self._rng_workload)
        self.sessions = SessionTracker(
            config.sessions_per_user,
            config.videos_per_session,
            tracer=self.tracer,
        )
        self.churn = ChurnModel(
            SessionPlan(
                sessions_per_user=config.sessions_per_user,
                videos_per_session=config.videos_per_session,
                mean_off_time=config.mean_off_time_s,
            ),
            self._rng_churn,
            tracer=self.tracer,
        )
        self.metrics = MetricsCollector(
            protocol=self.protocol.name, environment=self.environment.name
        )
        self._node_ids = list(range(config.num_nodes))
        for node_id in self._node_ids:
            state = PeerState(
                user_id=node_id,
                upload_capacity_bps=self._rng_capacity.uniform(
                    config.peer_upload_min_bps, config.peer_upload_max_bps
                ),
                prefetch_capacity=config.prefetch_store_capacity,
            )
            if self.tracer:
                state.uplink.tracer = self.tracer
            self.protocol.register_peer(state)

    # -- sharding -------------------------------------------------------------

    def _shard_owner(self, fn, args: Tuple) -> Optional[int]:
        """Owning shard of one scheduled callback (ShardedScheduler hook).

        Runner callbacks are keyed by their first argument: a node id
        for the per-user lifecycle (requests, finishes, crashes and
        their repairs -- so crash repair runs on the crashed node's
        owning shard), or an overlay flood state carrying its
        ``requester``.  Unkeyed callbacks have no affinity and stay on
        the shard that scheduled them.
        """
        if args:
            head = args[0]
            if isinstance(head, int):
                return self._partition.owner(head)
            requester = getattr(head, "requester", None)
            if isinstance(requester, int):
                return self._partition.owner(requester)
        return None

    # -- delay model ----------------------------------------------------------

    def _path_delay(self, path) -> float:
        """One-way forwarding along the query path + provider response."""
        total = 0.0
        for src, dst in zip(path, path[1:]):
            total += self.latency.sample(src, dst)
        if path:
            total += self.latency.sample(path[-1], path[0])
        return total

    def _failed_flood_delay(self, requester: int, hops: int) -> float:
        """Cost of exhausting a flood before falling back (per DESIGN.md:
        per-hop latency approximated by requester<->server samples)."""
        total = 0.0
        for _ in range(max(1, hops)):
            total += 2.0 * self.latency.sample(requester, SERVER_NODE_ID)
        return total

    def _server_rtt(self, requester: int) -> float:
        return (
            self.latency.rtt(requester, SERVER_NODE_ID)
            + self.environment.server_processing_delay
        )

    # -- request handling ---------------------------------------------------------

    def _serve_request(self, user_id: int, video_id: int):
        """Resolve one video request; returns (startup_delay_s, grant,
        lookup, prefetch_hit, stall_s).

        The span carries ``cluster`` -- the requested video's interest
        category, i.e. the paper's per-community unit -- so the
        time-series layer can attribute request load per cluster
        without a dataset in hand at replay time.
        """
        with self.tracer.span(
            "request.serve",
            node=user_id,
            video=video_id,
            cluster=self.dataset.category_of_video(video_id),
        ):
            return self._serve_request_inner(user_id, video_id)

    def _serve_request_inner(self, user_id: int, video_id: int):
        cfg = self.config
        peer = self.protocol.state(user_id)
        lookup = self.protocol.locate(user_id, video_id)

        if lookup.from_cache:
            self.metrics.record_chunks(user_id, ChunkSource.CACHE, cfg.chunks_per_video)
            self.metrics.record_playback(user_id, 1.0, 0.0)
            if self.tracer:
                self.tracer.event(
                    "transfer.chunks",
                    node=user_id,
                    video=video_id,
                    source="cache",
                    chunks=cfg.chunks_per_video,
                )
            if self.faults:
                self._serve_ctx = (None, 0.0)
            return cfg.local_playback_delay_s, None, lookup, False, 0.0

        # Transient WAN failure: the chosen peer connection breaks and
        # the request falls back to the server.
        if (
            lookup.from_peer
            and self.environment.peer_failure_prob > 0
            and self._rng_failures.random() < self.environment.peer_failure_prob
        ):
            self.metrics.record_peer_transfer_failure(user_id)
            if self.tracer:
                self.tracer.event(
                    "request.peer_failure",
                    node=user_id,
                    provider=lookup.provider_id,
                )
            lookup = LookupResult(
                video_id=video_id,
                from_server=True,
                hops=lookup.hops,
                peers_contacted=lookup.peers_contacted,
            )

        # Lost query messages (repro.faults): the reply from the chosen
        # provider never arrives, so the requester re-floods after a
        # backoff; past the retry budget the server serves the video.
        retry_delay = 0.0
        if self.faults and lookup.from_peer:
            lost_retries = 0
            while lookup.from_peer and self.faults.query_lost():
                if self.tracer:
                    self.tracer.event(
                        "failover.query_lost", node=user_id, video=video_id
                    )
                if lost_retries >= self.faults.retry.max_retries:
                    lookup = LookupResult(
                        video_id=video_id,
                        from_server=True,
                        hops=lookup.hops,
                        peers_contacted=lookup.peers_contacted,
                    )
                    break
                retry_delay += self.faults.retry.backoff_delay(lost_retries)
                lost_retries += 1
                lookup = self.protocol.locate(user_id, video_id)
            if lost_retries:
                self.metrics.record_query_retry(user_id, lost_retries)

        prefetch_entry = peer.take_prefetch(video_id)
        if self.tracer:
            self.tracer.event(
                "prefetch.lookup",
                node=user_id,
                video=video_id,
                hit=prefetch_entry is not None,
            )
        video_bits = cfg.video_bits(self.dataset.video_length(video_id))
        buffer_bits = cfg.startup_buffer_bits()

        if lookup.from_peer:
            provider = self.protocol.state(lookup.provider_id)
            grant = provider.uplink.admit(video_bits)
            # A slow-peer episode degrades the granted share; with
            # faults off the effective rate IS the granted rate, so the
            # arithmetic below is bit-identical to the pre-fault path.
            rate_bps = (
                self.faults.peer_rate(grant.rate_bps)
                if self.faults
                else grant.rate_bps
            )
            if lookup.query_path:
                query_delay = self._path_delay(lookup.query_path)
            else:
                query_delay = self._server_rtt(user_id) + self.latency.rtt(
                    user_id, lookup.provider_id
                )
            chunk_source = ChunkSource.PEER
        else:
            grant = self.server.serve(video_bits, force=self._serve_forced)
            rate_bps = (
                self.faults.server_rate(grant.rate_bps, self.scheduler.now)
                if self.faults
                else grant.rate_bps
            )
            query_delay = self._failed_flood_delay(user_id, lookup.hops)
            query_delay += self._server_rtt(user_id)
            chunk_source = ChunkSource.SERVER
        if retry_delay:
            query_delay += retry_delay

        prefetch_hit = prefetch_entry is not None
        if prefetch_hit:
            # The first chunk is already local; playback starts now and
            # the provider is fetched in the background.
            startup = cfg.local_playback_delay_s
            self.metrics.record_chunks(user_id, prefetch_entry.source, 1)
            self.metrics.record_chunks(
                user_id, chunk_source, cfg.chunks_per_video - 1
            )
        else:
            startup = (
                query_delay
                + buffer_bits / rate_bps
                + cfg.local_playback_delay_s
            )
            self.metrics.record_chunks(user_id, chunk_source, cfg.chunks_per_video)

        if self.tracer:
            self.tracer.event(
                "transfer.chunks",
                node=user_id,
                video=video_id,
                source=chunk_source.value,
                chunks=cfg.chunks_per_video - (1 if prefetch_hit else 0),
                rate_bps=rate_bps,
            )

        # Chunk-level playback: stalls occur when the effective rate
        # falls below the bitrate (e.g. a saturated server share).
        playback = simulate_playback(
            video_length_s=self.dataset.video_length(video_id),
            bitrate_bps=cfg.video_bitrate_bps,
            transfer_rate_bps=rate_bps,
            chunks=cfg.chunks_per_video,
            startup_buffer_s=cfg.startup_buffer_s,
            prefetched_first_chunk=prefetch_hit,
            tracer=self.tracer,
            node=user_id,
            video=video_id,
        )
        self.metrics.record_playback(
            user_id, playback.continuity_index, playback.total_stall_s
        )
        if self.faults:
            self._serve_ctx = (
                lookup.provider_id if lookup.from_peer else None,
                rate_bps,
            )
        return startup, grant, lookup, prefetch_hit, playback.total_stall_s

    def _do_prefetch(self, user_id: int, video_id: int) -> None:
        """Prefetch first chunks while watching (Section IV-B)."""
        if not self.config.enable_prefetch:
            return
        peer = self.protocol.state(user_id)
        candidates = self.protocol.select_prefetch(
            user_id, video_id, self.config.prefetch_window
        )
        if self.tracer and candidates:
            self.tracer.event(
                "prefetch.select",
                node=user_id,
                watching=video_id,
                count=len(candidates),
            )
        for candidate in candidates:
            source = self.protocol.prefetch_source(user_id, candidate)
            peer.store_prefetch(candidate, source, self.scheduler.now)
            if self.tracer:
                self.tracer.event(
                    "prefetch.store",
                    node=user_id,
                    video=candidate,
                    source=source.value,
                )
            # First chunks are ~15 KB (Section V): "the prefetching
            # cost can be negligible", so no bandwidth is charged.

    # -- user lifecycle ---------------------------------------------------------------

    def _start_session(self, user_id: int) -> None:
        if self.tracer:
            self.tracer.event("churn.join", node=user_id)
        self.sessions.begin_session(user_id)
        self.protocol.on_session_start(user_id)
        self.selector.start_session(user_id)
        if self.faults:
            delay = self.faults.crash_delay()
            if delay is not None:
                self._crash_events[user_id] = self.scheduler.schedule(
                    delay, self._crash_node, user_id
                )
        self._request_next_video(user_id)

    def _request_next_video(
        self, user_id: int, video_id: Optional[int] = None, shed_attempts: int = 0
    ) -> None:
        if shed_attempts and not self.protocol.state(user_id).online:
            return  # the requester crashed during its shed backoff
        if video_id is None:
            video_id = self.selector.next_video(user_id)
        # Past the shed budget the client's retry is marked degraded:
        # the server admits it regardless of admission control, so a
        # flash crowd delays sessions but never strands one.
        self._serve_forced = bool(
            self.faults and shed_attempts > self.faults.retry.max_retries
        )
        try:
            startup, grant, lookup, prefetch_hit, stall_s = self._serve_request(
                user_id, video_id
            )
        except ServerOverloadError:
            # Admission control shed the request (flash crowd).  The
            # client backs off under the shared RetryPolicy and retries
            # the *same* video.
            self.metrics.record_shed_retry(user_id)
            self.scheduler.schedule(
                self.faults.retry.backoff_delay(shed_attempts),
                self._request_next_video,
                user_id,
                video_id,
                shed_attempts + 1,
            )
            return
        finally:
            self._serve_forced = False
        self.metrics.record_request(
            user_id=user_id,
            startup_delay_s=startup,
            from_server=lookup.from_server,
            from_cache=lookup.from_cache,
            hops=lookup.hops,
            peers_contacted=lookup.peers_contacted,
            prefetch_hit=prefetch_hit,
        )
        self.protocol.on_watch_started(user_id, video_id)
        self._do_prefetch(user_id, video_id)
        watch_time = startup + self.dataset.video_length(video_id) + stall_s
        span_id = None
        if self.tracer:
            if lookup.from_cache:
                source = "cache"
            elif lookup.from_server:
                source = "server"
            else:
                source = "peer"
            # Detached: the stream outlives this callback and ends in
            # _finish_video, a different scheduler event.
            span_id = self.tracer.begin_detached(
                "request.stream", node=user_id, video=video_id, source=source
            )
        finish_event = self.scheduler.schedule(
            watch_time, self._finish_video, user_id, video_id, grant, span_id
        )
        if self.faults:
            provider_id, rate_bps = self._serve_ctx
            watch = _ActiveWatch(
                video_id=video_id,
                provider_id=provider_id,
                grant=grant,
                rate_bps=rate_bps,
                request_t=self.scheduler.now,
                startup_s=startup,
                chunks=self.config.chunks_per_video,
                offset=1 if prefetch_hit else 0,
                transfer_start_t=self.scheduler.now,
                span_id=span_id,
                finish_event=finish_event,
            )
            self._watches[user_id] = watch
            if provider_id is not None:
                self._consumers.setdefault(provider_id, {})[user_id] = None

    def _finish_video(
        self, user_id: int, video_id: int, grant, span_id=None
    ) -> None:
        if self.faults:
            self._drop_watch(user_id)
        if grant is not None:
            grant.release()
        self.tracer.end(span_id)
        self.protocol.on_watch_finished(user_id, video_id)
        self.protocol.on_maintenance(user_id)
        video_index = self.sessions.record_video(user_id)
        links = self.protocol.link_count(user_id)
        self.metrics.record_overhead(user_id, video_index, links)
        record_link_sample(self.tracer, user_id, links, video_index)
        if self.sessions.session_finished(user_id):
            self._end_session(user_id)
        else:
            self._request_next_video(user_id)

    def _end_session(self, user_id: int) -> None:
        if self.faults:
            crash_event = self._crash_events.pop(user_id, None)
            if crash_event is not None:
                crash_event.cancel()  # the session ended before the crash
        if self.tracer:
            self.tracer.event("churn.leave", node=user_id)
        self.protocol.on_session_end(user_id)
        self.sessions.end_session(user_id)
        if not self.sessions.all_sessions_done(user_id):
            self.scheduler.schedule(
                self.churn.off_duration(), self._start_session, user_id
            )

    # -- fault handling (repro.faults) ------------------------------------------------------

    def _drop_watch(self, user_id: int) -> None:
        """Forget a tracked watch (finished, interrupted, or crashed)."""
        watch = self._watches.pop(user_id, None)
        if watch is None or watch.provider_id is None:
            return
        consumers = self._consumers.get(watch.provider_id)
        if consumers is not None:
            consumers.pop(user_id, None)
            if not consumers:
                del self._consumers[watch.provider_id]

    def _crash_node(self, user_id: int) -> None:
        """Kill a node abruptly mid-session (crash-churn).

        Unlike a graceful leave: the node's own watch dies on the spot,
        every consumer streaming *from* it is interrupted into failover,
        the protocol leaves the dead node's overlay links dangling, and
        a repair sweep is scheduled one repair window out.  The crashed
        session still counts against the session plan, so the run
        terminates; the node returns after a normal off period.
        """
        self._crash_events.pop(user_id, None)
        self.metrics.record_crash(user_id)
        if self.tracer:
            self.tracer.event("churn.crash", node=user_id)
        watch = self._watches.get(user_id)
        if watch is not None:
            watch.finish_event.cancel()
            if watch.grant is not None:
                watch.grant.release()
            self.tracer.end(watch.span_id)
            self._drop_watch(user_id)
        else:
            state = self._failovers.pop(user_id, None)
            if state is not None:
                self.tracer.end(state.watch.span_id)
        consumers = self._consumers.pop(user_id, None)
        if consumers:
            for consumer in list(consumers):
                self._interrupt_transfer(consumer, provider_id=user_id)
        self.protocol.on_crash(user_id)
        self.scheduler.schedule(
            self.fault_plan.repair_window_s, self._repair_after_crash, user_id
        )
        self.sessions.end_session(user_id)
        if not self.sessions.all_sessions_done(user_id):
            self.scheduler.schedule(
                self.churn.off_duration(), self._start_session, user_id
            )

    def _repair_after_crash(self, user_id: int) -> None:
        """The repair window elapsed; survivors heal their link tables."""
        repaired = self.protocol.repair_after_crash(user_id)
        if repaired:
            self.metrics.note_recovery_action(self.scheduler.now)
        record_repair_sweep(self.tracer, user_id, repaired)

    def _interrupt_transfer(self, user_id: int, provider_id: int) -> None:
        """``user_id``'s provider died mid-transfer; start failover.

        Chunks delivered before the crash stay local (resume-from-last-
        chunk); if the whole video already arrived, playback proceeds
        untouched and only the bookkeeping is dropped.
        """
        watch = self._watches.get(user_id)
        if watch is None or watch.provider_id != provider_id:
            return
        now = self.scheduler.now
        chunk_bits = (
            self.config.video_bits(self.dataset.video_length(watch.video_id))
            / watch.chunks
        )
        delivered = int((now - watch.transfer_start_t) * watch.rate_bps / chunk_bits)
        chunks_done = min(watch.chunks, watch.offset + delivered)
        if chunks_done >= watch.chunks:
            # The whole video already arrived: playback proceeds, so the
            # watch stays tracked (its finish event must die if this
            # consumer later crashes) -- only the provider link drops.
            self._drop_watch(user_id)
            watch.provider_id = None
            self._watches[user_id] = watch
            return
        watch.finish_event.cancel()
        if watch.grant is not None:
            watch.grant.release()
        self._drop_watch(user_id)
        self.metrics.record_interruption(user_id)
        if self.tracer:
            self.tracer.event(
                "failover.interrupted",
                node=user_id,
                video=watch.video_id,
                provider=provider_id,
                chunk=chunks_done,
            )
        state = _FailoverState(
            watch=watch, interrupted_at=now, chunks_done=chunks_done
        )
        self._failovers[user_id] = state
        self.scheduler.schedule(
            self.faults.retry.detection_timeout_s,
            self._attempt_failover,
            user_id,
            state,
        )

    def _remaining_bits(self, state: _FailoverState) -> float:
        watch = state.watch
        video_bits = self.config.video_bits(self.dataset.video_length(watch.video_id))
        return video_bits * (watch.chunks - state.chunks_done) / watch.chunks

    def _attempt_failover(self, user_id: int, state: _FailoverState) -> None:
        """Re-search for a replacement provider (retry/timeout/backoff).

        Each attempt re-floods the overlay; a found provider resumes the
        transfer from the last delivered chunk, a miss (or a lost reply)
        backs off exponentially, and past the retry budget the server
        finishes the transfer -- a degraded serve, not a lost session.
        """
        if self._failovers.get(user_id) is not state:
            return  # resolved already, or the consumer itself crashed
        watch = state.watch
        lookup = self.protocol.relocate(user_id, watch.video_id)
        if lookup.from_peer and not self.faults.query_lost():
            provider = self.protocol.state(lookup.provider_id)
            grant = provider.uplink.admit(self._remaining_bits(state))
            rate_bps = self.faults.peer_rate(grant.rate_bps)
            self._resume_watch(
                user_id, state, grant, rate_bps, lookup.provider_id, to_peer=True
            )
            return
        if state.attempt < self.faults.retry.max_retries:
            delay = self.faults.retry.backoff_delay(state.attempt)
            state.attempt += 1
            if self.tracer:
                self.tracer.event(
                    "failover.retry",
                    node=user_id,
                    video=watch.video_id,
                    attempt=state.attempt,
                )
            self.scheduler.schedule(delay, self._attempt_failover, user_id, state)
            return
        # Failover fallback bypasses admission control (force=True): the
        # consumer already absorbed an interruption plus the full retry
        # ladder; shedding it again would strand the session.
        grant = self.server.serve(self._remaining_bits(state), force=True)
        rate_bps = self.faults.server_rate(grant.rate_bps, self.scheduler.now)
        self._resume_watch(user_id, state, grant, rate_bps, None, to_peer=False)

    def _resume_watch(
        self,
        user_id: int,
        state: _FailoverState,
        grant,
        rate_bps: float,
        provider_id: Optional[int],
        to_peer: bool,
    ) -> None:
        """Restart the interrupted transfer from its new source.

        The segmented playback model replays the viewer from the chunk
        under the playhead at the interruption (pre-crash stalls are
        chunk-granularity slack) and yields the wall-clock completion,
        which reschedules the watch's finish event.
        """
        del self._failovers[user_id]
        watch = state.watch
        now = self.scheduler.now
        latency = now - state.interrupted_at
        video_length = self.dataset.video_length(watch.video_id)
        playback_start = watch.request_t + watch.startup_s
        position = min(
            max(state.interrupted_at - playback_start, 0.0), video_length
        )
        resume = simulate_resume(
            video_length_s=video_length,
            bitrate_bps=self.config.video_bitrate_bps,
            transfer_rate_bps=rate_bps,
            chunks=watch.chunks,
            chunks_done=state.chunks_done,
            playback_position_s=position,
            resume_gap_s=latency,
            tracer=self.tracer,
            node=user_id,
            video=watch.video_id,
        )
        self.metrics.record_failover(
            user_id, latency_s=latency, retries=state.attempt, to_peer=to_peer
        )
        self.metrics.note_recovery_action(now)
        if self.tracer:
            self.tracer.event(
                "failover.resume" if to_peer else "failover.server",
                node=user_id,
                video=watch.video_id,
                provider=provider_id,
                latency_s=latency,
                retries=state.attempt,
                chunk=state.chunks_done,
            )
        watch.provider_id = provider_id
        watch.grant = grant
        watch.rate_bps = rate_bps
        watch.transfer_start_t = now
        watch.offset = state.chunks_done
        # completion_s counts from the interruption; `latency` of it has
        # already elapsed, and the remainder is strictly positive.  The
        # finish event was cancelled at the interruption; one reschedule
        # revives the same handle with the refreshed grant/span args.
        watch.finish_event.reschedule(
            resume.completion_s - latency,
            user_id,
            watch.video_id,
            grant,
            watch.span_id,
        )
        self._watches[user_id] = watch
        if to_peer:
            self._consumers.setdefault(provider_id, {})[user_id] = None

    # -- infrastructure faults (repro.faults v2) -----------------------------------------

    def _schedule_infra_faults(self) -> None:
        """Arm the correlated/infrastructure fault families.

        Every family event is scheduled *unkeyed* (no node-id first
        argument), so under sharded execution it runs as a global event
        in the exact-mode total order -- the property that keeps
        ``--shards``/``--workers`` runs byte-identical.  With no family
        armed this schedules nothing, so fault-free runs are untouched.
        """
        if not self.faults:
            return
        plan = self.fault_plan
        if self.faults.community_crash_armed:
            self.scheduler.schedule(plan.community_crash_at_s, self._community_crash)
        if self.faults.tracker_outage_armed:
            self.scheduler.schedule(
                plan.tracker_outage_at_s, self._tracker_outage_begin
            )
            self.scheduler.schedule(
                plan.tracker_outage_at_s + plan.tracker_outage_duration_s,
                self._tracker_outage_end,
            )
        if self.faults.partition_armed:
            self.scheduler.schedule(plan.partition_at_s, self._partition_begin)
            self.scheduler.schedule(
                plan.partition_at_s + plan.partition_duration_s, self._partition_end
            )
        if self.faults.flash_crowd_armed:
            self.scheduler.schedule(plan.flash_crowd_at_s, self._flash_crowd_begin)
            self.scheduler.schedule(
                plan.flash_crowd_at_s + plan.flash_crowd_duration_s,
                self._flash_crowd_end,
            )

    def _fault_onset_time(self) -> float:
        """Instant the first armed infrastructure fault strikes.

        The degradation scorecard measures recovery *from this point*:
        ``recovery_time_s`` is the gap between the first window opening
        and the last recovery action (failover resume, repair sweep,
        re-registration sweep, partition heal) -- total time until the
        system is whole again.  Zero when no windowed family is armed,
        which keeps pre-v2 plans reporting zero.
        """
        if not self.faults:
            return 0.0
        plan = self.fault_plan
        onsets = []
        if self.faults.community_crash_armed:
            onsets.append(plan.community_crash_at_s)
        if self.faults.tracker_outage_armed:
            onsets.append(plan.tracker_outage_at_s)
        if self.faults.partition_armed:
            onsets.append(plan.partition_at_s)
        if self.faults.flash_crowd_armed:
            onsets.append(plan.flash_crowd_at_s)
        return min(onsets) if onsets else 0.0

    def _community_crash(self) -> None:
        """Correlated burst: kill part of one interest community at once.

        The injector draws the cluster from its own ``faults.community``
        substream, restricted to communities of at least average size
        (a correlated failure taking out a three-node fringe cluster
        measures nothing); the burst then takes the highest-capacity
        members first -- the worst case for the overlay, since those
        nodes carry the most transfers and the densest link tables.
        Victims already offline are skipped (a burst cannot kill a node
        twice); each kill runs the ordinary crash path, so consumers
        fail over and a repair sweep lands one repair window out.
        """
        by_cluster: Dict[int, list] = {}
        for node in self._node_ids:
            by_cluster.setdefault(primary_interest(self.dataset, node), []).append(
                node
            )
        mean_size = len(self._node_ids) / len(by_cluster)
        eligible = sorted(
            c for c, nodes in by_cluster.items() if len(nodes) >= mean_size
        )
        if not eligible:
            eligible = sorted(by_cluster)
        cluster = self.faults.community_crash_cluster(eligible)
        members = by_cluster[cluster]
        count = math.ceil(
            self.fault_plan.community_crash_fraction * len(members)
        )
        members.sort(
            key=lambda node: (-self.protocol.state(node).uplink.capacity_bps, node)
        )
        killed = 0
        for victim in members[:count]:
            if not self.protocol.state(victim).online:
                continue
            pending = self._crash_events.pop(victim, None)
            if pending is not None:
                pending.cancel()  # the burst preempts the churn crash
            self._crash_node(victim)
            killed += 1
        self.metrics.record_burst(killed)
        if self.tracer:
            self.tracer.event(
                "fault.community_crash",
                cluster=cluster,
                planned=min(count, len(members)),
                victims=killed,
            )

    def _tracker_outage_begin(self) -> None:
        self.server.tracker_outage_begin()

    def _tracker_outage_end(self) -> None:
        """Tracker recovery: every online node re-files its state.

        The outage wiped the tracker's soft state, so lookups between
        recovery and a node's next report would miss it.  Deterministic
        sweep in node-id order; each protocol re-registers exactly the
        tracker state it maintains (presence, channel membership,
        overlay memberships, current watches).
        """
        self.server.tracker_outage_end()
        reports = 0
        for node_id in self._node_ids:
            reports += self.protocol.reannounce(node_id)
        self.metrics.record_reregistrations(reports)
        self.metrics.note_recovery_action(self.scheduler.now)
        if self.tracer:
            self.tracer.event("tracker.reregister", count=reports)

    def _partition_side_of(self, node_id: int) -> int:
        """Which half of the severed network a node sits in.

        Sides follow interest communities (``primary_interest % 2``) --
        the paper's per-community structure makes a community-aligned
        cut the interesting one: intra-community links mostly survive,
        inter-community (inter-link) traffic is what the cut severs.
        Unaffiliated nodes (cluster -1) land on side 1.
        """
        sides = self._partition_sides
        assert sides is not None
        side = sides.get(node_id)
        if side is None:
            side = primary_interest(self.dataset, node_id) % 2
            sides[node_id] = side
        return side

    def _partition_reach(self, a: int, b: int) -> bool:
        return self._partition_side_of(a) == self._partition_side_of(b)

    def _partition_begin(self) -> None:
        """Sever cross-community links; cut transfers fail over.

        The reachability guard makes every protocol skip (not drop)
        unreachable neighbors and referrals; the server stays reachable
        from both sides, so lookups degrade to server fallbacks rather
        than failures.  In-flight transfers crossing the cut are
        interrupted into the standard failover ladder.
        """
        self._partition_sides = {}
        self.protocol.partition_guard = self._partition_reach
        if self.tracer:
            self.tracer.event("partition.transition", phase="begin")
        interrupted = 0
        for consumer in sorted(self._watches):
            watch = self._watches.get(consumer)
            if watch is None or watch.provider_id is None:
                continue
            if not self._partition_reach(consumer, watch.provider_id):
                self._interrupt_transfer(consumer, provider_id=watch.provider_id)
                if consumer in self._failovers:
                    interrupted += 1
        self.metrics.record_partition_interrupts(interrupted)

    def _partition_end(self) -> None:
        """Heal the partition: restore reachability, re-probe overlays.

        Clearing the guard restores every skipped link instantly; the
        heal sweep then runs one maintenance probe per online node (in
        node-id order) so link tables refill across the healed cut
        without waiting for each node's next natural probe.
        """
        self.protocol.partition_guard = None
        self._partition_sides = None
        if self.tracer:
            self.tracer.event("partition.transition", phase="end")
        healed = 0
        for node_id in self._node_ids:
            if self.protocol.state(node_id).online:
                self.protocol.on_maintenance(node_id)
                healed += 1
        self.metrics.record_heal(healed)
        self.metrics.note_recovery_action(self.scheduler.now)
        if self.tracer:
            self.tracer.event("partition.healed", nodes=healed)

    def _flash_crowd_begin(self) -> None:
        self.server.admission_limit = self.fault_plan.flash_crowd_admission_limit
        if self.tracer:
            self.tracer.event(
                "server.flash_crowd",
                phase="begin",
                limit=self.server.admission_limit,
            )

    def _flash_crowd_end(self) -> None:
        self.server.admission_limit = 0
        self.metrics.note_recovery_action(self.scheduler.now)
        if self.tracer:
            self.tracer.event("server.flash_crowd", phase="end")

    # -- run --------------------------------------------------------------------------------

    def run(self) -> ExperimentResult:
        """Execute the full experiment; returns the summarised result."""
        for node_id in self._node_ids:
            self.scheduler.schedule(
                self.churn.initial_join_delay(), self._start_session, node_id
            )
        self._schedule_infra_faults()
        self.metrics.fault_onset_t = self._fault_onset_time()
        perf = self.perf
        if perf:
            perf.run_begin()
        self.scheduler.run()
        if perf:
            perf.run_end(self.scheduler.events_processed)
        # Server-side fault counters live on the server; fold them into
        # the collector so the summary (and the regress gate) sees them.
        self.metrics.tracker_lookup_failures = self.server.tracker_lookup_failures
        self.metrics.server_sheds = self.server.requests_shed
        report = (
            dataclasses.replace(
                self.scheduler.shard_report(),
                workers=self.spec.workers,
                execution="exact",
            )
            if isinstance(self.scheduler, ShardedScheduler)
            else None
        )
        return ExperimentResult(
            metrics=self.metrics.summarize(),
            server_requests=self.server.requests_served,
            tracker_lookups=self.server.tracker_lookups,
            events_processed=self.scheduler.events_processed,
            sim_duration_s=self.scheduler.now,
            prefetch_hit_rate=(
                self.metrics.prefetch_hits
                / max(1, self.metrics.prefetch_hits + self.metrics.prefetch_misses)
            ),
            shard_report=report,
        )


def run_spec(
    spec: ExperimentSpec,
    dataset: Optional[TraceDataset] = None,
    environment: Optional[Environment] = None,
    tracer=None,
    perf=None,
) -> ExperimentResult:
    """Execute one spec; the canonical single-run entry point.

    ``tracer`` (a :class:`repro.obs.tracer.Tracer`) records the run as
    a deterministic trace; the default NULL_TRACER keeps every hook a
    no-op.  See :mod:`repro.obs.export` for turning a traced run into
    JSONL + a profile summary.  ``perf`` (a
    :class:`repro.obs.perf.PerfMeter`) arms wall-clock telemetry; the
    default NULL_PERF keeps the perf hooks inert, and an armed meter is
    hash-neutral -- same rows, same trace bytes, same content hash (see
    :mod:`repro.obs.perf_report`).
    """
    return ExperimentRunner(
        spec, dataset=dataset, environment=environment, tracer=tracer, perf=perf
    ).run()
