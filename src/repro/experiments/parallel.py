"""Process-pool fan-out of multi-seed experiment sweeps.

Every figure of Section V is a mean over repeated randomized trials,
yet single-run execution is bottlenecked on one core.  This module
fans a list of :class:`ExperimentSpec` across worker processes and
folds the per-run metrics into means with 95% confidence intervals --
the CliqueStream-style statistically honest reporting the evaluation
methodology calls for.

Determinism contract (tested by ``tests/test_experiments_parallel.py``):

* a run's result is a pure function of its spec -- every run owns an
  independent ``RngStreams.for_run(spec.seed)`` family, shares no
  mutable state with other runs, and reads the trace corpus only;
* duplicate specs (equal :meth:`ExperimentSpec.content_hash`) execute
  once and share their result;
* results return in spec order regardless of completion order.

Together these make ``run_sweep(specs, jobs=N)`` byte-identical to
``run_sweep(specs, jobs=1)`` for any N.

Trace sharing: the parent synthesizes each distinct trace recipe once
(through :data:`shared_trace_cache`), pickles it once, and ships the
snapshot to every worker via the pool initializer; workers deserialize
lazily, at most once per recipe per process, and never re-synthesize.
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import pickle
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.analysis.stats import mean, mean_confidence_interval
from repro.experiments.config import SimulationConfig
from repro.experiments.registry import resolve_params
from repro.experiments.runner import ExperimentResult, run_spec
from repro.experiments.spec import ExperimentSpec, content_digest
from repro.experiments.trace_cache import shared_trace_cache
from repro.metrics.collectors import ExperimentMetrics

# ---------------------------------------------------------------------------
# spec construction helpers


def sweep_specs(
    protocols: Sequence[str],
    config: SimulationConfig,
    seeds: Optional[Sequence[int]] = None,
    environment: str = "peersim",
    shards: int = 1,
    workers: int = 1,
) -> List[ExperimentSpec]:
    """The ``(protocol, seed)`` cross product, protocol-major order.

    All specs share ``config``'s trace recipe (one corpus, many
    trials); ``seeds`` defaults to the config's own seed.  ``shards``
    selects community-partitioned execution per run, and ``workers``
    the lane scale-out fan-out; both are hash-neutral (the determinism
    gates make any shard/worker count byte-identical, so dedup and
    caching by content hash still collapse across them).
    """
    seed_list = [int(s) for s in seeds] if seeds else [config.seed]
    specs: List[ExperimentSpec] = []
    for name in protocols:
        base = ExperimentSpec(
            protocol=name,
            config=config,
            environment=environment,
            params=resolve_params(name, config),
            shards=shards,
            workers=workers,
        )
        specs.extend(base.with_seed(seed) for seed in seed_list)
    return specs


def family_key(spec: ExperimentSpec) -> str:
    """Groups seed-sweep siblings: the content hash with the seed masked.

    Two specs with the same family key measure the same system under
    the same conditions and may be aggregated into one mean/CI row.
    """
    payload = spec.canonical_payload()
    payload["config"]["seed"] = None
    return content_digest(payload)


# ---------------------------------------------------------------------------
# worker plumbing
#
# Module-level state set by the pool initializer; underscore names keep
# them out of the public surface.  Workers deserialize each trace
# snapshot at most once and then reuse it for every spec they execute.

_WORKER_TRACE_BLOBS: Dict[str, bytes] = {}  # shard: shared-mutable
_WORKER_DATASETS: Dict[str, object] = {}  # shard: shared-mutable


def _init_worker(trace_blobs: Dict[str, bytes]) -> None:
    _WORKER_TRACE_BLOBS.clear()
    _WORKER_TRACE_BLOBS.update(trace_blobs)
    _WORKER_DATASETS.clear()


def _run_in_worker(spec: ExperimentSpec) -> ExperimentResult:
    key = spec.trace_hash()
    dataset = _WORKER_DATASETS.get(key)
    if dataset is None:
        blob = _WORKER_TRACE_BLOBS.get(key)
        if blob is not None:
            dataset = pickle.loads(blob)
            _WORKER_DATASETS[key] = dataset
    return run_spec(spec, dataset=dataset)


# ---------------------------------------------------------------------------
# the orchestrator


def run_sweep(
    specs: Iterable[ExperimentSpec], jobs: int = 1
) -> List[ExperimentResult]:
    """Execute specs, one result per spec, in spec order.

    ``jobs=1`` (the default) runs serially in-process -- no pool, no
    pickling -- so existing single-run paths are unchanged.  ``jobs>1``
    fans the distinct specs across a process pool.  Either way,
    duplicate specs execute once and identical seed lists produce
    byte-identical aggregates (see the module docstring).
    """
    spec_list = list(specs)
    if not spec_list:
        return []
    order = [spec.content_hash() for spec in spec_list]
    unique: Dict[str, ExperimentSpec] = {}
    for key, spec in zip(order, spec_list):
        if key not in unique:
            unique[key] = spec
    unique_specs = list(unique.values())

    if jobs <= 1 or len(unique_specs) == 1:
        outcomes = [
            run_spec(
                spec, dataset=shared_trace_cache.dataset_for(spec.config.trace)
            )
            for spec in unique_specs
        ]
    else:
        blobs: Dict[str, bytes] = {}
        for spec in unique_specs:
            trace_key = spec.trace_hash()
            if trace_key not in blobs:
                blobs[trace_key] = shared_trace_cache.serialized(spec.config.trace)
        workers = min(jobs, len(unique_specs))
        with multiprocessing.Pool(
            processes=workers, initializer=_init_worker, initargs=(blobs,)
        ) as pool:
            outcomes = pool.map(_run_in_worker, unique_specs, chunksize=1)

    results_by_key = dict(zip(unique.keys(), outcomes))
    return [results_by_key[key] for key in order]


# ---------------------------------------------------------------------------
# aggregation: means + 95% confidence intervals over seed-sweep siblings

#: ExperimentMetrics fields that are not per-run float scalars.
_NON_SCALAR_METRIC_FIELDS = frozenset(  # shard: shared-read
    ("protocol", "environment", "num_requests", "overhead_by_video_index")
)


@dataclass
class AggregatedResult:
    """Mean + CI summary of one system measured over several seeds.

    ``metrics`` is a real :class:`ExperimentMetrics` holding field-wise
    means, so everything downstream that reads ``result.metrics``
    (figures, shape checks, exporters) consumes aggregates and single
    runs uniformly.  ``intervals`` maps each scalar metric name -- plus
    the run-level ``prefetch_hit_rate``, ``server_requests`` and
    ``events_processed`` -- to ``(mean, low, high)`` at 95% confidence.
    """

    protocol: str
    environment: str
    seeds: Tuple[int, ...]
    runs: List[ExperimentResult]
    metrics: ExperimentMetrics
    intervals: Dict[str, Tuple[float, float, float]]

    @property
    def num_runs(self) -> int:
        return len(self.runs)

    def interval(self, name: str) -> Tuple[float, float, float]:
        """``(mean, low, high)`` for one aggregated quantity."""
        return self.intervals[name]

    def render_rows(self) -> List[str]:
        """Paper-style text summary with CI annotations."""
        seeds = ", ".join(str(s) for s in self.seeds)
        rows = [
            f"{self.protocol} on {self.environment} "
            f"(mean of {self.num_runs} seeds [{seeds}], 95% CI)"
        ]
        for label, name in (
            ("startup delay ms mean", "startup_delay_ms_mean"),
            ("startup delay ms p99", "startup_delay_ms_p99"),
            ("peer bandwidth p50", "peer_bandwidth_p50"),
            ("server fallback fraction", "server_fallback_fraction"),
            ("prefetch hit fraction", "prefetch_hit_fraction"),
            ("continuity index", "mean_continuity_index"),
            ("stalled-watch fraction", "stall_fraction"),
            ("mean stall ms", "mean_stall_ms"),
        ):
            m, lo, hi = self.intervals[name]
            rows.append(f"  {label}: {m:.4g} [{lo:.4g}, {hi:.4g}]")
        return rows


def aggregate_runs(
    specs: Sequence[ExperimentSpec], results: Sequence[ExperimentResult]
) -> AggregatedResult:
    """Fold seed-sweep siblings (one family) into one mean/CI summary."""
    if len(specs) != len(results) or not specs:
        raise ValueError("need equally many specs and results, at least one")
    families = {family_key(spec) for spec in specs}
    if len(families) > 1:
        raise ValueError(
            "aggregate_runs folds one (protocol, environment, params) "
            "family; use aggregate_sweep for mixed spec lists"
        )
    metrics_list = [result.metrics for result in results]
    intervals: Dict[str, Tuple[float, float, float]] = {}
    means: Dict[str, float] = {}
    for field in dataclasses.fields(ExperimentMetrics):
        if field.name in _NON_SCALAR_METRIC_FIELDS:
            continue
        values = [float(getattr(metrics, field.name)) for metrics in metrics_list]
        intervals[field.name] = mean_confidence_interval(values)
        means[field.name] = intervals[field.name][0]
    for name in ("prefetch_hit_rate", "server_requests", "events_processed"):
        values = [float(getattr(result, name)) for result in results]
        intervals[name] = mean_confidence_interval(values)

    indices = sorted(
        {idx for metrics in metrics_list for idx in metrics.overhead_by_video_index}
    )
    overhead = {
        idx: mean(
            [
                metrics.overhead_by_video_index[idx]
                for metrics in metrics_list
                if idx in metrics.overhead_by_video_index
            ]
        )
        for idx in indices
    }
    first = metrics_list[0]
    mean_metrics = ExperimentMetrics(
        protocol=first.protocol,
        environment=first.environment,
        num_requests=int(
            round(mean([float(metrics.num_requests) for metrics in metrics_list]))
        ),
        overhead_by_video_index=overhead,
        **means,
    )
    return AggregatedResult(
        protocol=first.protocol,
        environment=first.environment,
        seeds=tuple(spec.seed for spec in specs),
        runs=list(results),
        metrics=mean_metrics,
        intervals=intervals,
    )


def aggregate_sweep(
    specs: Sequence[ExperimentSpec], results: Sequence[ExperimentResult]
) -> List[AggregatedResult]:
    """Group a mixed sweep by family and aggregate each group.

    Returns one :class:`AggregatedResult` per distinct ``(protocol,
    environment, params)`` family, in first-occurrence order.
    """
    if len(specs) != len(results):
        raise ValueError("need equally many specs and results")
    grouped: Dict[str, Tuple[List[ExperimentSpec], List[ExperimentResult]]] = {}
    for spec, result in zip(specs, results):
        key = family_key(spec)
        if key not in grouped:
            grouped[key] = ([], [])
        grouped[key][0].append(spec)
        grouped[key][1].append(result)
    return [
        aggregate_runs(group_specs, group_results)
        for group_specs, group_results in grouped.values()
    ]
