"""Figure exporters: CSV / JSON artifacts for downstream plotting.

The harness prints paper-style text rows; anyone regenerating the
paper's plots wants machine-readable series.  This module writes

* each Section III :class:`repro.analysis.figures.FigureSeries` to one
  CSV per series plus a JSON bundle, and
* each evaluation :class:`repro.experiments.figures.EvaluationFigure`
  to a CSV with one row per labelled system.

File names are derived from the figure id (``fig9_high.csv``,
``fig16a.csv``...), so a full export is a self-describing directory.
"""

from __future__ import annotations

import csv
import json
import os
import re
from typing import Iterable, List

from repro.analysis.figures import FigureSeries
from repro.experiments.figures import EvaluationFigure


def _slug(text: str) -> str:
    """Filesystem-safe lowercase identifier ("Fig 16a" -> "fig16a")."""
    return re.sub(r"[^a-z0-9]+", "_", text.lower()).strip("_")


def export_figure_series(figure: FigureSeries, outdir: str) -> List[str]:
    """Write one trace-analysis figure; returns the paths written."""
    os.makedirs(outdir, exist_ok=True)
    written: List[str] = []
    base = _slug(figure.figure)
    for name, points in figure.series.items():
        path = os.path.join(outdir, f"{base}_{_slug(name)}.csv")
        with open(path, "w", newline="", encoding="utf-8") as fh:
            writer = csv.writer(fh)
            writer.writerow(["x", "y"])
            writer.writerows(points)
        written.append(path)
    meta_path = os.path.join(outdir, f"{base}.json")
    with open(meta_path, "w", encoding="utf-8") as fh:
        json.dump(
            {
                "figure": figure.figure,
                "title": figure.title,
                "series": sorted(figure.series),
                "notes": figure.notes,
            },
            fh,
            indent=2,
            sort_keys=True,
        )
    written.append(meta_path)
    return written


def export_evaluation_figure(figure: EvaluationFigure, outdir: str) -> List[str]:
    """Write one evaluation figure; returns the paths written."""
    os.makedirs(outdir, exist_ok=True)
    base = _slug(figure.figure)
    path = os.path.join(outdir, f"{base}.csv")
    columns: List[str] = []
    for row in figure.rows:
        for key in row.values:
            if key not in columns:
                columns.append(key)
    with open(path, "w", newline="", encoding="utf-8") as fh:
        writer = csv.writer(fh)
        writer.writerow(["label"] + columns)
        for row in figure.rows:
            writer.writerow(
                [row.label] + [row.values.get(column, "") for column in columns]
            )
    meta_path = os.path.join(outdir, f"{base}.json")
    with open(meta_path, "w", encoding="utf-8") as fh:
        json.dump(
            {
                "figure": figure.figure,
                "title": figure.title,
                "rows": [
                    {"label": row.label, "values": row.values}
                    for row in figure.rows
                ],
                "notes": figure.notes,
            },
            fh,
            indent=2,
            sort_keys=True,
        )
    return [path, meta_path]


def export_all(
    trace_figures: Iterable[FigureSeries],
    evaluation_figures: Iterable[EvaluationFigure],
    outdir: str,
) -> List[str]:
    """Export a complete reproduction bundle; returns all paths written."""
    written: List[str] = []
    for figure in trace_figures:
        written.extend(export_figure_series(figure, outdir))
    for figure in evaluation_figures:
        written.extend(export_evaluation_figure(figure, outdir))
    return written
