"""Evaluation harness: Section V experiments.

* :mod:`repro.experiments.config` -- Table I defaults, environments
  (PeerSim-style simulator vs PlanetLab-style WAN), scaling helpers.
* :mod:`repro.experiments.registry` -- the typed protocol registry:
  per-protocol parameter dataclasses and the one sanctioned protocol
  construction site.
* :mod:`repro.experiments.spec` -- :class:`ExperimentSpec`, the frozen,
  content-hashable description of one run.
* :mod:`repro.experiments.runner` -- drives one spec end to end.
* :mod:`repro.experiments.parallel` -- fans specs across worker
  processes and folds seed sweeps into means + 95% CIs.
* :mod:`repro.experiments.trace_cache` -- content-hash-keyed cache of
  synthesized trace corpora.
* :mod:`repro.experiments.figures` -- regenerates the evaluation
  figures (Figs 15-18) and Table I.
* :mod:`repro.experiments.report` -- renders paper-style text tables.
"""

from repro.experiments.config import (
    ENVIRONMENT_FACTORIES,
    Environment,
    SimulationConfig,
    environment_by_name,
    planetlab_environment,
    simulator_environment,
)
from repro.experiments.parallel import (
    AggregatedResult,
    aggregate_runs,
    aggregate_sweep,
    run_sweep,
    sweep_specs,
)
from repro.experiments.registry import (
    ProtocolEntry,
    create_protocol,
    default_params,
    get_protocol,
    protocol_names,
    register_protocol,
    resolve_params,
)
from repro.experiments.runner import (
    ExperimentResult,
    ExperimentRunner,
    run_spec,
)
from repro.experiments.spec import ExperimentSpec, seed_sweep
from repro.experiments.trace_cache import TraceCache, shared_trace_cache

__all__ = [
    "ENVIRONMENT_FACTORIES",
    "Environment",
    "SimulationConfig",
    "environment_by_name",
    "planetlab_environment",
    "simulator_environment",
    "AggregatedResult",
    "aggregate_runs",
    "aggregate_sweep",
    "run_sweep",
    "sweep_specs",
    "ProtocolEntry",
    "create_protocol",
    "default_params",
    "get_protocol",
    "protocol_names",
    "register_protocol",
    "resolve_params",
    "ExperimentResult",
    "ExperimentRunner",
    "run_spec",
    "ExperimentSpec",
    "seed_sweep",
    "TraceCache",
    "shared_trace_cache",
]
