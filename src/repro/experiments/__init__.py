"""Evaluation harness: Section V experiments.

* :mod:`repro.experiments.config` -- Table I defaults, environments
  (PeerSim-style simulator vs PlanetLab-style WAN), scaling helpers.
* :mod:`repro.experiments.runner` -- drives one (protocol,
  environment) experiment end to end.
* :mod:`repro.experiments.figures` -- regenerates the evaluation
  figures (Figs 15-18) and Table I.
* :mod:`repro.experiments.report` -- renders paper-style text tables.
"""

from repro.experiments.config import (
    Environment,
    SimulationConfig,
    planetlab_environment,
    simulator_environment,
)
from repro.experiments.runner import ExperimentResult, ExperimentRunner

__all__ = [
    "Environment",
    "SimulationConfig",
    "planetlab_environment",
    "simulator_environment",
    "ExperimentResult",
    "ExperimentRunner",
]
