"""Content-hash-keyed cache of synthesized traces.

Trace synthesis is the single most expensive non-simulation step of the
harness, and it is pure: a :class:`TraceConfig` fully determines the
resulting :class:`TraceDataset`.  Before this cache, every
``run_spec`` call, every ablation sweep, and every
``EvaluationSuite`` instance re-synthesized identical corpora from
scratch.  Now any identical recipe -- compared by the canonical content
digest of the config, not object identity -- synthesizes exactly once
per process.

Two views are cached per recipe:

* the live :class:`TraceDataset`, handed to in-process runs (runs treat
  datasets as read-only, the same contract the EvaluationSuite always
  relied on when sharing one dataset across its five variants);
* its pickled snapshot (:meth:`TraceCache.serialized`), shipped once to
  each worker of a parallel sweep so workers never re-synthesize.

``shared_trace_cache`` is the process-wide instance every harness layer
routes through.
"""

from __future__ import annotations

import pickle
from typing import Dict

from repro.experiments.spec import content_digest
from repro.trace.dataset import TraceDataset
from repro.trace.synthesizer import TraceConfig, TraceSynthesizer


class TraceCache:
    """Synthesize-once store of datasets keyed by trace content digest."""

    def __init__(self) -> None:
        self._datasets: Dict[str, TraceDataset] = {}
        self._blobs: Dict[str, bytes] = {}
        self.hits = 0
        self.misses = 0

    def key(self, trace_config: TraceConfig) -> str:
        """The cache key: canonical content digest of the recipe."""
        return content_digest(trace_config)

    def dataset_for(self, trace_config: TraceConfig) -> TraceDataset:
        """The (shared, read-only) dataset for ``trace_config``."""
        key = self.key(trace_config)
        dataset = self._datasets.get(key)
        if dataset is None:
            self.misses += 1
            dataset = TraceSynthesizer(trace_config).synthesize()
            self._datasets[key] = dataset
        else:
            self.hits += 1
        return dataset

    def serialized(self, trace_config: TraceConfig) -> bytes:
        """Pickled snapshot of the dataset (cached; one dump per recipe)."""
        key = self.key(trace_config)
        blob = self._blobs.get(key)
        if blob is None:
            blob = pickle.dumps(
                self.dataset_for(trace_config), protocol=pickle.HIGHEST_PROTOCOL
            )
            self._blobs[key] = blob
        return blob

    def put(self, trace_config: TraceConfig, dataset: TraceDataset) -> None:
        """Adopt an externally synthesized dataset for ``trace_config``."""
        self._datasets[self.key(trace_config)] = dataset

    def clear(self) -> None:
        """Drop every cached dataset and snapshot (tests, memory pressure)."""
        self._datasets.clear()
        self._blobs.clear()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._datasets)


#: The process-wide cache used by the runner, suite, sweeps and CLI.
shared_trace_cache = TraceCache()  # shard: shared-mutable
