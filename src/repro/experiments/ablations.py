"""Ablation studies: the paper's Section VI future-work questions.

"In our future work, we will study the impact of the different number
of links per node on the video sharing performance and explore the
value that can achieve an optimal tradeoff between the system
maintenance overhead and availability of peer video providers."

Three sweeps are provided, each over an identical workload/trace/seed:

* :func:`link_budget_sweep` -- vary (N_l, N_h); measures peer-provider
  availability (normalized peer bandwidth), startup delay, and the
  realised maintenance overhead.  The tradeoff the paper asks about.
* :func:`ttl_sweep` -- vary the search TTL; measures hit rate vs search
  overhead (peers contacted per query).
* :func:`churn_sweep` -- vary the mean off-time (session churn rate);
  measures how robust the per-community structure is to churn.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.experiments.config import SimulationConfig
from repro.experiments.parallel import run_sweep
from repro.experiments.registry import resolve_params
from repro.experiments.spec import ExperimentSpec
from repro.metrics.collectors import ExperimentMetrics


@dataclass
class AblationPoint:
    """One configuration of a sweep and its measurements."""

    label: str
    parameters: Dict[str, float]
    peer_bandwidth_p50: float
    startup_delay_ms_mean: float
    mean_link_overhead: float
    server_fallback_fraction: float
    mean_peers_contacted: float

    def render(self) -> str:
        return (
            f"  {self.label:18s} "
            f"peer_bw_p50={self.peer_bandwidth_p50:.3f}  "
            f"startup_ms={self.startup_delay_ms_mean:7.1f}  "
            f"links={self.mean_link_overhead:5.1f}  "
            f"server={self.server_fallback_fraction:.3f}  "
            f"contacted={self.mean_peers_contacted:5.1f}"
        )


@dataclass
class AblationResult:
    """A full sweep: points in sweep order plus a derived recommendation."""

    name: str
    points: List[AblationPoint] = field(default_factory=list)

    def render_rows(self) -> List[str]:
        rows = [f"Ablation: {self.name}"]
        rows.extend(point.render() for point in self.points)
        best = self.best_tradeoff()
        if best is not None:
            rows.append(f"  best availability/overhead tradeoff: {best.label}")
        return rows

    def best_tradeoff(self) -> Optional[AblationPoint]:
        """The point maximising availability per unit of link overhead.

        A simple scalarisation of the paper's question: peer bandwidth
        divided by (1 + links maintained).  Points that never form links
        (PA-VoD-like degenerate configs) are not penalised to infinity.
        """
        if not self.points:
            return None
        return max(
            self.points,
            key=lambda p: p.peer_bandwidth_p50 / (1.0 + p.mean_link_overhead),
        )


def _spec_for(
    config: SimulationConfig, protocol_overrides: Optional[Dict] = None
) -> ExperimentSpec:
    return ExperimentSpec(
        protocol="socialtube",
        config=config,
        params=resolve_params("socialtube", config, protocol_overrides or None),
    )


def _point_from_metrics(
    label: str, parameters: Dict[str, float], metrics: ExperimentMetrics
) -> AblationPoint:
    overhead = metrics.overhead_by_video_index
    mean_links = sum(overhead.values()) / len(overhead) if overhead else 0.0
    return AblationPoint(
        label=label,
        parameters=parameters,
        peer_bandwidth_p50=metrics.peer_bandwidth_p50,
        startup_delay_ms_mean=metrics.startup_delay_ms_mean,
        mean_link_overhead=mean_links,
        server_fallback_fraction=metrics.server_fallback_fraction,
        mean_peers_contacted=metrics.mean_peers_contacted,
    )


def _run_points(
    name: str,
    points: Sequence[Tuple[str, Dict[str, float], ExperimentSpec]],
    jobs: int,
) -> AblationResult:
    """Execute a sweep's specs (fanning out when ``jobs > 1``).

    Every point shares the sweep config's trace recipe, so the shared
    cache synthesizes the corpus once for the whole sweep -- and once
    across *all* sweeps over the same config.
    """
    results = run_sweep([spec for _label, _params, spec in points], jobs=jobs)
    result = AblationResult(name=name)
    for (label, parameters, _spec), run in zip(points, results):
        result.points.append(_point_from_metrics(label, parameters, run.metrics))
    return result


def link_budget_sweep(
    config: SimulationConfig,
    budgets: Sequence[Tuple[int, int]] = ((1, 2), (3, 5), (5, 10), (8, 16), (12, 24)),
    jobs: int = 1,
) -> AblationResult:
    """Sweep (N_l, N_h): availability vs maintenance overhead.

    The paper's defaults (5, 10) should land near the knee: smaller
    budgets starve the flood's reach, larger ones buy little extra
    availability while inflating the per-node link count.
    """
    points = []
    for inner, inter in budgets:
        point_config = dataclasses.replace(
            config, inner_links=inner, inter_links=inter
        )
        points.append(
            (
                f"N_l={inner}, N_h={inter}",
                {"inner_links": inner, "inter_links": inter},
                _spec_for(point_config),
            )
        )
    return _run_points("link budget (N_l, N_h)", points, jobs)


def ttl_sweep(
    config: SimulationConfig,
    ttls: Sequence[int] = (1, 2, 3, 4),
    jobs: int = 1,
) -> AblationResult:
    """Sweep the search TTL: hit rate vs per-query search overhead."""
    points = []
    for ttl in ttls:
        point_config = dataclasses.replace(config, ttl=ttl)
        points.append((f"TTL={ttl}", {"ttl": ttl}, _spec_for(point_config)))
    return _run_points("search TTL", points, jobs)


def churn_sweep(
    config: SimulationConfig,
    mean_off_times: Sequence[float] = (60.0, 300.0, 1200.0, 3600.0),
    jobs: int = 1,
) -> AblationResult:
    """Sweep churn (mean off-time between sessions).

    Shorter off-times mean a larger online population (milder churn per
    unit time relative to session length); very long off-times shrink
    the online population and stress rejoin repair.
    """
    points = []
    for off_time in mean_off_times:
        point_config = dataclasses.replace(config, mean_off_time_s=off_time)
        points.append(
            (
                f"off={off_time:.0f}s",
                {"mean_off_time_s": off_time},
                _spec_for(point_config),
            )
        )
    return _run_points("churn (mean off time, s)", points, jobs)
