"""The declarative fault model: what goes wrong, how often, how hard.

The paper's PlanetLab deployment (Section VI) exists to show SocialTube
survives a hostile network -- peers vanish mid-transfer, queries are
lost, uplinks degrade, the server browns out under load.  The PeerSim
evaluation only exercises *graceful* churn, so this module describes the
adversity explicitly: a :class:`FaultPlan` is a frozen, all-zero-by-
default bundle of fault rates that rides on
:class:`repro.experiments.spec.ExperimentSpec` and is content-hash
aware -- an all-zero plan serializes to *nothing*, so fault-free specs
keep their pre-fault hashes and baselines.

Determinism contract: the plan holds only *parameters*.  Every random
draw happens in :class:`repro.faults.injector.FaultInjector` from
dedicated ``RngStreams`` substreams, so enabling faults never perturbs
the workload/churn/latency streams and ``--jobs N`` stays byte-identical
to serial execution.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, Dict, Mapping, Optional, Tuple


@dataclass(frozen=True)
class RetryPolicy:
    """Failover retry/timeout/backoff knobs (DESIGN.md section 9).

    After a provider crash is detected (``detection_timeout_s`` after
    the crash), the consumer re-searches the overlay; each miss waits
    ``backoff_base_s * backoff_factor**attempt`` (capped at
    ``backoff_max_s``) before the next attempt, and after
    ``max_retries`` misses the server finishes the transfer (a
    *degraded* serve, not a lost session).
    """

    max_retries: int = 2
    detection_timeout_s: float = 2.0
    backoff_base_s: float = 1.0
    backoff_factor: float = 2.0
    backoff_max_s: float = 30.0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.detection_timeout_s < 0:
            raise ValueError("detection_timeout_s must be >= 0")
        if self.backoff_base_s < 0 or self.backoff_max_s < 0:
            raise ValueError("backoff delays must be >= 0")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1")

    def backoff_delay(self, attempt: int) -> float:
        """Delay before retry number ``attempt`` (0-based), capped.

        Example::

            >>> RetryPolicy(backoff_base_s=1.0, backoff_factor=2.0).backoff_delay(2)
            4.0
        """
        if attempt < 0:
            raise ValueError("attempt must be >= 0")
        if self.backoff_base_s == 0.0:
            return 0.0
        try:
            delay = self.backoff_base_s * self.backoff_factor**attempt
        except OverflowError:
            # factor**attempt left float range, so the cap has long won.
            return self.backoff_max_s
        return min(self.backoff_max_s, delay)


#: Field groups for the v2 fault families -- a family's fields travel
#: together through :meth:`FaultPlan.to_dict` (omitted when disarmed).
_COMMUNITY_CRASH_FIELDS: Tuple[str, ...] = (  # shard: shared-read
    "community_crash_at_s",
    "community_crash_fraction",
)
_TRACKER_OUTAGE_FIELDS: Tuple[str, ...] = (  # shard: shared-read
    "tracker_outage_at_s",
    "tracker_outage_duration_s",
)
_PARTITION_FIELDS: Tuple[str, ...] = (  # shard: shared-read
    "partition_at_s",
    "partition_duration_s",
)
_FLASH_CROWD_FIELDS: Tuple[str, ...] = (  # shard: shared-read
    "flash_crowd_at_s",
    "flash_crowd_duration_s",
    "flash_crowd_admission_limit",
)


@dataclass(frozen=True)
class FaultPlan:
    """Deterministic, seeded description of every injected fault class.

    * **crash-churn** -- while a node is in session, it crashes after an
      exponential delay with rate ``crash_rate_per_hour`` (0 disables).
      A crash kills the node mid-session/mid-transfer: no graceful
      leave, overlay links dangle until crash-repair.
    * **query loss** -- each peer lookup is lost with
      ``query_loss_prob``; the requester retries under ``retry`` and
      falls back to the server past the budget.
    * **slow peer** -- a peer transfer is degraded to
      ``slow_peer_factor`` of its granted rate with ``slow_peer_prob``
      (a congested uplink episode).
    * **server brownout** -- during the first ``brownout_duty`` fraction
      of every ``brownout_period_s`` window of virtual time, server
      serves run at ``brownout_factor`` of the granted rate.  Purely
      clock-driven: no RNG draw.
    * **crash-repair** -- surviving neighbors detect and re-link
      ``repair_window_s`` after a crash (the overlay self-healing
      window).

    The v2 *correlated & infrastructure* families (each disarmed at its
    zero default, each a scheduled window rather than a rate):

    * **community crash** -- at ``community_crash_at_s`` a seeded burst
      takes down ``community_crash_fraction`` of one interest cluster
      at once, highest-capacity members first (the upper-layer nodes go
      too).  The cluster pick is the only random draw
      (``faults.community``); the victim set within it is
      deterministic.
    * **tracker outage** -- between ``tracker_outage_at_s`` and
      ``+ tracker_outage_duration_s`` the tracker is down *and its
      state is lost*: lookups fail (peers fall back to overlay flooding
      or raw server serves) and at recovery every online peer
      re-registers its state in node-id order.
    * **network partition** -- between ``partition_at_s`` and
      ``+ partition_duration_s`` links crossing the interest-community
      bisection (``primary_interest(node) % 2``) are severed; in-flight
      cross-side transfers are interrupted into the failover path, and
      at heal time a maintenance sweep re-links the overlay.
    * **flash crowd** -- between ``flash_crowd_at_s`` and
      ``+ flash_crowd_duration_s`` the server applies explicit
      admission control: at most ``flash_crowd_admission_limit``
      concurrent server transfers; excess requests are *shed* and the
      requester retries under ``retry`` (forced degraded admit past the
      budget) instead of the silent brownout rate cut.

    The all-default plan is *zero*: :meth:`is_zero` is True and the plan
    is omitted from the spec's canonical payload, keeping fault-free
    content hashes, traces, and baselines byte-identical to a build
    without this module.  :meth:`to_dict` likewise omits every
    *disarmed* v2 family, so pre-v2 plans (and their baselines) keep
    their content hashes.
    """

    crash_rate_per_hour: float = 0.0
    query_loss_prob: float = 0.0
    slow_peer_prob: float = 0.0
    slow_peer_factor: float = 0.25
    brownout_period_s: float = 0.0
    brownout_duty: float = 0.0
    brownout_factor: float = 0.5
    repair_window_s: float = 60.0
    retry: RetryPolicy = RetryPolicy()
    community_crash_at_s: float = 0.0
    community_crash_fraction: float = 0.0
    tracker_outage_at_s: float = 0.0
    tracker_outage_duration_s: float = 0.0
    partition_at_s: float = 0.0
    partition_duration_s: float = 0.0
    flash_crowd_at_s: float = 0.0
    flash_crowd_duration_s: float = 0.0
    flash_crowd_admission_limit: int = 0

    def __post_init__(self) -> None:
        if self.crash_rate_per_hour < 0:
            raise ValueError("crash_rate_per_hour must be >= 0")
        for name in ("query_loss_prob", "slow_peer_prob", "brownout_duty"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1]")
        for name in ("slow_peer_factor", "brownout_factor"):
            value = getattr(self, name)
            if not 0.0 < value <= 1.0:
                raise ValueError(f"{name} must be in (0, 1]")
        if self.brownout_period_s < 0:
            raise ValueError("brownout_period_s must be >= 0")
        if self.repair_window_s <= 0:
            raise ValueError("repair_window_s must be positive")
        if not isinstance(self.retry, RetryPolicy):
            raise TypeError("retry must be a RetryPolicy")
        for name in (
            "community_crash_at_s",
            "tracker_outage_at_s",
            "tracker_outage_duration_s",
            "partition_at_s",
            "partition_duration_s",
            "flash_crowd_at_s",
            "flash_crowd_duration_s",
        ):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be >= 0")
        if not 0.0 <= self.community_crash_fraction <= 1.0:
            raise ValueError("community_crash_fraction must be in [0, 1]")
        if self.flash_crowd_admission_limit < 0:
            raise ValueError("flash_crowd_admission_limit must be >= 0")

    # -- per-family armed predicates -----------------------------------

    def has_community_crash(self) -> bool:
        """Whether the correlated community-crash burst is armed."""
        return self.community_crash_at_s > 0 and self.community_crash_fraction > 0

    def has_tracker_outage(self) -> bool:
        """Whether a tracker-outage window is armed."""
        return self.tracker_outage_at_s > 0 and self.tracker_outage_duration_s > 0

    def has_partition(self) -> bool:
        """Whether a network-partition window is armed."""
        return self.partition_at_s > 0 and self.partition_duration_s > 0

    def has_flash_crowd(self) -> bool:
        """Whether a flash-crowd admission-control window is armed."""
        return (
            self.flash_crowd_at_s > 0
            and self.flash_crowd_duration_s > 0
            and self.flash_crowd_admission_limit > 0
        )

    def is_zero(self) -> bool:
        """True when no fault class can ever fire under this plan."""
        return (
            self.crash_rate_per_hour == 0.0
            and self.query_loss_prob == 0.0
            and self.slow_peer_prob == 0.0
            and not (self.brownout_period_s > 0 and self.brownout_duty > 0)
            and not self.has_community_crash()
            and not self.has_tracker_outage()
            and not self.has_partition()
            and not self.has_flash_crowd()
        )

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready nested dict (the spec's canonical-payload form).

        Every *disarmed* v2 family is omitted wholesale, the same move
        that keeps an all-zero plan out of the canonical payload: a
        pre-v2 plan (or a v2 plan that arms nothing new) serializes to
        exactly its pre-v2 dict, so existing content hashes and chaos
        baselines survive the schema growth.
        """
        payload = dataclasses.asdict(self)
        for armed, fields in (
            (self.has_community_crash(), _COMMUNITY_CRASH_FIELDS),
            (self.has_tracker_outage(), _TRACKER_OUTAGE_FIELDS),
            (self.has_partition(), _PARTITION_FIELDS),
            (self.has_flash_crowd(), _FLASH_CROWD_FIELDS),
        ):
            if not armed:
                for name in fields:
                    del payload[name]
        return payload

    @classmethod
    def from_dict(cls, payload: Optional[Mapping[str, Any]]) -> Optional["FaultPlan"]:
        """Rebuild a plan from :meth:`to_dict` output; None passes through.

        Used by the baseline gate to reconstruct fault-injected specs
        from committed baseline files.  Unknown keys are rejected with
        an error naming the key (a typo in a hand-edited baseline must
        not silently become a default-valued plan), and unknown retry
        sub-keys get the same treatment.  Keys a family omitted load
        back as their disarmed defaults.
        """
        if payload is None:
            return None
        known = {field.name for field in dataclasses.fields(cls)}
        for key in payload:
            if key not in known:
                raise ValueError(
                    f"FaultPlan.from_dict: unknown key {key!r} "
                    f"(known keys: {', '.join(sorted(known))})"
                )
        fields = dict(payload)
        retry = fields.pop("retry", None)
        if retry is not None:
            known_retry = {field.name for field in dataclasses.fields(RetryPolicy)}
            for key in retry:
                if key not in known_retry:
                    raise ValueError(
                        f"FaultPlan.from_dict: unknown retry key {key!r} "
                        f"(known keys: {', '.join(sorted(known_retry))})"
                    )
            fields["retry"] = RetryPolicy(**retry)
        return cls(**fields)

    @classmethod
    def demo(cls) -> "FaultPlan":
        """The canonical nonzero plan: CLI default, chaos baselines, CI.

        Aggressive enough that every fault path fires at smoke scale
        (crashes mid-transfer, lost queries, slow peers, brownouts)
        while leaving most sessions able to complete normally.
        """
        return cls(
            crash_rate_per_hour=4.0,
            query_loss_prob=0.05,
            slow_peer_prob=0.10,
            slow_peer_factor=0.30,
            brownout_period_s=1200.0,
            brownout_duty=0.25,
            brownout_factor=0.5,
            repair_window_s=60.0,
            retry=RetryPolicy(),
        )

    # -- canonical v2 family scenarios (the resilience grid's rows) ----

    @classmethod
    def community_crash_demo(cls) -> "FaultPlan":
        """Grid scenario: half of one interest cluster dies at t=600s."""
        return cls(community_crash_at_s=600.0, community_crash_fraction=0.5)

    @classmethod
    def tracker_outage_demo(cls) -> "FaultPlan":
        """Grid scenario: tracker down (state lost) for t in [600, 900)."""
        return cls(tracker_outage_at_s=600.0, tracker_outage_duration_s=300.0)

    @classmethod
    def partition_demo(cls) -> "FaultPlan":
        """Grid scenario: cross-community links severed for t in [600, 1000)."""
        return cls(partition_at_s=600.0, partition_duration_s=400.0)

    @classmethod
    def flash_crowd_demo(cls) -> "FaultPlan":
        """Grid scenario: server sheds past 2 concurrent serves, t in [600, 900)."""
        return cls(
            flash_crowd_at_s=600.0,
            flash_crowd_duration_s=300.0,
            flash_crowd_admission_limit=2,
        )

    @classmethod
    def infra_demo(cls) -> "FaultPlan":
        """Every v2 family armed at once, staggered so each phase shows.

        The canonical plan behind the ``_chaos_infra`` baselines: the
        community burst lands first, the tracker drops during the
        partition, and the flash crowd hits a healed-but-rattled
        overlay.
        """
        return cls(
            community_crash_at_s=400.0,
            community_crash_fraction=0.4,
            tracker_outage_at_s=800.0,
            tracker_outage_duration_s=200.0,
            partition_at_s=700.0,
            partition_duration_s=400.0,
            flash_crowd_at_s=1300.0,
            flash_crowd_duration_s=300.0,
            flash_crowd_admission_limit=2,
        )
