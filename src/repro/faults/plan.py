"""The declarative fault model: what goes wrong, how often, how hard.

The paper's PlanetLab deployment (Section VI) exists to show SocialTube
survives a hostile network -- peers vanish mid-transfer, queries are
lost, uplinks degrade, the server browns out under load.  The PeerSim
evaluation only exercises *graceful* churn, so this module describes the
adversity explicitly: a :class:`FaultPlan` is a frozen, all-zero-by-
default bundle of fault rates that rides on
:class:`repro.experiments.spec.ExperimentSpec` and is content-hash
aware -- an all-zero plan serializes to *nothing*, so fault-free specs
keep their pre-fault hashes and baselines.

Determinism contract: the plan holds only *parameters*.  Every random
draw happens in :class:`repro.faults.injector.FaultInjector` from
dedicated ``RngStreams`` substreams, so enabling faults never perturbs
the workload/churn/latency streams and ``--jobs N`` stays byte-identical
to serial execution.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, Dict, Optional


@dataclass(frozen=True)
class RetryPolicy:
    """Failover retry/timeout/backoff knobs (DESIGN.md section 9).

    After a provider crash is detected (``detection_timeout_s`` after
    the crash), the consumer re-searches the overlay; each miss waits
    ``backoff_base_s * backoff_factor**attempt`` (capped at
    ``backoff_max_s``) before the next attempt, and after
    ``max_retries`` misses the server finishes the transfer (a
    *degraded* serve, not a lost session).
    """

    max_retries: int = 2
    detection_timeout_s: float = 2.0
    backoff_base_s: float = 1.0
    backoff_factor: float = 2.0
    backoff_max_s: float = 30.0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.detection_timeout_s < 0:
            raise ValueError("detection_timeout_s must be >= 0")
        if self.backoff_base_s < 0 or self.backoff_max_s < 0:
            raise ValueError("backoff delays must be >= 0")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1")

    def backoff_delay(self, attempt: int) -> float:
        """Delay before retry number ``attempt`` (0-based), capped.

        Example::

            >>> RetryPolicy(backoff_base_s=1.0, backoff_factor=2.0).backoff_delay(2)
            4.0
        """
        if attempt < 0:
            raise ValueError("attempt must be >= 0")
        return min(self.backoff_max_s, self.backoff_base_s * self.backoff_factor**attempt)


@dataclass(frozen=True)
class FaultPlan:
    """Deterministic, seeded description of every injected fault class.

    * **crash-churn** -- while a node is in session, it crashes after an
      exponential delay with rate ``crash_rate_per_hour`` (0 disables).
      A crash kills the node mid-session/mid-transfer: no graceful
      leave, overlay links dangle until crash-repair.
    * **query loss** -- each peer lookup is lost with
      ``query_loss_prob``; the requester retries under ``retry`` and
      falls back to the server past the budget.
    * **slow peer** -- a peer transfer is degraded to
      ``slow_peer_factor`` of its granted rate with ``slow_peer_prob``
      (a congested uplink episode).
    * **server brownout** -- during the first ``brownout_duty`` fraction
      of every ``brownout_period_s`` window of virtual time, server
      serves run at ``brownout_factor`` of the granted rate.  Purely
      clock-driven: no RNG draw.
    * **crash-repair** -- surviving neighbors detect and re-link
      ``repair_window_s`` after a crash (the overlay self-healing
      window).

    The all-default plan is *zero*: :meth:`is_zero` is True and the plan
    is omitted from the spec's canonical payload, keeping fault-free
    content hashes, traces, and baselines byte-identical to a build
    without this module.
    """

    crash_rate_per_hour: float = 0.0
    query_loss_prob: float = 0.0
    slow_peer_prob: float = 0.0
    slow_peer_factor: float = 0.25
    brownout_period_s: float = 0.0
    brownout_duty: float = 0.0
    brownout_factor: float = 0.5
    repair_window_s: float = 60.0
    retry: RetryPolicy = RetryPolicy()

    def __post_init__(self) -> None:
        if self.crash_rate_per_hour < 0:
            raise ValueError("crash_rate_per_hour must be >= 0")
        for name in ("query_loss_prob", "slow_peer_prob", "brownout_duty"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1]")
        for name in ("slow_peer_factor", "brownout_factor"):
            value = getattr(self, name)
            if not 0.0 < value <= 1.0:
                raise ValueError(f"{name} must be in (0, 1]")
        if self.brownout_period_s < 0:
            raise ValueError("brownout_period_s must be >= 0")
        if self.repair_window_s <= 0:
            raise ValueError("repair_window_s must be positive")
        if not isinstance(self.retry, RetryPolicy):
            raise TypeError("retry must be a RetryPolicy")

    def is_zero(self) -> bool:
        """True when no fault class can ever fire under this plan."""
        return (
            self.crash_rate_per_hour == 0.0
            and self.query_loss_prob == 0.0
            and self.slow_peer_prob == 0.0
            and not (self.brownout_period_s > 0 and self.brownout_duty > 0)
        )

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready nested dict (the spec's canonical-payload form)."""
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, payload: Optional[Dict[str, Any]]) -> Optional["FaultPlan"]:
        """Rebuild a plan from :meth:`to_dict` output; None passes through.

        Used by the baseline gate to reconstruct fault-injected specs
        from committed baseline files.
        """
        if payload is None:
            return None
        fields = dict(payload)
        retry = fields.pop("retry", None)
        if retry is not None:
            fields["retry"] = RetryPolicy(**retry)
        return cls(**fields)

    @classmethod
    def demo(cls) -> "FaultPlan":
        """The canonical nonzero plan: CLI default, chaos baselines, CI.

        Aggressive enough that every fault path fires at smoke scale
        (crashes mid-transfer, lost queries, slow peers, brownouts)
        while leaving most sessions able to complete normally.
        """
        return cls(
            crash_rate_per_hour=4.0,
            query_loss_prob=0.05,
            slow_peer_prob=0.10,
            slow_peer_factor=0.30,
            brownout_period_s=1200.0,
            brownout_duty=0.25,
            brownout_factor=0.5,
            repair_window_s=60.0,
            retry=RetryPolicy(),
        )
