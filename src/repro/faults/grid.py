# shard: module=shard-local -- builds specs and aggregates finished runs
"""The resilience grid: protocols x fault families -> degradation scorecard.

``python -m repro chaos --grid`` runs every paper protocol under each
of the four infrastructure fault families (repro.faults v2) and emits a
*degradation scorecard*: how gracefully each system absorbs the same
blow.  The scorecard columns are the graceful-degradation contract:

* **continuity** -- mean playback continuity across every watch; the
  user-facing outcome a fault must not destroy.
* **failover latency** -- mean time an interrupted consumer spent
  between losing its source and resuming; the cost of self-healing.
* **server fallback fraction** -- requests the server had to serve;
  degradation is supposed to shift load *here*, not to failures.
* **recovery time** -- first fault onset to the last recovery action
  (failover resume, repair sweep, re-registration sweep, partition
  heal); how long until the system was whole again.
* **fault events** -- the family's own blast counter (burst kills,
  failed lookups, severed transfers, admission sheds), proving the
  scenario actually fired.

Every cell replays one :class:`ExperimentSpec` under one family's demo
plan, so the whole grid is a pure function of ``(seed, scale)``: the
canonical JSON is byte-identical across ``--jobs``/``--shards``/
``--workers``, which is exactly what the CI chaos-grid job diffs.
"""

from __future__ import annotations

import json
import multiprocessing
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.experiments.config import SimulationConfig
from repro.experiments.spec import ExperimentSpec
from repro.faults.plan import FaultPlan

#: Grid schema version, bumped when the scorecard layout changes.
GRID_SCHEMA_VERSION = 1  # shard: shared-read

#: Row order of the scorecard (the paper's three evaluated systems).
GRID_PROTOCOLS: Tuple[str, ...] = ("socialtube", "nettube", "pavod")  # shard: shared-read

#: Column order: one scenario per v2 fault family.
GRID_FAMILIES: Tuple[str, ...] = (  # shard: shared-read
    "community_crash",
    "tracker_outage",
    "partition",
    "flash_crowd",
)


def family_plan(family: str) -> FaultPlan:
    """The canonical demo plan of one fault family (or ``infra`` for all).

    Raises ``ValueError`` for an unknown family name, listing the known
    ones -- the CLI surfaces this verbatim.
    """
    factories: Dict[str, Callable[[], FaultPlan]] = {
        "community_crash": FaultPlan.community_crash_demo,
        "tracker_outage": FaultPlan.tracker_outage_demo,
        "partition": FaultPlan.partition_demo,
        "flash_crowd": FaultPlan.flash_crowd_demo,
        "infra": FaultPlan.infra_demo,
    }
    factory = factories.get(family)
    if factory is None:
        known = ", ".join(GRID_FAMILIES + ("infra",))
        raise ValueError(f"unknown fault family {family!r} (known: {known})")
    return factory()


@dataclass(frozen=True)
class GridCell:
    """One (protocol, family) scorecard entry."""

    protocol: str
    family: str
    continuity: float
    failover_latency_ms: float
    server_fallback_fraction: float
    recovery_time_s: float
    fault_events: int

    def to_dict(self) -> Dict[str, Any]:
        return {
            "protocol": self.protocol,
            "family": self.family,
            "continuity": round(self.continuity, 6),
            "failover_latency_ms": round(self.failover_latency_ms, 3),
            "server_fallback_fraction": round(self.server_fallback_fraction, 6),
            "recovery_time_s": round(self.recovery_time_s, 3),
            "fault_events": self.fault_events,
        }


def _family_events(family: str, metrics: Any) -> int:
    """The family's own blast counter, proving the scenario fired."""
    if family == "community_crash":
        return int(metrics.burst_crashes)
    if family == "tracker_outage":
        return int(metrics.tracker_lookup_failures)
    if family == "partition":
        return int(metrics.partition_interrupts)
    return int(metrics.server_sheds)  # flash_crowd


def grid_specs(
    seed: int = 2014,
    scale: str = "smoke",
    shards: int = 1,
    workers: int = 1,
    protocols: Optional[Tuple[str, ...]] = None,
) -> List[Tuple[str, str, ExperimentSpec]]:
    """Every ``(protocol, family, spec)`` cell, protocol-major order."""
    factory = (
        SimulationConfig.smoke_scale
        if scale == "smoke"
        else SimulationConfig.default_scale
    )
    cells = []
    for protocol in protocols or GRID_PROTOCOLS:
        for family in GRID_FAMILIES:
            spec = ExperimentSpec(
                protocol=protocol, config=factory(seed=seed)
            ).with_faults(family_plan(family))
            if shards != 1:
                spec = spec.with_shards(shards)
            if workers != 1:
                spec = spec.with_workers(workers)
            cells.append((protocol, family, spec))
    return cells


def _cell_worker(task: Tuple[str, str, ExperimentSpec]) -> GridCell:
    """Pool worker: one grid cell -> its scorecard entry."""
    from repro.experiments.runner import run_spec
    from repro.experiments.trace_cache import shared_trace_cache

    protocol, family, spec = task
    result = run_spec(
        spec, dataset=shared_trace_cache.dataset_for(spec.config.trace)
    )
    metrics = result.metrics
    return GridCell(
        protocol=protocol,
        family=family,
        continuity=metrics.mean_continuity_index,
        failover_latency_ms=metrics.failover_latency_ms_mean,
        server_fallback_fraction=metrics.server_fallback_fraction,
        recovery_time_s=metrics.recovery_time_s,
        fault_events=_family_events(family, metrics),
    )


def run_grid(
    seed: int = 2014,
    scale: str = "smoke",
    jobs: int = 1,
    shards: int = 1,
    workers: int = 1,
    protocols: Optional[Tuple[str, ...]] = None,
) -> List[GridCell]:
    """Run the full grid; cells come back in protocol-major order.

    ``jobs > 1`` fans cells out over worker processes; cell order (and
    therefore the canonical JSON) is identical for any job count.
    """
    tasks = grid_specs(
        seed=seed, scale=scale, shards=shards, workers=workers, protocols=protocols
    )
    if jobs > 1:
        with multiprocessing.Pool(processes=min(jobs, len(tasks))) as pool:
            return pool.map(_cell_worker, tasks, chunksize=1)
    return [_cell_worker(task) for task in tasks]


def grid_to_json_bytes(
    cells: List[GridCell], seed: int, scale: str
) -> bytes:
    """Canonical scorecard JSON: sorted keys, fixed cell order.

    The bytes are the grid's parity surface: CI diffs this output
    across ``--jobs``/``--shards``/``--workers``.
    """
    payload = {
        "schema": GRID_SCHEMA_VERSION,
        "seed": seed,
        "scale": scale,
        "protocols": list(dict.fromkeys(cell.protocol for cell in cells)),
        "families": list(GRID_FAMILIES),
        "cells": [cell.to_dict() for cell in cells],
    }
    return (json.dumps(payload, sort_keys=True, indent=2) + "\n").encode("utf-8")


def render_grid(cells: List[GridCell]) -> str:
    """The scorecard as an aligned text table (one line per cell)."""
    header = (
        f"{'protocol':<12} {'family':<16} {'continuity':>10} "
        f"{'failover_ms':>11} {'server_frac':>11} {'recovery_s':>10} {'events':>6}"
    )
    lines = ["resilience grid (degradation scorecard)", header]
    for cell in cells:
        lines.append(
            f"{cell.protocol:<12} {cell.family:<16} {cell.continuity:>10.4f} "
            f"{cell.failover_latency_ms:>11.1f} "
            f"{cell.server_fallback_fraction:>11.3f} "
            f"{cell.recovery_time_s:>10.1f} {cell.fault_events:>6d}"
        )
    return "\n".join(lines)
