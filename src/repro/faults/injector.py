"""Seeded fault draws, isolated from every other RNG stream.

The injector is the only component that consumes randomness for fault
decisions, and it draws exclusively from its own named ``RngStreams``
substreams (``faults.crash`` / ``faults.query-loss`` /
``faults.slow-peer``).  Stream derivation is name-based, so creating
these streams never perturbs the workload/churn/latency/protocol
sequences -- which is what keeps a zero-plan run byte-identical to a
build without fault injection, and a fault-injected run byte-identical
between ``--jobs 1`` and ``--jobs N``.

Mirrors the ``NULL_TRACER`` idiom: :data:`NULL_INJECTOR` is *falsy*, so
every hook in the runner's hot path costs one truthiness check when
faults are off.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.faults.plan import FaultPlan
from repro.sim.rng import RngStreams


class NullFaultInjector:
    """Falsy stand-in wired when the spec carries no (or a zero) plan."""

    plan: Optional[FaultPlan] = None

    def __bool__(self) -> bool:
        return False


#: Shared no-op injector (the fault-free fast path).
NULL_INJECTOR = NullFaultInjector()  # shard: shared-read


class FaultInjector:
    """Draws every fault decision for one run from dedicated streams.

    Draw order is fixed by the (deterministic) event order of the
    simulation: one crash draw per session start, one loss draw per
    peer lookup, one slow-peer draw per peer admission.  Brownouts are
    a pure function of the virtual clock and consume no randomness.
    """

    def __init__(self, plan: FaultPlan, streams: RngStreams):
        if plan.is_zero():
            raise ValueError("FaultInjector requires a nonzero FaultPlan")
        self.plan = plan
        self.retry = plan.retry
        self._rng_crash = streams.stream("faults.crash")
        self._rng_query = streams.stream("faults.query-loss")
        self._rng_slow = streams.stream("faults.slow-peer")
        self._rng_community = streams.stream("faults.community")
        # Armed flags cached so the clock-window predicates cost one
        # attribute read + compare on the hot path (the <3% armed-inert
        # bar in BENCH_faults.json covers these).
        self.community_crash_armed = plan.has_community_crash()
        self.tracker_outage_armed = plan.has_tracker_outage()
        self.partition_armed = plan.has_partition()
        self.flash_crowd_armed = plan.has_flash_crowd()

    def __bool__(self) -> bool:
        return True

    def crash_delay(self) -> Optional[float]:
        """Seconds until this session's crash, or None when crash-free.

        Drawn once per session start; the runner cancels the scheduled
        crash if the session ends gracefully first.
        """
        rate = self.plan.crash_rate_per_hour
        if rate <= 0:
            return None
        return self._rng_crash.expovariate(rate / 3600.0)

    def query_lost(self) -> bool:
        """One loss draw for a peer lookup (True = the reply never came)."""
        prob = self.plan.query_loss_prob
        return prob > 0 and self._rng_query.random() < prob

    def peer_rate(self, rate_bps: float) -> float:
        """Granted peer rate after a possible slow-peer episode."""
        prob = self.plan.slow_peer_prob
        if prob > 0 and self._rng_slow.random() < prob:
            return rate_bps * self.plan.slow_peer_factor
        return rate_bps

    def in_brownout(self, now: float) -> bool:
        """Whether virtual time ``now`` falls inside a brownout window."""
        period = self.plan.brownout_period_s
        if period <= 0 or self.plan.brownout_duty <= 0:
            return False
        return now % period < self.plan.brownout_duty * period

    def server_rate(self, rate_bps: float, now: float) -> float:
        """Granted server rate after a possible brownout (clock-driven)."""
        if self.in_brownout(now):
            return rate_bps * self.plan.brownout_factor
        return rate_bps

    # -- v2 correlated & infrastructure families -----------------------

    def community_crash_cluster(self, clusters: Sequence[int]) -> int:
        """Pick the interest cluster the correlated burst takes down.

        The *only* random draw in the community-crash family (one
        ``faults.community`` draw per run); the victim set inside the
        cluster is chosen deterministically by the runner (highest
        upload capacity first, node id as the tiebreak).
        """
        if not clusters:
            raise ValueError("community_crash_cluster needs a nonempty cluster list")
        return clusters[self._rng_community.randrange(len(clusters))]

    def tracker_down(self, now: float) -> bool:
        """Whether ``now`` falls inside the tracker-outage window."""
        if not self.tracker_outage_armed:
            return False
        start = self.plan.tracker_outage_at_s
        return start <= now < start + self.plan.tracker_outage_duration_s

    def in_partition(self, now: float) -> bool:
        """Whether ``now`` falls inside the network-partition window."""
        if not self.partition_armed:
            return False
        start = self.plan.partition_at_s
        return start <= now < start + self.plan.partition_duration_s

    def in_flash_crowd(self, now: float) -> bool:
        """Whether ``now`` falls inside the flash-crowd window."""
        if not self.flash_crowd_armed:
            return False
        start = self.plan.flash_crowd_at_s
        return start <= now < start + self.plan.flash_crowd_duration_s
