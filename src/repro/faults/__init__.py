"""Deterministic fault injection (crash-churn, loss, degradation).

Public surface:

* :class:`repro.faults.plan.FaultPlan` / ``RetryPolicy`` -- the frozen
  fault model carried by :class:`repro.experiments.spec.ExperimentSpec`;
* :class:`repro.faults.injector.FaultInjector` / ``NULL_INJECTOR`` --
  the seeded draw source the experiment runner consults.

See DESIGN.md section 9 for the fault model and the recovery protocol.
"""

from repro.faults.injector import NULL_INJECTOR, FaultInjector, NullFaultInjector
from repro.faults.plan import FaultPlan, RetryPolicy

__all__ = [
    "FaultPlan",
    "RetryPolicy",
    "FaultInjector",
    "NullFaultInjector",
    "NULL_INJECTOR",
]
