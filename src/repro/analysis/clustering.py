"""Fig 10: the shared-subscriber channel graph.

The paper plots the top channels per category as vertices, with an edge
between two channels when they share at least ``threshold`` subscribers
(the paper uses 50), and observes distinct per-interest clusters -- the
structural basis for SocialTube's higher-level overlay (O4).

We build the same graph and quantify the clustering the figure shows
visually:

* **intra-category edge fraction** -- the share of edges whose two
  endpoints have the same primary category (high = clustered);
* **connected components** and their category purity.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from itertools import combinations
from typing import Dict, FrozenSet, List, Set, Tuple

from repro.trace.dataset import TraceDataset


@dataclass
class ChannelGraph:
    """The shared-subscriber graph over selected channels."""

    nodes: List[int] = field(default_factory=list)
    edges: Dict[FrozenSet[int], int] = field(default_factory=dict)
    category_of: Dict[int, int] = field(default_factory=dict)

    @property
    def num_nodes(self) -> int:
        return len(self.nodes)

    @property
    def num_edges(self) -> int:
        return len(self.edges)

    def neighbors(self, channel_id: int) -> Set[int]:
        out: Set[int] = set()
        for pair in self.edges:
            if channel_id in pair:
                out.update(pair - {channel_id})
        return out

    def intra_category_edge_fraction(self) -> float:
        """Fraction of edges connecting two same-category channels.

        This is the scalar behind the figure's visual claim: "groups of
        channels form distinct clusters".
        """
        if not self.edges:
            return 0.0
        same = sum(
            1
            for pair in self.edges
            if len({self.category_of[c] for c in pair}) == 1
        )
        return same / len(self.edges)

    def connected_components(self) -> List[Set[int]]:
        """Connected components over channels that have at least one edge."""
        adjacency: Dict[int, Set[int]] = defaultdict(set)
        for pair in self.edges:
            a, b = tuple(pair)
            adjacency[a].add(b)
            adjacency[b].add(a)
        seen: Set[int] = set()
        components: List[Set[int]] = []
        for start in adjacency:
            if start in seen:
                continue
            stack = [start]
            component: Set[int] = set()
            while stack:
                node = stack.pop()
                if node in component:
                    continue
                component.add(node)
                stack.extend(adjacency[node] - component)
            seen.update(component)
            components.append(component)
        return components

    def component_purity(self) -> float:
        """Average (size-weighted) majority-category share per component."""
        components = self.connected_components()
        if not components:
            return 0.0
        weighted = 0.0
        total = 0
        for component in components:
            counts: Dict[int, int] = defaultdict(int)
            for channel_id in component:
                counts[self.category_of[channel_id]] += 1
            weighted += max(counts.values())
            total += len(component)
        return weighted / total if total else 0.0


def top_channels_per_category(
    dataset: TraceDataset, per_category: int
) -> List[int]:
    """The ``per_category`` most-subscribed channels of each category."""
    if per_category < 1:
        raise ValueError("per_category must be >= 1")
    picks: List[int] = []
    for category in dataset.categories.values():
        ranked = sorted(
            category.channel_ids,
            key=lambda c: dataset.channels[c].num_subscribers,
            reverse=True,
        )
        picks.extend(ranked[:per_category])
    return picks


def build_channel_graph(
    dataset: TraceDataset,
    threshold: int = 50,
    per_category: int = 10,
) -> ChannelGraph:
    """Build the Fig 10 graph.

    ``threshold`` is the minimum number of shared subscribers for an
    edge (the paper filters with 50); ``per_category`` selects the top
    channels per category, mirroring "the top channels for different
    categories in YouTube as vertices".
    """
    if threshold < 1:
        raise ValueError("threshold must be >= 1")
    nodes = top_channels_per_category(dataset, per_category)
    graph = ChannelGraph(
        nodes=nodes,
        category_of={c: dataset.channels[c].category_id for c in nodes},
    )
    for a, b in combinations(nodes, 2):
        shared = (
            dataset.channels[a].subscriber_ids
            & dataset.channels[b].subscriber_ids
        )
        if len(shared) >= threshold:
            graph.edges[frozenset((a, b))] = len(shared)
    return graph


def shared_subscriber_histogram(
    dataset: TraceDataset, per_category: int = 10
) -> List[Tuple[int, int]]:
    """Distribution of pairwise shared-subscriber counts among top channels.

    Useful to choose a threshold at synthetic scale: the paper's 50 was
    calibrated to their crawl size.
    """
    nodes = top_channels_per_category(dataset, per_category)
    counts: Dict[int, int] = defaultdict(int)
    for a, b in combinations(nodes, 2):
        shared = len(
            dataset.channels[a].subscriber_ids
            & dataset.channels[b].subscriber_ids
        )
        counts[shared] += 1
    return sorted(counts.items())
