"""Section III trace analysis.

Reproduces every observation (O1-O5) and figure (Figs 2-13) of the
paper's trace study against a :class:`repro.trace.TraceDataset`.
"""

from repro.analysis.stats import cdf_points, pearson_correlation, percentile
from repro.analysis.figures import (
    FigureSeries,
    TraceAnalysis,
)
from repro.analysis.clustering import ChannelGraph, build_channel_graph

__all__ = [
    "cdf_points",
    "pearson_correlation",
    "percentile",
    "FigureSeries",
    "TraceAnalysis",
    "ChannelGraph",
    "build_channel_graph",
]
