"""Small statistics toolkit for the trace analysis and the harness.

Implemented by hand (no scipy dependency in the hot path) so behaviour
is exact and documented: percentiles use linear interpolation between
order statistics, matching ``numpy.percentile``'s default.
"""

from __future__ import annotations

import math
from typing import List, Sequence, Tuple


def percentile(values: Sequence[float], q: float) -> float:
    """The ``q``-th percentile (0..100), linear interpolation.

    Matches numpy's default ("linear") method so harness output is
    directly comparable with any numpy-based post-processing.
    """
    if not values:
        raise ValueError("percentile of empty sequence")
    if not 0.0 <= q <= 100.0:
        raise ValueError("q must be in [0, 100]")
    ordered = sorted(values)
    if len(ordered) == 1:
        return float(ordered[0])
    rank = (len(ordered) - 1) * (q / 100.0)
    lo = math.floor(rank)
    hi = math.ceil(rank)
    if lo == hi:
        return float(ordered[lo])
    frac = rank - lo
    return float(ordered[lo] * (1.0 - frac) + ordered[hi] * frac)


def percentiles(values: Sequence[float], qs: Sequence[float]) -> List[float]:
    """Vector form of :func:`percentile` (single sort)."""
    if not values:
        raise ValueError("percentiles of empty sequence")
    ordered = sorted(values)
    out = []
    n = len(ordered)
    for q in qs:
        if not 0.0 <= q <= 100.0:
            raise ValueError("q must be in [0, 100]")
        if n == 1:
            out.append(float(ordered[0]))
            continue
        rank = (n - 1) * (q / 100.0)
        lo = math.floor(rank)
        hi = math.ceil(rank)
        if lo == hi:
            out.append(float(ordered[lo]))
        else:
            frac = rank - lo
            out.append(float(ordered[lo] * (1.0 - frac) + ordered[hi] * frac))
    return out


def cdf_points(values: Sequence[float]) -> List[Tuple[float, float]]:
    """Empirical CDF as ``(value, F(value))`` pairs, one per distinct value.

    ``F(v)`` is the fraction of samples ``<= v``; the last point always
    has ``F = 1.0``.  This is the exact series the paper's CDF figures
    (Figs 3, 4, 6, 7, 8, 11, 12, 13) plot.
    """
    if not values:
        raise ValueError("cdf of empty sequence")
    ordered = sorted(values)
    n = len(ordered)
    points: List[Tuple[float, float]] = []
    for i, v in enumerate(ordered):
        if i + 1 < n and ordered[i + 1] == v:
            continue  # collapse ties onto the last occurrence
        points.append((float(v), (i + 1) / n))
    return points


def cdf_at(values: Sequence[float], x: float) -> float:
    """Empirical CDF evaluated at ``x``: fraction of samples <= x."""
    if not values:
        raise ValueError("cdf of empty sequence")
    return sum(1 for v in values if v <= x) / len(values)


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean."""
    if not values:
        raise ValueError("mean of empty sequence")
    return sum(values) / len(values)


#: Two-sided 95% Student-t critical values, indexed by degrees of
#: freedom 1..30; beyond 30 the normal approximation (1.960) is used.
#: Hardcoded so the harness stays scipy-free and bit-stable.
_T_CRITICAL_95 = (
    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
    2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
    2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
)


def sample_std(values: Sequence[float]) -> float:
    """Unbiased (n-1) sample standard deviation; 0.0 for n < 2."""
    n = len(values)
    if n < 2:
        return 0.0
    m = mean(values)
    return math.sqrt(sum((v - m) ** 2 for v in values) / (n - 1))


def mean_confidence_interval(
    values: Sequence[float], confidence: float = 0.95
) -> Tuple[float, float, float]:
    """``(mean, low, high)`` of a two-sided Student-t CI over the mean.

    This is the aggregation the multi-seed sweeps report (mean +-
    t * s / sqrt(n) over repeated randomized trials, the CliqueStream
    evaluation methodology).  A single observation has zero-width
    bounds.  Only the 95% level is tabulated.
    """
    if not values:
        raise ValueError("confidence interval of empty sequence")
    if abs(confidence - 0.95) > 1e-9:
        raise ValueError("only confidence=0.95 is supported")
    m = mean(values)
    n = len(values)
    if n == 1:
        return (m, m, m)
    df = n - 1
    t = _T_CRITICAL_95[df - 1] if df <= len(_T_CRITICAL_95) else 1.960
    half = t * sample_std(values) / math.sqrt(n)
    return (m, m - half, m + half)


def pearson_correlation(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Pearson correlation coefficient of two equal-length samples.

    Used for the Fig 5 subscriptions-vs-views relationship and the
    favorites-vs-views observation under Fig 8.
    """
    if len(xs) != len(ys):
        raise ValueError("sequences must have equal length")
    if len(xs) < 2:
        raise ValueError("need at least two points")
    mx = mean(xs)
    my = mean(ys)
    cov = sum((x - mx) * (y - my) for x, y in zip(xs, ys))
    vx = sum((x - mx) ** 2 for x in xs)
    vy = sum((y - my) ** 2 for y in ys)
    if vx == 0 or vy == 0:
        raise ValueError("zero variance sample")
    return cov / math.sqrt(vx * vy)


def log_log_slope(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Least-squares slope of ``log(y)`` on ``log(x)``.

    A Zipf(s) rank-views profile has slope ``-s`` in log-log space;
    tests use this to verify Fig 9's within-channel Zipf exponent.
    Points with non-positive coordinates are skipped.
    """
    pts = [(math.log(x), math.log(y)) for x, y in zip(xs, ys) if x > 0 and y > 0]
    if len(pts) < 2:
        raise ValueError("need at least two positive points")
    mx = mean([p[0] for p in pts])
    my = mean([p[1] for p in pts])
    num = sum((x - mx) * (y - my) for x, y in pts)
    den = sum((x - mx) ** 2 for x, _ in pts)
    if den == 0:
        raise ValueError("degenerate x values")
    return num / den


def gini_coefficient(values: Sequence[float]) -> float:
    """Gini coefficient in [0, 1]; 0 = perfectly even, ->1 = concentrated.

    A compact scalar for "popularity varies greatly" claims (O2/O3):
    heavy-tailed view distributions have Gini well above 0.5.
    """
    if not values:
        raise ValueError("gini of empty sequence")
    if any(v < 0 for v in values):
        raise ValueError("gini requires non-negative values")
    ordered = sorted(values)
    n = len(ordered)
    total = sum(ordered)
    if total == 0:
        return 0.0
    weighted = sum((i + 1) * v for i, v in enumerate(ordered))
    return (2.0 * weighted) / (n * total) - (n + 1.0) / n
