"""Data series for every Section III figure (Figs 2-13).

Each ``figN_*`` method returns a :class:`FigureSeries` -- the exact
numbers the corresponding figure plots -- so the benchmark harness can
print paper-style rows and the tests can assert the qualitative
observations O1-O5.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.analysis.stats import (
    cdf_points,
    log_log_slope,
    pearson_correlation,
    percentile,
)
from repro.trace.dataset import TraceDataset


@dataclass
class FigureSeries:
    """One figure's data: named series of (x, y) points plus notes."""

    figure: str
    title: str
    series: Dict[str, List[Tuple[float, float]]] = field(default_factory=dict)
    notes: Dict[str, float] = field(default_factory=dict)

    def series_named(self, name: str) -> List[Tuple[float, float]]:
        return self.series[name]

    def render_rows(self, max_rows: int = 12) -> List[str]:
        """Paper-style text rows: evenly subsampled points per series."""
        rows = [f"{self.figure}: {self.title}"]
        for name, pts in self.series.items():
            if not pts:
                rows.append(f"  [{name}] (empty)")
                continue
            step = max(1, len(pts) // max_rows)
            sampled = pts[::step]
            if sampled[-1] != pts[-1]:
                sampled.append(pts[-1])
            body = ", ".join(f"({x:.4g}, {y:.4g})" for x, y in sampled)
            rows.append(f"  [{name}] {body}")
        for key, value in self.notes.items():
            rows.append(f"  note {key} = {value:.4g}")
        return rows


class TraceAnalysis:
    """Computes every Section III figure from a dataset."""

    def __init__(self, dataset: TraceDataset):
        if not dataset.videos or not dataset.channels or not dataset.users:
            raise ValueError("analysis requires a populated dataset")
        self.dataset = dataset

    # -- Fig 2: scalability -------------------------------------------------

    def fig2_videos_added_over_time(self, bucket_days: int = 30) -> FigureSeries:
        """# of videos added per time bucket over the crawl horizon.

        O1: the growth in upload volume is the scalability motivation.
        """
        if bucket_days < 1:
            raise ValueError("bucket_days must be >= 1")
        counts: Counter = Counter()
        for video in self.dataset.iter_videos():
            counts[video.upload_day // bucket_days] += 1
        horizon_buckets = self.dataset.crawl_day // bucket_days + 1
        points = [
            (float(b * bucket_days), float(counts.get(b, 0)))
            for b in range(horizon_buckets)
        ]
        first_half = sum(y for x, y in points[: len(points) // 2])
        second_half = sum(y for x, y in points[len(points) // 2 :])
        return FigureSeries(
            figure="Fig 2",
            title="# of videos added over time",
            series={"videos_added": points},
            notes={
                "first_half_total": first_half,
                "second_half_total": second_half,
                "growth_ratio": (second_half / first_half) if first_half else float("inf"),
            },
        )

    # -- Fig 3: channel view frequency ---------------------------------------

    def fig3_channel_view_frequency_cdf(self) -> FigureSeries:
        """CDF of per-channel average video view frequency (views/day)."""
        freqs = [
            self.dataset.channel_view_frequency(c.channel_id)
            for c in self.dataset.iter_channels()
            if c.video_ids
        ]
        return FigureSeries(
            figure="Fig 3",
            title="View frequency of videos in different channels (CDF)",
            series={"cdf": cdf_points(freqs)},
            notes={
                "p20": percentile(freqs, 20),
                "p80": percentile(freqs, 80),
                "p99": percentile(freqs, 99),
            },
        )

    # -- Fig 4: subscribers per channel ---------------------------------------

    def fig4_channel_subscribers_cdf(self) -> FigureSeries:
        """CDF of the number of subscribers per channel."""
        subs = [float(c.num_subscribers) for c in self.dataset.iter_channels()]
        return FigureSeries(
            figure="Fig 4",
            title="# of subscribers to different channels (CDF)",
            series={"cdf": cdf_points(subs)},
            notes={
                "p25": percentile(subs, 25),
                "p75": percentile(subs, 75),
                "p99": percentile(subs, 99),
            },
        )

    # -- Fig 5: views vs subscriptions ----------------------------------------

    def fig5_views_vs_subscriptions(self) -> FigureSeries:
        """Scatter of channel total views against subscriber count.

        The paper reads a "strong, positive correlation" off the
        scatter; we also report the Pearson coefficient of the
        log-transformed pair (heavy tails make the linear coefficient
        meaningless).
        """
        points = []
        for channel in self.dataset.iter_channels():
            points.append(
                (
                    float(channel.num_subscribers),
                    float(self.dataset.channel_total_views(channel.channel_id)),
                )
            )
        points.sort()
        positive = [(x, y) for x, y in points if x > 0 and y > 0]
        import math

        corr = pearson_correlation(
            [math.log(x) for x, _ in positive],
            [math.log(y) for _, y in positive],
        ) if len(positive) >= 2 else 0.0
        return FigureSeries(
            figure="Fig 5",
            title="Channel views vs. subscriptions",
            series={"scatter": points},
            notes={"log_pearson": corr},
        )

    # -- Fig 6: videos per channel ----------------------------------------------

    def fig6_videos_per_channel_cdf(self) -> FigureSeries:
        """CDF of the number of videos in each channel."""
        sizes = [float(c.num_videos) for c in self.dataset.iter_channels()]
        return FigureSeries(
            figure="Fig 6",
            title="# of videos per channel (CDF)",
            series={"cdf": cdf_points(sizes)},
            notes={
                "p50": percentile(sizes, 50),
                "p75": percentile(sizes, 75),
                "p90": percentile(sizes, 90),
            },
        )

    # -- Fig 7: views per video ----------------------------------------------

    def fig7_video_views_cdf(self) -> FigureSeries:
        """CDF of per-video views."""
        views = [float(v.views) for v in self.dataset.iter_videos()]
        return FigureSeries(
            figure="Fig 7",
            title="# of views per video (CDF)",
            series={"cdf": cdf_points(views)},
            notes={
                "p50": percentile(views, 50),
                "p90": percentile(views, 90),
                "p99": percentile(views, 99),
            },
        )

    # -- Fig 8: favorites per video -------------------------------------------

    def fig8_favorites_cdf(self) -> FigureSeries:
        """CDF of per-video favorite counts + views/favorites correlation."""
        favorites = [float(v.favorites) for v in self.dataset.iter_videos()]
        views = [float(v.views) for v in self.dataset.iter_videos()]
        return FigureSeries(
            figure="Fig 8",
            title="# of times videos are marked as favorites (CDF)",
            series={"cdf": cdf_points(favorites)},
            notes={
                "p20": percentile(favorites, 20),
                "p75": percentile(favorites, 75),
                "p90": percentile(favorites, 90),
                "views_pearson": pearson_correlation(views, favorites),
            },
        )

    # -- Fig 9: within-channel popularity ---------------------------------------

    def fig9_within_channel_popularity(
        self, min_videos: int = 10
    ) -> FigureSeries:
        """Rank-views profiles of a high/medium/low popularity channel.

        Channels (with at least ``min_videos`` videos) are ranked by
        total views; the top, median and bottom ones are plotted, plus
        the ideal ``Zipf(s=1)`` curve scaled to the top channel --
        matching the figure's "High / Medium / Low / Zipf-high" series.
        """
        eligible = [
            c for c in self.dataset.iter_channels() if c.num_videos >= min_videos
        ]
        if not eligible:
            raise ValueError(f"no channel has >= {min_videos} videos")
        eligible.sort(
            key=lambda c: self.dataset.channel_total_views(c.channel_id),
            reverse=True,
        )
        picks = {
            "high": eligible[0],
            "medium": eligible[len(eligible) // 2],
            "low": eligible[-1],
        }
        series: Dict[str, List[Tuple[float, float]]] = {}
        notes: Dict[str, float] = {}
        for name, channel in picks.items():
            views = sorted(
                (self.dataset.video_views(v) for v in channel.video_ids),
                reverse=True,
            )
            pts = [(float(rank + 1), float(v)) for rank, v in enumerate(views)]
            series[name] = pts
            notes[f"{name}_zipf_slope"] = log_log_slope(
                [x for x, _ in pts], [y for _, y in pts]
            )
        top_views = series["high"][0][1]
        series["zipf_high"] = [
            (float(rank), top_views / rank)
            for rank in range(1, len(series["high"]) + 1)
        ]
        return FigureSeries(
            figure="Fig 9",
            title="Video popularity variation within channels",
            series=series,
            notes=notes,
        )

    # -- Fig 11: interests per channel ---------------------------------------

    def fig11_interests_per_channel_cdf(self) -> FigureSeries:
        """CDF of the number of video categories each channel contains."""
        counts = [float(c.num_interests) for c in self.dataset.iter_channels()]
        return FigureSeries(
            figure="Fig 11",
            title="# of interests in each channel (CDF)",
            series={"cdf": cdf_points(counts)},
            notes={
                "p50": percentile(counts, 50),
                "max": max(counts),
            },
        )

    # -- Fig 12: user interest similarity ----------------------------------------

    def user_interest_similarity(self, user_id: int) -> float:
        """``|C_u ∩ C_c| / |C_u|`` for one user (Section III-D).

        ``C_u``: categories of the user's favorite videos;
        ``C_c``: categories of the videos in the channels the user
        subscribed to.
        """
        user = self.dataset.users[user_id]
        if not user.interest_ids:
            raise ValueError(f"user {user_id} has no derived interests")
        subscribed_categories = set()
        for channel_id in user.subscribed_channel_ids:
            subscribed_categories.update(
                self.dataset.channels[channel_id].category_mix.keys()
            )
        overlap = user.interest_ids & subscribed_categories
        return len(overlap) / len(user.interest_ids)

    def fig12_interest_similarity_cdf(self) -> FigureSeries:
        """CDF of user-interest / subscribed-channel similarity."""
        sims = [
            self.user_interest_similarity(u.user_id)
            for u in self.dataset.iter_users()
            if u.interest_ids and u.subscribed_channel_ids
        ]
        if not sims:
            raise ValueError("no user has both interests and subscriptions")
        return FigureSeries(
            figure="Fig 12",
            title="Similarity between user interests and subscribed channels (CDF)",
            series={"cdf": cdf_points(sims)},
            notes={
                "p25": percentile(sims, 25),
                "p50": percentile(sims, 50),
                "p75": percentile(sims, 75),
            },
        )

    # -- Fig 13: interests per user -----------------------------------------------

    def fig13_interests_per_user_cdf(self) -> FigureSeries:
        """CDF of the number of personal interests per user."""
        counts = [float(u.num_interests) for u in self.dataset.iter_users()]
        return FigureSeries(
            figure="Fig 13",
            title="# of favorite video interests per user (CDF)",
            series={"cdf": cdf_points(counts)},
            notes={
                "frac_below_10": sum(1 for c in counts if c < 10) / len(counts),
                "max": max(counts),
            },
        )

    # -- observation checks -------------------------------------------------------

    def check_observations(self) -> Dict[str, bool]:
        """Boolean verdicts for O1-O5 on this dataset.

        These are the qualitative claims the protocol design rests on;
        tests assert that the synthetic trace exhibits all of them.
        """
        verdicts: Dict[str, bool] = {}
        fig2 = self.fig2_videos_added_over_time()
        verdicts["O1_growth"] = fig2.notes["growth_ratio"] > 1.5

        fig4 = self.fig4_channel_subscribers_cdf()
        verdicts["O2_channel_popularity_varies"] = (
            fig4.notes["p75"] >= 4 * max(fig4.notes["p25"], 1.0)
        )

        fig7 = self.fig7_video_views_cdf()
        verdicts["O3_video_popularity_varies"] = (
            fig7.notes["p99"] >= 10 * max(fig7.notes["p50"], 1.0)
        )

        fig11 = self.fig11_interests_per_channel_cdf()
        verdicts["O5_channels_focused"] = (
            fig11.notes["p50"] <= self.dataset.num_categories / 2
        )
        fig12 = self.fig12_interest_similarity_cdf()
        verdicts["O5_users_subscribe_in_interest"] = fig12.notes["p50"] >= 0.5
        return verdicts

    # -- convenience ---------------------------------------------------------------

    def all_figures(self) -> List[FigureSeries]:
        """Every Section III figure except Fig 10 (see clustering module)."""
        return [
            self.fig2_videos_added_over_time(),
            self.fig3_channel_view_frequency_cdf(),
            self.fig4_channel_subscribers_cdf(),
            self.fig5_views_vs_subscriptions(),
            self.fig6_videos_per_channel_cdf(),
            self.fig7_video_views_cdf(),
            self.fig8_favorites_cdf(),
            self.fig9_within_channel_popularity(),
            self.fig11_interests_per_channel_cdf(),
            self.fig12_interest_similarity_cdf(),
            self.fig13_interests_per_user_cdf(),
        ]
