"""``# shard:`` ownership annotations.

The community-partitioned PDES refactor (ROADMAP) needs to know, for
every piece of long-lived state, whether it is

``shard-local``
    owned by one run/shard; mutating it never races another shard
    (per-run collectors, schedulers, overlay tables built per run).
``shared-read``
    frozen after import: constants, lookup tables, singletons with no
    mutable behaviour.  Any mutation is a defect.
``shared-mutable``
    deliberately shared across runs or workers (content-hash-keyed
    caches, the protocol registry).  Mutations are legal only outside
    event-handler code; inside a handler they must go through the
    ``EventScheduler`` (or the future inter-shard mailbox).

Two annotation forms, both ordinary comments parsed from real COMMENT
tokens (prose in docstrings does not register):

* per-binding, on the assignment's first line::

      _REGISTRY: Dict[str, Entry] = {}  # shard: shared-mutable

* per-module, declaring the default ownership of a module's
  instance-level state (required in ``sim``/``overlay``/``net``/
  ``core``)::

      # shard: module=shard-local
"""

from __future__ import annotations

import io
import re
import tokenize
from typing import Dict, Iterator, List, Optional, Tuple

#: The ownership taxonomy (see module docstring).
SHARD_CLASSES = ("shard-local", "shared-read", "shared-mutable")

_SHARD_RE = re.compile(r"#\s*shard:\s*([A-Za-z0-9=\-]*)")

_MODULE_PREFIX = "module="


def _comment_tokens(source: str) -> Iterator[Tuple[int, str]]:
    """(line, text) for every comment token; bad syntax yields nothing."""
    try:
        for token in tokenize.generate_tokens(io.StringIO(source).readline):
            if token.type == tokenize.COMMENT:
                yield token.start[0], token.string
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return


class ShardIndex:
    """Per-file map of ``# shard:`` ownership annotations."""

    def __init__(
        self,
        by_line: Dict[int, str],
        module_class: Optional[str],
        malformed: List[int],
    ):
        #: 1-based line -> ownership class for per-binding annotations.
        self.by_line = by_line
        #: The ``module=<class>`` declaration, if any.
        self.module_class = module_class
        #: 1-based lines whose ``# shard:`` marker names no valid class.
        self.malformed_lines = malformed

    @classmethod
    def from_source(cls, source: str) -> "ShardIndex":
        """Parse every ``# shard:`` comment in one module's source."""
        by_line: Dict[int, str] = {}
        module_class: Optional[str] = None
        malformed: List[int] = []
        for lineno, text in _comment_tokens(source):
            match = _SHARD_RE.search(text)
            if match is None:
                continue
            value = match.group(1).strip()
            if value.startswith(_MODULE_PREFIX):
                declared = value[len(_MODULE_PREFIX):]
                if declared in SHARD_CLASSES and module_class is None:
                    module_class = declared
                else:
                    malformed.append(lineno)
            elif value in SHARD_CLASSES:
                by_line[lineno] = value
            else:
                malformed.append(lineno)
        return cls(by_line, module_class, malformed)

    def classification(self, line: int) -> Optional[str]:
        """The ownership class annotated on ``line``, if any."""
        return self.by_line.get(line)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ShardIndex(module={self.module_class!r}, "
            f"lines={sorted(self.by_line)})"
        )
