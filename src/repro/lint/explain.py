"""Long-form rule explanations for ``python -m repro lint --explain``.

Each entry expands the one-line description in
:data:`repro.lint.ast_rules.RULE_DESCRIPTIONS` with *why the rule
exists in this codebase* and what the sanctioned alternative is.  The
full reference with flagged/clean examples lives in ``docs/lint.md``;
``tools/check_docs.py`` checks that every id here has a section there.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.lint.ast_rules import RULE_DESCRIPTIONS, RULE_SEVERITIES

_EXPLANATIONS: Dict[str, str] = {
    "global-random": """\
Draws from `random.*` / `numpy.random.*` use hidden module-global state
that any import or test can perturb, destroying the single-seed
repeatability claim.  Route every draw through a named substream from
`repro.sim.rng.RngStreams` (or an injected `random.Random`).
`sim/rng.py` itself is exempt -- it is the sanctioned wrapper.""",
    "wall-clock": """\
`time.time()`, `datetime.now()` and friends make results depend on the
machine clock.  All simulated time comes from `EventScheduler.now`.
The one sanctioned wall-clock namespace is `repro.obs.perf` -- the
hash-neutral sidecar telemetry layer (mirroring how `sim/rng.py` owns
the `random` module); every other module obtains wall time through a
perf object, and benchmarks measure wall time through their own
harness, outside src/repro.""",
    "set-iteration": """\
Iterating a set/frozenset (or passing one to `list`, `enumerate`,
`rng.choice`...) observes hash order, which varies across processes and
interpreter versions.  Wrap the set in `sorted(...)` at the point of
iteration.""",
    "unsorted-accumulation": """\
The flow-sensitive big sibling of set-iteration: a *local variable*
bound to a set-typed value (literal, `set(...)` call, union of sets)
and later iterated into an order-sensitive accumulation -- a float
`+=` or a `list.append` -- leaks hash order into float sums and result
lists even though the loop header itself looks innocent.  Iterate
`sorted(the_set)` instead.  This is exactly the defect class fixed in
`metrics/collectors.py::node_peer_bandwidth` (fractions were averaged
in set order).""",
    "unsorted-serialization": """\
`json.dumps`/`json.dump` without `sort_keys=True` serializes dict keys
in insertion order, so two code paths building the same logical payload
can emit different bytes -- which breaks byte-equality gates and
content-hash caching.  Every canonical artifact in the tree (traces,
time-series tables, reports, this linter's own JSON) must pass
`sort_keys=True`.  Scratch files and tests are exempt.""",
    "mutable-default-arg": """\
A mutable default (`def f(xs=[])`) is evaluated once and shared by
every call -- state leaks across calls, and after the PDES sharding
refactor, across shard contexts.  Default to `None` and construct the
container inside the body.""",
    "rng-unowned-generator": """\
`random.Random(seed)` constructed ad hoc bypasses the named-substream
discipline of `RngStreams`: its draw sequence is invisible to the
substream registry, cannot be forked deterministically per entity, and
silently couples with nothing or everything.  Derive generators with
`streams.stream("phase.name")` / `streams.fork(...)` instead.""",
    "rng-substream-aliasing": """\
Two different functions requesting the *same* substream name share one
generator: adding a draw in one phase shifts every later draw of the
other, so a refactor of phase A perturbs phase B's results.  One
substream name, one owning call site; derive distinct names per phase
(the dotted convention: `workload.arrivals`, `overlay.probe`...).""",
    "rng-foreign-substream": """\
Namespace ownership for substreams: the `faults.*` prefix belongs to
`repro.faults` alone, so fault-free runs can hash identically with the
injector disabled (PR 5's guarantee), and observability code must not
own substreams at all -- tracing must never consume entropy.""",
    "rng-obs-hook-draw": """\
A draw lexically inside an `if ...tracer:` block or a `with
...span(...):` body fires only when tracing is enabled, so traced and
untraced runs diverge -- the obs layer's zero-perturbation guarantee
breaks.  Hoist the draw above the hook and pass its result in.""",
    "shard-missing-annotation": """\
The community-partitioned PDES refactor needs every piece of module
state classified before work can be sharded.  Module-level bindings in
sim/overlay/net/core/workload/experiments/faults/metrics must carry a
`# shard:` comment on the assignment line: `shard-local` (one run owns
it), `shared-read` (frozen after import), or `shared-mutable`
(cross-run caches; see shard-event-mutation).  Type aliases and
`__all__` are exempt.""",
    "shard-missing-module-decl": """\
The four PDES-critical packages (sim, overlay, net, core) also declare
the default ownership of their *instance* state with a module-level
`# shard: module=<class>` comment, normally `module=shard-local`:
objects these modules create live and die inside one run/shard.""",
    "bad-shard-annotation": """\
A `# shard:` marker that names no valid ownership class is probably a
typo that silently opts state out of the analysis; valid forms are
`shard-local`, `shared-read`, `shared-mutable`, and
`module=<class>`.""",
    "shard-class-mutable-default": """\
A mutable class-level attribute (`class C: cache = {}`) is one object
shared by every instance -- across runs in one process and across
shards after the PDES refactor.  Use an immutable value
(tuple/frozenset) or initialize per instance in `__init__`.  Also
fires when a binding declared `shared-read` holds a mutable value:
frozen-by-convention is not frozen.""",
    "shard-shared-read-mutated": """\
State declared `# shard: shared-read` is frozen after import; any
function-scope mutation (rebinding via `global`, item store, `.append`
and friends) is a defect no matter which module does it.  Either the
mutation is a bug, or the state is really `shared-mutable` and must be
re-classified and routed properly.""",
    "shard-event-mutation": """\
`shared-mutable` state (cross-run caches, registries) may be mutated
only *outside* event-handler code.  This program-level rule walks the
call graph from every callback passed to `EventScheduler.schedule(...)`
and flags mutations reachable from one: after sharding, that write
races other shards' event loops.  Route it through the scheduler (or
the future inter-shard mailbox), or move it to setup/teardown code.""",
    "shard-local-foreign-mutation": """\
State declared `shard-local` is owned by one run/shard; a mutation
from a *different module* is either a mis-classification or a genuine
cross-shard write that the PDES refactor will turn into a race.""",
    "unused-import": """\
Dead imports hide real dependencies, slow import time, and rot
silently.  Names exported via `__all__` and quoted annotations count
as uses.""",
    "dead-name": """\
A local assigned a side-effect-free value and never read is dead code,
usually a refactor leftover.  Prefix with `_` if the binding is
intentional documentation.""",
    "broad-except": """\
`except Exception:` inside event callbacks swallows simulation bugs and
lets runs diverge silently.  Catch the specific exception, or observe
and re-raise (a bare `raise` at the handler's top level is allowed).""",
    "float-time-eq": """\
`==`/`!=` between floats derived from simulated time is brittle under
accumulation order.  Compare with a tolerance or restructure around
event ordering (`<=`/`>=`).""",
    "direct-protocol-instantiation": """\
`*Protocol` classes constructed outside `repro.experiments.registry`
bypass the typed parameter defaults and the one sanctioned
construction site.  Tests and benchmarks are exempt.""",
    "missing-public-docstring": """\
Public classes/functions in the documented API surface (`repro.obs`,
the experiment spec and registry) must carry docstrings; the docs site
is generated from them.""",
    "syntax-error": """\
The file does not parse, so no other rule can run over it.  Reported
as a finding (not a crash) so one broken file cannot hide the rest of
the tree's findings.""",
    "io-error": """\
The file could not be read.  Reported as a finding so a permissions
problem fails the gate visibly instead of silently shrinking
coverage.""",
    "bad-suppression": """\
A `# lint: disable=` comment that names no rules suppresses nothing
and usually means a typo'd rule id; list rule ids or `all`.""",
}


def explain_rule(rule_id: str) -> Optional[str]:
    """The full ``--explain`` text for one rule id, or None if unknown."""
    if rule_id not in RULE_DESCRIPTIONS:
        return None
    severity = RULE_SEVERITIES.get(rule_id, "medium")
    header = f"{rule_id} [{severity}]: {RULE_DESCRIPTIONS[rule_id]}"
    body = _EXPLANATIONS.get(rule_id, "")
    lines = [header]
    if body:
        lines.append("")
        lines.append(body)
    lines.append("")
    lines.append(f"Suppress one line with: # lint: disable={rule_id}")
    lines.append("See docs/lint.md for flagged/clean examples.")
    return "\n".join(lines)


def explained_rule_ids() -> List[str]:
    """Sorted ids that have long-form explanations (tests pin coverage)."""
    return sorted(_EXPLANATIONS)
