"""Shared infrastructure for lint rules: the rule base class, severity
levels, and small AST helpers used by both the single-pass rules
(:mod:`repro.lint.ast_rules`) and the flow/program passes
(:mod:`repro.lint.dataflow`).

Severities order findings for the baseline gate: ``high`` findings fail
CI even when older ``medium``/``low`` findings are still being burned
down through ``tools/lint_baseline.json``.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator, List, Optional

from repro.lint.findings import Finding, RuleContext

#: Severity levels, most severe first (the report orders rollups this way).
SEVERITY_LEVELS = ("high", "medium", "low")

#: Default severity when a rule does not declare one.
DEFAULT_SEVERITY = "medium"


def severity_rank(severity: str) -> int:
    """0 for ``high``, 1 for ``medium``, 2 for ``low`` (unknown sorts last)."""
    try:
        return SEVERITY_LEVELS.index(severity)
    except ValueError:
        return len(SEVERITY_LEVELS)


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def walk_skipping_nested_functions(node: ast.AST) -> Iterator[ast.AST]:
    """Yield ``node``'s subtree but stop at nested function boundaries."""
    stack = list(ast.iter_child_nodes(node))
    while stack:
        child = stack.pop()
        yield child
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        stack.extend(ast.iter_child_nodes(child))


def is_set_expression(node: ast.AST) -> bool:
    """Syntactically set-typed: a set literal/comprehension or ``set(...)``."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("set", "frozenset")
    return False


class Rule:
    """Base class: one rule id, one ``check`` pass over a module tree."""

    rule_id: str = ""
    description: str = ""
    severity: str = DEFAULT_SEVERITY

    def check(self, tree: ast.Module, ctx: RuleContext) -> List[Finding]:
        raise NotImplementedError

    def finding(
        self, ctx: RuleContext, node: ast.AST, message: str
    ) -> Finding:
        return Finding(
            path=ctx.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            rule=self.rule_id,
            message=message,
            severity=self.severity,
        )


def iter_function_defs(tree: ast.Module) -> Iterable[ast.AST]:
    """Every function/method definition node in a module tree."""
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node
