"""Whole-program index over a Python package tree.

:func:`build_program` walks a package root (normally ``src/repro``),
parses every module once, and assembles the project-wide facts the
flow-sensitive rules in :mod:`repro.lint.dataflow` consume:

* a **symbol table** per module -- module-level bindings (with their
  ``# shard:`` ownership annotations), classes with their methods, and
  top-level functions;
* the **import graph** -- which in-tree modules each module imports,
  both ``import a.b`` aliases and ``from a.b import name`` bindings;
* an approximate **call graph** keyed by function qualnames
  (``repro.experiments.runner:ExperimentRunner._finish_video``),
  resolving local calls, ``self.method`` calls, and calls through
  imported modules/names;
* the **event-handler set**: every callable passed to an
  ``EventScheduler.schedule(...)``-shaped call, plus everything
  reachable from one through the call graph -- the code that will run
  inside a shard's event loop after the PDES refactor;
* every **RNG substream site**: ``streams.stream("name")`` /
  ``streams.fork("name")`` calls with a literal name, attributed to
  their enclosing function.

Everything is built with sorted walks and sorted containers so two
builds over the same tree are identical -- the JSON report's
byte-determinism rests on this.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.lint.annotations import ShardIndex

#: Value shapes that can never be mutated through the binding.
_IMMUTABLE_CALLS = frozenset(
    ("frozenset", "tuple", "int", "float", "str", "bytes", "bool")
)

#: typing constructs whose subscription builds a type alias, not state.
_TYPING_HEADS = frozenset(
    (
        "Union",
        "Optional",
        "Callable",
        "Tuple",
        "Dict",
        "List",
        "Set",
        "FrozenSet",
        "Sequence",
        "Mapping",
        "Iterable",
        "Iterator",
        "Type",
        "Literal",
        "Annotated",
    )
)


def value_kind(node: Optional[ast.AST]) -> str:
    """Coarse classification of a bound value's mutability.

    Returns ``"immutable"``, ``"mutable"``, ``"type-alias"`` or
    ``"opaque"`` (calls and names whose result type is unknown).
    """
    if node is None:
        return "opaque"
    if isinstance(node, ast.Constant):
        return "immutable"
    if isinstance(node, (ast.Tuple,)):
        if all(value_kind(e) == "immutable" for e in node.elts):
            return "immutable"
        return "mutable"
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)):
        return "mutable"
    if isinstance(node, ast.UnaryOp):
        return value_kind(node.operand)
    if isinstance(node, ast.BinOp):
        left = value_kind(node.left)
        right = value_kind(node.right)
        if left == "immutable" and right == "immutable":
            return "immutable"
        return "opaque"
    if isinstance(node, ast.Subscript):
        head = node.value
        name = head.attr if isinstance(head, ast.Attribute) else (
            head.id if isinstance(head, ast.Name) else None
        )
        if name in _TYPING_HEADS:
            return "type-alias"
        return "opaque"
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Name):
            if func.id in _IMMUTABLE_CALLS:
                return "immutable"
            if func.id in ("list", "dict", "set", "bytearray", "defaultdict", "deque", "Counter", "OrderedDict"):
                return "mutable"
        if isinstance(func, ast.Attribute) and func.attr == "compile":
            # re.compile patterns are immutable and thread-safe.
            return "immutable"
        return "opaque"
    return "opaque"


@dataclass
class GlobalBinding:
    """One module-level (or class-level) name binding."""

    name: str
    lineno: int
    col: int
    kind: str  # value_kind() result
    shard_class: Optional[str] = None
    is_class_attr: bool = False
    owner_class: Optional[str] = None


@dataclass
class StreamSite:
    """One ``streams.stream("name")`` / ``.fork("name")`` call site."""

    name: str  # the literal substream name
    module: str
    qualname: str  # enclosing function qualname, or "<module>"
    lineno: int
    col: int
    method: str  # "stream" | "fork"


@dataclass
class FunctionInfo:
    """One function or method definition."""

    qualname: str  # "module:func" or "module:Class.method"
    name: str
    lineno: int
    class_name: Optional[str] = None
    #: Resolved callee qualnames (in-tree only, best effort).
    calls: List[str] = field(default_factory=list)
    #: Callback qualnames this function passes to a ``.schedule(...)``.
    schedules: List[str] = field(default_factory=list)


@dataclass
class ClassInfo:
    """One class definition with its methods and attribute origins."""

    name: str
    qualname: str  # "module:Class"
    lineno: int
    methods: Dict[str, FunctionInfo] = field(default_factory=dict)
    #: Class-level attribute bindings (shared across instances).
    class_attrs: Dict[str, GlobalBinding] = field(default_factory=dict)
    #: ``self.X = <origin>`` assignments: attr -> origin tag
    #: ("rng-stream", "rng-fork", "raw-random", "opaque").
    attr_origins: Dict[str, str] = field(default_factory=dict)


@dataclass
class ModuleInfo:
    """Everything the program pass knows about one module."""

    name: str  # dotted ("repro.sim.engine")
    path: str
    source: str
    tree: ast.Module
    #: import alias -> dotted module ("sched" -> "repro.sim.engine").
    import_aliases: Dict[str, str] = field(default_factory=dict)
    #: from-import binding -> (source module, original name).
    from_imports: Dict[str, Tuple[str, str]] = field(default_factory=dict)
    module_globals: Dict[str, GlobalBinding] = field(default_factory=dict)
    functions: Dict[str, FunctionInfo] = field(default_factory=dict)
    classes: Dict[str, ClassInfo] = field(default_factory=dict)
    shard_index: ShardIndex = field(
        default_factory=lambda: ShardIndex({}, None, [])
    )
    stream_sites: List[StreamSite] = field(default_factory=list)


class ProgramIndex:
    """The assembled whole-program view (see module docstring)."""

    def __init__(self, root: str, modules: Dict[str, ModuleInfo]):
        self.root = root
        self.modules = modules
        self._by_path = {info.path: info for info in modules.values()}
        #: caller qualname -> sorted unique callee qualnames.
        self.call_graph: Dict[str, Tuple[str, ...]] = {}
        #: Qualnames registered as scheduler callbacks.
        self.event_roots: Tuple[str, ...] = ()
        #: Event roots plus everything they transitively call.
        self.event_reachable: frozenset = frozenset()
        self._finalize()

    # -- assembly ---------------------------------------------------------

    def _finalize(self) -> None:
        graph: Dict[str, Set[str]] = {}
        roots: Set[str] = set()
        for module_name in sorted(self.modules):
            info = self.modules[module_name]
            for func in self._all_functions(info):
                graph[func.qualname] = set(func.calls)
                roots.update(func.schedules)
        self.call_graph = {
            qualname: tuple(sorted(callees))
            for qualname, callees in sorted(graph.items())
        }
        self.event_roots = tuple(sorted(roots))
        reachable: Set[str] = set()
        frontier = [r for r in self.event_roots if r in graph]
        reachable.update(self.event_roots)
        while frontier:
            current = frontier.pop()
            for callee in graph.get(current, ()):
                if callee not in reachable:
                    reachable.add(callee)
                    frontier.append(callee)
        self.event_reachable = frozenset(reachable)

    @staticmethod
    def _all_functions(info: ModuleInfo) -> List[FunctionInfo]:
        funcs = [info.functions[n] for n in sorted(info.functions)]
        for cls_name in sorted(info.classes):
            cls = info.classes[cls_name]
            funcs.extend(cls.methods[m] for m in sorted(cls.methods))
        return funcs

    # -- queries ----------------------------------------------------------

    def module_for_path(self, path: str) -> Optional[ModuleInfo]:
        """The module parsed from ``path``, if it is part of the index."""
        return self._by_path.get(os.path.abspath(path))

    def import_graph(self) -> Dict[str, Tuple[str, ...]]:
        """module -> sorted in-tree modules it imports."""
        graph: Dict[str, Tuple[str, ...]] = {}
        for name in sorted(self.modules):
            info = self.modules[name]
            targets: Set[str] = set()
            for target in info.import_aliases.values():
                if target in self.modules:
                    targets.add(target)
            for source_mod, _orig in info.from_imports.values():
                if source_mod in self.modules:
                    targets.add(source_mod)
            graph[name] = tuple(sorted(targets))
        return graph

    def all_stream_sites(self) -> List[StreamSite]:
        """Every substream call site, in deterministic order."""
        sites: List[StreamSite] = []
        for name in sorted(self.modules):
            sites.extend(self.modules[name].stream_sites)
        return sites

    def stats(self) -> Dict[str, int]:
        """Size counters for the JSON report's ``program`` section."""
        call_edges = sum(len(v) for v in self.call_graph.values())
        import_edges = sum(len(v) for v in self.import_graph().values())
        return {
            "modules": len(self.modules),
            "functions": len(self.call_graph),
            "call_edges": call_edges,
            "import_edges": import_edges,
            "event_roots": len(self.event_roots),
            "event_reachable": len(self.event_reachable),
            "stream_sites": len(self.all_stream_sites()),
        }


# ---------------------------------------------------------------------------
# construction


def _module_name(root: str, path: str) -> str:
    """Dotted module name of ``path`` relative to the package root.

    ``root`` is the package directory itself (``.../src/repro``), so
    names are rooted at its basename: ``repro.sim.engine``.
    """
    rel = os.path.relpath(path, root).replace(os.sep, "/")
    parts = [os.path.basename(root)] + [p for p in rel.split("/") if p]
    last = parts[-1]
    if last.endswith(".py"):
        parts[-1] = last[: -len(".py")]
    if parts[-1] == "__init__":
        parts.pop()
    return ".".join(parts)


class _ModuleVisitor:
    """Single pass over one module tree filling a :class:`ModuleInfo`."""

    #: Draw-producing value origins for ``self.X = ...`` assignments.
    _ORIGIN_TAGS = {
        "stream": "rng-stream",
        "fork": "rng-fork",
    }

    def __init__(self, info: ModuleInfo):
        self.info = info

    def visit(self) -> None:
        for node in self.info.tree.body:
            self._visit_top(node)

    # -- top level --------------------------------------------------------

    def _visit_top(self, node: ast.stmt) -> None:
        info = self.info
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname:
                    info.import_aliases[alias.asname] = alias.name
                else:
                    # `import a.b.c` binds only `a`; dotted resolution
                    # through the chain is out of scope for the
                    # approximate call graph.
                    top = alias.name.split(".")[0]
                    info.import_aliases[top] = top
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for alias in node.names:
                if alias.name == "*":
                    continue
                info.from_imports[alias.asname or alias.name] = (
                    node.module,
                    alias.name,
                )
        elif isinstance(node, (ast.Assign, ast.AnnAssign)):
            self._record_binding(node, class_info=None)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            func = FunctionInfo(
                qualname=f"{info.name}:{node.name}",
                name=node.name,
                lineno=node.lineno,
            )
            info.functions[node.name] = func
            self._scan_body(node, func, class_name=None)
        elif isinstance(node, ast.ClassDef):
            cls = ClassInfo(
                name=node.name,
                qualname=f"{info.name}:{node.name}",
                lineno=node.lineno,
            )
            info.classes[node.name] = cls
            for stmt in node.body:
                if isinstance(stmt, (ast.Assign, ast.AnnAssign)):
                    self._record_binding(stmt, class_info=cls)
                elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    method = FunctionInfo(
                        qualname=f"{info.name}:{node.name}.{stmt.name}",
                        name=stmt.name,
                        lineno=stmt.lineno,
                        class_name=node.name,
                    )
                    cls.methods[stmt.name] = method
                    self._scan_body(stmt, method, class_name=node.name)
        elif isinstance(node, (ast.If, ast.Try)):
            # TYPE_CHECKING guards and optional-dependency imports.
            for child in ast.iter_child_nodes(node):
                if isinstance(child, ast.stmt):
                    self._visit_top(child)

    def _record_binding(
        self, node: ast.stmt, class_info: Optional[ClassInfo]
    ) -> None:
        if isinstance(node, ast.Assign):
            targets = [t for t in node.targets if isinstance(t, ast.Name)]
            value: Optional[ast.AST] = node.value
        elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            targets = [node.target]
            value = node.value
        else:
            return
        for target in targets:
            if target.id == "__all__":
                continue
            binding = GlobalBinding(
                name=target.id,
                lineno=node.lineno,
                col=node.col_offset,
                kind=value_kind(value),
                shard_class=self.info.shard_index.classification(node.lineno),
                is_class_attr=class_info is not None,
                owner_class=class_info.name if class_info else None,
            )
            if class_info is not None:
                class_info.class_attrs[target.id] = binding
            else:
                self.info.module_globals[target.id] = binding

    # -- function bodies --------------------------------------------------

    def _scan_body(
        self,
        node: ast.AST,
        func: FunctionInfo,
        class_name: Optional[str],
    ) -> None:
        info = self.info
        for child in ast.walk(node):
            if isinstance(child, ast.Call):
                self._record_call(child, func, class_name)
            if (
                class_name is not None
                and isinstance(child, ast.Assign)
                and len(child.targets) == 1
                and isinstance(child.targets[0], ast.Attribute)
            ):
                attr_node = child.targets[0]
                if (
                    isinstance(attr_node.value, ast.Name)
                    and attr_node.value.id == "self"
                ):
                    origin = self._value_origin(child.value)
                    cls = info.classes[class_name]
                    cls.attr_origins.setdefault(attr_node.attr, origin)

    def _value_origin(self, value: ast.AST) -> str:
        if isinstance(value, ast.Call) and isinstance(value.func, ast.Attribute):
            tag = self._ORIGIN_TAGS.get(value.func.attr)
            if tag is not None:
                return tag
        if isinstance(value, ast.Call):
            from repro.lint.base import dotted_name

            dotted = dotted_name(value.func)
            if dotted in ("random.Random", "Random"):
                return "raw-random"
        return "opaque"

    def _record_call(
        self, node: ast.Call, func: FunctionInfo, class_name: Optional[str]
    ) -> None:
        info = self.info
        target = self._resolve_callable(node.func, class_name)
        if target is not None:
            func.calls.append(target)
        # Scheduler callback registration: schedule(delay, fn, *args).
        callee_attr = (
            node.func.attr
            if isinstance(node.func, ast.Attribute)
            else (node.func.id if isinstance(node.func, ast.Name) else None)
        )
        if callee_attr == "schedule" and len(node.args) >= 2:
            callback = self._resolve_callable(node.args[1], class_name)
            if callback is not None:
                func.schedules.append(callback)
        # RNG substream sites with a literal name.
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in ("stream", "fork")
            and node.args
            and isinstance(node.args[0], ast.Constant)
            and isinstance(node.args[0].value, str)
        ):
            info.stream_sites.append(
                StreamSite(
                    name=node.args[0].value,
                    module=info.name,
                    qualname=func.qualname,
                    lineno=node.lineno,
                    col=node.col_offset,
                    method=node.func.attr,
                )
            )

    def _resolve_callable(
        self, node: ast.AST, class_name: Optional[str]
    ) -> Optional[str]:
        """Best-effort qualname of a callable expression (in-tree only)."""
        info = self.info
        if isinstance(node, ast.Name):
            name = node.id
            if name in info.functions:
                return f"{info.name}:{name}"
            if name in info.from_imports:
                source_mod, orig = info.from_imports[name]
                return f"{source_mod}:{orig}"
            if class_name is not None:
                methods = info.classes[class_name].methods
                if name in methods:
                    return f"{info.name}:{class_name}.{name}"
            return None
        if isinstance(node, ast.Attribute):
            if isinstance(node.value, ast.Name):
                root = node.value.id
                if root == "self" and class_name is not None:
                    return f"{info.name}:{class_name}.{node.attr}"
                if root in info.import_aliases:
                    return f"{info.import_aliases[root]}:{node.attr}"
                if root in info.from_imports:
                    source_mod, orig = info.from_imports[root]
                    return f"{source_mod}.{orig}:{node.attr}"
        return None


def iter_module_paths(root: str) -> List[str]:
    """Sorted absolute paths of every ``.py`` file under ``root``."""
    paths: List[str] = []
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames.sort()
        dirnames[:] = [d for d in dirnames if d != "__pycache__"]
        paths.extend(
            os.path.abspath(os.path.join(dirpath, name))
            for name in sorted(filenames)
            if name.endswith(".py")
        )
    return sorted(set(paths))


def build_module(root: str, path: str, source: str) -> ModuleInfo:
    """Parse one module and fill its :class:`ModuleInfo`.

    Raises ``SyntaxError`` when the file does not parse; the runner
    converts that into a ``syntax-error`` finding.
    """
    tree = ast.parse(source, filename=path)
    info = ModuleInfo(
        name=_module_name(root, path),
        path=os.path.abspath(path),
        source=source,
        tree=tree,
        shard_index=ShardIndex.from_source(source),
    )
    _ModuleVisitor(info).visit()
    return info


def build_program(root: str) -> ProgramIndex:
    """Index every parseable module under ``root``.

    Unreadable or syntactically invalid files are skipped here -- the
    runner reports them per file -- so the program passes always see a
    consistent (if partial) view.
    """
    modules: Dict[str, ModuleInfo] = {}
    for path in iter_module_paths(root):
        try:
            with open(path, "r", encoding="utf-8") as handle:
                source = handle.read()
            info = build_module(root, path, source)
        except (OSError, SyntaxError):
            continue
        modules[info.name] = info
    return ProgramIndex(root=os.path.abspath(root), modules=modules)
