"""Checked-in lint baseline.

``tools/lint_baseline.json`` records the fingerprints of known,
to-be-burned-down findings.  A baselined finding does not fail the lint
gate; anything *new* does.  Entries whose fingerprint no longer matches
any current finding are reported as stale so the baseline shrinks
monotonically instead of rotting.

Schema (version 1)::

    {
      "schema": 1,
      "fingerprints": {
        "<16-hex>": {"path": ..., "rule": ..., "line": ..., "message": ...}
      }
    }

The location fields are informational (for humans diffing the file);
suppression matches on the fingerprint alone.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.lint.findings import Finding

#: Repo-relative location of the baseline, discovered by walking up
#: from the lint root.
BASELINE_RELPATH = os.path.join("tools", "lint_baseline.json")

_SCHEMA = 1


@dataclass
class Baseline:
    """Fingerprint set loaded from ``tools/lint_baseline.json``."""

    path: Optional[str] = None
    entries: Dict[str, Dict[str, object]] = field(default_factory=dict)

    @property
    def fingerprints(self) -> frozenset:
        return frozenset(self.entries)

    def split(
        self, findings: List[Finding]
    ) -> Tuple[List[Finding], List[Finding], List[str]]:
        """(new, suppressed, stale fingerprints) for a finding list."""
        new: List[Finding] = []
        suppressed: List[Finding] = []
        seen = set()
        for finding in findings:
            if finding.fingerprint in self.entries:
                suppressed.append(finding)
                seen.add(finding.fingerprint)
            else:
                new.append(finding)
        stale = sorted(fp for fp in self.entries if fp not in seen)
        return new, suppressed, stale


def discover_baseline_path(lint_root: str) -> Optional[str]:
    """Walk up from the lint root looking for ``tools/lint_baseline.json``."""
    current = os.path.abspath(lint_root)
    while True:
        candidate = os.path.join(current, BASELINE_RELPATH)
        if os.path.isfile(candidate):
            return candidate
        parent = os.path.dirname(current)
        if parent == current:
            return None
        current = parent


def load_baseline(path: Optional[str]) -> Baseline:
    """Load a baseline file; a missing path yields an empty baseline."""
    if path is None or not os.path.isfile(path):
        return Baseline(path=path)
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    if not isinstance(payload, dict) or payload.get("schema") != _SCHEMA:
        raise ValueError(
            f"unsupported lint baseline schema in {path!r}; expected "
            f'{{"schema": {_SCHEMA}, ...}}'
        )
    entries = payload.get("fingerprints", {})
    if not isinstance(entries, dict):
        raise ValueError(f"malformed 'fingerprints' table in {path!r}")
    return Baseline(path=path, entries=dict(entries))


def write_baseline(path: str, findings: List[Finding]) -> None:
    """Serialize the current finding set as the new baseline (sorted,
    byte-deterministic)."""
    entries: Dict[str, Dict[str, object]] = {}
    for finding in sorted(findings):
        entries[finding.fingerprint] = {
            "path": finding.path,
            "rule": finding.rule,
            "line": finding.line,
            "message": finding.message,
        }
    payload = {"schema": _SCHEMA, "fingerprints": entries}
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
