"""Stable finding fingerprints.

A fingerprint identifies a finding across line drift: it hashes the
*relative* path, the rule id, the message text, and an occurrence index
among findings with the same (path, rule, message) triple -- but not the
line/column.  Editing unrelated code above a finding therefore does not
invalidate a baseline entry, while a second identical defect in the same
file gets its own id.
"""

from __future__ import annotations

import hashlib
import os
from dataclasses import replace
from typing import Dict, List, Tuple

from repro.lint.findings import Finding


def relative_path(path: str, root: str) -> str:
    """``path`` relative to ``root`` with forward slashes (falls back to
    the basename when the path is outside the root)."""
    try:
        rel = os.path.relpath(path, root)
    except ValueError:  # pragma: no cover - windows drive mismatch
        rel = os.path.basename(path)
    if rel.startswith(".."):
        rel = os.path.basename(path)
    return rel.replace(os.sep, "/")


def compute_fingerprint(relpath: str, rule: str, message: str, index: int) -> str:
    """16-hex-char sha256 over the identity tuple."""
    payload = "\x00".join((relpath, rule, message, str(index)))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


def assign_fingerprints(findings: List[Finding], root: str) -> List[Finding]:
    """Return findings (sorted) with fingerprints filled in.

    Findings are sorted first so the occurrence index among identical
    (path, rule, message) triples is deterministic.
    """
    ordered = sorted(findings)
    seen: Dict[Tuple[str, str, str], int] = {}
    out: List[Finding] = []
    for finding in ordered:
        relpath = relative_path(finding.path, root)
        key = (relpath, finding.rule, finding.message)
        index = seen.get(key, 0)
        seen[key] = index + 1
        out.append(
            replace(
                finding,
                fingerprint=compute_fingerprint(
                    relpath, finding.rule, finding.message, index
                ),
            )
        )
    return out
