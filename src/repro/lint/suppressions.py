"""Per-line lint suppression: ``# lint: disable=<rule>[,<rule>...]``.

A suppression comment silences the named rules *on its own line only*
(matching how the findings carry line numbers); ``disable=all`` silences
every rule on the line.  Unknown rule ids in a comment are tolerated --
they may belong to a rule added later -- but an empty ``disable=`` list
is itself reported by the runner as a ``bad-suppression`` finding so
typos do not silently disable nothing.
"""

from __future__ import annotations

import io
import re
import tokenize
from typing import Dict, FrozenSet, Iterator, List, Tuple

#: Matches the suppression marker inside a comment token.  Only real
#: COMMENT tokens are scanned (via ``tokenize``), so prose *describing*
#: the syntax inside a docstring does not register as a suppression.
_SUPPRESS_RE = re.compile(r"#\s*lint:\s*disable=([A-Za-z0-9_,\-\s]*)")

#: The wildcard that silences every rule on the line.
ALL_RULES = "all"


def _comment_tokens(source: str) -> Iterator[Tuple[int, str]]:
    """(line, text) for every comment token; bad syntax yields nothing
    (the runner reports unparseable files separately)."""
    try:
        for token in tokenize.generate_tokens(io.StringIO(source).readline):
            if token.type == tokenize.COMMENT:
                yield token.start[0], token.string
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return


class SuppressionIndex:
    """Per-line map of suppressed rule ids for one source file."""

    def __init__(self, by_line: Dict[int, FrozenSet[str]], malformed: List[int]):
        self._by_line = by_line
        #: 1-based lines whose ``disable=`` list parsed to nothing.
        self.malformed_lines = malformed

    @classmethod
    def from_source(cls, source: str) -> "SuppressionIndex":
        by_line: Dict[int, FrozenSet[str]] = {}
        malformed: List[int] = []
        for lineno, text in _comment_tokens(source):
            match = _SUPPRESS_RE.search(text)
            if match is None:
                continue
            rules = frozenset(
                token.strip() for token in match.group(1).split(",") if token.strip()
            )
            if not rules:
                malformed.append(lineno)
                continue
            by_line[lineno] = rules
        return cls(by_line, malformed)

    def is_suppressed(self, line: int, rule: str) -> bool:
        rules = self._by_line.get(line)
        if rules is None:
            return False
        return rule in rules or ALL_RULES in rules

    def suppressed_lines(self) -> List[Tuple[int, FrozenSet[str]]]:
        """(line, rules) pairs, for diagnostics."""
        return sorted(self._by_line.items())
