"""Determinism and shard-safety static analysis (plus runtime overlay
invariants).

Three analysis layers keep the reproduction's repeatability claim
honest:

* :mod:`repro.lint.ast_rules` -- single-pass AST rules (wall-clock
  reads, unused imports, dead names, broad excepts, float time
  equality, protocol construction, docstring coverage).
* :mod:`repro.lint.dataflow` + :mod:`repro.lint.program` -- the v2
  whole-program passes: a project-wide symbol table / import graph /
  approximate call graph feeding RNG substream discipline
  (``global-random``, ``rng-substream-aliasing``,
  ``rng-foreign-substream``, ``rng-obs-hook-draw``...), shard-safety
  checks against ``# shard:`` ownership annotations
  (:mod:`repro.lint.annotations`), and determinism hazards v2
  (``unsorted-accumulation``, ``unsorted-serialization``,
  ``mutable-default-arg``).
* :mod:`repro.lint.invariants` -- runtime checks of the two-level
  overlay's structural invariants (``N_l``/``N_h`` capacity bounds,
  link symmetry, no self-links, no dangling links to departed nodes),
  callable from tests and as a periodic in-sim hook.

Findings carry severities and drift-stable fingerprints
(:mod:`repro.lint.fingerprint`); known findings are suppressed by the
checked-in baseline ``tools/lint_baseline.json``
(:mod:`repro.lint.baseline`).

CLI: ``python -m repro lint [--json] [--explain RULE] [--baseline F]
[--no-baseline] [--update-baseline] [paths...]`` exits non-zero when
any non-baselined finding survives per-line suppression;
``tests/test_lint_clean.py`` enforces the clean state in tier-1.
"""

from repro.lint.annotations import SHARD_CLASSES, ShardIndex
from repro.lint.ast_rules import (
    ALL_AST_RULES,
    RULE_DESCRIPTIONS,
    RULE_SEVERITIES,
    collect_findings,
)
from repro.lint.base import SEVERITY_LEVELS, Rule, severity_rank
from repro.lint.baseline import (
    Baseline,
    discover_baseline_path,
    load_baseline,
    write_baseline,
)
from repro.lint.dataflow import (
    FLOW_RULES,
    PROGRAM_RULES,
    collect_flow_findings,
    collect_program_findings,
)
from repro.lint.explain import explain_rule
from repro.lint.findings import Finding, RuleContext
from repro.lint.fingerprint import assign_fingerprints, compute_fingerprint
from repro.lint.invariants import (
    InvariantHook,
    InvariantViolation,
    OverlayInvariantError,
    check_link_table,
    check_overlay,
    install_invariant_hook,
)
from repro.lint.program import ProgramIndex, build_module, build_program
from repro.lint.runner import (
    LintReport,
    default_lint_root,
    lint_paths,
    lint_source,
    render_json,
    render_text,
    run_lint,
)
from repro.lint.suppressions import SuppressionIndex

__all__ = [
    "SHARD_CLASSES",
    "ShardIndex",
    "ALL_AST_RULES",
    "RULE_DESCRIPTIONS",
    "RULE_SEVERITIES",
    "collect_findings",
    "SEVERITY_LEVELS",
    "Rule",
    "severity_rank",
    "Baseline",
    "discover_baseline_path",
    "load_baseline",
    "write_baseline",
    "FLOW_RULES",
    "PROGRAM_RULES",
    "collect_flow_findings",
    "collect_program_findings",
    "explain_rule",
    "Finding",
    "RuleContext",
    "assign_fingerprints",
    "compute_fingerprint",
    "InvariantHook",
    "InvariantViolation",
    "OverlayInvariantError",
    "check_link_table",
    "check_overlay",
    "install_invariant_hook",
    "ProgramIndex",
    "build_module",
    "build_program",
    "LintReport",
    "default_lint_root",
    "lint_paths",
    "lint_source",
    "render_json",
    "render_text",
    "run_lint",
    "SuppressionIndex",
]
