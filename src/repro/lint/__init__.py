"""Determinism and overlay-invariant static analysis.

Two layers keep the reproduction's repeatability claim honest:

* :mod:`repro.lint.ast_rules` + :mod:`repro.lint.runner` -- an AST rule
  engine over the source tree (module-global randomness, wall-clock
  reads, hash-order set iteration, unused imports, dead names, broad
  excepts, float time equality), with per-line
  ``# lint: disable=<rule>`` suppression.
* :mod:`repro.lint.invariants` -- runtime checks of the two-level
  overlay's structural invariants (``N_l``/``N_h`` capacity bounds,
  link symmetry, no self-links, no dangling links to departed nodes),
  callable from tests and as a periodic in-sim hook.

CLI: ``python -m repro lint [--format json] [paths...]`` exits non-zero
when any finding survives suppression; ``tests/test_lint_clean.py``
enforces the clean state in tier-1.
"""

from repro.lint.ast_rules import ALL_AST_RULES, RULE_DESCRIPTIONS, collect_findings
from repro.lint.findings import Finding, RuleContext
from repro.lint.invariants import (
    InvariantHook,
    InvariantViolation,
    OverlayInvariantError,
    check_link_table,
    check_overlay,
    install_invariant_hook,
)
from repro.lint.runner import (
    LintReport,
    lint_paths,
    lint_source,
    render_json,
    render_text,
    run_lint,
)
from repro.lint.suppressions import SuppressionIndex

__all__ = [
    "ALL_AST_RULES",
    "RULE_DESCRIPTIONS",
    "collect_findings",
    "Finding",
    "RuleContext",
    "InvariantHook",
    "InvariantViolation",
    "OverlayInvariantError",
    "check_link_table",
    "check_overlay",
    "install_invariant_hook",
    "LintReport",
    "lint_paths",
    "lint_source",
    "render_json",
    "render_text",
    "run_lint",
    "SuppressionIndex",
]
