"""Flow-sensitive and whole-program determinism/shard-safety rules.

This is the v2 analyzer layer on top of PR 1's per-file rule runner.
Three rule families live here (plus the two rules migrated off the
single-pass engine, ``global-random`` and ``set-iteration``, which keep
their ids, messages, and suppression behaviour bit-for-bit):

**RNG substream discipline** -- every draw must be reachable from a
named :class:`repro.sim.rng.RngStreams` substream:

* ``global-random`` (migrated): raw ``random.*`` / ``numpy.random.*``.
* ``rng-unowned-generator``: ``random.Random(...)`` constructed outside
  ``sim/rng.py`` bypasses the named-substream discipline.
* ``rng-substream-aliasing`` (program): the same substream name
  requested from more than one function aliases one generator across
  phases -- adding a draw in one phase silently perturbs the other.
* ``rng-foreign-substream`` (program): the ``faults.*`` namespace is
  reserved for :mod:`repro.faults` (its streams must stay decoupled so
  fault-free hashes survive), and observability code must not own
  substreams at all.
* ``rng-obs-hook-draw``: a draw lexically inside an ``if ...tracer:``
  block or a ``with ...span(...):`` body (or anywhere in ``repro.obs``)
  would make trace-enabled runs diverge from fault-free hashes.

**Shard safety** -- static race detection against the ``# shard:``
ownership taxonomy (see :mod:`repro.lint.annotations`):

* ``shard-missing-annotation`` / ``shard-missing-module-decl`` /
  ``bad-shard-annotation``: coverage of the annotation scheme itself.
* ``shard-class-mutable-default``: a mutable class-level default is
  shared by every instance across future shard boundaries.
* ``shard-shared-read-mutated``: function-scope mutation of state
  declared frozen.
* ``shard-event-mutation`` (program): ``shared-mutable`` state touched
  from code reachable from an ``EventScheduler`` callback -- the exact
  worklist the PDES refactor must route through the inter-shard
  mailbox.
* ``shard-local-foreign-mutation`` (program): another module mutating
  state declared shard-local.

**Determinism hazards v2**:

* ``set-iteration`` (migrated): hash-order iteration of set literals.
* ``unsorted-accumulation``: flow-sensitive version -- a *local bound
  to a set-typed value* iterated into an order-sensitive accumulation
  (float ``+=``, ``list.append``) leaks hash order into results.
* ``unsorted-serialization``: ``json.dumps``/``json.dump`` without
  ``sort_keys=True`` outside the canonical encoders.
* ``mutable-default-arg``: the classic shared-default defect; under
  sharding the default would also be shared across shard contexts.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.lint.base import (
    Rule,
    dotted_name,
    is_set_expression,
)
from repro.lint.findings import Finding, RuleContext
from repro.lint.program import (
    GlobalBinding,
    ModuleInfo,
    ProgramIndex,
    value_kind,
)

# ---------------------------------------------------------------------------
# migrated rule (a): module-global randomness  [formerly ast_rules]


#: ``from random import X`` bindings that are safe: classes producing an
#: *owned* generator, not draws from the hidden module-global instance.
_SAFE_RANDOM_NAMES = {"Random"}

#: ``numpy.random`` attributes that construct independent generators
#: rather than touching the legacy global state.
_SAFE_NUMPY_RANDOM = {
    "default_rng",
    "Generator",
    "RandomState",
    "SeedSequence",
    "BitGenerator",
    "PCG64",
    "Philox",
    "MT19937",
    "SFC64",
}


class GlobalRandomRule(Rule):
    """Migrated from the PR 1 single-pass engine; findings unchanged."""

    rule_id = "global-random"
    severity = "high"
    description = (
        "module-global random state (random.*, numpy.random.*) outside sim/rng.py; "
        "use RngStreams or an injected random.Random"
    )

    def check(self, tree: ast.Module, ctx: RuleContext) -> List[Finding]:
        if ctx.is_rng_module:
            return []
        findings: List[Finding] = []
        # alias -> canonical module ("random" | "numpy.random" | "numpy")
        module_aliases: Dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random":
                        module_aliases[alias.asname or "random"] = "random"
                    elif alias.name == "numpy":
                        module_aliases[alias.asname or "numpy"] = "numpy"
                    elif alias.name == "numpy.random":
                        if alias.asname:
                            module_aliases[alias.asname] = "numpy.random"
                        else:
                            module_aliases["numpy"] = "numpy"
            elif isinstance(node, ast.ImportFrom) and node.level == 0:
                if node.module == "random":
                    for alias in node.names:
                        if alias.name not in _SAFE_RANDOM_NAMES:
                            findings.append(
                                self.finding(
                                    ctx,
                                    node,
                                    f"'from random import {alias.name}' binds the "
                                    "module-global RNG; inject a random.Random "
                                    "(from repro.sim.rng.RngStreams) instead",
                                )
                            )
                elif node.module in ("numpy", "numpy.random"):
                    for alias in node.names:
                        if node.module == "numpy" and alias.name == "random":
                            module_aliases[alias.asname or "random"] = "numpy.random"
                        elif (
                            node.module == "numpy.random"
                            and alias.name not in _SAFE_NUMPY_RANDOM
                        ):
                            findings.append(
                                self.finding(
                                    ctx,
                                    node,
                                    f"'from numpy.random import {alias.name}' draws from "
                                    "numpy's global state; use default_rng(seed)",
                                )
                            )
        for node in ast.walk(tree):
            if not isinstance(node, ast.Attribute):
                continue
            dotted = dotted_name(node)
            if dotted is None:
                continue
            root, _, rest = dotted.partition(".")
            canonical = module_aliases.get(root)
            if canonical is None:
                continue
            full = canonical + "." + rest if rest else canonical
            if full.startswith("random."):
                attr = full.split(".", 1)[1]
                if "." not in attr and attr not in _SAFE_RANDOM_NAMES:
                    findings.append(
                        self.finding(
                            ctx,
                            node,
                            f"'random.{attr}' uses the module-global RNG; route "
                            "randomness through RngStreams or an injected Random",
                        )
                    )
            elif full.startswith("numpy.random."):
                attr = full.split(".", 2)[2]
                if "." not in attr and attr not in _SAFE_NUMPY_RANDOM:
                    findings.append(
                        self.finding(
                            ctx,
                            node,
                            f"'numpy.random.{attr}' uses numpy's global RNG state; "
                            "use numpy.random.default_rng(seed)",
                        )
                    )
        return findings


# ---------------------------------------------------------------------------
# migrated rule (c): hash-order iteration over set expressions


#: Calls whose argument order the caller observes (order-sensitive sinks).
_ORDER_SENSITIVE_BUILTINS = {"list", "tuple", "enumerate", "iter", "reversed"}

#: RNG methods whose outcome depends on the order of the passed sequence.
_ORDER_SENSITIVE_METHODS = {"choice", "choices", "sample", "shuffle"}


class SetIterationRule(Rule):
    """Migrated from the PR 1 single-pass engine; findings unchanged."""

    rule_id = "set-iteration"
    severity = "high"
    description = (
        "iteration over a set/frozenset feeds hash-order into downstream "
        "logic; wrap in sorted(...) for a deterministic sequence"
    )

    def _msg(self, how: str) -> str:
        return (
            f"set/frozenset {how} exposes nondeterministic hash order; "
            "wrap the set in sorted(...)"
        )

    def check(self, tree: ast.Module, ctx: RuleContext) -> List[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(tree):
            if isinstance(node, (ast.For, ast.AsyncFor)):
                if is_set_expression(node.iter):
                    findings.append(
                        self.finding(ctx, node.iter, self._msg("iterated by a for loop"))
                    )
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
                for generator in node.generators:
                    if is_set_expression(generator.iter):
                        findings.append(
                            self.finding(
                                ctx,
                                generator.iter,
                                self._msg("iterated by a comprehension"),
                            )
                        )
            elif isinstance(node, ast.Call):
                if (
                    isinstance(node.func, ast.Name)
                    and node.func.id in _ORDER_SENSITIVE_BUILTINS
                    and node.args
                    and is_set_expression(node.args[0])
                ):
                    findings.append(
                        self.finding(
                            ctx,
                            node.args[0],
                            self._msg(f"passed to {node.func.id}()"),
                        )
                    )
                elif (
                    isinstance(node.func, ast.Attribute)
                    and node.func.attr in _ORDER_SENSITIVE_METHODS
                    and node.args
                    and is_set_expression(node.args[0])
                ):
                    findings.append(
                        self.finding(
                            ctx,
                            node.args[0],
                            self._msg(f"passed to .{node.func.attr}()"),
                        )
                    )
        return findings


# ---------------------------------------------------------------------------
# determinism hazards v2


class MutableDefaultArgRule(Rule):
    rule_id = "mutable-default-arg"
    severity = "high"
    description = (
        "mutable default argument is shared across every call (and, "
        "after sharding, across shard contexts); default to None"
    )

    def check(self, tree: ast.Module, ctx: RuleContext) -> List[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            defaults: List[ast.AST] = list(node.args.defaults)
            defaults.extend(d for d in node.args.kw_defaults if d is not None)
            for default in defaults:
                if value_kind(default) == "mutable":
                    findings.append(
                        self.finding(
                            ctx,
                            default,
                            f"mutable default in '{node.name}' is evaluated "
                            "once and shared by every call; use None and "
                            "construct inside the body",
                        )
                    )
        return findings


def _is_settyped(node: ast.AST, settyped: Set[str]) -> bool:
    """Flow-aware set-typedness: literals, ``set(...)``, known locals,
    and unions (``|``) of set-typed operands."""
    if is_set_expression(node):
        return True
    if isinstance(node, ast.Name):
        return node.id in settyped
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
        return _is_settyped(node.left, settyped) or _is_settyped(
            node.right, settyped
        )
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
        if node.func.attr in ("union", "intersection", "difference",
                              "symmetric_difference", "copy"):
            return _is_settyped(node.func.value, settyped)
    return False


def _loop_accumulates(body: Sequence[ast.stmt]) -> Optional[ast.AST]:
    """First order-sensitive accumulation statement in a loop body."""
    for stmt in body:
        for node in ast.walk(stmt):
            if isinstance(node, ast.AugAssign) and isinstance(node.op, ast.Add):
                return node
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "append"
            ):
                return node
    return None


class UnsortedAccumulationRule(Rule):
    rule_id = "unsorted-accumulation"
    severity = "high"
    description = (
        "a local bound to a set-typed value is iterated into an "
        "order-sensitive accumulation (float +=, list.append); float "
        "summation and list order then depend on hash order -- iterate "
        "sorted(...) instead"
    )

    def check(self, tree: ast.Module, ctx: RuleContext) -> List[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._check_block(node.body, set(), ctx, findings)
        return findings

    def _check_block(
        self,
        body: Sequence[ast.stmt],
        settyped: Set[str],
        ctx: RuleContext,
        findings: List[Finding],
    ) -> None:
        for stmt in body:
            if (
                isinstance(stmt, ast.Assign)
                and len(stmt.targets) == 1
                and isinstance(stmt.targets[0], ast.Name)
            ):
                name = stmt.targets[0].id
                if _is_settyped(stmt.value, settyped):
                    settyped.add(name)
                else:
                    settyped.discard(name)
            elif isinstance(stmt, ast.AnnAssign) and isinstance(
                stmt.target, ast.Name
            ):
                name = stmt.target.id
                if stmt.value is not None and _is_settyped(stmt.value, settyped):
                    settyped.add(name)
                else:
                    settyped.discard(name)
            elif isinstance(stmt, (ast.For, ast.AsyncFor)):
                if (
                    isinstance(stmt.iter, ast.Name)
                    and stmt.iter.id in settyped
                ):
                    sink = _loop_accumulates(stmt.body)
                    if sink is not None:
                        findings.append(
                            self.finding(
                                ctx,
                                stmt.iter,
                                f"local '{stmt.iter.id}' holds a set here; "
                                "iterating it into an order-sensitive "
                                "accumulation leaks hash order into results "
                                f"-- iterate sorted({stmt.iter.id}) instead",
                            )
                        )
                self._check_block(stmt.body, settyped, ctx, findings)
                self._check_block(stmt.orelse, settyped, ctx, findings)
            elif isinstance(stmt, (ast.If, ast.While)):
                self._check_block(stmt.body, set(settyped), ctx, findings)
                self._check_block(stmt.orelse, set(settyped), ctx, findings)
            elif isinstance(stmt, ast.With):
                self._check_block(stmt.body, settyped, ctx, findings)
            elif isinstance(stmt, ast.Try):
                self._check_block(stmt.body, set(settyped), ctx, findings)
                for handler in stmt.handlers:
                    self._check_block(handler.body, set(settyped), ctx, findings)
                self._check_block(stmt.finalbody, set(settyped), ctx, findings)


class UnsortedSerializationRule(Rule):
    rule_id = "unsorted-serialization"
    severity = "medium"
    description = (
        "json.dumps/json.dump without sort_keys=True serializes in "
        "insertion order; canonical artifacts must sort keys so two "
        "builders of the same payload emit identical bytes"
    )

    def check(self, tree: ast.Module, ctx: RuleContext) -> List[Finding]:
        # Project-scoped: only fires on tree runs (the runner sets
        # module_name), so ad-hoc lint_source snippets and scratch files
        # are not held to the canonical-bytes policy.
        if ctx.module_name is None or ctx.is_test_module:
            return []
        json_aliases = {"json"} if self._imports_json(tree) else set()
        if not json_aliases:
            return []
        findings: List[Finding] = []
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = dotted_name(node.func)
            if dotted is None or "." not in dotted:
                continue
            root, rest = dotted.split(".", 1)
            if root not in json_aliases or rest not in ("dumps", "dump"):
                continue
            if not self._sorts_keys(node):
                findings.append(
                    self.finding(
                        ctx,
                        node,
                        f"'{dotted}(...)' without sort_keys=True emits "
                        "insertion-ordered keys; pass sort_keys=True for "
                        "canonical bytes",
                    )
                )
        return findings

    @staticmethod
    def _imports_json(tree: ast.Module) -> bool:
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "json" and alias.asname is None:
                        return True
        return False

    @staticmethod
    def _sorts_keys(node: ast.Call) -> bool:
        for keyword in node.keywords:
            if keyword.arg == "sort_keys":
                return not (
                    isinstance(keyword.value, ast.Constant)
                    and keyword.value.value is False
                )
        return False


# ---------------------------------------------------------------------------
# RNG substream discipline (per-file parts)


class RngUnownedGeneratorRule(Rule):
    rule_id = "rng-unowned-generator"
    severity = "high"
    description = (
        "random.Random(...) constructed outside sim/rng.py bypasses the "
        "named-substream discipline; derive streams via "
        "RngStreams.stream/fork so draws stay decoupled"
    )

    def check(self, tree: ast.Module, ctx: RuleContext) -> List[Finding]:
        # Project-scoped (see UnsortedSerializationRule): `rng =
        # random.Random(7)` in a scratch snippet is legitimate DI style;
        # inside the tree every generator must come from RngStreams.
        if ctx.module_name is None or ctx.is_rng_module or ctx.is_test_module:
            return []
        findings: List[Finding] = []
        from_random = {
            alias.asname or alias.name
            for node in ast.walk(tree)
            if isinstance(node, ast.ImportFrom) and node.module == "random"
            for alias in node.names
            if alias.name == "Random"
        }
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = dotted_name(node.func)
            if dotted == "random.Random" or (dotted in from_random):
                findings.append(
                    self.finding(
                        ctx,
                        node,
                        "'Random(...)' constructs an unnamed generator; use "
                        "RngStreams.stream(name) so the draw sequence is "
                        "owned by a named substream",
                    )
                )
        return findings


#: Methods that consume entropy from a ``random.Random``-like object.
_DRAW_METHODS = frozenset(
    (
        "random",
        "uniform",
        "randint",
        "randrange",
        "choice",
        "choices",
        "sample",
        "shuffle",
        "gauss",
        "normalvariate",
        "lognormvariate",
        "expovariate",
        "betavariate",
        "paretovariate",
        "vonmisesvariate",
        "weibullvariate",
        "triangular",
        "getrandbits",
    )
)


def _receiver_is_rngish(node: ast.Call) -> bool:
    if not isinstance(node.func, ast.Attribute):
        return False
    dotted = dotted_name(node.func.value)
    if dotted is None:
        return False
    lowered = dotted.lower()
    return "rng" in lowered or lowered.split(".")[-1] in ("random", "randoms")


def _mentions_tracer(node: ast.AST) -> bool:
    for child in ast.walk(node):
        if isinstance(child, ast.Name) and "tracer" in child.id.lower():
            return True
        if isinstance(child, ast.Attribute) and "tracer" in child.attr.lower():
            return True
    return False


class RngObsHookDrawRule(Rule):
    rule_id = "rng-obs-hook-draw"
    severity = "high"
    description = (
        "an RNG draw inside an observability hook (if ...tracer: block, "
        "with ...span(...) body, or anywhere in repro.obs) makes traced "
        "runs diverge from fault-free hashes; hoist the draw out of the "
        "hook"
    )

    def check(self, tree: ast.Module, ctx: RuleContext) -> List[Finding]:
        findings: List[Finding] = []
        in_obs_module = "/obs/" in ctx.path.replace("\\", "/")
        if in_obs_module:
            for node in ast.walk(tree):
                if (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in _DRAW_METHODS
                    and _receiver_is_rngish(node)
                ):
                    findings.append(
                        self.finding(
                            ctx,
                            node,
                            "RNG draw inside the observability layer; obs "
                            "code must be draw-free so tracing never "
                            "perturbs simulation hashes",
                        )
                    )
            return findings
        hook_bodies: List[ast.stmt] = []
        for node in ast.walk(tree):
            if isinstance(node, ast.If) and _mentions_tracer(node.test):
                hook_bodies.extend(node.body)
            elif isinstance(node, ast.With):
                for item in node.items:
                    expr = item.context_expr
                    if (
                        isinstance(expr, ast.Call)
                        and isinstance(expr.func, ast.Attribute)
                        and expr.func.attr in ("span", "begin_detached")
                    ):
                        hook_bodies.extend(node.body)
                        break
        for stmt in hook_bodies:
            for node in ast.walk(stmt):
                if (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in _DRAW_METHODS
                    and _receiver_is_rngish(node)
                ):
                    findings.append(
                        self.finding(
                            ctx,
                            node,
                            "RNG draw inside a tracer hook block; draws "
                            "here fire only when tracing is on, so traced "
                            "and untraced runs diverge -- hoist the draw "
                            "out of the hook",
                        )
                    )
        return findings


# ---------------------------------------------------------------------------
# shard safety (per-file parts)


#: Packages whose module-level state must carry # shard: annotations.
SHARD_SCOPE_PACKAGES = (
    "core",
    "experiments",
    "faults",
    "metrics",
    "net",
    "overlay",
    "shard",
    "sim",
    "workload",
)

#: The PDES-critical layers that additionally need a module declaration.
MODULE_DECL_PACKAGES = ("core", "net", "overlay", "shard", "sim")

#: Method names that mutate their receiver in place.
_MUTATOR_METHODS = frozenset(
    (
        "append",
        "add",
        "update",
        "pop",
        "popitem",
        "clear",
        "extend",
        "insert",
        "remove",
        "discard",
        "setdefault",
        "sort",
        "reverse",
    )
)


def _chain_root(node: ast.AST) -> Optional[str]:
    """The base Name of an Attribute/Subscript chain, if any."""
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id
    return None


def iter_mutations(
    tree: ast.Module, names: Set[str]
) -> List[Tuple[str, ast.AST, str, Optional[str]]]:
    """(name, node, how, enclosing function name) for every mutation of
    ``names`` from *function scope* in the module.

    Module-scope statements are initialization, not mutation.  A bare
    ``name = ...`` inside a function only mutates the module global when
    the function declares ``global name``.
    """
    mutations: List[Tuple[str, ast.AST, str, Optional[str]]] = []
    for func in ast.walk(tree):
        if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        declared_global: Set[str] = set()
        for node in ast.walk(func):
            if isinstance(node, ast.Global):
                declared_global.update(node.names)
        for node in ast.walk(func):
            if isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (
                    node.targets
                    if isinstance(node, ast.Assign)
                    else [node.target]
                )
                for target in targets:
                    if isinstance(target, ast.Name):
                        if target.id in names and target.id in declared_global:
                            mutations.append(
                                (target.id, node, "rebinding", func.name)
                            )
                    elif isinstance(target, (ast.Subscript, ast.Attribute)):
                        root = _chain_root(target)
                        if root in names:
                            mutations.append(
                                (root, node, "item/attribute store", func.name)
                            )
            elif isinstance(node, ast.Delete):
                for target in node.targets:
                    root = _chain_root(target)
                    if root in names:
                        mutations.append((root, node, "deletion", func.name))
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _MUTATOR_METHODS
            ):
                root = _chain_root(node.func.value)
                if root in names:
                    mutations.append(
                        (root, node, f".{node.func.attr}() call", func.name)
                    )
    return mutations


class ShardAnnotationRule(Rule):
    """Annotation coverage plus in-module shared-read protection.

    Emits several finding ids (each documented in RULE_INFO); grouped in
    one rule because they share the binding scan.
    """

    rule_id = "shard-missing-annotation"
    severity = "medium"
    description = (
        "module-level state in a shard-scope package (sim/overlay/net/"
        "core/workload/experiments/faults/metrics) lacks a '# shard:' "
        "ownership annotation (shard-local | shared-read | shared-mutable)"
    )

    def _emit(
        self,
        ctx: RuleContext,
        node: ast.AST,
        rule_id: str,
        message: str,
        lineno: Optional[int] = None,
    ) -> Finding:
        severity, _desc = RULE_INFO[rule_id]
        return Finding(
            path=ctx.path,
            line=lineno if lineno is not None else getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            rule=rule_id,
            message=message,
            severity=severity,
        )

    def check(self, tree: ast.Module, ctx: RuleContext) -> List[Finding]:
        # Tree runs only (module_name set): lint_source snippets are not
        # held to the annotation scheme even at repro-like paths.
        if (
            ctx.shard_package is None
            or ctx.module_name is None
            or ctx.is_test_module
        ):
            return []
        from repro.lint.annotations import ShardIndex

        shard = ShardIndex.from_source(ctx.source)
        findings: List[Finding] = []
        for lineno in shard.malformed_lines:
            findings.append(
                self._emit(
                    ctx,
                    tree,
                    "bad-shard-annotation",
                    "'# shard:' names no valid ownership class; use "
                    "shard-local, shared-read, shared-mutable, or "
                    "module=<class>",
                    lineno=lineno,
                )
            )
        if (
            ctx.requires_module_shard_decl
            and not ctx.is_package_init
            and shard.module_class is None
        ):
            findings.append(
                self._emit(
                    ctx,
                    tree,
                    "shard-missing-module-decl",
                    "modules in sim/overlay/net/core must declare the "
                    "ownership of their instance state with a "
                    "'# shard: module=<class>' comment",
                    lineno=1,
                )
            )
        annotated: Dict[str, str] = {}
        for node in tree.body:
            self._check_binding(node, ctx, shard, findings, annotated, None)
            if isinstance(node, ast.ClassDef):
                for stmt in node.body:
                    self._check_binding(
                        stmt, ctx, shard, findings, annotated, node.name
                    )
        # In-module protection of shared-read state.
        frozen = {n for n, cls in annotated.items() if cls == "shared-read"}
        for name, node, how, func_name in iter_mutations(tree, frozen):
            findings.append(
                self._emit(
                    ctx,
                    node,
                    "shard-shared-read-mutated",
                    f"'{name}' is declared '# shard: shared-read' but "
                    f"'{func_name}' mutates it ({how}); shared-read state "
                    "is frozen after import",
                )
            )
        return findings

    def _check_binding(
        self,
        node: ast.stmt,
        ctx: RuleContext,
        shard: "ShardIndexLike",
        findings: List[Finding],
        annotated: Dict[str, str],
        owner_class: Optional[str],
    ) -> None:
        if isinstance(node, ast.Assign):
            targets = [t for t in node.targets if isinstance(t, ast.Name)]
            value: Optional[ast.AST] = node.value
        elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            targets = [node.target]
            value = node.value
        else:
            return
        kind = value_kind(value)
        classification = shard.classification(node.lineno)
        for target in targets:
            if target.id == "__all__" or kind == "type-alias":
                continue
            label = (
                f"{owner_class}.{target.id}" if owner_class else target.id
            )
            if owner_class is not None:
                if kind == "mutable":
                    findings.append(
                        self._emit(
                            ctx,
                            node,
                            "shard-class-mutable-default",
                            f"class attribute '{label}' binds a mutable "
                            "default shared by every instance (and every "
                            "future shard); use an immutable value or "
                            "initialize per instance",
                        )
                    )
                continue
            if classification is None:
                findings.append(
                    self._emit(
                        ctx,
                        node,
                        "shard-missing-annotation",
                        f"module-level '{label}' has no '# shard:' "
                        "ownership annotation (shard-local | shared-read "
                        "| shared-mutable)",
                    )
                )
            else:
                annotated[target.id] = classification
                if classification == "shared-read" and kind == "mutable":
                    findings.append(
                        self._emit(
                            ctx,
                            node,
                            "shard-class-mutable-default",
                            f"'{label}' is declared shared-read but binds "
                            "a mutable value; freeze it (tuple/frozenset) "
                            "or reclassify as shared-mutable",
                        )
                    )


# typing alias for the duck-typed shard index parameter above
ShardIndexLike = object


# ---------------------------------------------------------------------------
# program-level rules


class ProgramRule:
    """Base for rules that need the whole-program index."""

    rule_id: str = ""

    def check_program(self, index: ProgramIndex) -> List[Finding]:
        raise NotImplementedError

    def _finding(
        self,
        module: ModuleInfo,
        lineno: int,
        col: int,
        rule_id: str,
        message: str,
    ) -> Finding:
        severity, _desc = RULE_INFO[rule_id]
        return Finding(
            path=module.path,
            line=lineno,
            col=col,
            rule=rule_id,
            message=message,
            severity=severity,
        )


class RngSubstreamAliasRule(ProgramRule):
    rule_id = "rng-substream-aliasing"

    def check_program(self, index: ProgramIndex) -> List[Finding]:
        sites_by_name: Dict[str, List] = {}
        for site in index.all_stream_sites():
            if site.method != "stream":
                continue
            sites_by_name.setdefault(site.name, []).append(site)
        findings: List[Finding] = []
        for name in sorted(sites_by_name):
            sites = sites_by_name[name]
            qualnames = sorted({site.qualname for site in sites})
            if len(qualnames) <= 1:
                continue
            others = ", ".join(qualnames)
            for site in sites:
                module = index.modules[site.module]
                findings.append(
                    self._finding(
                        module,
                        site.lineno,
                        site.col,
                        self.rule_id,
                        f"substream '{name}' is requested from "
                        f"{len(qualnames)} functions ({others}); aliasing "
                        "one generator across phases couples their draw "
                        "sequences -- derive distinct substream names",
                    )
                )
        return findings


class RngForeignSubstreamRule(ProgramRule):
    rule_id = "rng-foreign-substream"

    def check_program(self, index: ProgramIndex) -> List[Finding]:
        import os as _os

        root_pkg = _os.path.basename(index.root)
        faults_pkg = f"{root_pkg}.faults"
        obs_pkg = f"{root_pkg}.obs"
        findings: List[Finding] = []
        for site in index.all_stream_sites():
            module = index.modules[site.module]
            in_faults = site.module == faults_pkg or site.module.startswith(
                faults_pkg + "."
            )
            in_obs = site.module == obs_pkg or site.module.startswith(
                obs_pkg + "."
            )
            if in_obs:
                findings.append(
                    self._finding(
                        module,
                        site.lineno,
                        site.col,
                        self.rule_id,
                        "observability code must not own RNG substreams; "
                        f"'{site.name}' requested in {site.qualname}",
                    )
                )
            elif in_faults and not site.name.startswith("faults."):
                findings.append(
                    self._finding(
                        module,
                        site.lineno,
                        site.col,
                        self.rule_id,
                        f"fault-injection substream '{site.name}' must use "
                        "the reserved 'faults.' prefix so fault-free runs "
                        "never share its sequence",
                    )
                )
            elif not in_faults and site.name.startswith("faults."):
                findings.append(
                    self._finding(
                        module,
                        site.lineno,
                        site.col,
                        self.rule_id,
                        f"substream '{site.name}' uses the 'faults.' "
                        "namespace reserved for repro.faults; pick a "
                        "phase-owned name",
                    )
                )
        return findings


def _shard_package_of(module_name: str, root_pkg: str) -> Optional[str]:
    parts = module_name.split(".")
    if len(parts) >= 2 and parts[0] == root_pkg:
        if parts[1] in SHARD_SCOPE_PACKAGES:
            return parts[1]
    return None


class ShardProgramRule(ProgramRule):
    """Cross-module and event-handler-context shard-safety checks."""

    rule_id = "shard-event-mutation"

    def check_program(self, index: ProgramIndex) -> List[Finding]:
        import os as _os

        root_pkg = _os.path.basename(index.root)
        # name -> (owning module, binding) for every annotated global in
        # a shard-scope package.
        owned: Dict[Tuple[str, str], GlobalBinding] = {}
        for module_name in sorted(index.modules):
            if _shard_package_of(module_name, root_pkg) is None:
                continue
            info = index.modules[module_name]
            for name in sorted(info.module_globals):
                binding = info.module_globals[name]
                if binding.shard_class is not None:
                    owned[(module_name, name)] = binding
        findings: List[Finding] = []
        for module_name in sorted(index.modules):
            info = index.modules[module_name]
            findings.extend(
                self._check_module(index, info, owned, root_pkg)
            )
        return findings

    def _check_module(
        self,
        index: ProgramIndex,
        info: ModuleInfo,
        owned: Dict[Tuple[str, str], GlobalBinding],
        root_pkg: str,
    ) -> List[Finding]:
        findings: List[Finding] = []
        # Local names in this module that refer to owned globals --
        # its own, plus from-imports of another module's global.
        local_names: Dict[str, Tuple[str, str]] = {}
        for (owner, name) in owned:
            if owner == info.name:
                local_names[name] = (owner, name)
        for bound, (source_mod, orig) in info.from_imports.items():
            if (source_mod, orig) in owned:
                local_names[bound] = (source_mod, orig)
        if not local_names:
            return findings
        qualname_by_line = self._function_lines(info)
        for name, node, how, func_name in iter_mutations(
            info.tree, set(local_names)
        ):
            owner, orig = local_names[name]
            binding = owned[(owner, orig)]
            lineno = getattr(node, "lineno", 1)
            col = getattr(node, "col_offset", 0)
            qualname = qualname_by_line.get(func_name)
            foreign = owner != info.name
            if binding.shard_class == "shared-read" and foreign:
                findings.append(
                    self._finding(
                        info,
                        lineno,
                        col,
                        "shard-shared-read-mutated",
                        f"'{owner}.{orig}' is shared-read but "
                        f"'{info.name}:{func_name}' mutates it ({how})",
                    )
                )
            elif binding.shard_class == "shard-local" and foreign:
                findings.append(
                    self._finding(
                        info,
                        lineno,
                        col,
                        "shard-local-foreign-mutation",
                        f"'{owner}.{orig}' is shard-local state but "
                        f"'{info.name}:{func_name}' mutates it ({how}); "
                        "cross-module mutation crosses a future shard "
                        "boundary",
                    )
                )
            elif binding.shard_class == "shared-mutable":
                if qualname is not None and qualname in index.event_reachable:
                    findings.append(
                        self._finding(
                            info,
                            lineno,
                            col,
                            "shard-event-mutation",
                            f"'{owner}.{orig}' is shared-mutable and "
                            f"'{qualname}' (reachable from an "
                            "EventScheduler callback) mutates it "
                            f"({how}); route the write through the "
                            "scheduler or the inter-shard mailbox",
                        )
                    )
        return findings

    @staticmethod
    def _function_lines(info: ModuleInfo) -> Dict[str, str]:
        """function simple name -> qualname (best effort, last wins)."""
        table: Dict[str, str] = {}
        for fname in sorted(info.functions):
            table[fname] = info.functions[fname].qualname
        for cls_name in sorted(info.classes):
            cls = info.classes[cls_name]
            for mname in sorted(cls.methods):
                table[mname] = cls.methods[mname].qualname
        return table


# ---------------------------------------------------------------------------
# registries


#: Per-file rules added by the dataflow pass (includes the two rules
#: migrated off the single-pass engine).
FLOW_RULES: Tuple[Rule, ...] = (
    GlobalRandomRule(),
    SetIterationRule(),
    MutableDefaultArgRule(),
    UnsortedAccumulationRule(),
    UnsortedSerializationRule(),
    RngUnownedGeneratorRule(),
    RngObsHookDrawRule(),
    ShardAnnotationRule(),
)

#: Whole-program rules (need the ProgramIndex).
PROGRAM_RULES: Tuple[ProgramRule, ...] = (
    RngSubstreamAliasRule(),
    RngForeignSubstreamRule(),
    ShardProgramRule(),
)

#: rule id -> (severity, description) for every id this module can emit,
#: including multi-id rules.  The runner folds this into the global
#: registry for --list-rules / --explain.
RULE_INFO: Dict[str, Tuple[str, str]] = {
    "global-random": ("high", GlobalRandomRule.description),
    "set-iteration": ("high", SetIterationRule.description),
    "mutable-default-arg": ("high", MutableDefaultArgRule.description),
    "unsorted-accumulation": ("high", UnsortedAccumulationRule.description),
    "unsorted-serialization": ("medium", UnsortedSerializationRule.description),
    "rng-unowned-generator": ("high", RngUnownedGeneratorRule.description),
    "rng-obs-hook-draw": ("high", RngObsHookDrawRule.description),
    "rng-substream-aliasing": (
        "medium",
        "the same RngStreams substream name is requested from more than "
        "one function; aliasing one generator across phases couples "
        "their draw sequences",
    ),
    "rng-foreign-substream": (
        "high",
        "substream namespace violation: 'faults.*' is reserved for "
        "repro.faults and observability code must not own substreams",
    ),
    "shard-missing-annotation": (
        "medium",
        ShardAnnotationRule.description,
    ),
    "shard-missing-module-decl": (
        "medium",
        "modules in sim/overlay/net/core must declare instance-state "
        "ownership with a '# shard: module=<class>' comment",
    ),
    "bad-shard-annotation": (
        "low",
        "'# shard:' comment names no valid ownership class",
    ),
    "shard-class-mutable-default": (
        "high",
        "a mutable class-level default (or a mutable value declared "
        "shared-read) is shared across instances and future shards",
    ),
    "shard-shared-read-mutated": (
        "high",
        "function-scope mutation of state declared '# shard: shared-read'",
    ),
    "shard-event-mutation": (
        "high",
        "shared-mutable state mutated from code reachable from an "
        "EventScheduler callback without going through the scheduler/"
        "inter-shard mailbox",
    ),
    "shard-local-foreign-mutation": (
        "high",
        "shard-local state mutated from another module (crosses a "
        "future shard boundary)",
    ),
}


def collect_flow_findings(tree: ast.Module, ctx: RuleContext) -> List[Finding]:
    """Run every per-file dataflow rule over one parsed module."""
    findings: List[Finding] = []
    for rule in FLOW_RULES:
        findings.extend(rule.check(tree, ctx))
    return findings


def collect_program_findings(index: ProgramIndex) -> List[Finding]:
    """Run every whole-program rule over a built index."""
    findings: List[Finding] = []
    for rule in PROGRAM_RULES:
        findings.extend(rule.check_program(index))
    return findings
