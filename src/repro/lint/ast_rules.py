"""Single-pass AST determinism rules for the reproduction's source tree.

The headline claim of the harness is bit-for-bit repeatability from a
single seed (see :mod:`repro.sim.rng`); these rules mechanically reject
the ways that claim silently breaks:

``wall-clock``
    ``time.time()``, ``datetime.now()`` etc. make results depend on the
    machine's clock.  Simulated time comes only from
    ``EventScheduler.now``.
``unused-import``
    Dead imports hide real dependencies and rot silently.
``dead-name``
    A local assigned a side-effect-free value and never read is dead
    code (often a refactor leftover).
``broad-except``
    ``except Exception`` / bare ``except`` inside event callbacks
    swallows simulation bugs and lets runs diverge silently; catch the
    specific exception or re-raise.
``float-time-eq``
    ``==`` between floats derived from simulated time (``sched.now``,
    fire times) is brittle under accumulation order; compare with a
    tolerance or restructure around event ordering.
``direct-protocol-instantiation``
    ``*Protocol`` classes constructed outside
    :mod:`repro.experiments.registry` bypass the typed parameter
    defaults and the one sanctioned construction site; tests and
    benchmarks are exempt.
``missing-public-docstring``
    Public classes and functions in the packages that form the
    harness's user-facing API surface (``repro.obs``,
    ``repro.experiments.spec``, ``repro.experiments.registry``) must
    carry docstrings; only files flagged
    ``requires_public_docstrings`` are checked.

The ``global-random`` and ``set-iteration`` rules started here and
moved to the flow/program pass in :mod:`repro.lint.dataflow`; they are
re-exported below with identical ids, messages, and severities, so both
existing imports and existing ``# lint: disable=`` comments keep
working.

Each rule emits :class:`repro.lint.findings.Finding` rows; a finding is
silenced for one line with ``# lint: disable=<rule-id>``.
:data:`RULE_DESCRIPTIONS` is the *combined* registry -- single-pass,
flow, program, and runner-emitted ids alike -- because the CLI's
``--list-rules``/``--explain`` and the docs validator treat it as the
one source of truth.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, List, Set, Tuple

from repro.lint.base import (
    Rule,
    dotted_name as _dotted_name,
    walk_skipping_nested_functions as _walk_skipping_nested_functions,
)
from repro.lint.dataflow import (
    RULE_INFO as _DATAFLOW_RULE_INFO,
    GlobalRandomRule,
    SetIterationRule,
)
from repro.lint.findings import Finding, RuleContext

__all__ = [
    "ALL_AST_RULES",
    "RULE_DESCRIPTIONS",
    "RULE_SEVERITIES",
    "Rule",
    "GlobalRandomRule",
    "SetIterationRule",
    "WallClockRule",
    "UnusedImportRule",
    "DeadNameRule",
    "BroadExceptRule",
    "FloatTimeEqRule",
    "DirectProtocolInstantiationRule",
    "MissingPublicDocstringRule",
    "collect_findings",
]


# ---------------------------------------------------------------------------
# (b) wall-clock time


_WALL_CLOCK_TIME_ATTRS = {
    "time",
    "time_ns",
    "monotonic",
    "monotonic_ns",
    "perf_counter",
    "perf_counter_ns",
    "process_time",
    "process_time_ns",
    "localtime",
    "gmtime",
    "ctime",
    "sleep",
}

_WALL_CLOCK_DATETIME_ATTRS = {"now", "utcnow", "today"}


class WallClockRule(Rule):
    rule_id = "wall-clock"
    severity = "high"
    description = (
        "wall-clock access (time.time, datetime.now, ...); simulated time "
        "comes only from EventScheduler.now, wall time only from "
        "repro.obs.perf"
    )

    def check(self, tree: ast.Module, ctx: RuleContext) -> List[Finding]:
        if ctx.owns_wall_clock:
            # repro.obs.perf is the one sanctioned wall-clock namespace
            # (hash-neutral sidecar telemetry); see RuleContext.
            return []
        findings: List[Finding] = []
        time_aliases: Set[str] = set()
        datetime_mod_aliases: Set[str] = set()
        datetime_cls_aliases: Set[str] = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "time":
                        time_aliases.add(alias.asname or "time")
                    elif alias.name == "datetime":
                        datetime_mod_aliases.add(alias.asname or "datetime")
            elif isinstance(node, ast.ImportFrom) and node.level == 0:
                if node.module == "time":
                    for alias in node.names:
                        if alias.name in _WALL_CLOCK_TIME_ATTRS:
                            findings.append(
                                self.finding(
                                    ctx,
                                    node,
                                    f"'from time import {alias.name}' reads the wall "
                                    "clock; use EventScheduler.now for simulated time",
                                )
                            )
                elif node.module == "datetime":
                    for alias in node.names:
                        if alias.name in ("datetime", "date"):
                            datetime_cls_aliases.add(alias.asname or alias.name)
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = _dotted_name(node.func)
            if dotted is None or "." not in dotted:
                continue
            root, rest = dotted.split(".", 1)
            if root in time_aliases and rest in _WALL_CLOCK_TIME_ATTRS:
                findings.append(
                    self.finding(
                        ctx,
                        node,
                        f"'{dotted}()' reads the wall clock; simulated time comes "
                        "only from EventScheduler.now",
                    )
                )
            elif root in datetime_mod_aliases and rest in (
                "datetime.now",
                "datetime.utcnow",
                "datetime.today",
                "date.today",
            ):
                findings.append(
                    self.finding(
                        ctx, node, f"'{dotted}()' reads the wall clock"
                    )
                )
            elif (
                root in datetime_cls_aliases
                and "." not in rest
                and rest in _WALL_CLOCK_DATETIME_ATTRS
            ):
                findings.append(
                    self.finding(
                        ctx, node, f"'{dotted}()' reads the wall clock"
                    )
                )
        return findings


# ---------------------------------------------------------------------------
# (d) unused imports and dead names


_IDENTIFIER_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_]*")


def _annotation_string_names(tree: ast.Module) -> Set[str]:
    """Identifiers inside *quoted* annotations (forward references)."""
    names: Set[str] = set()
    annotation_roots: List[ast.AST] = []
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if node.returns is not None:
                annotation_roots.append(node.returns)
            for arg in (
                list(node.args.posonlyargs)
                + list(node.args.args)
                + list(node.args.kwonlyargs)
                + [node.args.vararg, node.args.kwarg]
            ):
                if arg is not None and arg.annotation is not None:
                    annotation_roots.append(arg.annotation)
        elif isinstance(node, ast.AnnAssign):
            annotation_roots.append(node.annotation)
    for root in annotation_roots:
        for node in ast.walk(root):
            if isinstance(node, ast.Constant) and isinstance(node.value, str):
                names.update(_IDENTIFIER_RE.findall(node.value))
    return names


class UnusedImportRule(Rule):
    rule_id = "unused-import"
    severity = "low"
    description = "imported name is never used in the module"

    def check(self, tree: ast.Module, ctx: RuleContext) -> List[Finding]:
        bindings: List[Tuple[str, str, ast.AST]] = []  # (bound name, source, node)
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    bound = alias.asname or alias.name.split(".")[0]
                    bindings.append((bound, alias.name, node))
            elif isinstance(node, ast.ImportFrom):
                if node.module == "__future__":
                    continue
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    bound = alias.asname or alias.name
                    source = f"{'.' * node.level}{node.module or ''}.{alias.name}"
                    bindings.append((bound, source, node))
        if not bindings:
            return []
        used: Set[str] = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.Name) and isinstance(
                node.ctx, (ast.Load, ast.Del)
            ):
                used.add(node.id)
        used |= _annotation_string_names(tree)
        used |= set(ctx.exported_names)
        findings = []
        # Imports in a package __init__ are re-exports only when listed in
        # __all__, and exported_names already counts those as uses, so the
        # same unused test applies there too.
        for bound, source, node in bindings:
            if bound in used:
                continue
            findings.append(
                self.finding(
                    ctx,
                    node,
                    f"'{bound}' (imported from {source.rstrip('.')}) is never used",
                )
            )
        return findings


def _is_pure_expression(node: ast.AST) -> bool:
    """Expressions whose evaluation cannot have observable side effects."""
    if isinstance(node, (ast.Constant, ast.Name)):
        return True
    if isinstance(node, ast.Attribute):
        return _is_pure_expression(node.value)
    if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
        return all(_is_pure_expression(e) for e in node.elts)
    if isinstance(node, ast.Dict):
        return all(
            k is not None and _is_pure_expression(k) and _is_pure_expression(v)
            for k, v in zip(node.keys, node.values)
        )
    if isinstance(node, ast.UnaryOp):
        return _is_pure_expression(node.operand)
    if isinstance(node, ast.BinOp):
        return _is_pure_expression(node.left) and _is_pure_expression(node.right)
    if isinstance(node, ast.BoolOp):
        return all(_is_pure_expression(v) for v in node.values)
    if isinstance(node, ast.Compare):
        return _is_pure_expression(node.left) and all(
            _is_pure_expression(c) for c in node.comparators
        )
    return False


class DeadNameRule(Rule):
    rule_id = "dead-name"
    severity = "low"
    description = (
        "local name assigned a side-effect-free value and never read "
        "(dead code; prefix with '_' if intentional)"
    )

    def check(self, tree: ast.Module, ctx: RuleContext) -> List[Finding]:
        findings: List[Finding] = []
        for func in ast.walk(tree):
            if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            loads: Set[str] = set()
            stores: List[Tuple[str, ast.AST]] = []
            for node in ast.walk(func):
                if isinstance(node, ast.Name) and isinstance(
                    node.ctx, (ast.Load, ast.Del)
                ):
                    loads.add(node.id)
            for node in _walk_skipping_nested_functions(func):
                if (
                    isinstance(node, ast.Assign)
                    and len(node.targets) == 1
                    and isinstance(node.targets[0], ast.Name)
                    and not node.targets[0].id.startswith("_")
                    and _is_pure_expression(node.value)
                ):
                    stores.append((node.targets[0].id, node))
            reported: Set[str] = set()
            for name, node in stores:
                if name in loads or name in reported:
                    continue
                reported.add(name)
                findings.append(
                    self.finding(
                        ctx,
                        node,
                        f"local '{name}' is assigned but never used in "
                        f"'{func.name}'",
                    )
                )
        return findings


# ---------------------------------------------------------------------------
# (e) exception swallowing


class BroadExceptRule(Rule):
    rule_id = "broad-except"
    severity = "medium"
    description = (
        "bare 'except' / 'except Exception' swallows simulation bugs "
        "inside event callbacks; catch the specific exception or re-raise"
    )

    def check(self, tree: ast.Module, ctx: RuleContext) -> List[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            broad = node.type is None or (
                isinstance(node.type, ast.Name)
                and node.type.id in ("Exception", "BaseException")
            )
            if not broad:
                continue
            # A handler that re-raises (bare `raise` at its top level)
            # observes but does not swallow -- allowed.
            if any(
                isinstance(stmt, ast.Raise) and stmt.exc is None
                for stmt in node.body
            ):
                continue
            label = "bare except" if node.type is None else f"except {node.type.id}"
            findings.append(
                self.finding(
                    ctx,
                    node,
                    f"'{label}' swallows errors (deadly inside event callbacks); "
                    "catch a specific exception or re-raise",
                )
            )
        return findings


# ---------------------------------------------------------------------------
# (f) float equality against simulated time


_SIM_TIME_ATTRS = {"now", "_now", "sim_time", "fire_time"}
_SIM_TIME_NAMES = {"now", "sim_time", "fire_time", "sim_now"}


def _is_sim_time_expr(node: ast.AST) -> bool:
    if isinstance(node, ast.Attribute):
        return node.attr in _SIM_TIME_ATTRS
    if isinstance(node, ast.Name):
        return node.id in _SIM_TIME_NAMES
    return False


class FloatTimeEqRule(Rule):
    rule_id = "float-time-eq"
    severity = "medium"
    description = (
        "float == / != against a simulated-time expression; use ordering "
        "comparisons or an explicit tolerance"
    )

    def check(self, tree: ast.Module, ctx: RuleContext) -> List[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left] + list(node.comparators)
            for op, left, right in zip(node.ops, operands, operands[1:]):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                # `x == None`-style comparisons are a different defect;
                # only float-float time comparisons concern this rule.
                if any(
                    isinstance(o, ast.Constant) and o.value is None
                    for o in (left, right)
                ):
                    continue
                if _is_sim_time_expr(left) or _is_sim_time_expr(right):
                    findings.append(
                        self.finding(
                            ctx,
                            node,
                            "'==' against a simulated-time float is brittle "
                            "(accumulation order); compare with a tolerance "
                            "or use <=/>= event ordering",
                        )
                    )
                    break
        return findings


# ---------------------------------------------------------------------------
# (g) protocol construction outside the registry


class DirectProtocolInstantiationRule(Rule):
    rule_id = "direct-protocol-instantiation"
    severity = "medium"
    description = (
        "a *Protocol class constructed outside the protocol registry; "
        "go through repro.experiments.registry.create_protocol so "
        "parameter defaults and typed overrides stay in one place"
    )

    def check(self, tree: ast.Module, ctx: RuleContext) -> List[Finding]:
        if ctx.is_protocol_registry or ctx.is_test_module:
            return []
        findings: List[Finding] = []
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = _dotted_name(node.func)
            if dotted is None:
                continue
            tail = dotted.rsplit(".", 1)[-1]
            # Bare "Protocol" is typing.Protocol, not a VoD system.
            if tail == "Protocol" or not tail.endswith("Protocol"):
                continue
            findings.append(
                self.finding(
                    ctx,
                    node,
                    f"'{dotted}(...)' constructs a protocol directly; use "
                    "create_protocol(name, ...) from the registry (tests "
                    "and the registry itself are exempt)",
                )
            )
        return findings


# ---------------------------------------------------------------------------
# (i) missing public docstrings on the documented API surface


class MissingPublicDocstringRule(Rule):
    """Public defs/classes in API-surface files must have docstrings.

    Only fires when the file's :class:`RuleContext` sets
    ``requires_public_docstrings`` (the runner flags ``repro.obs`` and
    the experiment spec/registry modules).  A name is public when it
    has no leading underscore; nested functions are skipped (they are
    implementation detail even when unprefixed), but methods of public
    classes are checked.
    """

    rule_id = "missing-public-docstring"
    severity = "low"
    description = (
        "public class/function on the documented API surface lacks a "
        "docstring (packages opted in via requires_public_docstrings)"
    )

    def check(self, tree: ast.Module, ctx: RuleContext) -> List[Finding]:
        if not ctx.requires_public_docstrings:
            return []
        findings: List[Finding] = []
        self._check_body(tree.body, ctx, findings, in_class=False)
        return findings

    def _check_body(
        self,
        body: List[ast.stmt],
        ctx: RuleContext,
        findings: List[Finding],
        in_class: bool,
    ) -> None:
        for node in body:
            if not isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                continue
            if node.name.startswith("_"):
                continue
            if ast.get_docstring(node) is None:
                kind = "class" if isinstance(node, ast.ClassDef) else (
                    "method" if in_class else "function"
                )
                findings.append(
                    self.finding(
                        ctx,
                        node,
                        f"public {kind} '{node.name}' has no docstring; this "
                        "module is part of the documented API surface",
                    )
                )
            if isinstance(node, ast.ClassDef):
                self._check_body(node.body, ctx, findings, in_class=True)


# ---------------------------------------------------------------------------
# registry


#: The remaining single-pass rules (the migrated pair now runs from the
#: dataflow pass so every file gets exactly one copy of each rule).
ALL_AST_RULES: Tuple[Rule, ...] = (
    WallClockRule(),
    UnusedImportRule(),
    DeadNameRule(),
    BroadExceptRule(),
    FloatTimeEqRule(),
    DirectProtocolInstantiationRule(),
    MissingPublicDocstringRule(),
)

#: Findings the runner emits itself (not tied to a Rule instance).
_RUNNER_RULE_INFO: Dict[str, Tuple[str, str]] = {
    "syntax-error": ("high", "file does not parse; nothing else can be checked"),
    "io-error": ("high", "file cannot be read"),
    "bad-suppression": (
        "low",
        "'# lint: disable=' names no rules; list rule ids or 'all'",
    ),
}

#: rule id -> human description for *every* id the analyzer can emit --
#: single-pass, flow, program, and runner-internal alike.
RULE_DESCRIPTIONS: Dict[str, str] = {
    rule.rule_id: rule.description for rule in ALL_AST_RULES
}
RULE_DESCRIPTIONS.update(
    {rule_id: desc for rule_id, (_sev, desc) in _DATAFLOW_RULE_INFO.items()}
)
RULE_DESCRIPTIONS.update(
    {rule_id: desc for rule_id, (_sev, desc) in _RUNNER_RULE_INFO.items()}
)

#: rule id -> severity, same coverage as RULE_DESCRIPTIONS.
RULE_SEVERITIES: Dict[str, str] = {
    rule.rule_id: rule.severity for rule in ALL_AST_RULES
}
RULE_SEVERITIES.update(
    {rule_id: sev for rule_id, (sev, _desc) in _DATAFLOW_RULE_INFO.items()}
)
RULE_SEVERITIES.update(
    {rule_id: sev for rule_id, (sev, _desc) in _RUNNER_RULE_INFO.items()}
)


def collect_findings(tree: ast.Module, ctx: RuleContext) -> List[Finding]:
    """Run every single-pass AST rule over one parsed module."""
    findings: List[Finding] = []
    for rule in ALL_AST_RULES:
        findings.extend(rule.check(tree, ctx))
    return findings
