"""Runtime structural invariants of the two-level overlay (Section IV-A).

The paper's metrics lean on structural guarantees -- a node maintains at
most ``N_l`` inner-links and ``N_h`` inter-links, links are symmetric,
nobody links to itself, and departed nodes leave no dangling neighbor
ids behind.  The AST rules in :mod:`repro.lint.ast_rules` keep the
*code* honest; this module keeps the *running overlay* honest: violations
here mean a figure is being computed over a corrupted structure.

``check_overlay`` is pure (returns violations, raises nothing) so tests
can assert on its output; ``install_invariant_hook`` wires it into the
event engine as a periodic self-check that fails fast.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.core.structure import HierarchicalStructure
    from repro.overlay.links import LinkTable
    from repro.sim.engine import Event
    from repro.sim.scheduler import Scheduler


class OverlayInvariantError(AssertionError):
    """Raised by the periodic hook when the overlay violates an invariant."""

    def __init__(self, violations: List["InvariantViolation"]):
        self.violations = violations
        lines = "\n".join(f"  - {v.render()}" for v in violations)
        super().__init__(f"{len(violations)} overlay invariant violation(s):\n{lines}")


@dataclass(frozen=True, order=True)
class InvariantViolation:
    """One broken structural invariant, attributable to a node."""

    kind: str
    level: str
    node_id: int
    detail: str

    def render(self) -> str:
        return f"[{self.level}] node {self.node_id}: {self.kind}: {self.detail}"

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "level": self.level,
            "node_id": self.node_id,
            "detail": self.detail,
        }


def check_link_table(
    table: "LinkTable",
    level: str,
    capacity: Optional[int] = None,
) -> List[InvariantViolation]:
    """Capacity, symmetry and self-link invariants of one overlay level.

    ``capacity`` defaults to the table's own capacity; passing the
    structure's configured limit catches a table constructed with the
    wrong bound.
    """
    limit = table.capacity if capacity is None else capacity
    violations: List[InvariantViolation] = []
    for node_id in table.nodes():
        neighbors = table.neighbors(node_id)
        if len(neighbors) > limit:
            violations.append(
                InvariantViolation(
                    kind="over-capacity",
                    level=level,
                    node_id=node_id,
                    detail=f"{len(neighbors)} links exceed the limit of {limit}",
                )
            )
        for neighbor in neighbors:
            if neighbor == node_id:
                violations.append(
                    InvariantViolation(
                        kind="self-link",
                        level=level,
                        node_id=node_id,
                        detail="node links to itself",
                    )
                )
            elif node_id not in table.links_of(neighbor):
                violations.append(
                    InvariantViolation(
                        kind="asymmetric-link",
                        level=level,
                        node_id=node_id,
                        detail=f"links to {neighbor} but {neighbor} does not link back",
                    )
                )
    return violations


def check_overlay(structure: "HierarchicalStructure") -> List[InvariantViolation]:
    """Every structural invariant of the two-level overlay.

    * inner/inter degrees within ``N_l`` / ``N_h``,
    * links symmetric and self-link free at both levels,
    * no links held by or pointing at a departed node
      (``channel_of`` is ``None`` after :meth:`leave`).

    Nodes in ``structure.pending_repairs`` are *crashed* rather than
    departed: their dangling links are the expected in-flight state
    between the crash and the scheduled repair sweep (repro.faults), so
    the departed-node checks tolerate them.  Capacity and symmetry are
    still enforced -- a crash severs no links, so both hold throughout.
    """
    in_flight = getattr(structure, "pending_repairs", None) or frozenset()
    violations: List[InvariantViolation] = []
    violations.extend(
        check_link_table(structure.inner, "inner", structure.inner_link_limit)
    )
    violations.extend(
        check_link_table(structure.inter, "inter", structure.inter_link_limit)
    )
    for level, table in (("inner", structure.inner), ("inter", structure.inter)):
        for node_id in table.nodes():
            neighbors = table.neighbors(node_id)
            if not neighbors:
                continue
            if structure.channel_of.get(node_id) is None and node_id not in in_flight:
                violations.append(
                    InvariantViolation(
                        kind="departed-node-with-links",
                        level=level,
                        node_id=node_id,
                        detail=f"departed node still holds links to {neighbors}",
                    )
                )
            for neighbor in neighbors:
                if (
                    neighbor in structure.channel_of
                    and structure.channel_of[neighbor] is None
                    and neighbor not in in_flight
                ):
                    violations.append(
                        InvariantViolation(
                            kind="dangling-neighbor",
                            level=level,
                            node_id=node_id,
                            detail=f"links to departed node {neighbor}",
                        )
                    )
    return sorted(set(violations))


class InvariantHook:
    """Handle to a running periodic overlay self-check."""

    def __init__(self) -> None:
        self.checks_run = 0
        self._event: Optional["Event"] = None
        self._cancelled = False

    def cancel(self) -> None:
        """Stop the periodic check (idempotent)."""
        self._cancelled = True
        if self._event is not None:
            self._event.cancel()

    @property
    def active(self) -> bool:
        return not self._cancelled


def install_invariant_hook(
    scheduler: "Scheduler",
    structure: "HierarchicalStructure",
    period_s: float = 600.0,
    on_violation: Optional[Callable[[List[InvariantViolation]], None]] = None,
) -> InvariantHook:
    """Schedule a periodic in-sim overlay self-check.

    Every ``period_s`` of virtual time the overlay is validated; on a
    violation the default action raises :class:`OverlayInvariantError`
    (failing the run loudly rather than letting a corrupted structure
    keep producing numbers).  Pass ``on_violation`` to record instead of
    raise.  The returned :class:`InvariantHook` stops the cycle via
    ``cancel()``.
    """
    if period_s <= 0:
        raise ValueError("period_s must be positive")
    hook = InvariantHook()

    def _check() -> None:
        if not hook.active:
            return
        hook.checks_run += 1
        violations = check_overlay(structure)
        if violations:
            if on_violation is not None:
                on_violation(violations)
            else:
                raise OverlayInvariantError(violations)
        # One handle for the hook's whole life: re-arm the fired event
        # instead of scheduling a fresh one each period.
        hook._event.reschedule(period_s)

    hook._event = scheduler.schedule(period_s, _check)
    return hook
