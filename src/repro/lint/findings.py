"""Structured lint findings.

Every rule -- AST-based or runtime -- reports through :class:`Finding`
so that the text and JSON renderers, the CLI exit code, and the tier-1
clean-tree test all consume one shape.  Findings sort by (path, line,
column, rule) so reports are stable across runs and platforms.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at a source location.

    ``severity`` is one of ``high``/``medium``/``low`` (see
    :mod:`repro.lint.base`); ``fingerprint`` is a location-drift-stable
    id assigned by :mod:`repro.lint.fingerprint` when a report is
    assembled (empty for findings constructed in isolation, e.g. by
    :func:`repro.lint.runner.lint_source` unit tests).
    """

    path: str
    line: int
    col: int
    rule: str
    message: str
    severity: str = "medium"
    fingerprint: str = ""

    def render(self) -> str:
        """``path:line:col: rule-id: message`` -- the text-format row."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule}: {self.message}"

    def to_dict(self) -> Dict[str, Any]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "message": self.message,
            "severity": self.severity,
            "fingerprint": self.fingerprint,
        }


@dataclass
class RuleContext:
    """Per-file information the AST rules need beyond the tree itself.

    ``is_rng_module`` exempts :mod:`repro.sim.rng` from the
    global-random rule: that module is the one sanctioned home of the
    ``random`` module (it wraps it behind :class:`RngStreams`).
    """

    path: str
    source: str
    is_rng_module: bool = False
    is_package_init: bool = False
    #: The protocol registry module -- the one sanctioned construction
    #: site of ``*Protocol`` classes (direct-protocol-instantiation).
    is_protocol_registry: bool = False
    #: Test/benchmark modules may construct protocols directly.
    is_test_module: bool = False
    #: Names exported via ``__all__`` (count as uses for unused-import).
    exported_names: frozenset = field(default_factory=frozenset)
    #: Packages whose public API must carry docstrings
    #: (missing-public-docstring); opt-in per path, see lint.runner.
    requires_public_docstrings: bool = False
    #: The shard-scope package this module belongs to ("sim", "overlay",
    #: "net", "core", "workload", "experiments", "faults", "metrics"),
    #: or None when the shard-safety rules do not apply to the file.
    shard_package: "str | None" = None
    #: The four PDES-critical packages additionally require a
    #: module-level ``# shard: module=<class>`` ownership declaration.
    requires_module_shard_decl: bool = False
    #: Dotted module name when known ("repro.sim.engine"); program-pass
    #: rules use it to attribute findings across modules.
    module_name: "str | None" = None
    #: The one sanctioned home of wall-clock reads
    #: (:mod:`repro.obs.perf`); exempts the wall-clock rule the same
    #: way ``is_rng_module`` exempts :mod:`repro.sim.rng` from
    #: global-random.  Everywhere else, ``time.perf_counter`` and
    #: friends stay high-severity findings.
    owns_wall_clock: bool = False
