"""The lint driver: walk files, run rules, filter suppressions, render.

``lint_paths`` is the programmatic entry (used by the tier-1 clean-tree
test); ``main`` backs ``python -m repro lint``.  Output is stable: files
are visited in sorted order and findings sort by location, so two runs
over the same tree produce byte-identical reports.
"""

from __future__ import annotations

import ast
import json
import os
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence

from repro.lint.ast_rules import collect_findings
from repro.lint.findings import Finding, RuleContext
from repro.lint.suppressions import SuppressionIndex


def default_lint_root() -> str:
    """The ``src/repro`` package directory of this installation."""
    import repro

    return os.path.dirname(os.path.abspath(repro.__file__))


@dataclass
class LintReport:
    """Outcome of one lint run."""

    findings: List[Finding] = field(default_factory=list)
    files_checked: int = 0
    #: Count of findings silenced by ``# lint: disable`` comments.
    suppressed: int = 0

    @property
    def ok(self) -> bool:
        return not self.findings

    def to_dict(self) -> Dict[str, Any]:
        return {
            "ok": self.ok,
            "files_checked": self.files_checked,
            "suppressed": self.suppressed,
            "findings": [f.to_dict() for f in self.findings],
        }


def _extract_exports(tree: ast.Module) -> frozenset:
    """String entries of a module-level ``__all__`` list/tuple."""
    names: List[str] = []
    for node in tree.body:
        if (
            isinstance(node, ast.Assign)
            and len(node.targets) == 1
            and isinstance(node.targets[0], ast.Name)
            and node.targets[0].id == "__all__"
            and isinstance(node.value, (ast.List, ast.Tuple))
        ):
            for element in node.value.elts:
                if isinstance(element, ast.Constant) and isinstance(element.value, str):
                    names.append(element.value)
    return frozenset(names)


def _is_rng_module(path: str) -> bool:
    normalized = path.replace(os.sep, "/")
    return normalized.endswith("sim/rng.py")


def _is_protocol_registry(path: str) -> bool:
    normalized = path.replace(os.sep, "/")
    return normalized.endswith("experiments/registry.py")


def _requires_public_docstrings(path: str) -> bool:
    """The API-surface files held to missing-public-docstring.

    The ``/obs/`` entry scopes the whole observability package --
    tracer/export (PR 3) and timeseries/report/baseline alike -- so
    new obs modules are covered the day they appear
    (``tests/test_lint_rules.py`` pins the roster).
    """
    normalized = path.replace(os.sep, "/")
    return (
        "/obs/" in normalized
        or normalized.endswith("experiments/spec.py")
        or normalized.endswith("experiments/registry.py")
    )


def _is_test_module(path: str) -> bool:
    normalized = path.replace(os.sep, "/")
    basename = os.path.basename(normalized)
    return (
        basename.startswith("test_")
        or basename == "conftest.py"
        or "/tests/" in normalized
        or "/benchmarks/" in normalized
    )


def _lint_module(source: str, path: str) -> "tuple[List[Finding], int]":
    """(surviving findings, suppressed count) for one module's source."""
    tree = ast.parse(source, filename=path)
    ctx = RuleContext(
        path=path,
        source=source,
        is_rng_module=_is_rng_module(path),
        is_package_init=os.path.basename(path) == "__init__.py",
        is_protocol_registry=_is_protocol_registry(path),
        is_test_module=_is_test_module(path),
        exported_names=_extract_exports(tree),
        requires_public_docstrings=_requires_public_docstrings(path),
    )
    suppressions = SuppressionIndex.from_source(source)
    kept: List[Finding] = []
    suppressed = 0
    for finding in collect_findings(tree, ctx):
        if suppressions.is_suppressed(finding.line, finding.rule):
            suppressed += 1
        else:
            kept.append(finding)
    for lineno in suppressions.malformed_lines:
        kept.append(
            Finding(
                path=path,
                line=lineno,
                col=0,
                rule="bad-suppression",
                message="'# lint: disable=' names no rules; list rule ids or 'all'",
            )
        )
    return sorted(kept), suppressed


def lint_source(source: str, path: str = "<string>") -> List[Finding]:
    """Lint one module's source text; raises SyntaxError on a bad parse."""
    findings, _suppressed = _lint_module(source, path)
    return findings


def _iter_python_files(paths: Iterable[str]) -> List[str]:
    files: List[str] = []
    for path in paths:
        if os.path.isdir(path):
            for dirpath, dirnames, filenames in os.walk(path):
                dirnames.sort()
                dirnames[:] = [d for d in dirnames if d != "__pycache__"]
                files.extend(
                    os.path.join(dirpath, name)
                    for name in sorted(filenames)
                    if name.endswith(".py")
                )
        else:
            files.append(path)
    return sorted(set(files))


def lint_paths(paths: Sequence[str]) -> LintReport:
    """Lint every ``.py`` file under the given files/directories."""
    report = LintReport()
    for filepath in _iter_python_files(paths):
        try:
            with open(filepath, "r", encoding="utf-8") as handle:
                source = handle.read()
        except OSError as exc:
            report.findings.append(
                Finding(
                    path=filepath,
                    line=1,
                    col=0,
                    rule="io-error",
                    message=f"cannot read file: {exc.strerror or exc}",
                )
            )
            continue
        report.files_checked += 1
        try:
            findings, suppressed = _lint_module(source, path=filepath)
        except SyntaxError as exc:
            report.findings.append(
                Finding(
                    path=filepath,
                    line=exc.lineno or 1,
                    col=(exc.offset or 1) - 1,
                    rule="syntax-error",
                    message=f"file does not parse: {exc.msg}",
                )
            )
            continue
        report.suppressed += suppressed
        report.findings.extend(findings)
    report.findings.sort()
    return report


def render_text(report: LintReport) -> str:
    lines = [finding.render() for finding in report.findings]
    summary = (
        f"{len(report.findings)} finding(s) in {report.files_checked} file(s)"
        + (f", {report.suppressed} suppressed" if report.suppressed else "")
    )
    lines.append(summary)
    return "\n".join(lines)


def render_json(report: LintReport) -> str:
    return json.dumps(report.to_dict(), indent=2, sort_keys=True)


def run_lint(
    paths: Optional[Sequence[str]] = None, output_format: str = "text"
) -> int:
    """Lint and print; the ``python -m repro lint`` backend.

    Returns the process exit code: 0 on a clean tree, 1 when any
    finding survives suppression.
    """
    if output_format not in ("text", "json"):
        raise ValueError(f"unknown lint output format {output_format!r}")
    report = lint_paths(list(paths) if paths else [default_lint_root()])
    print(render_json(report) if output_format == "json" else render_text(report))
    return 0 if report.ok else 1
