"""The lint driver: walk files, run rule passes, filter, render.

Three passes run over a tree (in one parse per file):

1. the single-pass AST rules (:mod:`repro.lint.ast_rules`);
2. the flow-sensitive dataflow rules (:mod:`repro.lint.dataflow`),
   including the shard-safety per-file checks;
3. the whole-program rules over the :class:`repro.lint.program`
   index -- substream aliasing, namespace ownership, event-reachable
   mutation of shared state.

Per-line ``# lint: disable=<rule>`` suppression applies uniformly,
including to program-pass findings (matched back to their file's
suppression index).  Surviving findings get stable fingerprints
(:mod:`repro.lint.fingerprint`) and are split against the checked-in
baseline (``tools/lint_baseline.json``); only *non-baselined* findings
fail the run.

``lint_paths`` is the programmatic entry (used by the tier-1 clean-tree
test); ``run_lint`` backs ``python -m repro lint``.  Output is stable:
files are visited in sorted order, findings sort by location, and the
JSON renderer sorts keys -- two runs over the same tree produce
byte-identical reports.
"""

from __future__ import annotations

import ast
import json
import os
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.lint.ast_rules import collect_findings
from repro.lint.baseline import (
    Baseline,
    discover_baseline_path,
    load_baseline,
    write_baseline,
)
from repro.lint.dataflow import (
    MODULE_DECL_PACKAGES,
    SHARD_SCOPE_PACKAGES,
    collect_flow_findings,
    collect_program_findings,
)
from repro.lint.fingerprint import assign_fingerprints
from repro.lint.findings import Finding, RuleContext
from repro.lint.program import ProgramIndex, build_program
from repro.lint.suppressions import SuppressionIndex


def default_lint_root() -> str:
    """The ``src/repro`` package directory of this installation."""
    import repro

    return os.path.dirname(os.path.abspath(repro.__file__))


@dataclass
class LintReport:
    """Outcome of one lint run.

    ``findings`` holds only the *new* (non-baselined) findings -- the
    set that decides :attr:`ok` and the exit code.  ``baselined`` counts
    known findings suppressed by ``tools/lint_baseline.json``;
    ``stale_baseline`` lists baseline fingerprints that no longer match
    anything (entries to delete).
    """

    findings: List[Finding] = field(default_factory=list)
    files_checked: int = 0
    #: Count of findings silenced by ``# lint: disable`` comments.
    suppressed: int = 0
    #: Count of findings suppressed by the checked-in baseline.
    baselined: int = 0
    #: Baseline fingerprints matching no current finding.
    stale_baseline: List[str] = field(default_factory=list)
    #: Size counters from the whole-program index (None when the run
    #: had no directory root to index).
    program_stats: Optional[Dict[str, int]] = None

    @property
    def ok(self) -> bool:
        return not self.findings

    def severity_counts(self) -> Dict[str, int]:
        """Finding count per severity level (over new findings)."""
        counts: Dict[str, int] = {}
        for finding in self.findings:
            counts[finding.severity] = counts.get(finding.severity, 0) + 1
        return counts

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": 2,
            "ok": self.ok,
            "files_checked": self.files_checked,
            "suppressed": self.suppressed,
            "baselined": self.baselined,
            "stale_baseline": sorted(self.stale_baseline),
            "severity_counts": self.severity_counts(),
            "program": self.program_stats,
            "findings": [f.to_dict() for f in self.findings],
        }


def _extract_exports(tree: ast.Module) -> frozenset:
    """String entries of a module-level ``__all__`` list/tuple."""
    names: List[str] = []
    for node in tree.body:
        if (
            isinstance(node, ast.Assign)
            and len(node.targets) == 1
            and isinstance(node.targets[0], ast.Name)
            and node.targets[0].id == "__all__"
            and isinstance(node.value, (ast.List, ast.Tuple))
        ):
            for element in node.value.elts:
                if isinstance(element, ast.Constant) and isinstance(element.value, str):
                    names.append(element.value)
    return frozenset(names)


def _is_rng_module(path: str) -> bool:
    normalized = path.replace(os.sep, "/")
    return normalized.endswith("sim/rng.py")


def _is_protocol_registry(path: str) -> bool:
    normalized = path.replace(os.sep, "/")
    return normalized.endswith("experiments/registry.py")


def _owns_wall_clock(path: str) -> bool:
    """The sanctioned wall-clock namespace: ``repro.obs.perf`` only.

    Everything else in the tree -- including ``obs/perf_report.py`` --
    obtains wall time through a perf object, so the exemption stays as
    narrow as the ``sim/rng.py`` RNG carve-out it mirrors.
    """
    normalized = path.replace(os.sep, "/")
    return normalized.endswith("obs/perf.py")


def _requires_public_docstrings(path: str) -> bool:
    """The API-surface files held to missing-public-docstring.

    The ``/obs/`` entry scopes the whole observability package --
    tracer/export (PR 3) and timeseries/report/baseline alike -- so
    new obs modules are covered the day they appear
    (``tests/test_lint_rules.py`` pins the roster).
    """
    normalized = path.replace(os.sep, "/")
    return (
        "/obs/" in normalized
        or normalized.endswith("experiments/spec.py")
        or normalized.endswith("experiments/registry.py")
    )


def _is_test_module(path: str) -> bool:
    normalized = path.replace(os.sep, "/")
    basename = os.path.basename(normalized)
    return (
        basename.startswith("test_")
        or basename == "conftest.py"
        or "/tests/" in normalized
        or "/benchmarks/" in normalized
    )


def _shard_package(path: str, root: Optional[str]) -> Optional[str]:
    """The shard-scope package ``path`` belongs to, if any.

    With a directory ``root`` the first path segment under it decides
    (fixture trees in tests work this way); otherwise the segment after
    a ``repro/`` component does (lint_source-style paths).
    """
    if root is not None:
        rel = os.path.relpath(path, root)
        if not rel.startswith(".."):
            parts = rel.replace(os.sep, "/").split("/")
            if len(parts) >= 2 and parts[0] in SHARD_SCOPE_PACKAGES:
                return parts[0]
            return None
    parts = path.replace(os.sep, "/").split("/")
    for i, segment in enumerate(parts[:-1]):
        if segment == "repro" and i + 1 < len(parts) - 1:
            if parts[i + 1] in SHARD_SCOPE_PACKAGES:
                return parts[i + 1]
    return None


def _build_context(
    source: str,
    path: str,
    tree: ast.Module,
    root: Optional[str],
    module_name: Optional[str],
) -> RuleContext:
    shard_package = _shard_package(path, root)
    return RuleContext(
        path=path,
        source=source,
        is_rng_module=_is_rng_module(path),
        is_package_init=os.path.basename(path) == "__init__.py",
        is_protocol_registry=_is_protocol_registry(path),
        is_test_module=_is_test_module(path),
        exported_names=_extract_exports(tree),
        requires_public_docstrings=_requires_public_docstrings(path),
        shard_package=shard_package,
        requires_module_shard_decl=shard_package in MODULE_DECL_PACKAGES,
        module_name=module_name,
        owns_wall_clock=_owns_wall_clock(path),
    )


def _lint_module(
    source: str,
    path: str,
    root: Optional[str] = None,
    module_name: Optional[str] = None,
) -> Tuple[List[Finding], int, SuppressionIndex]:
    """(surviving findings, suppressed count, suppression index)."""
    tree = ast.parse(source, filename=path)
    ctx = _build_context(source, path, tree, root, module_name)
    suppressions = SuppressionIndex.from_source(source)
    kept: List[Finding] = []
    suppressed = 0
    all_findings = collect_findings(tree, ctx) + collect_flow_findings(tree, ctx)
    for finding in all_findings:
        if suppressions.is_suppressed(finding.line, finding.rule):
            suppressed += 1
        else:
            kept.append(finding)
    for lineno in suppressions.malformed_lines:
        kept.append(
            Finding(
                path=path,
                line=lineno,
                col=0,
                rule="bad-suppression",
                message="'# lint: disable=' names no rules; list rule ids or 'all'",
                severity="low",
            )
        )
    return sorted(kept), suppressed, suppressions


def lint_source(source: str, path: str = "<string>") -> List[Finding]:
    """Lint one module's source text; raises SyntaxError on a bad parse.

    Runs the single-pass and flow rules only -- program rules need a
    directory tree (use :func:`lint_paths`).
    """
    findings, _suppressed, _index = _lint_module(source, path)
    return findings


def _iter_python_files(paths: Iterable[str]) -> List[str]:
    files: List[str] = []
    for path in paths:
        if os.path.isdir(path):
            for dirpath, dirnames, filenames in os.walk(path):
                dirnames.sort()
                dirnames[:] = [d for d in dirnames if d != "__pycache__"]
                files.extend(
                    os.path.join(dirpath, name)
                    for name in sorted(filenames)
                    if name.endswith(".py")
                )
        else:
            files.append(path)
    return sorted(set(files))


def _lint_root(paths: Sequence[str]) -> Optional[str]:
    """The directory that anchors the program pass: the first directory
    argument (None when only individual files were given)."""
    for path in paths:
        if os.path.isdir(path):
            return path
    return None


def _fingerprint_root(paths: Sequence[str], root: Optional[str]) -> str:
    if root is not None:
        return root
    first = next(iter(paths), ".")
    return os.path.dirname(os.path.abspath(first)) or "."


def lint_paths(
    paths: Sequence[str],
    baseline: Optional[Baseline] = None,
) -> LintReport:
    """Lint every ``.py`` file under the given files/directories.

    When the first path is a directory, the whole-program pass runs
    over it as well.  ``baseline`` (if given) splits findings into new
    vs. known; pass ``None`` to report everything as new.
    """
    report = LintReport()
    root = _lint_root(paths)
    index: Optional[ProgramIndex] = None
    if root is not None:
        index = build_program(root)
        report.program_stats = index.stats()
    suppression_by_path: Dict[str, SuppressionIndex] = {}
    all_findings: List[Finding] = []
    for filepath in _iter_python_files(paths):
        try:
            with open(filepath, "r", encoding="utf-8") as handle:
                source = handle.read()
        except OSError as exc:
            all_findings.append(
                Finding(
                    path=filepath,
                    line=1,
                    col=0,
                    rule="io-error",
                    message=f"cannot read file: {exc.strerror or exc}",
                    severity="high",
                )
            )
            continue
        report.files_checked += 1
        module_name = None
        if index is not None:
            info = index.module_for_path(filepath)
            if info is not None:
                module_name = info.name
        try:
            findings, suppressed, suppressions = _lint_module(
                source, path=filepath, root=root, module_name=module_name
            )
        except SyntaxError as exc:
            all_findings.append(
                Finding(
                    path=filepath,
                    line=exc.lineno or 1,
                    col=(exc.offset or 1) - 1,
                    rule="syntax-error",
                    message=f"file does not parse: {exc.msg}",
                    severity="high",
                )
            )
            continue
        report.suppressed += suppressed
        all_findings.extend(findings)
        suppression_by_path[os.path.abspath(filepath)] = suppressions
    if index is not None:
        for finding in collect_program_findings(index):
            suppressions = suppression_by_path.get(os.path.abspath(finding.path))
            if suppressions is not None and suppressions.is_suppressed(
                finding.line, finding.rule
            ):
                report.suppressed += 1
                continue
            all_findings.append(finding)
    all_findings = assign_fingerprints(
        all_findings, _fingerprint_root(paths, root)
    )
    if baseline is not None:
        new, known, stale = baseline.split(all_findings)
        report.findings = sorted(new)
        report.baselined = len(known)
        report.stale_baseline = stale
    else:
        report.findings = sorted(all_findings)
    return report


def render_text(report: LintReport) -> str:
    lines = [finding.render() for finding in report.findings]
    summary = (
        f"{len(report.findings)} finding(s) in {report.files_checked} file(s)"
        + (f", {report.suppressed} suppressed" if report.suppressed else "")
        + (f", {report.baselined} baselined" if report.baselined else "")
    )
    lines.append(summary)
    if report.stale_baseline:
        lines.append(
            f"{len(report.stale_baseline)} stale baseline entr"
            f"{'y' if len(report.stale_baseline) == 1 else 'ies'} "
            "(fingerprints match nothing; remove them from "
            "tools/lint_baseline.json): "
            + ", ".join(report.stale_baseline)
        )
    return "\n".join(lines)


def render_json(report: LintReport) -> str:
    return json.dumps(report.to_dict(), indent=2, sort_keys=True)


def run_lint(
    paths: Optional[Sequence[str]] = None,
    output_format: str = "text",
    baseline_path: Optional[str] = None,
    use_baseline: bool = True,
    update_baseline: bool = False,
) -> int:
    """Lint and print; the ``python -m repro lint`` backend.

    Returns the process exit code: 0 on a clean tree, 1 when any
    non-baselined finding survives suppression.  ``--update-baseline``
    rewrites ``tools/lint_baseline.json`` from the current finding set
    and exits 0.
    """
    if output_format not in ("text", "json"):
        raise ValueError(f"unknown lint output format {output_format!r}")
    target_paths = list(paths) if paths else [default_lint_root()]
    root = _lint_root(target_paths)
    baseline: Optional[Baseline] = None
    resolved_baseline_path = baseline_path
    if use_baseline and root is not None:
        if resolved_baseline_path is None:
            resolved_baseline_path = discover_baseline_path(root)
        if not update_baseline:
            baseline = load_baseline(resolved_baseline_path)
    report = lint_paths(target_paths, baseline=baseline)
    if update_baseline:
        if resolved_baseline_path is None:
            print("no baseline path: pass --baseline or lint a directory")
            return 2
        write_baseline(resolved_baseline_path, report.findings)
        print(
            f"wrote {len(report.findings)} fingerprint(s) to "
            f"{resolved_baseline_path}"
        )
        return 0
    print(render_json(report) if output_format == "json" else render_text(report))
    return 0 if report.ok else 1
