"""Network substrate: latency, bandwidth sharing, and the central server.

The paper's experiments run on two environments -- the PeerSim simulator
and the PlanetLab wide-area testbed.  Both are modelled here with the
same abstractions:

* :mod:`repro.net.latency` -- pairwise one-way latency models.  The
  simulator uses a planar embedding; the PlanetLab emulation layers
  heavy jitter and congestion episodes on top (see
  :mod:`repro.planetlab`).
* :mod:`repro.net.bandwidth` -- processor-sharing upload links for the
  server and every peer; transfer times grow when a source is busy,
  which is the mechanism behind server-overload startup delays.
* :mod:`repro.net.server` -- the central server: video store of last
  resort, tracker of online nodes per channel/category/video, and the
  popularity oracle that feeds SocialTube's prefetching.
"""

from repro.net.bandwidth import SharedUploadLink, TransferGrant
from repro.net.latency import (
    LatencyModel,
    PlanarLatencyModel,
    UniformLatencyModel,
    WanLatencyModel,
)
from repro.net.message import ChunkSource, LookupResult, VideoRequest
from repro.net.server import CentralServer

__all__ = [
    "SharedUploadLink",
    "TransferGrant",
    "LatencyModel",
    "PlanarLatencyModel",
    "UniformLatencyModel",
    "WanLatencyModel",
    "ChunkSource",
    "LookupResult",
    "VideoRequest",
    "CentralServer",
]
