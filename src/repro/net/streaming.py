# shard: module=shard-local -- instances live and die inside one run/shard
"""Chunk-level streaming playback model.

The evaluation's headline QoS metric is startup delay, but the paper's
motivation (Section I) is broader: "quality of service often suffers
from massive number of requests to the server during peak usage times".
This module models what happens *after* startup: the video's chunks
arrive at the granted transfer rate while playback consumes them at the
bitrate; whenever the playhead reaches a chunk that has not fully
arrived, playback **stalls** until it does.

Given the admission-time rate model (DESIGN.md §5) the whole schedule
is closed-form per chunk, so no extra simulation events are needed:

* chunk ``i`` (0-based) finishes arriving at
  ``t_arrive(i) = (i+1) * chunk_bits / rate``;
* playback would reach the end of chunk ``i`` at
  ``t_play(i) = startup + (i+1) * chunk_seconds + stalls so far``;
* a stall happens whenever ``t_arrive(i) > t_play(i-1) + chunk_seconds``
  -- i.e. the chunk is late even after all earlier waiting.

A transfer at or above the bitrate never stalls once the startup buffer
is filled; a saturated server share below the bitrate stalls
repeatedly, which is PA-VoD's failure mode under load.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List


class StreamingError(ValueError):
    """Raised for invalid playback-model parameters."""


@dataclass
class PlaybackReport:
    """Outcome of streaming one video at a fixed transfer rate."""

    startup_delay_s: float
    stall_count: int
    total_stall_s: float
    playback_duration_s: float
    #: Per-stall durations in playback order (empty when smooth).
    stalls: List[float] = field(default_factory=list)

    @property
    def continuity_index(self) -> float:
        """Fraction of wall-clock playback time spent *playing*.

        1.0 = perfectly smooth; the standard streaming-QoS continuity
        metric (playback time / (playback time + stall time)).
        """
        total = self.playback_duration_s + self.total_stall_s
        if total <= 0:
            return 1.0
        return self.playback_duration_s / total

    @property
    def smooth(self) -> bool:
        return self.stall_count == 0


def simulate_playback(
    video_length_s: float,
    bitrate_bps: float,
    transfer_rate_bps: float,
    chunks: int,
    startup_buffer_s: float,
    prefetched_first_chunk: bool = False,
    tracer=None,
    node=None,
    video=None,
) -> PlaybackReport:
    """Stream one video and report startup, stalls, and continuity.

    Parameters mirror the experiment config: the video is split into
    ``chunks`` equal chunks; playback needs ``startup_buffer_s`` of
    media buffered before starting (or starts immediately on a
    prefetched first chunk, with the remainder fetched in background).

    ``tracer`` (a truthy :class:`repro.obs.tracer.Tracer`) adds one
    ``playback.stall`` event per stall and a ``playback.report``
    summary, attributed to ``node``/``video``.  The schedule is
    closed-form -- evaluated at a single instant of virtual time -- so
    the per-stall *offsets into playback* travel as event attributes
    rather than as separate timestamps.
    """
    if video_length_s <= 0 or bitrate_bps <= 0:
        raise StreamingError("video length and bitrate must be positive")
    if transfer_rate_bps <= 0:
        raise StreamingError("transfer rate must be positive")
    if chunks < 1:
        raise StreamingError("need at least one chunk")
    if startup_buffer_s < 0:
        raise StreamingError("startup buffer must be non-negative")

    chunk_seconds = video_length_s / chunks
    chunk_bits = bitrate_bps * chunk_seconds

    # Arrival time of the *end* of each chunk, at the granted rate.
    # A prefetched first chunk is already local (arrival 0); the
    # remaining chunks stream from the provider starting at t=0.
    arrivals: List[float] = []
    clock = 0.0
    for index in range(chunks):
        if index == 0 and prefetched_first_chunk:
            arrivals.append(0.0)
            continue
        clock += chunk_bits / transfer_rate_bps
        arrivals.append(clock)

    # Startup: wait until `startup_buffer_s` of media has arrived
    # (clamped to the video length), or start right away on a prefetch.
    if prefetched_first_chunk:
        startup = 0.0  # the prefetched chunk covers the startup buffer
    else:
        buffered_target = min(startup_buffer_s, video_length_s)
        buffered_chunks = max(1, -(-buffered_target // chunk_seconds))  # ceil
        buffered_chunks = min(chunks, int(buffered_chunks))
        startup = arrivals[buffered_chunks - 1]

    # Play through the chunks, stalling on late arrivals.
    stalls: List[float] = []
    playhead = startup  # wall-clock time when the current chunk starts
    for index in range(chunks):
        ready_at = arrivals[index]
        if ready_at > playhead:
            stalls.append(ready_at - playhead)
            if tracer:
                tracer.event(
                    "playback.stall",
                    node=node,
                    video=video,
                    chunk=index,
                    stall_s=ready_at - playhead,
                )
            playhead = ready_at
        playhead += chunk_seconds

    if tracer:
        tracer.event(
            "playback.report",
            node=node,
            video=video,
            stalls=len(stalls),
            stall_s=sum(stalls),
            startup_s=startup,
        )
    return PlaybackReport(
        startup_delay_s=startup,
        stall_count=len(stalls),
        total_stall_s=sum(stalls),
        playback_duration_s=video_length_s,
        stalls=stalls,
    )


@dataclass
class ResumeReport:
    """Outcome of resuming one interrupted transfer from a new provider.

    ``completion_s`` is measured from the *interruption instant*: the
    wall-clock span covering the failover gap, any extra stalls, and the
    remaining playback.  The experiment runner schedules the watch's new
    finish event ``completion_s - resume_gap_s`` after the resume fires.
    """

    stall_count: int
    total_stall_s: float
    completion_s: float
    #: Per-stall durations in playback order (empty when smooth).
    stalls: List[float] = field(default_factory=list)


def simulate_resume(
    video_length_s: float,
    bitrate_bps: float,
    transfer_rate_bps: float,
    chunks: int,
    chunks_done: int,
    playback_position_s: float,
    resume_gap_s: float,
    tracer=None,
    node=None,
    video=None,
) -> ResumeReport:
    """Segmented playback after a mid-transfer provider failover.

    The original provider delivered chunks ``[0, chunks_done)`` before
    crashing; the new provider streams the rest at
    ``transfer_rate_bps`` starting ``resume_gap_s`` after the
    interruption (detection timeout + retries).  The playhead restarts
    at ``playback_position_s`` (where the viewer was when the outage
    hit, at chunk granularity) and walks the remaining chunks with the
    same late-arrival stall rule as :func:`simulate_playback` -- the
    failover gap itself counts as a stall whenever playback needs a
    chunk the outage delayed.

    Returns the extra stalls attributable to the failover plus the
    wall-clock time from interruption to the last chunk both *arrived
    and played* -- closed form, like the happy path, so recovery costs
    no extra simulation events.
    """
    if video_length_s <= 0 or bitrate_bps <= 0:
        raise StreamingError("video length and bitrate must be positive")
    if transfer_rate_bps <= 0:
        raise StreamingError("transfer rate must be positive")
    if chunks < 1:
        raise StreamingError("need at least one chunk")
    if not 0 <= chunks_done < chunks:
        raise StreamingError("chunks_done must be in [0, chunks)")
    if resume_gap_s < 0:
        raise StreamingError("resume gap must be non-negative")

    chunk_seconds = video_length_s / chunks
    chunk_bits = bitrate_bps * chunk_seconds
    position = min(max(playback_position_s, 0.0), video_length_s)
    start_chunk = min(int(position // chunk_seconds), chunks - 1)

    stalls: List[float] = []
    playhead = 0.0  # wall clock since the interruption
    for index in range(start_chunk, chunks):
        if index < chunks_done:
            ready_at = 0.0  # already local when the provider died
        else:
            ready_at = (
                resume_gap_s
                + (index - chunks_done + 1) * chunk_bits / transfer_rate_bps
            )
        if ready_at > playhead:
            stalls.append(ready_at - playhead)
            if tracer:
                tracer.event(
                    "playback.stall",
                    node=node,
                    video=video,
                    chunk=index,
                    stall_s=ready_at - playhead,
                )
            playhead = ready_at
        playhead += chunk_seconds

    if tracer:
        tracer.event(
            "failover.playback",
            node=node,
            video=video,
            stalls=len(stalls),
            stall_s=sum(stalls),
            chunk=start_chunk,
        )
    return ResumeReport(
        stall_count=len(stalls),
        total_stall_s=sum(stalls),
        completion_s=playhead,
        stalls=stalls,
    )


def stall_free_rate(bitrate_bps: float, safety_factor: float = 1.0) -> float:
    """Minimum transfer rate for stall-free playback after startup.

    With equal-size chunks and a filled startup buffer, any rate at or
    above the bitrate is sufficient; ``safety_factor`` adds headroom for
    callers that admit at a load-dependent share.
    """
    if bitrate_bps <= 0:
        raise StreamingError("bitrate must be positive")
    if safety_factor < 1.0:
        raise StreamingError("safety_factor must be >= 1")
    return bitrate_bps * safety_factor
