# shard: module=shard-local -- instances live and die inside one run/shard
"""The central server.

In every system the paper evaluates, a central server remains in the
loop with three roles:

1. **Tracker** -- knows which nodes are online, which channel overlays /
   per-video overlays they belong to, and (for PA-VoD) who is *currently
   watching* each video.  Joining nodes ask it for bootstrap peers.
2. **Source of last resort** -- owns every video; when the P2P search
   fails, the requester downloads from the server's capped upload link.
3. **Popularity oracle** -- YouTube's site knows per-video view counts;
   SocialTube's prefetching consumes the server's periodically published
   per-channel popularity ranking (Section IV-B).

The server is deliberately protocol-agnostic: the three protocols use
different subsets of the tracker maps.
"""

from __future__ import annotations

from collections import defaultdict
from random import Random
from typing import Dict, List, Optional, Sequence, Set

from repro.net.bandwidth import SharedUploadLink
from repro.obs.tracer import NULL_TRACER


class ServerOverloadError(Exception):
    """Raised by :meth:`CentralServer.serve` when admission control sheds.

    Only possible while a flash-crowd window holds an
    ``admission_limit`` on the server; the requester is expected to
    retry under the plan's :class:`~repro.faults.plan.RetryPolicy` and
    force a degraded admit past the budget.
    """


class CentralServer:
    """Tracker + fallback video source + popularity oracle.

    Parameters
    ----------
    catalog:
        Any object exposing the trace-dataset read interface used here:
        ``channel_of_video(video_id)``, ``videos_of_channel(channel_id)``,
        ``category_of_channel(channel_id)``, ``channels_of_category(cat)``
        and ``video_views(video_id)``.  :class:`repro.trace.TraceDataset`
        satisfies it.
    capacity_bps:
        Total server upload capacity (Table I).
    rng:
        Random stream used for bootstrap-peer selection.
    """

    def __init__(self, catalog, capacity_bps: float, rng: Random):
        self.catalog = catalog
        self.uplink = SharedUploadLink(capacity_bps, owner_id=None)
        self._rng = rng
        # Tracker state ----------------------------------------------------
        self._online: Set[int] = set()
        self._channel_members: Dict[int, Set[int]] = defaultdict(set)
        self._video_overlay_members: Dict[int, Set[int]] = defaultdict(set)
        self._current_watchers: Dict[int, Set[int]] = defaultdict(set)
        # Bookkeeping the paper's comparison cares about --------------------
        self.requests_served = 0
        self.tracker_lookups = 0
        self.subscription_reports = 0
        # Infrastructure-fault state (repro.faults v2) ----------------------
        #: While True the tracker is dark: every lookup fails (counted,
        #: no RNG consumed) and registrations are dropped on the floor.
        self.tracker_down = False
        #: Flash-crowd admission control: when > 0, ``serve`` sheds any
        #: request that would exceed this many concurrent transfers.
        self.admission_limit = 0
        self.tracker_lookup_failures = 0
        self.requests_shed = 0
        #: Optional repro.obs tracer (set by the experiment runner).
        #: When truthy, every fallback serve and tracker lookup emits a
        #: trace event -- the raw feed behind the server-load time
        #: series (Figs 9-11 are trends of exactly this quantity).
        self.tracer = NULL_TRACER

    def _count_lookup(self, kind: str) -> None:
        """Count one tracker lookup and trace it (``server.lookup``)."""
        self.tracker_lookups += 1
        if self.tracer:
            self.tracer.event("server.lookup", kind=kind)

    def _count_lookup_failed(self, kind: str) -> None:
        """Count one lookup that hit a dark tracker (``tracker.lookup_failed``)."""
        self.tracker_lookup_failures += 1
        if self.tracer:
            self.tracer.event("tracker.lookup_failed", kind=kind)

    # -- tracker outage (repro.faults v2) -----------------------------------

    def tracker_outage_begin(self) -> None:
        """Take the tracker down *and lose its state*.

        Peer and watch registrations made during the outage are dropped
        (the reports have nowhere to land); recovery is
        :meth:`tracker_outage_end` followed by the runner's
        re-registration sweep, which asks every online peer to
        re-announce through ``protocol.reannounce``.
        """
        self.tracker_down = True
        self._online.clear()
        self._channel_members.clear()
        self._video_overlay_members.clear()
        self._current_watchers.clear()
        if self.tracer:
            self.tracer.event("tracker.outage", phase="begin")

    def tracker_outage_end(self) -> None:
        """Bring the tracker back up (empty-handed) and accept reports again."""
        self.tracker_down = False
        if self.tracer:
            self.tracer.event("tracker.outage", phase="end")

    # -- presence ----------------------------------------------------------

    def node_online(self, node_id: int) -> None:
        """Mark a node online (start of a session)."""
        if self.tracker_down:
            return
        self._online.add(node_id)

    def node_offline(self, node_id: int) -> None:
        """Mark a node offline and purge it from all tracker maps."""
        if self.tracker_down:
            return
        self._online.discard(node_id)
        for members in self._channel_members.values():
            members.discard(node_id)
        for members in self._video_overlay_members.values():
            members.discard(node_id)
        for watchers in self._current_watchers.values():
            watchers.discard(node_id)

    def is_online(self, node_id: int) -> bool:
        return node_id in self._online

    @property
    def online_count(self) -> int:
        return len(self._online)

    # -- channel-overlay tracker (SocialTube) -------------------------------

    def register_channel_member(self, channel_id: int, node_id: int) -> None:
        """Record that a node joined a channel overlay.

        Per Section IV-A, users report subscription changes so the
        server can bootstrap newcomers; this is the (cheap) state
        SocialTube asks the server to keep, versus NetTube's per-video
        watch reports.
        """
        if self.tracker_down:
            return
        self._channel_members[channel_id].add(node_id)
        self.subscription_reports += 1

    def unregister_channel_member(self, channel_id: int, node_id: int) -> None:
        if self.tracker_down:
            return
        self._channel_members[channel_id].discard(node_id)

    def channel_members(self, channel_id: int) -> Set[int]:
        """Online members of one channel overlay (read-only view)."""
        return self._channel_members[channel_id]

    def random_channel_member(
        self, channel_id: int, exclude: Optional[int] = None
    ) -> Optional[int]:
        """A uniformly random online member of the channel overlay."""
        if self.tracker_down:
            self._count_lookup_failed("channel-member")
            return None
        self._count_lookup("channel-member")
        members = self._channel_members.get(channel_id)
        if not members:
            return None
        candidates = [m for m in members if m != exclude]
        if not candidates:
            return None
        return self._rng.choice(candidates)

    def random_members_per_channel_in_category(
        self, category_id: int, exclude: Optional[int] = None, limit: Optional[int] = None
    ) -> List[int]:
        """Random members drawn across the channels of a category.

        This is the bootstrap the server performs for a joining
        SocialTube node: "the server also randomly chooses a node in
        each channel in this channel's higher-level overlay".  The draw
        round-robins over the category's non-empty channels (one member
        per channel per round) so that when the category has fewer
        occupied channels than ``limit``, additional members of the same
        channels are handed out rather than returning short.
        """
        if self.tracker_down:
            self._count_lookup_failed("category-bootstrap")
            return []
        self._count_lookup("category-bootstrap")
        channels = list(self.catalog.channels_of_category(category_id))
        self._rng.shuffle(channels)
        pools: List[List[int]] = []
        for channel_id in channels:
            members = [
                m for m in self._channel_members.get(channel_id, ()) if m != exclude
            ]
            if members:
                self._rng.shuffle(members)
                pools.append(members)
        picks: List[int] = []
        round_index = 0
        while pools:
            pools = [pool for pool in pools if round_index < len(pool)]
            for pool in pools:
                picks.append(pool[round_index])
                if limit is not None and len(picks) >= limit:
                    return picks
            round_index += 1
        return picks

    def find_holder_in_category(
        self,
        category_id: int,
        is_holder,
        exclude: Optional[int] = None,
        scan_limit: int = 200,
    ) -> Optional[int]:
        """A category member that holds the requested video, if any.

        Implements the Section IV-A join assist: when a video's channel
        overlay is empty, "the server randomly chooses a node in each
        channel overlay (including a node with the video) in the
        higher-level overlay of the video's interest".  The scan is
        bounded to keep the server's work per request constant.
        """
        if self.tracker_down:
            self._count_lookup_failed("category-holder")
            return None
        self._count_lookup("category-holder")
        scanned = 0
        channels = list(self.catalog.channels_of_category(category_id))
        self._rng.shuffle(channels)
        for channel_id in channels:
            for member in self._channel_members.get(channel_id, ()):
                if member == exclude:
                    continue
                scanned += 1
                if is_holder(member):
                    return member
                if scanned >= scan_limit:
                    return None
        return None

    # -- per-video overlay tracker (NetTube) --------------------------------

    def register_video_overlay_member(self, video_id: int, node_id: int) -> None:
        if self.tracker_down:
            return
        self._video_overlay_members[video_id].add(node_id)
        self.subscription_reports += 1

    def unregister_video_overlay_member(self, video_id: int, node_id: int) -> None:
        if self.tracker_down:
            return
        self._video_overlay_members[video_id].discard(node_id)

    def video_overlay_members(self, video_id: int) -> Set[int]:
        return self._video_overlay_members[video_id]

    def random_video_overlay_members(
        self, video_id: int, count: int, exclude: Optional[int] = None
    ) -> List[int]:
        """Up to ``count`` random members of a per-video overlay."""
        if self.tracker_down:
            self._count_lookup_failed("video-overlay")
            return []
        self._count_lookup("video-overlay")
        members = [m for m in self._video_overlay_members.get(video_id, ()) if m != exclude]
        if len(members) <= count:
            return members
        return self._rng.sample(members, count)

    # -- current-watcher tracker (PA-VoD) ------------------------------------

    def watch_started(self, video_id: int, node_id: int) -> None:
        """PA-VoD: a node begins playback and becomes a potential provider."""
        if self.tracker_down:
            return
        self._current_watchers[video_id].add(node_id)

    def watch_finished(self, video_id: int, node_id: int) -> None:
        """PA-VoD: once playback ends the node stops providing the video."""
        if self.tracker_down:
            return
        self._current_watchers[video_id].discard(node_id)

    def current_watchers(self, video_id: int, exclude: Optional[int] = None) -> List[int]:
        if self.tracker_down:
            self._count_lookup_failed("current-watchers")
            return []
        self._count_lookup("current-watchers")
        return [w for w in self._current_watchers.get(video_id, ()) if w != exclude]

    # -- popularity oracle ----------------------------------------------------

    def top_videos_of_channel(self, channel_id: int, count: int) -> List[int]:
        """The ``count`` most-viewed videos of a channel.

        This is the periodically published popularity feed SocialTube's
        channel-facilitated prefetching ranks on.
        """
        videos: Sequence[int] = self.catalog.videos_of_channel(channel_id)
        ranked = sorted(videos, key=self.catalog.video_views, reverse=True)
        return list(ranked[:count])

    # -- fallback video source -------------------------------------------------

    def serve(self, bits: float, force: bool = False):
        """Admit one download on the server uplink; returns the grant.

        When a tracer is wired, each serve also emits a
        ``server.request`` event carrying the post-admission load
        (``active`` concurrent transfers) -- the live feed behind the
        "server load relief as overlays warm up" time series.

        While a flash-crowd window holds ``admission_limit`` above
        zero, a request that would push the uplink past the limit is
        *shed* (:class:`ServerOverloadError`, traced as
        ``server.shed``) unless ``force`` is True -- the forced path is
        the retry-budget-spent degraded admit, and failover resumes,
        which may not be bounced back into the failure they are
        recovering from.
        """
        if (
            self.admission_limit > 0
            and not force
            and self.uplink.active_transfers >= self.admission_limit
        ):
            self.requests_shed += 1
            if self.tracer:
                self.tracer.event(
                    "server.shed",
                    bits=bits,
                    active=self.uplink.active_transfers,
                    limit=self.admission_limit,
                )
            raise ServerOverloadError(
                f"admission limit {self.admission_limit} reached "
                f"({self.uplink.active_transfers} active transfers)"
            )
        self.requests_served += 1
        grant = self.uplink.admit(bits)
        if self.tracer:
            self.tracer.event(
                "server.request",
                bits=bits,
                active=self.uplink.active_transfers,
            )
        return grant
