# shard: module=shard-local -- instances live and die inside one run/shard
"""Processor-sharing upload links.

Every video source -- the central server and each peer -- owns one
:class:`SharedUploadLink`.  When a link with capacity ``C`` bits/s is
carrying ``k`` concurrent transfers, each transfer receives ``C / k``.

To keep the event count tractable at 10,000-node scale we use the
standard *admission-time share* approximation: a transfer's rate is
fixed when it is admitted (capacity divided by the number of transfers
then active, including itself) rather than continuously re-balanced.
Under the paper's workloads the approximation errs in the conservative
direction for an overloaded server: once many transfers pile up, every
newcomer sees a tiny share and a long delay, which is exactly the
overload signal Fig. 17 relies on.

A grant also exposes :meth:`TransferGrant.time_for_bits` so the harness
can price both the startup buffer (what the user waits for) and the
remainder of the video (which occupies the link until completion).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional


class BandwidthError(ValueError):
    """Raised for invalid link configurations or grant misuse."""


@dataclass
class TransferGrant:
    """One admitted transfer on a :class:`SharedUploadLink`."""

    link: "SharedUploadLink"
    rate_bps: float
    released: bool = field(default=False)

    def time_for_bits(self, bits: float) -> float:
        """Seconds needed to move ``bits`` at this grant's rate."""
        if bits < 0:
            raise BandwidthError("bits must be non-negative")
        if self.rate_bps <= 0:
            raise BandwidthError("grant has no rate; link capacity exhausted")
        return bits / self.rate_bps

    def release(self) -> None:
        """Return the slot to the link.  Idempotent."""
        if not self.released:
            self.released = True
            self.link._active -= 1
            if self.link.tracer:
                self.link.tracer.event(
                    "bandwidth.release",
                    owner=self.link.owner_id,
                    active=self.link._active,
                )


class SharedUploadLink:
    """An upload link shared equally among its active transfers."""

    def __init__(self, capacity_bps: float, owner_id: Optional[int] = None):
        if capacity_bps <= 0:
            raise BandwidthError("capacity_bps must be positive")
        self.capacity_bps = float(capacity_bps)
        self.owner_id = owner_id
        self._active = 0
        self.total_admitted = 0
        self.total_bits_served = 0.0
        #: Optional repro.obs tracer (set by the experiment runner).
        #: When truthy, admissions and releases emit trace events with
        #: the grant's fixed share -- the raw series behind chunk-source
        #: attribution and server-saturation analysis.
        self.tracer = None

    @property
    def active_transfers(self) -> int:
        """Number of transfers currently holding a slot."""
        return self._active

    @property
    def current_share_bps(self) -> float:
        """Rate the *next* admitted transfer would receive."""
        return self.capacity_bps / (self._active + 1)

    def admit(self, bits: float = 0.0) -> TransferGrant:
        """Admit a transfer, fixing its rate at the current share.

        ``bits`` is only used for accounting (total bytes served by this
        source); pass the transfer size when known.
        """
        if bits < 0:
            raise BandwidthError("bits must be non-negative")
        self._active += 1
        self.total_admitted += 1
        self.total_bits_served += bits
        rate = self.capacity_bps / self._active
        if self.tracer:
            self.tracer.event(
                "bandwidth.admit",
                owner=self.owner_id,
                rate_bps=rate,
                active=self._active,
                bits=bits,
            )
        return TransferGrant(link=self, rate_bps=rate)

    def utilization_hint(self) -> float:
        """Rough load indicator: active transfers per unit capacity share.

        1.0 means one active transfer; higher values mean each transfer
        gets a proportionally smaller slice.
        """
        return float(self._active)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        who = "server" if self.owner_id is None else f"peer {self.owner_id}"
        return (
            f"SharedUploadLink({who}, {self.capacity_bps/1e6:.1f} Mbps, "
            f"active={self._active})"
        )
