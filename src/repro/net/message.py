# shard: module=shard-local -- instances live and die inside one run/shard
"""Message and result records exchanged between peers, server and harness."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional


class ChunkSource(enum.Enum):
    """Where a video chunk was obtained from.

    The normalized-peer-bandwidth metric (Fig. 16) is the fraction of
    chunks whose source is :attr:`PEER` (or a peer-sourced
    :attr:`PREFETCH`) out of all chunks received.
    """

    SERVER = "server"
    PEER = "peer"
    CACHE = "cache"
    PREFETCH_PEER = "prefetch_peer"
    PREFETCH_SERVER = "prefetch_server"

    @property
    def is_peer(self) -> bool:
        """True when the bytes were uploaded by another peer."""
        return self in (ChunkSource.PEER, ChunkSource.PREFETCH_PEER)

    @property
    def counts_for_bandwidth(self) -> bool:
        """Chunks replayed from the local cache consumed nobody's uplink."""
        return self is not ChunkSource.CACHE


@dataclass
class VideoRequest:
    """A user's request to watch one video."""

    user_id: int
    video_id: int
    time: float


@dataclass
class LookupResult:
    """Outcome of a provider lookup for one video request.

    ``provider_id`` is None when the request must be served by the
    central server (``from_server=True``) or was satisfied locally
    (``from_cache=True``).  ``hops`` counts overlay forwarding hops the
    query travelled before a provider answered; ``peers_contacted``
    counts distinct peers that processed the query (search overhead).
    """

    video_id: int
    provider_id: Optional[int] = None
    from_server: bool = False
    from_cache: bool = False
    hops: int = 0
    peers_contacted: int = 0
    via_inter_link: bool = False
    query_path: List[int] = field(default_factory=list)

    @property
    def from_peer(self) -> bool:
        """True when a peer (not the server, not the local cache) serves."""
        return self.provider_id is not None and not self.from_server and not self.from_cache

    def describe(self) -> str:
        """Human-readable one-liner, used by example scripts."""
        if self.from_cache:
            return f"video {self.video_id}: local cache"
        if self.from_server:
            return f"video {self.video_id}: server fallback after contacting {self.peers_contacted} peers"
        level = "inter-link" if self.via_inter_link else "inner-link"
        return (
            f"video {self.video_id}: peer {self.provider_id} via {level} "
            f"({self.hops} hops, {self.peers_contacted} peers contacted)"
        )
