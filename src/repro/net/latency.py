# shard: module=shard-local -- instances live and die inside one run/shard
"""Pairwise latency models.

One-way latencies drive two delays the paper measures:

* query forwarding: each overlay hop of Algorithm 1 costs one one-way
  latency (request) -- the provider's answer costs another;
* the first-byte delay of a chunk transfer.

The simulator environment embeds nodes in a unit square (a standard
PeerSim-style synthetic topology): latency is a base propagation term
proportional to distance plus lognormal jitter.  The WAN model used by
the PlanetLab emulation draws inter-node distances from wider,
continent-scale scales and adds heavy jitter and congestion episodes,
matching the "unstable network environment" the paper observed.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from random import Random
from typing import Dict, Sequence, Tuple

#: Node id reserved for the central server in latency computations.
SERVER_NODE_ID = -1  # shard: shared-read


class LatencyModel(ABC):
    """Interface: sample the one-way latency between two endpoints."""

    @abstractmethod
    def sample(self, src: int, dst: int) -> float:
        """One-way latency in seconds from ``src`` to ``dst``."""

    def rtt(self, src: int, dst: int) -> float:
        """Round-trip latency (two independent one-way samples)."""
        return self.sample(src, dst) + self.sample(dst, src)

    def min_one_way_s(self) -> float:
        """A sound lower bound on any distinct-pair one-way sample.

        This is the conservative *lookahead* of the sharded coordinator
        (:mod:`repro.shard`): no interaction between nodes on different
        shards can take effect sooner than this bound, so shards may
        advance that far between mailbox barriers.  The default is 0.0
        -- always sound, degenerating to fully serialized windows.
        Models whose distributions have a positive infimum override it:
        uniform has one by construction; the planar and WAN models have
        one only under the bounded-below jitter variant (a positive
        ``jitter_floor``), because raw lognormal jitter is unbounded
        below.
        """
        return 0.0


class UniformLatencyModel(LatencyModel):
    """Latency uniform in ``[low, high]``; handy for unit tests."""

    def __init__(self, rng: Random, low: float = 0.02, high: float = 0.08):
        if low < 0 or high < low:
            raise ValueError("need 0 <= low <= high")
        self._rng = rng
        self.low = low
        self.high = high

    def sample(self, src: int, dst: int) -> float:
        if src == dst:
            return 0.0
        return self._rng.uniform(self.low, self.high)

    def min_one_way_s(self) -> float:
        return self.low


class PlanarLatencyModel(LatencyModel):
    """Planar-embedding latency: base + distance * scale + jitter.

    Each node is assigned a uniform random coordinate in the unit square
    on first sight (the server sits at the centre).  Latency between two
    nodes is::

        base + euclidean_distance * distance_scale + Lognormal jitter

    With the defaults, same-continent pairs land in the 20-90 ms range
    typical of broadband paths.
    """

    def __init__(
        self,
        rng: Random,
        base: float = 0.010,
        distance_scale: float = 0.080,
        jitter_sigma: float = 0.25,
        jitter_floor: float = 0.0,
    ):
        if base < 0 or distance_scale < 0 or jitter_sigma < 0:
            raise ValueError("latency parameters must be non-negative")
        if not 0 <= jitter_floor <= 1:
            raise ValueError("jitter_floor must be in [0, 1]")
        self._rng = rng
        self.base = base
        self.distance_scale = distance_scale
        self.jitter_sigma = jitter_sigma
        #: Bounded-below jitter variant: clamp the lognormal multiplier
        #: at this floor, giving the model the positive infimum that
        #: makes ``min_one_way_s`` (the shard lookahead) nonzero.  At
        #: the default 0.0 the clamp is a no-op -- the lognormal is
        #: strictly positive -- so draw sequences are byte-identical to
        #: the unfloored model.  At 0.25 with sigma 0.25, the clamp
        #: fires with probability ~2e-8: statistically invisible, but it
        #: turns serialized windows into a 2.5 ms lookahead.
        self.jitter_floor = jitter_floor
        self._coords: Dict[int, Tuple[float, float]] = {
            SERVER_NODE_ID: (0.5, 0.5),
        }

    def _coord(self, node: int) -> Tuple[float, float]:
        coord = self._coords.get(node)
        if coord is None:
            coord = (self._rng.random(), self._rng.random())
            self._coords[node] = coord
        return coord

    def distance(self, src: int, dst: int) -> float:
        """Euclidean distance between the two nodes' embeddings."""
        (x1, y1), (x2, y2) = self._coord(src), self._coord(dst)
        return math.hypot(x1 - x2, y1 - y2)

    def sample(self, src: int, dst: int) -> float:
        if src == dst:
            return 0.0
        propagation = self.base + self.distance(src, dst) * self.distance_scale
        jitter = self._rng.lognormvariate(0.0, self.jitter_sigma)
        if jitter < self.jitter_floor:
            jitter = self.jitter_floor
        return propagation * jitter

    def min_one_way_s(self) -> float:
        """``base * jitter_floor``: distance can be 0, jitter cannot
        drop below the floor -- sound, and positive when floored."""
        return self.base * self.jitter_floor


class WanLatencyModel(LatencyModel):
    """Wide-area (PlanetLab-like) latency with congestion episodes.

    Nodes are scattered over a handful of *sites* (continents); the
    inter-site latency matrix spans 30-250 ms.  On top of propagation:

    * per-sample lognormal jitter with a heavy sigma, and
    * congestion episodes: with probability ``congestion_prob`` a sample
      is inflated by ``congestion_factor`` (queueing at a loaded
      PlanetLab node or transit link).

    The emulated testbed (:mod:`repro.planetlab`) additionally injects
    connection *failures*; this class only shapes delay.
    """

    #: Representative one-way inter-site latencies in seconds (symmetric).
    #: Frozen (tuple-of-tuples): the class attribute is shared by every
    #: instance, so a mutable matrix here would let one model's edit
    #: leak into all others.
    DEFAULT_SITE_LATENCY: Tuple[Tuple[float, ...], ...] = (
        (0.015, 0.045, 0.120, 0.150, 0.220, 0.180),
        (0.045, 0.018, 0.100, 0.130, 0.250, 0.200),
        (0.120, 0.100, 0.020, 0.060, 0.160, 0.140),
        (0.150, 0.130, 0.060, 0.022, 0.180, 0.120),
        (0.220, 0.250, 0.160, 0.180, 0.025, 0.090),
        (0.180, 0.200, 0.140, 0.120, 0.090, 0.020),
    )

    def __init__(
        self,
        rng: Random,
        jitter_sigma: float = 0.45,
        congestion_prob: float = 0.05,
        congestion_factor: float = 6.0,
        site_latency: Sequence[Sequence[float]] = None,
        jitter_floor: float = 0.0,
    ):
        if not 0 <= congestion_prob <= 1:
            raise ValueError("congestion_prob must be in [0, 1]")
        if congestion_factor < 1:
            raise ValueError("congestion_factor must be >= 1")
        if not 0 <= jitter_floor <= 1:
            raise ValueError("jitter_floor must be in [0, 1]")
        self._rng = rng
        self.jitter_sigma = jitter_sigma
        self.congestion_prob = congestion_prob
        self.congestion_factor = congestion_factor
        #: Bounded-below jitter variant (see
        #: :class:`PlanarLatencyModel.jitter_floor`): 0.0 keeps draw
        #: sequences byte-identical to the unfloored model; a positive
        #: floor gives WAN shards a nonzero lookahead.  Congestion only
        #: inflates samples, so the bound stays sound under episodes.
        self.jitter_floor = jitter_floor
        self.site_latency = site_latency or self.DEFAULT_SITE_LATENCY
        self._sites: Dict[int, int] = {SERVER_NODE_ID: 0}

    @property
    def num_sites(self) -> int:
        return len(self.site_latency)

    def site_of(self, node: int) -> int:
        """The site a node lives at (assigned uniformly on first sight)."""
        site = self._sites.get(node)
        if site is None:
            site = self._rng.randrange(self.num_sites)
            self._sites[node] = site
        return site

    def sample(self, src: int, dst: int) -> float:
        if src == dst:
            return 0.0
        base = self.site_latency[self.site_of(src)][self.site_of(dst)]
        jitter = self._rng.lognormvariate(0.0, self.jitter_sigma)
        if jitter < self.jitter_floor:
            jitter = self.jitter_floor
        latency = base * jitter
        if self._rng.random() < self.congestion_prob:
            latency *= self.congestion_factor
        return latency

    def min_one_way_s(self) -> float:
        """Smallest matrix entry times the jitter floor (congestion and
        the congestion factor only inflate, never shrink)."""
        return min(min(row) for row in self.site_latency) * self.jitter_floor
