"""SocialTube reproduction.

A from-scratch Python reproduction of "An Interest-based Per-Community
P2P Hierarchical Structure for Short Video Sharing in the YouTube
Social Network" (Shen, Lin, Chandler -- ICDCS 2014): the SocialTube
protocol, the NetTube and PA-VoD baselines, a synthetic YouTube
social-network trace with the paper's statistical structure, an
event-driven simulator, an emulated PlanetLab testbed, and a harness
that regenerates every table and figure of the paper.

Quickstart::

    from repro.experiments import ExperimentSpec, SimulationConfig, run_spec

    spec = ExperimentSpec(
        protocol="socialtube", config=SimulationConfig.smoke_scale()
    )
    result = run_spec(spec)
    print("\n".join(result.render_rows()))

Multi-seed sweeps with confidence intervals fan out across processes::

    from repro.experiments import aggregate_sweep, run_sweep, sweep_specs

    specs = sweep_specs(
        ["socialtube", "nettube"],
        SimulationConfig.smoke_scale(),
        seeds=[1, 2, 3],
    )
    results = run_sweep(specs, jobs=4)   # byte-identical to jobs=1
    for aggregate in aggregate_sweep(specs, results):
        print("\n".join(aggregate.render_rows()))
"""

__version__ = "1.0.0"
