"""SocialTube reproduction.

A from-scratch Python reproduction of "An Interest-based Per-Community
P2P Hierarchical Structure for Short Video Sharing in the YouTube
Social Network" (Shen, Lin, Chandler -- ICDCS 2014): the SocialTube
protocol, the NetTube and PA-VoD baselines, a synthetic YouTube
social-network trace with the paper's statistical structure, an
event-driven simulator, an emulated PlanetLab testbed, and a harness
that regenerates every table and figure of the paper.

Quickstart::

    from repro.experiments.runner import run_experiment
    from repro.experiments.config import SimulationConfig

    result = run_experiment("socialtube", config=SimulationConfig.smoke_scale())
    print("\n".join(result.render_rows()))
"""

__version__ = "1.0.0"
