"""Bench: Fig 2 -- # of videos added over time (upload growth)."""

from conftest import print_figure


def test_bench_fig02_videos_added_over_time(benchmark, trace_analysis):
    figure = benchmark(trace_analysis.fig2_videos_added_over_time)
    print_figure(
        figure.render_rows(),
        "upload volume grows steeply over the two crawled years (O1); "
        f"measured growth ratio {figure.notes['growth_ratio']:.2f}x "
        "(second half vs first half)",
    )
    assert figure.notes["growth_ratio"] > 1.5
