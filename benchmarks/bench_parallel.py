"""Wall-clock benchmark for the parallel sweep orchestrator.

Not a pytest benchmark: run directly with

    PYTHONPATH=src python benchmarks/bench_parallel.py

Times the quick-scale three-protocol, two-seed sweep three ways --

* ``serial``    -- ``run_sweep(specs, jobs=1)`` with a warm trace cache;
* ``parallel``  -- ``run_sweep(specs, jobs=2)`` with the same warm cache;
* ``legacy``    -- estimated pre-cache cost: every run re-synthesized the
  corpus, so legacy ~= serial + (n_runs - 1) * synthesis.

and writes the measurements to ``BENCH_parallel.json`` at the repo root.
The parallel path is only expected to beat serial when the host has more
than one core; the JSON records ``cpu_count`` so the numbers can be read
honestly.  Determinism (serial == parallel, byte for byte) is asserted
here too, on top of the tier-1 tests that already pin it.
"""

from __future__ import annotations

import json
import time

import harness

from repro.experiments.config import SimulationConfig
from repro.experiments.parallel import run_sweep, sweep_specs
from repro.experiments.trace_cache import shared_trace_cache
from repro.trace.synthesizer import TraceSynthesizer

PROTOCOLS = ("pavod", "nettube", "socialtube")
SEEDS = (1, 2)
OUTPUT = "BENCH_parallel.json"


def main() -> None:
    config = SimulationConfig.smoke_scale()
    specs = sweep_specs(PROTOCOLS, config, seeds=SEEDS)

    t0 = time.perf_counter()
    TraceSynthesizer(config.trace).synthesize()
    synthesis_s = time.perf_counter() - t0

    # Warm the shared cache so both timed paths start from the same state.
    shared_trace_cache.dataset_for(config.trace)

    serial_s, serial = harness.best_of(lambda: run_sweep(specs, jobs=1), repeats=1)
    parallel_s, parallel = harness.best_of(
        lambda: run_sweep(specs, jobs=2), repeats=1
    )

    if serial != parallel:
        raise AssertionError("jobs=2 diverged from jobs=1 -- determinism broken")

    legacy_s = serial_s + (len(specs) - 1) * synthesis_s
    payload = {
        **harness.envelope(
            "parallel multi-seed sweep (quick scale)",
            "PYTHONPATH=src python benchmarks/bench_parallel.py",
        ),
        "sweep": {
            "protocols": list(PROTOCOLS),
            "seeds": list(SEEDS),
            "num_runs": len(specs),
            "num_nodes": config.num_nodes,
        },
        "timings_s": {
            "trace_synthesis_once": round(synthesis_s, 3),
            "serial_jobs1": round(serial_s, 3),
            "parallel_jobs2": round(parallel_s, 3),
            "legacy_per_run_synthesis_estimate": round(legacy_s, 3),
        },
        "speedup": {
            "parallel_vs_serial": round(serial_s / parallel_s, 3),
            "cached_serial_vs_legacy": round(legacy_s / serial_s, 3),
        },
        "determinism": "jobs=2 output == jobs=1 output (asserted)",
        "note": (
            "parallel_vs_serial > 1 requires cpu_count > 1; on a single "
            "core the pool only adds pickling/IPC overhead.  The "
            "cached_serial_vs_legacy row is the win from synthesizing a "
            "shared corpus once instead of once per run."
        ),
    }
    path = harness.write_bench(OUTPUT, payload)

    print(json.dumps(payload["timings_s"], indent=2))
    print(f"speedup parallel/serial: {payload['speedup']['parallel_vs_serial']}")
    print(f"wrote {path}")


if __name__ == "__main__":
    main()
