"""Bench (extension): probe-message cost implied by Fig 18.

Prices the paper's 10-minute neighbor probing against the measured
link-count series.  Probe traffic is proportional to the area under the
Fig 18 curves, so this is the Fig 15 crossover made concrete: for short
sessions NetTube's young overlays are cheap, but its cost grows with
every video watched while SocialTube's stays flat.
"""

from conftest import print_figure
from repro.overlay.maintenance import compare_probe_traffic


def test_bench_probe_traffic(benchmark, suite):
    def build():
        series = {
            "SocialTube": suite.result("SocialTube w/ PF").metrics.overhead_series(),
            "NetTube": suite.result("NetTube w/ PF").metrics.overhead_series(),
        }
        # Session duration ~ videos x mean video length (210 s).
        session_s = suite.config.videos_per_session * 210.0
        return series, compare_probe_traffic(series, session_duration_s=session_s)

    series, estimates = benchmark.pedantic(build, rounds=1, iterations=1)
    rows = ["Extension: probe traffic (10-minute probe period)"]
    rows.extend(e.render() for e in estimates)

    def slope(points):
        return (points[-1][1] - points[0][1]) / max(1, points[-1][0] - points[0][0])

    nettube_slope = slope(series["NetTube"])
    socialtube_slope = slope(series["SocialTube"])
    crossover = (
        (series["SocialTube"][-1][1] - series["NetTube"][0][1]) / nettube_slope
        if nettube_slope > 0
        else float("inf")
    )
    rows.append(
        f"  per-video link growth: NetTube {nettube_slope:.2f}, "
        f"SocialTube {socialtube_slope:.2f}; probe-cost crossover at "
        f"~{crossover:.1f} videos watched"
    )
    print_figure(
        rows,
        "expected (Fig 15's crossover, priced in probes): NetTube starts "
        "cheap but its cost grows ~linearly per video watched; "
        "SocialTube's stays flat, so it wins for any realistic session "
        "length",
    )
    assert nettube_slope > 0.5
    assert abs(socialtube_slope) < 0.2
    # By the end of a session NetTube maintains (and probes) more links.
    assert series["NetTube"][-1][1] > series["SocialTube"][-1][1]
