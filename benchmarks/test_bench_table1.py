"""Bench: Table I -- experiment default parameters."""

from conftest import print_figure


def test_bench_table1_parameters(benchmark, suite):
    figure = benchmark(suite.table1_parameters)
    print_figure(
        figure.render_rows(),
        "paper Table I: 30-day simulation, 10,000 nodes, ~10,121 videos, "
        "545 channels, 20 chunks/video, 320 kbps bitrate, 500 Mbps server; "
        "benchmark runs use a proportionally scaled config (same per-node "
        "server bandwidth ratio)",
    )
    values = {row.label: row.values for row in figure.rows}
    ours = values["Server bandwidth (Mbps)"]["this_run"] / values["Number of nodes"]["this_run"]
    papers = values["Server bandwidth (Mbps)"]["paper"] / values["Number of nodes"]["paper"]
    assert abs(ours - papers) < 1e-9  # the saturation regime is preserved
