"""Bench: Fig 15 -- analytical maintenance-overhead model."""

from conftest import print_figure


def test_bench_fig15_maintenance_model(benchmark, suite):
    figure = benchmark(suite.fig15_maintenance_model)
    print_figure(
        figure.render_rows(),
        "paper: with u=500, u_c=5,000, u_t=250,000 -- NetTube's overhead "
        "grows linearly in videos watched (m*log u) while SocialTube's "
        "stays constant (log u_c + log u_t); NetTube is cheaper only for "
        "very small m",
    )
    rows = {row.label: row.values for row in figure.rows}
    assert rows["m=1"]["NetTube"] < rows["m=1"]["SocialTube"]
    assert rows["m=50"]["NetTube"] > rows["m=50"]["SocialTube"]
