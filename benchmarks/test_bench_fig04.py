"""Bench: Fig 4 -- CDF of subscribers per channel."""

from conftest import print_figure


def test_bench_fig04_channel_subscribers(benchmark, trace_analysis):
    figure = benchmark(trace_analysis.fig4_channel_subscribers_cdf)
    print_figure(
        figure.render_rows(),
        "paper: bottom 25% of channels < 100 subscribers, top 25% > 1,390 "
        "-- channel popularity varies widely (O2)",
    )
    assert figure.notes["p75"] >= 4 * max(figure.notes["p25"], 1.0)
