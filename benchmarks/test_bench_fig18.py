"""Bench: Fig 18 -- overlay maintenance overhead over a session."""

from functools import partial

from conftest import print_figure


def _series(figure, label):
    values = {row.label: row.values for row in figure.rows}[label]
    return [values[k] for k in sorted(values, key=lambda s: int(s[1:]))]


def _check(figure):
    socialtube = _series(figure, "SocialTube")
    nettube = _series(figure, "NetTube")
    assert nettube[-1] > 1.8 * max(nettube[0], 1.0)      # NetTube grows
    assert socialtube[-1] < 1.4 * max(socialtube[0], 1.0)  # SocialTube flat
    assert nettube[-1] > socialtube[-1]


def test_bench_fig18a_maintenance_overhead_simulator(benchmark, suite):
    figure = benchmark.pedantic(
        partial(suite.fig18_maintenance_overhead, "peersim"), rounds=1, iterations=1
    )
    print_figure(
        figure.render_rows(),
        "paper (sim): SocialTube holds ~15 links at all times after the "
        "initial phase; NetTube starts low and accumulates ~linearly, "
        "ending ~35 links above SocialTube at paper scale",
    )
    _check(figure)


def test_bench_fig18b_maintenance_overhead_planetlab(benchmark, suite):
    figure = benchmark.pedantic(
        partial(suite.fig18_maintenance_overhead, "planetlab"), rounds=1, iterations=1
    )
    print_figure(
        figure.render_rows(),
        "paper (PlanetLab): SocialTube demands significantly lower "
        "maintenance overhead than NetTube",
    )
    _check(figure)
