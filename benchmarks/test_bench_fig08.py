"""Bench: Fig 8 -- CDF of favorites per video (+ views correlation)."""

from conftest import print_figure


def test_bench_fig08_favorites(benchmark, trace_analysis):
    figure = benchmark(trace_analysis.fig8_favorites_cdf)
    print_figure(
        figure.render_rows(),
        "paper: bottom 20% < 5 favorites, 75% < 2,115, top 10% > 9,865; "
        "favorites strongly correlated with views (Pearson ~1, [35])",
    )
    assert figure.notes["views_pearson"] > 0.8
