"""Bench: Fig 12 -- similarity between user interests and subscriptions."""

from conftest import print_figure


def test_bench_fig12_interest_similarity(benchmark, trace_analysis):
    figure = benchmark(trace_analysis.fig12_interest_similarity_cdf)
    print_figure(
        figure.render_rows(),
        "paper: similarities span [0, 1]; users tend to subscribe to "
        "channels that match their interests (O5)",
    )
    assert figure.notes["p50"] >= 0.5
