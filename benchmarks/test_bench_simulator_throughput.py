"""Bench: raw simulator throughput per protocol.

Not a paper figure -- measures the reproduction's own engine: full
micro-scale experiment runs (trace synthesis excluded via a shared
dataset) so regressions in the event loop, search, or bandwidth model
show up as timing changes.
"""

import pytest

from repro.experiments.config import SimulationConfig
from repro.experiments.runner import run_spec
from repro.experiments.spec import ExperimentSpec
from repro.experiments.trace_cache import shared_trace_cache
from repro.trace.synthesizer import TraceConfig

MICRO = SimulationConfig(
    num_nodes=100,
    trace=TraceConfig(num_users=100, num_channels=20, num_videos=600,
                      num_categories=6, seed=41),
    sessions_per_user=3,
    videos_per_session=6,
    mean_off_time_s=120.0,
    seed=41,
)


def _run(protocol_name):
    spec = ExperimentSpec(protocol=protocol_name, config=MICRO)
    return run_spec(spec, dataset=shared_trace_cache.dataset_for(MICRO.trace))


@pytest.mark.parametrize("protocol", ["pavod", "nettube", "socialtube"])
def test_bench_simulator_throughput(benchmark, protocol):
    result = benchmark.pedantic(lambda: _run(protocol), rounds=2, iterations=1)
    requests = result.metrics.num_requests
    print(f"\n{protocol}: {requests} requests, "
          f"{result.events_processed} events processed")
    assert requests == MICRO.num_nodes * 3 * 6
