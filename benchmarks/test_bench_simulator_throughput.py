"""Bench: raw simulator throughput per protocol.

Not a paper figure -- measures the reproduction's own engine: full
micro-scale experiment runs (trace synthesis excluded via a shared
dataset) so regressions in the event loop, search, or bandwidth model
show up as timing changes.
"""

import pytest

from repro.experiments.config import SimulationConfig
from repro.experiments.runner import ExperimentRunner
from repro.trace.synthesizer import TraceConfig, TraceSynthesizer

MICRO = SimulationConfig(
    num_nodes=100,
    trace=TraceConfig(num_users=100, num_channels=20, num_videos=600,
                      num_categories=6, seed=41),
    sessions_per_user=3,
    videos_per_session=6,
    mean_off_time_s=120.0,
    seed=41,
)

_dataset = None


def _run(protocol_name):
    global _dataset
    if _dataset is None:
        _dataset = TraceSynthesizer(MICRO.trace).synthesize()
    runner = ExperimentRunner(MICRO, protocol_name=protocol_name, dataset=_dataset)
    return runner.run()


@pytest.mark.parametrize("protocol", ["pavod", "nettube", "socialtube"])
def test_bench_simulator_throughput(benchmark, protocol):
    result = benchmark.pedantic(lambda: _run(protocol), rounds=2, iterations=1)
    requests = result.metrics.num_requests
    print(f"\n{protocol}: {requests} requests, "
          f"{result.events_processed} events processed")
    assert requests == MICRO.num_nodes * 3 * 6
