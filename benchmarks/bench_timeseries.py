"""Wall-clock benchmark for the time-series collection overhead.

Not a pytest benchmark: run directly with

    PYTHONPATH=src python benchmarks/bench_timeseries.py

Times one smoke-scale run three ways --

* ``untraced``    -- NULL_TRACER, the production fast path;
* ``traced``      -- a live :class:`Tracer` recording every row;
* ``timeseries``  -- tracer + streaming :class:`TimeSeriesCollector`
  sink + one ``engine.tick`` gauge row per window (collection as
  :func:`run_with_timeseries` wires it, minus the artifact export);

plus, separately, the canonical-JSONL export of the collected trace
(an optional artifact step shared with ``python -m repro profile``,
not part of collection).  Measurements go to ``BENCH_timeseries.json``
at the repo root (same schema family as ``BENCH_parallel.json``; see
``benchmarks/README.md``).  The headline is ``collector_feed``: the
*marginal* cost of windowed collection, measured by pushing every
recorded row through a fresh sink.  The acceptance bar is <5% of the
traced run's wall clock (the run collection rides on), asserted
constructively in ``tests/test_obs_timeseries.py`` and reported here.
Live-vs-replay byte identity is asserted as a side effect.
"""

from __future__ import annotations

import json
import time

import harness

from repro.experiments.config import SimulationConfig
from repro.experiments.runner import run_spec
from repro.experiments.spec import ExperimentSpec
from repro.experiments.trace_cache import shared_trace_cache
from repro.obs.export import trace_header, trace_to_jsonl_bytes
from repro.obs.timeseries import TimeSeriesCollector, series_from_trace
from repro.obs.tracer import Tracer

PROTOCOL = "socialtube"
WINDOW_S = 600.0
REPEATS = 3
OUTPUT = "BENCH_timeseries.json"


def main() -> None:
    config = SimulationConfig.smoke_scale()
    spec = ExperimentSpec(protocol=PROTOCOL, config=config)
    dataset = shared_trace_cache.dataset_for(config.trace)  # warm the cache

    def traced_run():
        tracer = Tracer()
        run_spec(spec, dataset=dataset, tracer=tracer)
        return tracer

    def timeseries_run():
        tracer = Tracer(tick_every_s=WINDOW_S)
        collector = TimeSeriesCollector(window_s=WINDOW_S)
        tracer.set_sink(collector.observe_row)
        run_spec(spec, dataset=dataset, tracer=tracer)
        return tracer, collector

    # Round-robin repeats so host-speed drift cannot bias the
    # overhead-vs-untraced deltas toward whichever block ran first.
    (
        (untraced_s, untraced),
        (traced_s, _tracer),
        (timeseries_s, (ts_tracer, collector)),
    ) = harness.best_of_each(
        [lambda: run_spec(spec, dataset=dataset), traced_run, timeseries_run],
        repeats=REPEATS,
    )

    # The robust headline: feed every recorded row through a fresh
    # collector and time just that.  Run-minus-run deltas bounce with
    # scheduler noise; this isolates the sink's actual cost.
    rows = ts_tracer.rows()
    feed_s = float("inf")
    for _ in range(REPEATS):
        probe = TimeSeriesCollector(window_s=WINDOW_S)
        sink = probe.observe_row
        t0 = time.perf_counter()
        for row in rows:
            sink(row)
        feed_s = min(feed_s, time.perf_counter() - t0)

    t0 = time.perf_counter()
    jsonl = trace_to_jsonl_bytes(
        trace_header(spec),
        ts_tracer.rows(),
        ts_tracer.counters(),
        ts_tracer.histograms(),
    )
    export_s = time.perf_counter() - t0

    table = collector.finalize(content_hash=spec.content_hash())
    replayed = series_from_trace(jsonl, window_s=WINDOW_S)
    if table.to_canonical_json() != replayed.to_canonical_json():
        raise AssertionError("live vs replay series diverged -- determinism broken")

    events = untraced.events_processed
    payload = {
        **harness.envelope(
            "time-series collection overhead (quick scale)",
            "PYTHONPATH=src python benchmarks/bench_timeseries.py",
        ),
        "run": {
            "protocol": PROTOCOL,
            "num_nodes": config.num_nodes,
            "events_processed": events,
            "trace_rows": len(ts_tracer.rows()),
            "window_s": WINDOW_S,
            "num_windows": table.num_windows,
            "repeats_best_of": REPEATS,
        },
        "timings_s": {
            "untraced": round(untraced_s, 4),
            "traced": round(traced_s, 4),
            "timeseries": round(timeseries_s, 4),
            "jsonl_export_once": round(export_s, 4),
        },
        "throughput_events_per_s": {
            "untraced": round(events / untraced_s),
            "traced": round(events / traced_s),
            "timeseries": round(events / timeseries_s),
        },
        "collector_feed": {
            "seconds": round(feed_s, 4),
            "us_per_row": round(1e6 * feed_s / len(rows), 3),
            "pct_of_traced_run": round(100.0 * feed_s / traced_s, 2),
            "pct_of_untraced_run": round(100.0 * feed_s / untraced_s, 2),
        },
        "overhead_pct_vs_untraced": {
            "traced": round(100.0 * (traced_s - untraced_s) / untraced_s, 2),
            "timeseries": round(100.0 * (timeseries_s - untraced_s) / untraced_s, 2),
        },
        "determinism": "live series == replayed series, byte for byte (asserted)",
        "note": (
            "collector_feed is the marginal cost of the streaming window "
            "collector: every recorded row pushed through a fresh sink, "
            "best of N, isolated from run-to-run scheduler noise.  Its "
            "pct_of_traced_run is the quantity held to the <5% bar in "
            "tests/test_obs_timeseries.py -- collection only ever rides "
            "on a traced run, so that run is the wall clock it inflates.  "
            "jsonl_export_once is the optional artifact serialization "
            "(shared with `repro profile`), reported separately because "
            "collection does not require it."
        ),
    }
    path = harness.write_bench(OUTPUT, payload)

    print(json.dumps(payload["timings_s"], indent=2))
    print(f"collector feed: {payload['collector_feed']}")
    print(f"overhead vs untraced: {payload['overhead_pct_vs_untraced']}")
    print(f"wrote {path}")


if __name__ == "__main__":
    main()
