"""Bench: Fig 5 -- channel total views vs subscriptions (correlation)."""

from conftest import print_figure


def test_bench_fig05_views_vs_subscriptions(benchmark, trace_analysis):
    figure = benchmark(trace_analysis.fig5_views_vs_subscriptions)
    print_figure(
        figure.render_rows(max_rows=6),
        "paper: the scatter 'clearly indicates a strong, positive "
        "correlation between the number of subscriptions and the total "
        "number of views'",
    )
    assert figure.notes["log_pearson"] > 0.5
