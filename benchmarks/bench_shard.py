"""Wall-clock benchmark for community-sharded execution throughput.

Not a pytest benchmark: run directly with

    PYTHONPATH=src python benchmarks/bench_shard.py

Times one deterministic timer workload -- ``TIMERS`` self-rescheduling
timers with fixed per-timer periods of at least the lookahead -- through
the two execution structures a run can use:

* ``shards=1``      -- the classic :class:`EventScheduler`: one global
  binary heap, one :class:`Event` allocation per arming, log-factor
  ``heappush``/``heappop`` per event.  This is the engine an unsharded
  run drives.
* ``shards=2 / 4``  -- the :class:`repro.shard.lanes.LaneEngine`
  bucket calendar: timers round-robined across per-shard lanes, events
  appended O(1) into per-window buckets as bare tuples, each window
  sorted once as a batch at the barrier.

The container is single-core, so the speedup is *algorithmic*, not
parallel: window batching amortizes ordering cost (one Timsort over a
contiguous list per window) where the heap pays a log-factor and an
object allocation per event.  The conservative lookahead contract is
what makes the batching legal -- every timer period is >= the
lookahead, so no event can land inside the window being executed.

A second section times the same *shape* of workload through the
multiprocess lane pool (:func:`repro.shard.workers.run_lane_program`)
at ``workers = 1 / 2 / 4`` with per-event compute attached (a
deterministic integer spin), which is the regime real protocol lanes
live in: window compute dominates, barrier IPC amortizes.  Rows and
event counts are asserted byte-identical across worker counts -- the
bench doubles as a parity check.

Measurements go to ``BENCH_shard.json`` at the repo root (same schema
family as ``BENCH_faults.json``; see ``benchmarks/README.md``).  Two
acceptance bars, asserted here (exit non-zero past them): shards=4
lane-engine events/s >= 2x shards=1, and workers=4 pool events/s >=
1.5x workers=1 -- the latter enforced only on multi-core hosts (CI),
because a single-core container physically cannot show parallel
speedup; ``workers_bar_enforced`` in the payload records which case
this run was.  Every mode must process exactly the same event count --
the workload is identical, only the structure differs.
"""

from __future__ import annotations

import json
import multiprocessing
import random
import sys

import harness

from repro.shard.lanes import LaneEngine
from repro.shard.workers import LaneProgram, run_lane_program
from repro.sim.engine import EventScheduler

TIMERS = 2000
LOOKAHEAD_S = 1.0
HORIZON_S = 60.0
SHARD_COUNTS = (1, 2, 4)
SPEEDUP_BAR = 2.0
REPEATS = 3
SEED = 2014
OUTPUT = "BENCH_shard.json"

#: Multiprocess section: fewer timers, real per-event compute.
MP_TIMERS = 512
MP_HORIZON_S = 60.0
MP_SHARDS = 4
WORKER_COUNTS = (1, 2, 4)
WORKERS_SPEEDUP_BAR = 1.5
MP_REPEATS = 2
#: Deterministic integer spin per event -- stands in for the per-window
#: protocol work (overlay updates, cache bookkeeping) that makes
#: parallel lanes worth their barrier IPC.
WORK_ITERS = 600

#: Fixed per-timer periods in [LOOKAHEAD_S, 2 * LOOKAHEAD_S): at least
#: the lookahead (the no-spill contract) and identical in every mode.
PERIODS = [
    LOOKAHEAD_S * (1.0 + random.Random(SEED + i).random()) for i in range(TIMERS)
]

MP_PERIODS = [
    LOOKAHEAD_S * (1.0 + random.Random(SEED + 10_000 + i).random())
    for i in range(MP_TIMERS)
]


def _spin(x: int) -> int:
    """WORK_ITERS steps of an LCG: pure, deterministic, un-optimizable."""
    for _ in range(WORK_ITERS):
        x = (x * 1103515245 + 12345) & 0x7FFFFFFF
    return x


class TimerLaneProgram(LaneProgram):
    """The timer workload as a lane program (module-level: picklable).

    Lane ``k`` owns every timer ``i`` with ``i % num_shards == k``; each
    tick spins the LCG (the stand-in compute), emits a row on a
    deterministic subsample of ticks, and re-arms itself.  No cross-lane
    messages: timers are shard-local, like intra-community traffic.
    """

    def setup(self, lane) -> None:
        for i in range(lane.index, MP_TIMERS, lane.num_shards):
            lane.post(MP_PERIODS[i], self.tick, lane, i, 0)

    def tick(self, lane, i: int, acc: int) -> None:
        acc = _spin(acc + i)
        if (acc & 15) == 0:
            lane.emit(i, acc)
        lane.post(MP_PERIODS[i], self.tick, lane, i, acc)


def run_classic() -> int:
    """The shards=1 structure: every timer through one global heap."""
    sched = EventScheduler()

    def tick(i: int) -> None:
        sched.schedule(PERIODS[i], tick, i)

    for i in range(TIMERS):
        sched.schedule(PERIODS[i], tick, i)
    sched.run_until(HORIZON_S)
    return sched.events_processed


def run_lanes(num_shards: int) -> int:
    """The sharded structure: timers round-robined across lanes."""
    engine = LaneEngine(num_shards, LOOKAHEAD_S, seed=SEED)

    def tick(lane, i: int) -> None:
        engine.post(lane, PERIODS[i], tick, lane, i)

    for i in range(TIMERS):
        lane = engine.lanes[i % num_shards]
        engine.post(lane, PERIODS[i], tick, lane, i)
    engine.run_until(HORIZON_S)
    return engine.total_events


def run_pool(workers: int) -> tuple:
    """One multiprocess-section run: (event count, merged rows)."""
    result = run_lane_program(
        TimerLaneProgram,
        num_shards=MP_SHARDS,
        lookahead_s=LOOKAHEAD_S,
        horizon_s=MP_HORIZON_S,
        seed=SEED,
        workers=workers,
    )
    return result.stats["total_events"], result.rows


def main() -> int:
    timings = {}
    events = {}
    for shards in SHARD_COUNTS:
        if shards == 1:
            seconds, count = harness.best_of(run_classic, repeats=REPEATS)
        else:
            seconds, count = harness.best_of(
                lambda s=shards: run_lanes(s), repeats=REPEATS
            )
        timings[shards] = seconds
        events[shards] = count

    counts = set(events.values())
    if len(counts) != 1:
        raise AssertionError(
            f"modes diverged: events per shard count {events} -- the "
            "workload must be identical, only the structure may differ"
        )
    total_events = counts.pop()
    throughput = {s: total_events / timings[s] for s in SHARD_COUNTS}
    speedup_4x = throughput[4] / throughput[1]

    mp_timings = {}
    mp_events = {}
    mp_rows = {}
    for workers in WORKER_COUNTS:
        seconds, (count, rows) = harness.best_of(
            lambda w=workers: run_pool(w), repeats=MP_REPEATS
        )
        mp_timings[workers] = seconds
        mp_events[workers] = count
        mp_rows[workers] = rows

    if len(set(mp_events.values())) != 1:
        raise AssertionError(
            f"pool modes diverged: events per worker count {mp_events}"
        )
    if any(mp_rows[w] != mp_rows[1] for w in WORKER_COUNTS):
        raise AssertionError("pool modes diverged: merged rows differ")
    mp_total = mp_events[1]
    mp_throughput = {w: mp_total / mp_timings[w] for w in WORKER_COUNTS}
    workers_speedup = mp_throughput[4] / mp_throughput[1]
    cpu_count = multiprocessing.cpu_count()
    workers_bar_enforced = cpu_count >= 2

    payload = {
        **harness.envelope(
            "sharded lane-engine throughput vs the classic heap engine "
            f"({TIMERS} timers, {HORIZON_S:.0f}s horizon)",
            "PYTHONPATH=src python benchmarks/bench_shard.py",
        ),
        "run": {
            "timers": TIMERS,
            "lookahead_s": LOOKAHEAD_S,
            "horizon_s": HORIZON_S,
            "events_processed": total_events,
            "repeats_best_of": REPEATS,
        },
        "timings_s": {
            f"shards_{s}": round(timings[s], 4) for s in SHARD_COUNTS
        },
        "throughput_events_per_s": {
            f"shards_{s}": round(throughput[s]) for s in SHARD_COUNTS
        },
        "speedup_shards4_vs_shards1": round(speedup_4x, 2),
        "speedup_bar": SPEEDUP_BAR,
        "note": (
            "single-core container: the speedup is algorithmic, not "
            "parallel.  shards=1 drives the classic EventScheduler "
            "(global binary heap, one Event object per arming, "
            "log-factor push/pop per event); shards>1 drive the "
            "LaneEngine bucket calendar (O(1) tuple append into "
            "per-window buckets, one batch sort per window at the "
            "barrier).  Every timer period is >= the lookahead, so the "
            "no-spill fast path -- the conservative-synchronization "
            "contract -- is what the batching exploits.  Event counts "
            "are asserted identical across modes."
        ),
        "multiprocess": {
            "run": {
                "timers": MP_TIMERS,
                "shards": MP_SHARDS,
                "lookahead_s": LOOKAHEAD_S,
                "horizon_s": MP_HORIZON_S,
                "work_iters_per_event": WORK_ITERS,
                "events_processed": mp_total,
                "rows_emitted": len(mp_rows[1]),
                "repeats_best_of": MP_REPEATS,
            },
            "timings_s": {
                f"workers_{w}": round(mp_timings[w], 4) for w in WORKER_COUNTS
            },
            "throughput_events_per_s": {
                f"workers_{w}": round(mp_throughput[w]) for w in WORKER_COUNTS
            },
            "speedup_workers4_vs_workers1": round(workers_speedup, 2),
            "workers_bar": WORKERS_SPEEDUP_BAR,
            "workers_bar_enforced": workers_bar_enforced,
            "note": (
                "repro.shard.workers.run_lane_program at shards=4: the "
                "same timer workload with a deterministic integer spin "
                "per event (the per-window compute real protocol lanes "
                "carry), run in-process (workers=1) and on the "
                "persistent pipe-barrier process pool (workers=2/4) "
                "under a positive 1.0 s lookahead.  Merged rows and "
                "event counts are asserted byte-identical across worker "
                "counts -- the bench doubles as a worker-parity check.  "
                "The >= 1.5x workers=4 bar is enforced only when "
                "cpu_count >= 2: a single-core container cannot show "
                "parallel speedup, so there the row is recorded honestly "
                "with workers_bar_enforced=false and the bar is judged "
                "in CI (multi-core runners)."
            ),
        },
    }
    path = harness.write_bench(OUTPUT, payload)

    print(json.dumps(payload["throughput_events_per_s"], indent=2))
    print(f"shards=4 vs shards=1 speedup: {speedup_4x:.2f}x (bar {SPEEDUP_BAR}x)")
    print(json.dumps(payload["multiprocess"]["throughput_events_per_s"], indent=2))
    print(
        f"workers=4 vs workers=1 speedup: {workers_speedup:.2f}x "
        f"(bar {WORKERS_SPEEDUP_BAR}x, "
        f"{'enforced' if workers_bar_enforced else 'recorded only: single core'})"
    )
    print(f"wrote {path}")
    failed = harness.bar(
        speedup_4x < SPEEDUP_BAR,
        f"speedup {speedup_4x:.2f}x < {SPEEDUP_BAR}x bar",
    )
    failed |= harness.bar(
        workers_bar_enforced and workers_speedup < WORKERS_SPEEDUP_BAR,
        f"workers speedup {workers_speedup:.2f}x < {WORKERS_SPEEDUP_BAR}x bar",
    )
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
