"""Wall-clock benchmark for community-sharded execution throughput.

Not a pytest benchmark: run directly with

    PYTHONPATH=src python benchmarks/bench_shard.py

Times one deterministic timer workload -- ``TIMERS`` self-rescheduling
timers with fixed per-timer periods of at least the lookahead -- through
the two execution structures a run can use:

* ``shards=1``      -- the classic :class:`EventScheduler`: one global
  binary heap, one :class:`Event` allocation per arming, log-factor
  ``heappush``/``heappop`` per event.  This is the engine an unsharded
  run drives.
* ``shards=2 / 4``  -- the :class:`repro.shard.lanes.LaneEngine`
  bucket calendar: timers round-robined across per-shard lanes, events
  appended O(1) into per-window buckets as bare tuples, each window
  sorted once as a batch at the barrier.

The container is single-core, so the speedup is *algorithmic*, not
parallel: window batching amortizes ordering cost (one Timsort over a
contiguous list per window) where the heap pays a log-factor and an
object allocation per event.  The conservative lookahead contract is
what makes the batching legal -- every timer period is >= the
lookahead, so no event can land inside the window being executed.

Measurements go to ``BENCH_shard.json`` at the repo root (same schema
family as ``BENCH_faults.json``; see ``benchmarks/README.md``).  The
acceptance bar, asserted here (exit non-zero past it): shards=4
events/s >= 2x shards=1.  Both modes must process exactly the same
event count -- the workload is identical, only the structure differs.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import random
import sys
import time

from repro.shard.lanes import LaneEngine
from repro.sim.engine import EventScheduler

TIMERS = 2000
LOOKAHEAD_S = 1.0
HORIZON_S = 60.0
SHARD_COUNTS = (1, 2, 4)
SPEEDUP_BAR = 2.0
REPEATS = 3
SEED = 2014
OUTPUT = os.path.join(os.path.dirname(__file__), "..", "BENCH_shard.json")

#: Fixed per-timer periods in [LOOKAHEAD_S, 2 * LOOKAHEAD_S): at least
#: the lookahead (the no-spill contract) and identical in every mode.
PERIODS = [
    LOOKAHEAD_S * (1.0 + random.Random(SEED + i).random()) for i in range(TIMERS)
]


def run_classic() -> int:
    """The shards=1 structure: every timer through one global heap."""
    sched = EventScheduler()

    def tick(i: int) -> None:
        sched.schedule(PERIODS[i], tick, i)

    for i in range(TIMERS):
        sched.schedule(PERIODS[i], tick, i)
    sched.run_until(HORIZON_S)
    return sched.events_processed


def run_lanes(num_shards: int) -> int:
    """The sharded structure: timers round-robined across lanes."""
    engine = LaneEngine(num_shards, LOOKAHEAD_S, seed=SEED)

    def tick(lane, i: int) -> None:
        engine.post(lane, PERIODS[i], tick, lane, i)

    for i in range(TIMERS):
        lane = engine.lanes[i % num_shards]
        engine.post(lane, PERIODS[i], tick, lane, i)
    engine.run_until(HORIZON_S)
    return engine.total_events


def _best_of(fn, repeats: int = REPEATS) -> tuple:
    """(best wall-clock seconds, last return value) over ``repeats`` calls."""
    best = float("inf")
    value = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        value = fn()
        best = min(best, time.perf_counter() - t0)
    return best, value


def main() -> int:
    timings = {}
    events = {}
    for shards in SHARD_COUNTS:
        if shards == 1:
            seconds, count = _best_of(run_classic)
        else:
            seconds, count = _best_of(lambda s=shards: run_lanes(s))
        timings[shards] = seconds
        events[shards] = count

    counts = set(events.values())
    if len(counts) != 1:
        raise AssertionError(
            f"modes diverged: events per shard count {events} -- the "
            "workload must be identical, only the structure may differ"
        )
    total_events = counts.pop()
    throughput = {s: total_events / timings[s] for s in SHARD_COUNTS}
    speedup_4x = throughput[4] / throughput[1]

    payload = {
        "benchmark": (
            "sharded lane-engine throughput vs the classic heap engine "
            f"({TIMERS} timers, {HORIZON_S:.0f}s horizon)"
        ),
        "command": "PYTHONPATH=src python benchmarks/bench_shard.py",
        "cpu_count": multiprocessing.cpu_count(),
        "run": {
            "timers": TIMERS,
            "lookahead_s": LOOKAHEAD_S,
            "horizon_s": HORIZON_S,
            "events_processed": total_events,
            "repeats_best_of": REPEATS,
        },
        "timings_s": {
            f"shards_{s}": round(timings[s], 4) for s in SHARD_COUNTS
        },
        "throughput_events_per_s": {
            f"shards_{s}": round(throughput[s]) for s in SHARD_COUNTS
        },
        "speedup_shards4_vs_shards1": round(speedup_4x, 2),
        "speedup_bar": SPEEDUP_BAR,
        "note": (
            "single-core container: the speedup is algorithmic, not "
            "parallel.  shards=1 drives the classic EventScheduler "
            "(global binary heap, one Event object per arming, "
            "log-factor push/pop per event); shards>1 drive the "
            "LaneEngine bucket calendar (O(1) tuple append into "
            "per-window buckets, one batch sort per window at the "
            "barrier).  Every timer period is >= the lookahead, so the "
            "no-spill fast path -- the conservative-synchronization "
            "contract -- is what the batching exploits.  Event counts "
            "are asserted identical across modes."
        ),
    }
    with open(OUTPUT, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=False)
        handle.write("\n")

    print(json.dumps(payload["throughput_events_per_s"], indent=2))
    print(f"shards=4 vs shards=1 speedup: {speedup_4x:.2f}x (bar {SPEEDUP_BAR}x)")
    print(f"wrote {os.path.normpath(OUTPUT)}")
    if speedup_4x < SPEEDUP_BAR:
        print(
            f"FAIL: speedup {speedup_4x:.2f}x < {SPEEDUP_BAR}x bar",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
