"""Bench: search-TTL ablation (search reach vs overhead)."""

from conftest import BENCH_SIM_CONFIG, print_figure
from repro.experiments.ablations import ttl_sweep


def test_bench_ablation_ttl(benchmark):
    result = benchmark.pedantic(
        lambda: ttl_sweep(BENCH_SIM_CONFIG, ttls=(1, 2, 3)),
        rounds=1,
        iterations=1,
    )
    print_figure(
        result.render_rows(),
        "expected: deeper floods find more providers (lower server "
        "fraction) at the cost of more peers contacted per query; the "
        "paper fixes TTL=2",
    )
    contacted = [p.mean_peers_contacted for p in result.points]
    assert contacted == sorted(contacted)
