"""Bench: Fig 17 -- startup delay with and without prefetching."""

from functools import partial

from conftest import print_figure


def _check(figure):
    values = {row.label: row.values for row in figure.rows}
    st_pf = values["SocialTube w/ PF"]["mean_ms"]
    st_nopf = values["SocialTube w/o PF"]["mean_ms"]
    nt_pf = values["NetTube w/ PF"]["mean_ms"]
    nt_nopf = values["NetTube w/o PF"]["mean_ms"]
    pavod = values["PA-VoD"]["mean_ms"]
    assert pavod > max(st_pf, st_nopf, nt_pf, nt_nopf)
    assert st_pf < nt_pf
    assert st_nopf < nt_nopf
    assert st_pf < st_nopf
    assert nt_pf < nt_nopf


def test_bench_fig17a_startup_delay_simulator(benchmark, suite):
    figure = benchmark.pedantic(
        partial(suite.fig17_startup_delay, "peersim"), rounds=1, iterations=1
    )
    print_figure(
        figure.render_rows(),
        "paper (sim): PA-VoD worst (server overload); SocialTube < NetTube "
        "both with and without prefetching; each system's prefetching "
        "reduces its own delay, SocialTube's channel-based prefetch "
        "gaining more than NetTube's random one",
    )
    _check(figure)


def test_bench_fig17b_startup_delay_planetlab(benchmark, suite):
    figure = benchmark.pedantic(
        partial(suite.fig17_startup_delay, "planetlab"), rounds=1, iterations=1
    )
    print_figure(
        figure.render_rows(),
        "paper (PlanetLab): same ordering under real transmission delays",
    )
    _check(figure)
