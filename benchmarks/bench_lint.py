"""Wall-clock benchmark for the whole-program lint analyzer.

Not a pytest benchmark: run directly with

    PYTHONPATH=src python benchmarks/bench_lint.py

Times the three layers of ``python -m repro lint`` separately over the
shipped ``src/repro`` tree --

* ``index_build``   -- parse every module and build the
  :class:`~repro.lint.program.ProgramIndex` (symbol tables, import
  graph, call graph, event reachability, substream sites);
* ``full_analysis`` -- everything ``lint_paths`` does: per-file AST +
  flow rules, the program pass, suppression matching, fingerprinting,
  baseline split;
* ``render_json``   -- serializing the report (the CI artifact).

Measurements go to ``BENCH_lint.json`` at the repo root (same schema
family as ``BENCH_faults.json``; see ``benchmarks/README.md``).  The
acceptance bar is ``full_analysis`` < 10 s on the full tree, asserted
here (exit non-zero past the bar): the analyzer runs inside tier-1 and
on every CI push, so it must stay interactive-fast.
"""

from __future__ import annotations

import json
import sys

import harness

from repro.lint.baseline import discover_baseline_path, load_baseline
from repro.lint.program import build_program
from repro.lint.runner import default_lint_root, lint_paths, render_json

REPEATS = 3
ANALYSIS_BAR_S = 10.0
OUTPUT = "BENCH_lint.json"


def main() -> int:
    root = default_lint_root()
    baseline = load_baseline(discover_baseline_path(root))

    index_s, index = harness.best_of(lambda: build_program(root), repeats=REPEATS)
    analysis_s, report = harness.best_of(
        lambda: lint_paths([root], baseline=baseline), repeats=REPEATS
    )
    render_s, blob = harness.best_of(lambda: render_json(report), repeats=REPEATS)

    if not report.ok:
        raise AssertionError(
            "benchmark expects a lint-clean tree; fix findings first:\n"
            + "\n".join(f.render() for f in report.findings)
        )

    stats = index.stats()
    payload = {
        **harness.envelope(
            "whole-program lint analyzer (full src/repro tree)",
            "PYTHONPATH=src python benchmarks/bench_lint.py",
        ),
        "tree": {
            "files_checked": report.files_checked,
            "modules_indexed": stats["modules"],
            "functions": stats["functions"],
            "call_edges": stats["call_edges"],
            "import_edges": stats["import_edges"],
            "event_reachable": stats["event_reachable"],
            "stream_sites": stats["stream_sites"],
        },
        "timings_s": {
            "index_build": round(index_s, 4),
            "full_analysis": round(analysis_s, 4),
            "render_json": round(render_s, 4),
        },
        "throughput_files_per_s": round(report.files_checked / analysis_s),
        "report_bytes": len(blob),
        "analysis_bar_s": ANALYSIS_BAR_S,
        "repeats_best_of": REPEATS,
        "note": (
            "full_analysis is the complete lint_paths pipeline CI runs: "
            "per-file AST + flow-sensitive rules over every module, the "
            "whole-program pass (substream ownership, cross-module shard "
            "mutation, event-reachability), suppression matching, "
            "fingerprint assignment and the baseline split.  index_build "
            "isolates the parse + ProgramIndex construction that "
            "dominates it.  The 10 s bar keeps the analyzer cheap enough "
            "to sit inside tier-1 (tests/test_lint_clean.py) and run on "
            "every push."
        ),
    }
    path = harness.write_bench(OUTPUT, payload)

    print(json.dumps(payload["timings_s"], indent=2))
    print(f"files/s: {payload['throughput_files_per_s']}")
    print(f"wrote {path}")
    if harness.bar(
        analysis_s >= ANALYSIS_BAR_S,
        f"full analysis {analysis_s:.2f}s >= {ANALYSIS_BAR_S}s bar",
    ):
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
