"""Bench: Fig 10 -- channel graph clustered by shared subscribers."""

from functools import partial

from conftest import print_figure
from repro.analysis.clustering import build_channel_graph


def test_bench_fig10_channel_clustering(benchmark, crawl_dataset):
    build = partial(build_channel_graph, crawl_dataset, threshold=15, per_category=5)
    graph = benchmark(build)
    random_baseline = 1.0 / crawl_dataset.num_categories
    rows = [
        "Fig 10: shared-subscriber channel graph",
        f"  nodes={graph.num_nodes} edges={graph.num_edges} (threshold 15)",
        f"  intra-category edge fraction={graph.intra_category_edge_fraction():.3f}"
        f" (random baseline {random_baseline:.3f})",
        f"  component purity={graph.component_purity():.3f}",
    ]
    print_figure(
        rows,
        "paper: with a 50-shared-subscriber threshold, 'groups of channels "
        "form distinct clusters, indicating a clear tendency for users to "
        "subscribe to channels based on interests' (O4)",
    )
    assert graph.num_edges > 0
    assert graph.intra_category_edge_fraction() > 2.5 * random_baseline
