"""Bench: Fig 7 -- CDF of views per video."""

from conftest import print_figure


def test_bench_fig07_video_views(benchmark, trace_analysis):
    figure = benchmark(trace_analysis.fig7_video_views_cdf)
    print_figure(
        figure.render_rows(),
        "paper: 50% of videos <= 5,517 views, 10% > 385,000 -- a small "
        "set of videos draws most attention (O3)",
    )
    assert figure.notes["p99"] > 10 * max(figure.notes["p50"], 1.0)
