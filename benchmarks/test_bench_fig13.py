"""Bench: Fig 13 -- CDF of personal interests per user."""

from conftest import print_figure


def test_bench_fig13_interests_per_user(benchmark, trace_analysis):
    figure = benchmark(trace_analysis.fig13_interests_per_user_cdf)
    print_figure(
        figure.render_rows(),
        "paper: ~60% of users have fewer than 10 interests; maximum "
        "observed is 18 -- users hold a limited number of interests",
    )
    assert figure.notes["max"] <= 18
    assert figure.notes["frac_below_10"] >= 0.55
