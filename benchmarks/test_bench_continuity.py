"""Bench (extension): playback continuity per system.

Not a numbered paper figure -- quantifies the paper's Section I QoS
motivation ("QoS often suffers from massive number of requests to the
server during peak usage times") with the chunk-level streaming model:
watches served from a saturated server share stall; peer-served watches
at healthy rates do not.
"""

from conftest import print_figure
from repro.experiments.figures import EvaluationFigure, FigureRow


def test_bench_playback_continuity(benchmark, suite):
    def build():
        figure = EvaluationFigure(
            figure="Extension",
            title="Playback continuity (chunk-level streaming model)",
        )
        for label in ("PA-VoD", "SocialTube w/ PF", "NetTube w/ PF"):
            metrics = suite.result(label).metrics
            figure.rows.append(
                FigureRow(
                    label=label,
                    values={
                        "continuity": metrics.mean_continuity_index,
                        "stalled_watches": metrics.stall_fraction,
                        "mean_stall_ms": metrics.mean_stall_ms,
                    },
                )
            )
        return figure

    figure = benchmark.pedantic(build, rounds=1, iterations=1)
    print_figure(
        figure.render_rows(),
        "expected: the P2P systems keep continuity near 1.0; PA-VoD's "
        "server dependence produces the most stalled watches",
    )
    values = {row.label: row.values for row in figure.rows}
    assert (
        values["PA-VoD"]["stalled_watches"]
        >= values["SocialTube w/ PF"]["stalled_watches"]
    )
    assert values["SocialTube w/ PF"]["continuity"] > 0.9
