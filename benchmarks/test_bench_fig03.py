"""Bench: Fig 3 -- CDF of per-channel video view frequency."""

from conftest import print_figure


def test_bench_fig03_channel_view_frequency(benchmark, trace_analysis):
    figure = benchmark(trace_analysis.fig3_channel_view_frequency_cdf)
    print_figure(
        figure.render_rows(),
        "paper: 20% of channels < 39 views/day, 80% < 233,285, top 1% > "
        "783,240 -- i.e. orders-of-magnitude spread across channels",
    )
    assert figure.notes["p99"] > 20 * max(figure.notes["p20"], 1e-9)
