"""Bench: Fig 16 -- normalized peer bandwidth percentiles.

Regenerates both panels: (a) the PeerSim-style simulator and (b) the
emulated PlanetLab WAN testbed.
"""

from functools import partial

from conftest import print_figure


def test_bench_fig16a_peer_bandwidth_simulator(benchmark, suite):
    figure = benchmark.pedantic(
        partial(suite.fig16_peer_bandwidth, "peersim"), rounds=1, iterations=1
    )
    print_figure(
        figure.render_rows(),
        "paper (sim): at every reported percentile SocialTube > NetTube > "
        "PA-VoD; medians ~[SocialTube ~0.8, NetTube 0.53, PA-VoD 0.31], "
        "1st-percentiles ~[0.6, 0.32, 0.14]",
    )
    values = {row.label: row.values for row in figure.rows}
    assert (
        values["SocialTube"]["p50"]
        > values["NetTube"]["p50"]
        > values["PA-VoD"]["p50"]
    )


def test_bench_fig16b_peer_bandwidth_planetlab(benchmark, suite):
    figure = benchmark.pedantic(
        partial(suite.fig16_peer_bandwidth, "planetlab"), rounds=1, iterations=1
    )
    print_figure(
        figure.render_rows(),
        "paper (PlanetLab): same ordering; the 1st percentile of NetTube "
        "and PA-VoD collapses to ~0 under connection failures and "
        "congestion while SocialTube stays ~0.07",
    )
    values = {row.label: row.values for row in figure.rows}
    assert (
        values["SocialTube"]["p50"]
        > values["NetTube"]["p50"]
        > values["PA-VoD"]["p50"]
    )
    assert values["SocialTube"]["p1"] >= values["NetTube"]["p1"]
