"""Bench: link-budget ablation (the paper's Section VI future work).

"we will study the impact of the different number of links per node on
the video sharing performance and explore the value that can achieve an
optimal tradeoff between the system maintenance overhead and
availability of peer video providers."
"""

from conftest import BENCH_SIM_CONFIG, print_figure
from repro.experiments.ablations import link_budget_sweep


def test_bench_ablation_link_budget(benchmark):
    result = benchmark.pedantic(
        lambda: link_budget_sweep(
            BENCH_SIM_CONFIG, budgets=((1, 2), (3, 6), (5, 10), (10, 20))
        ),
        rounds=1,
        iterations=1,
    )
    print_figure(
        result.render_rows(),
        "expected: availability (peer bandwidth) rises with the link "
        "budget with diminishing returns; the paper's default (5, 10) "
        "sits near the knee of the availability/overhead curve",
    )
    bw = [p.peer_bandwidth_p50 for p in result.points]
    # Availability improves from the starved to the default budget.
    assert bw[2] > bw[0]
