"""Bench: Fig 11 -- CDF of video categories per channel."""

from conftest import print_figure


def test_bench_fig11_interests_per_channel(benchmark, trace_analysis, crawl_dataset):
    figure = benchmark(trace_analysis.fig11_interests_per_channel_cdf)
    print_figure(
        figure.render_rows(),
        "paper: channels are generally focused on a small number of "
        "video categories (O5)",
    )
    assert figure.notes["p50"] <= crawl_dataset.num_categories / 2
