"""Wall-clock benchmark for the fault-injection hook overhead.

Not a pytest benchmark: run directly with

    PYTHONPATH=src python benchmarks/bench_faults.py

Times one shortened default-scale run three ways --

* ``no_faults``     -- ``NULL_INJECTOR``, the production fast path
  (every fault hook is one falsy truthiness check);
* ``hooks_armed``   -- a nonzero :class:`FaultPlan` whose faults can
  never alter the run: brownouts with ``brownout_factor=1.0`` and no
  crash/loss/slow-peer rates.  The injector is real, every watch is
  tracked, every serve consults the brownout clock -- the full
  bookkeeping cost with zero recovery work and zero RNG draws;
* ``chaos``         -- :meth:`FaultPlan.demo`, the canonical
  fault-injected run (crashes, failovers, repairs), reported for
  scale, not held to a bar.

It also times one serial pass of the resilience grid (the
``repro chaos --grid`` scorecard: 3 protocols x 4 infrastructure fault
families at smoke scale) as ``timings_s.grid_smoke`` -- the headline
``tools/perf_trend.py`` tracks for this file -- and records the grid's
worst-continuity cell so a resilience collapse shows up in the PR diff.

Measurements go to ``BENCH_faults.json`` at the repo root (same schema
family as ``BENCH_timeseries.json``; see ``benchmarks/README.md``).
The headline is ``hooks_pct_vs_no_faults``: the price a *fault-free*
experiment pays for the hooks existing.  The acceptance bar is <3%,
asserted here (exit non-zero past the bar) -- the ``no_faults`` path
must stay effectively free.
"""

from __future__ import annotations

import json
import sys

import harness

from repro.experiments.config import SimulationConfig
from repro.experiments.runner import run_spec
from repro.experiments.spec import ExperimentSpec
from repro.experiments.trace_cache import shared_trace_cache
from repro.faults.grid import run_grid
from repro.faults.plan import FaultPlan

PROTOCOL = "socialtube"
# Best-of-5: on a noisy single-core container the per-round jitter of
# a ~7 s run can exceed the 3% bar all by itself; five round-robin
# rounds give the minimum a realistic shot at the true floor for both
# configurations.
REPEATS = 5
OVERHEAD_BAR_PCT = 3.0
OUTPUT = "BENCH_faults.json"

#: Nonzero per ``is_zero`` (so the injector and every runner hook are
#: live) yet behaviourally inert: factor 1.0 leaves server rates
#: untouched and no other class can fire, so no RNG is drawn and no
#: recovery path runs.  This isolates the pure bookkeeping cost.
ARMED_INERT_PLAN = FaultPlan(
    brownout_period_s=600.0, brownout_duty=0.5, brownout_factor=1.0
)


def main() -> int:
    # Default scale shortened to 2 sessions: a few seconds per run, so
    # a <3% bar sits well above perf_counter noise (smoke scale runs in
    # ~0.15 s where the timer jitter alone exceeds the bar).
    config = SimulationConfig.default_scale().scaled_sessions(2)
    dataset = shared_trace_cache.dataset_for(config.trace)  # warm the cache
    base = ExperimentSpec(protocol=PROTOCOL, config=config)
    armed = base.with_faults(ARMED_INERT_PLAN)
    chaos = base.with_faults(FaultPlan.demo())

    # Round-robin repeats: the headline is the plain-vs-armed *delta*,
    # and running the configurations in blocks lets host-speed drift
    # alone exceed the 3% bar.
    (
        (plain_s, plain),
        (armed_s, armed_result),
        (chaos_s, chaos_result),
    ) = harness.best_of_each(
        [
            lambda: run_spec(base, dataset=dataset),
            lambda: run_spec(armed, dataset=dataset),
            lambda: run_spec(chaos, dataset=dataset),
        ],
        repeats=REPEATS,
    )

    if armed_result.metrics.crashes or armed_result.metrics.interrupted_transfers:
        raise AssertionError("the armed-inert plan must never fire a fault")
    if not chaos_result.metrics.crashes:
        raise AssertionError("the demo plan must crash nodes at this scale")
    # The inert plan changes the spec hash but must not change a single
    # simulated outcome -- the strongest statement that hook cost is
    # pure bookkeeping.  (The fault ledger row only renders when a
    # crash or interruption happened, so the row lists match exactly.)
    if armed_result.render_rows() != plain.render_rows():
        raise AssertionError("armed-inert run drifted from the no-faults run")

    # The resilience grid, timed once (12 smoke cells, serial): the
    # wall-clock price of the full protocols x families scorecard, the
    # quantity the trend table tracks for this file.
    grid_s, grid_cells = harness.best_of(
        lambda: run_grid(seed=2014, scale="smoke", jobs=1), repeats=1
    )
    worst = min(grid_cells, key=lambda cell: cell.continuity)

    hooks_pct = 100.0 * (armed_s - plain_s) / plain_s
    events = plain.events_processed
    payload = {
        **harness.envelope(
            "fault-injection hook overhead (default scale, 2 sessions)",
            "PYTHONPATH=src python benchmarks/bench_faults.py",
        ),
        "run": {
            "protocol": PROTOCOL,
            "num_nodes": config.num_nodes,
            "events_processed": events,
            "repeats_best_of": REPEATS,
        },
        "timings_s": {
            "no_faults": round(plain_s, 4),
            "hooks_armed": round(armed_s, 4),
            "chaos": round(chaos_s, 4),
            "grid_smoke": round(grid_s, 4),
        },
        "throughput_events_per_s": {
            "no_faults": round(events / plain_s),
            "hooks_armed": round(events / armed_s),
            "chaos": round(chaos_result.events_processed / chaos_s),
        },
        "hooks_pct_vs_no_faults": round(hooks_pct, 2),
        "chaos_pct_vs_no_faults": round(100.0 * (chaos_s - plain_s) / plain_s, 2),
        "chaos_recovery": {
            "crashes": chaos_result.metrics.crashes,
            "interrupted_transfers": chaos_result.metrics.interrupted_transfers,
            "failover_peer_resumes": chaos_result.metrics.failover_peer_resumes,
            "failover_server_fallbacks": chaos_result.metrics.failover_server_fallbacks,
        },
        "grid": {
            "cells": len(grid_cells),
            "scale": "smoke",
            "seed": 2014,
            "worst_continuity": {
                "protocol": worst.protocol,
                "family": worst.family,
                "continuity": round(worst.continuity, 4),
            },
        },
        "overhead_bar_pct": OVERHEAD_BAR_PCT,
        "determinism": (
            "armed-inert run rendered byte-identical metric rows to "
            "the no-faults run"
        ),
        "note": (
            "hooks_armed runs a nonzero-but-inert FaultPlan (brownout "
            "factor 1.0, nothing else): the injector is constructed, "
            "every watch is tracked and every serve consults the "
            "brownout clock, but no fault ever fires and no RNG is "
            "drawn.  hooks_pct_vs_no_faults is therefore the full "
            "bookkeeping cost the fault layer adds to a run that uses "
            "it without faults; the no_faults row itself is the "
            "NULL_INJECTOR path a fault-free spec takes, whose cost is "
            "one truthiness check per hook.  chaos is FaultPlan.demo() "
            "for scale: recovery work (failover re-searches, resume "
            "scheduling, repair sweeps) is real load, not overhead."
        ),
    }
    path = harness.write_bench(OUTPUT, payload)

    print(json.dumps(payload["timings_s"], indent=2))
    print(f"hooks overhead vs no-faults: {payload['hooks_pct_vs_no_faults']}%")
    print(f"chaos vs no-faults: {payload['chaos_pct_vs_no_faults']}%")
    print(
        f"resilience grid: {len(grid_cells)} cells in {grid_s:.2f}s "
        f"(worst continuity {worst.continuity:.4f}: "
        f"{worst.protocol}/{worst.family})"
    )
    print(f"wrote {path}")
    if harness.bar(
        hooks_pct >= OVERHEAD_BAR_PCT,
        f"hook overhead {hooks_pct:.2f}% >= {OVERHEAD_BAR_PCT}% bar",
    ):
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
