"""Wall-clock benchmark for raw engine throughput (events per second).

Not a pytest benchmark: run directly with

    PYTHONPATH=src python benchmarks/bench_engine.py [--quick]

Times the production fast path -- ``run_spec`` with ``NULL_TRACER``
and ``NULL_PERF``, warm trace cache -- at the two canonical scales:

* ``nodes_1000``   -- ``default_scale`` shortened to 2 sessions per
  user (a few seconds per run, best of 2);
* ``nodes_10000``  -- ``paper_scale`` (Table I verbatim) shortened to
  1 session per user (~a minute per run, single shot; skipped under
  ``--quick`` so CI stays fast).

``throughput_events_per_s.nodes_1000`` is **the headline** that
``tools/perf_trend.py`` tracks across PRs: it is the number a protocol
or engine regression moves first.  A perf-armed run (a live
:class:`~repro.obs.perf.PerfMeter` passed to ``run_spec``) is timed at
the 1k point for context -- the sidecar meter must ride for free.

The in-script acceptance bar is **constructive**, like
``tests/test_obs_overhead.py``: the marginal cost of one disabled
``if perf:`` guard is measured in isolation (guard loop minus empty
loop, best of N), scaled to two guards per processed event -- the
sharded scheduler's ``_fire`` pre/post hooks, the worst-per-event case
in the tree -- and that projected cost must stay under
``INERT_BAR_PCT`` of the measured 1k-point wall clock.  Run-minus-run
deltas at this scale sit inside scheduler noise; the projection does
not.  Exit is non-zero past the bar.  Measurements go to
``BENCH_engine.json`` at the repo root (shared envelope from
``benchmarks/harness.py``; see ``benchmarks/README.md``).
"""

from __future__ import annotations

import argparse
import json
import sys
import time

import harness

from repro.experiments.config import SimulationConfig
from repro.experiments.runner import run_spec
from repro.experiments.spec import ExperimentSpec
from repro.experiments.trace_cache import shared_trace_cache
from repro.obs.perf import NULL_PERF, PerfMeter

PROTOCOL = "socialtube"
INERT_BAR_PCT = 2.0
GUARDS_PER_EVENT = 2
GUARD_LOOPS = 2_000_000
GUARD_REPEATS = 5
OUTPUT = "BENCH_engine.json"


def _time_empty_loop(loops: int) -> float:
    """Best-of wall seconds for the bare loop the guard loop rides on."""
    best = float("inf")
    for _ in range(GUARD_REPEATS):
        t0 = time.perf_counter()
        for _ in range(loops):
            pass
        best = min(best, time.perf_counter() - t0)
    return best


def _time_guard_loop(loops: int) -> float:
    """Best-of wall seconds for ``loops`` disabled ``if perf:`` checks."""
    perf = NULL_PERF
    best = float("inf")
    for _ in range(GUARD_REPEATS):
        t0 = time.perf_counter()
        for _ in range(loops):
            if perf:
                raise AssertionError("NULL_PERF must stay falsy")
        best = min(best, time.perf_counter() - t0)
    return best


def _point(config: SimulationConfig, repeats: int, armed: bool = False) -> dict:
    """One scale point: base (inert-perf) timing plus event count.

    With ``armed`` a live-meter run is timed too, round-robin with the
    base runs (host-speed drift hits both equally -- the armed delta
    is a difference of timings, exactly the case
    :func:`harness.best_of_each` exists for).
    """
    spec = ExperimentSpec(protocol=PROTOCOL, config=config)
    dataset = shared_trace_cache.dataset_for(config.trace)  # warm the cache
    point = {"config": config, "spec": spec, "repeats": repeats}
    if armed:
        (base_s, result), (armed_s, _) = harness.best_of_each(
            [
                lambda: run_spec(spec, dataset=dataset),
                lambda: run_spec(spec, dataset=dataset, perf=PerfMeter()),
            ],
            repeats=repeats,
        )
        point["armed_s"] = armed_s
    else:
        base_s, result = harness.best_of(
            lambda: run_spec(spec, dataset=dataset), repeats=repeats
        )
    point["base_s"] = base_s
    point["events"] = result.events_processed
    return point


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="skip the ~60s nodes_10000 point (CI smoke mode)",
    )
    args = parser.parse_args()

    # The 1k point also times a perf-armed run (a live meter, no
    # tracer -- what `python -m repro perf` pays on the engine leg).
    # Context only; even round-robined the delta sits near scheduler
    # noise, which is exactly why the bar below is constructive.
    points = {
        "nodes_1000": _point(
            SimulationConfig.default_scale().scaled_sessions(2),
            repeats=3,
            armed=True,
        )
    }
    if not args.quick:
        points["nodes_10000"] = _point(
            SimulationConfig.paper_scale().scaled_sessions(1), repeats=1
        )

    p1k = points["nodes_1000"]
    armed_s = p1k["armed_s"]

    # Constructive inert-path bar: per-guard cost measured in
    # isolation, projected to 2 guards per processed event.
    empty_s = _time_empty_loop(GUARD_LOOPS)
    guard_s = _time_guard_loop(GUARD_LOOPS)
    per_guard_ns = max(0.0, (guard_s - empty_s) / GUARD_LOOPS) * 1e9
    projected_s = per_guard_ns * 1e-9 * GUARDS_PER_EVENT * p1k["events"]
    inert_pct = 100.0 * projected_s / p1k["base_s"]

    payload = {
        **harness.envelope(
            "engine throughput at canonical scales (production fast path)",
            "PYTHONPATH=src python benchmarks/bench_engine.py",
        ),
        "run": {
            "protocol": PROTOCOL,
            "points": {
                name: {
                    "num_nodes": p["config"].num_nodes,
                    "sessions_per_user": p["config"].sessions_per_user,
                    "events_processed": p["events"],
                    "repeats_best_of": p["repeats"],
                }
                for name, p in points.items()
            },
        },
        "timings_s": {name: round(p["base_s"], 4) for name, p in points.items()},
        "throughput_events_per_s": {
            name: round(p["events"] / p["base_s"]) for name, p in points.items()
        },
        "perf_armed_nodes_1000": {
            "timings_s": round(armed_s, 4),
            "events_per_s": round(p1k["events"] / armed_s),
            "pct_vs_inert": round(
                100.0 * (armed_s - p1k["base_s"]) / p1k["base_s"], 2
            ),
        },
        "inert_guard": {
            "per_guard_ns": round(per_guard_ns, 2),
            "guards_per_event": GUARDS_PER_EVENT,
            "projected_pct_of_nodes_1000": round(inert_pct, 4),
            "bar_pct": INERT_BAR_PCT,
        },
        "determinism": (
            "the timed path is the canonical run_spec fast path; perf "
            "arming is hash-neutral (asserted byte-for-byte in "
            "tests/test_obs_perf.py and the CI perf-smoke job)"
        ),
        "note": (
            "throughput_events_per_s.nodes_1000 is the headline "
            "tools/perf_trend.py tracks across PRs.  inert_guard is the "
            "constructive <2% bar: per-guard cost of a disabled "
            "`if perf:` check measured in isolation and projected to "
            "two guards per event (the sharded _fire hooks, the "
            "worst-per-event case); run-minus-run deltas at this scale "
            "are scheduler noise, the projection is not.  "
            "perf_armed_nodes_1000 records what a live meter costs the "
            "engine leg, for context, no bar.  --quick skips the "
            "minute-long nodes_10000 point; CI uses it, the committed "
            "snapshot must not."
        ),
    }
    path = harness.write_bench(OUTPUT, payload)

    print(json.dumps(payload["throughput_events_per_s"], indent=2))
    print(f"perf-armed 1k point: {payload['perf_armed_nodes_1000']}")
    print(
        f"inert guard: {per_guard_ns:.1f} ns/guard -> "
        f"{inert_pct:.4f}% of nodes_1000 (bar {INERT_BAR_PCT}%)"
    )
    print(f"wrote {path}")
    if harness.bar(
        inert_pct >= INERT_BAR_PCT,
        f"projected inert-guard cost {inert_pct:.4f}% >= {INERT_BAR_PCT}% bar",
    ):
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
