"""Shared harness for the standalone ``bench_*.py`` scripts.

Every wall-clock benchmark in this directory is run directly (never via
pytest) and writes a committed ``BENCH_*.json`` snapshot at the repo
root.  This module owns the three conventions they share, so a change
to any of them lands in one place:

* :func:`best_of` -- the repeat policy: ``time.perf_counter()``
  best-of-N, so one scheduler hiccup cannot inflate a committed number;
* :func:`envelope` -- the schema-versioned common header every
  snapshot starts with (``bench_schema``, ``benchmark``, ``command``,
  ``cpu_count``); ``tools/perf_trend.py`` keys on these fields when it
  folds historical snapshots into a trajectory table;
* :func:`write_bench` -- the repo-root JSON writer (``indent=2``,
  insertion order preserved, trailing newline) so every snapshot diffs
  cleanly in review.

:func:`bar` is the small acceptance-bar reporter the scripts with
in-script bars share: it prints a ``FAIL:`` line to stderr when the
bar is missed and returns whether it was, so ``main`` can accumulate
an exit code without each script re-inventing the print.

Scripts are run with ``benchmarks/`` as ``sys.path[0]`` (that is how
``python benchmarks/bench_x.py`` works), so a plain ``import harness``
resolves here.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import sys
import time
from typing import Any, Callable, Dict, List, Sequence, Tuple

#: Version of the shared envelope written by :func:`envelope`.  Bump
#: when a common key is renamed or re-typed; benchmark-specific
#: sections may evolve freely without a bump.
BENCH_SCHEMA_VERSION = 1

#: Repo root -- every ``BENCH_*.json`` snapshot lands here.
REPO_ROOT = os.path.normpath(os.path.join(os.path.dirname(__file__), ".."))


def best_of(
    fn: Callable[[], Any], repeats: int = 3
) -> Tuple[float, Any]:
    """(best wall-clock seconds, last return value) over ``repeats`` calls."""
    best = float("inf")
    value = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        value = fn()
        best = min(best, time.perf_counter() - t0)
    return best, value


def best_of_each(
    fns: Sequence[Callable[[], Any]], repeats: int = 3
) -> List[Tuple[float, Any]]:
    """Round-robin :func:`best_of` across several configurations.

    Runs one round of every ``fn`` before the next repeat instead of
    exhausting each configuration's repeats in a block, so slow host
    drift (frequency ramp-up, cache warm-up, a neighbour container
    waking) hits every configuration equally rather than biasing
    whichever block ran first.  This is the policy for A/B overhead
    comparisons (``no_faults`` vs ``hooks_armed``, ``untraced`` vs
    ``traced``), where the quantity under a bar is a *difference* of
    timings and block ordering alone can exceed the bar.  Returns one
    ``(best seconds, last value)`` pair per ``fn``, in order.
    """
    bests = [float("inf")] * len(fns)
    values: List[Any] = [None] * len(fns)
    for _ in range(repeats):
        for i, fn in enumerate(fns):
            t0 = time.perf_counter()
            values[i] = fn()
            bests[i] = min(bests[i], time.perf_counter() - t0)
    return list(zip(bests, values))


def envelope(benchmark: str, command: str) -> Dict[str, Any]:
    """The shared snapshot header: schema version, identity, host shape.

    Returned as a fresh dict so callers can splat it first and append
    their benchmark-specific sections after it in insertion order.
    """
    return {
        "bench_schema": BENCH_SCHEMA_VERSION,
        "benchmark": benchmark,
        "command": command,
        "cpu_count": multiprocessing.cpu_count(),
    }


def write_bench(filename: str, payload: Dict[str, Any]) -> str:
    """Write ``payload`` to ``<repo root>/<filename>`` and return the path.

    Insertion order is preserved deliberately: the envelope leads, the
    headline sections follow, the notes trail -- snapshots are read by
    humans in PR diffs.  (Canonical *simulation* artifacts sort keys;
    benchmark snapshots are documentation, not hashed outputs.)
    """
    path = os.path.join(REPO_ROOT, filename)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=False)
        handle.write("\n")
    return path


def bar(failed: bool, message: str) -> bool:
    """Report one acceptance bar; returns ``failed`` for accumulation.

    Prints ``FAIL: <message>`` to stderr when the bar was missed so a
    script can ``sys.exit(1)`` after reporting every bar, not just the
    first.
    """
    if failed:
        print(f"FAIL: {message}", file=sys.stderr)
    return failed
