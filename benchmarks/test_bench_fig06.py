"""Bench: Fig 6 -- CDF of videos per channel."""

from conftest import print_figure


def test_bench_fig06_videos_per_channel(benchmark, trace_analysis):
    figure = benchmark(trace_analysis.fig6_videos_per_channel_cdf)
    print_figure(
        figure.render_rows(),
        "paper: 50% of channels have <= 9 videos, top 25% > 36, top 10% "
        "> 116 -- heavy-tailed channel sizes",
    )
    assert figure.notes["p90"] > 3 * max(figure.notes["p50"], 1.0)
