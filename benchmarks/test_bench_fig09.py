"""Bench: Fig 9 -- within-channel popularity follows Zipf(s~1)."""

from conftest import print_figure


def test_bench_fig09_within_channel_zipf(benchmark, trace_analysis):
    figure = benchmark(trace_analysis.fig9_within_channel_popularity)
    print_figure(
        figure.render_rows(max_rows=6),
        "paper: views within the most popular channel roughly follow the "
        "Zipf distribution (s = 1); popularity varies within every "
        "channel tier -- the basis of channel-facilitated prefetching",
    )
    for tier in ("high", "medium", "low"):
        assert -1.6 < figure.notes[f"{tier}_zipf_slope"] < -0.5
