"""Shared fixtures for the benchmark harness.

Each ``test_bench_*`` file regenerates one table or figure of the
paper.  The expensive artifacts are session-scoped:

* ``trace_analysis`` -- the synthetic crawl + Section III analysis
  behind Figs 2-13;
* ``suite`` -- the Section V experiment grid (five system variants on
  the simulator environment) at a benchmark-friendly scale;
* ``planetlab_suite`` -- the same grid on the emulated WAN testbed.

The printed rows are the deliverable: every bench emits the measured
series next to the paper's reported shape so EXPERIMENTS.md can be
cross-checked from ``pytest benchmarks/ --benchmark-only`` output.
"""

from __future__ import annotations

import pytest

from repro.analysis.figures import TraceAnalysis
from repro.experiments.config import SimulationConfig
from repro.experiments.figures import EvaluationSuite
from repro.trace.synthesizer import TraceConfig, TraceSynthesizer

#: Benchmark scale: large enough for the paper's orderings to be
#: visible (see tests/integration), small enough that the whole bench
#: suite finishes in minutes.
BENCH_SIM_CONFIG = SimulationConfig(
    num_nodes=300,
    trace=TraceConfig(
        num_users=300, num_channels=45, num_videos=1500, num_categories=8,
        seed=2014,
    ),
    sessions_per_user=6,
    videos_per_session=8,
    mean_off_time_s=300.0,
    seed=2014,
)

BENCH_PLANETLAB_CONFIG = SimulationConfig.planetlab_scale(seed=2014).scaled_sessions(6)


@pytest.fixture(scope="session")
def crawl_dataset():
    """The synthetic stand-in for the paper's YouTube crawl."""
    return TraceSynthesizer(TraceConfig(seed=20140630)).synthesize()


@pytest.fixture(scope="session")
def trace_analysis(crawl_dataset):
    return TraceAnalysis(crawl_dataset)


@pytest.fixture(scope="session")
def suite():
    return EvaluationSuite(
        config=BENCH_SIM_CONFIG, planetlab_config=BENCH_PLANETLAB_CONFIG
    )


def print_figure(rows, paper_shape):
    """Emit measured rows plus the paper's reference shape."""
    print()
    for row in rows:
        print(row)
    print(f"  paper shape: {paper_shape}")
