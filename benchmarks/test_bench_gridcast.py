"""Bench (extension): four-system decomposition of SocialTube's gain.

GridCast-style caching without an overlay isolates how much of the
P2P systems' advantage over PA-VoD comes from *caching* versus from
*overlay search*: PA-VoD (no cache, no overlay) -> GridCast (cache,
tracker-only) -> NetTube / SocialTube (cache + overlay).
"""

from conftest import BENCH_SIM_CONFIG, print_figure
from repro.experiments.figures import EvaluationFigure, FigureRow
from repro.experiments.runner import run_spec
from repro.experiments.spec import ExperimentSpec


def test_bench_gridcast_decomposition(benchmark, suite):
    def build():
        figure = EvaluationFigure(
            figure="Extension",
            title="Caching vs overlay-search decomposition",
        )
        gridcast = run_spec(
            ExperimentSpec(protocol="gridcast", config=BENCH_SIM_CONFIG)
        )
        rows = [
            ("PA-VoD", suite.result("PA-VoD").metrics),
            ("GridCast", gridcast.metrics),
            ("NetTube", suite.result("NetTube w/ PF").metrics),
            ("SocialTube", suite.result("SocialTube w/ PF").metrics),
        ]
        for label, metrics in rows:
            figure.rows.append(
                FigureRow(
                    label=label,
                    values={
                        "peer_bw_p50": metrics.peer_bandwidth_p50,
                        "startup_ms": metrics.startup_delay_ms_mean,
                        "links": max(
                            metrics.overhead_by_video_index.values() or [0.0]
                        ),
                    },
                )
            )
        return figure

    figure = benchmark.pedantic(build, rounds=1, iterations=1)
    print_figure(
        figure.render_rows(),
        "expected: caching alone (GridCast) recovers much of the peer "
        "bandwidth at zero link overhead but leans on an idealised "
        "tracker; the overlays trade tracker load for standing links, "
        "and SocialTube's community structure wins on startup delay",
    )
    values = {row.label: row.values for row in figure.rows}
    assert values["GridCast"]["peer_bw_p50"] > values["PA-VoD"]["peer_bw_p50"]
    assert values["GridCast"]["links"] == 0.0
