#!/usr/bin/env python3
"""Documentation checks: intra-repo markdown links and mermaid blocks.

Run from the repository root (CI's docs job does)::

    python tools/check_docs.py            # checks all tracked *.md files
    python tools/check_docs.py docs/*.md  # or an explicit list

Two checks, both offline:

* **Links** -- every relative markdown link target (``[x](docs/y.md)``,
  optionally with a ``#fragment``) must exist on disk, resolved against
  the linking file's directory.  External schemes (``http(s)://``,
  ``mailto:``) and pure in-page anchors (``#section``) are skipped.
* **Mermaid** -- every ````` ```mermaid ````` fence must parse under a
  lenient structural validator: a known diagram header on the first
  non-blank line, balanced bracket/paren/brace delimiters per line, and
  no unterminated quoted strings.  This catches the typo class that
  breaks rendering (a stray ``]`` or an unclosed label) without
  needing the real mermaid toolchain.
* **Tables** -- every pipe table (consecutive ``|``-prefixed lines
  outside code fences) needs a ``---`` separator as its second row and
  the same cell count on every row; a dropped ``|`` silently shifts
  every column to the right of it, which is exactly the corruption the
  field-catalogue tables in docs/tracing.md cannot afford.
* **Lint rule reference** -- ``docs/lint.md`` must document every rule
  id the analyzer registers (``repro.lint.RULE_DESCRIPTIONS``) with a
  ``#### `rule-id` (severity)`` heading whose severity matches the
  registry, and must not document rule ids that no longer exist.  This
  keeps the rule reference from drifting as rules are added/renamed.
* **Worker protocol reference** -- ``docs/scaling.md`` must mention
  every control op of the coordinator<->worker barrier protocol
  (``repro.shard.workers.CONTROL_OPS``) as a backticked token, and
  ``docs/tracing.md`` must mention every stats field of a lane-pool run
  (``repro.shard.workers.STATS_FIELDS``) and every fault trace event the
  time-series collector folds (``repro.obs.timeseries._FAULT_ROW_CODES``).
  Same anti-drift idea as the lint reference: the wire vocabulary and
  the counters are code-owned constants, and the operator docs may not
  silently fall behind them.
* **Perf report reference** -- ``docs/performance.md`` must mention
  every top-level field of the sidecar perf report
  (``repro.obs.perf_report.PERF_REPORT_FIELDS``) and every section of
  its pool breakdown (``repro.obs.perf.POOL_PERF_FIELDS``) as
  backticked tokens, so the telemetry guide tracks the schema it
  documents.

Exit code 0 when clean, 1 with one ``file:line: message`` row per
problem otherwise.
"""

from __future__ import annotations

import os
import re
import sys
from typing import Iterable, List, Tuple

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(_REPO_ROOT, "src"))

#: Markdown inline link: [text](target) -- ignores images' leading ``!``
#: by matching them identically (image paths must exist too).
_LINK_RE = re.compile(r"\[[^\]\n]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")

_EXTERNAL_PREFIXES = ("http://", "https://", "mailto:", "ftp://")

_MERMAID_HEADERS = (
    "flowchart",
    "graph",
    "sequenceDiagram",
    "classDiagram",
    "stateDiagram",
    "erDiagram",
    "gantt",
    "pie",
    "journey",
    "timeline",
    "mindmap",
)

_BRACKETS = {"[": "]", "(": ")", "{": "}"}
_CLOSERS = {v: k for k, v in _BRACKETS.items()}


def iter_markdown_files(root: str) -> List[str]:
    """All ``*.md`` files under ``root``, skipping VCS/cache directories."""
    found: List[str] = []
    skip_dirs = {".git", "__pycache__", ".pytest_cache", "node_modules"}
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = sorted(d for d in dirnames if d not in skip_dirs)
        for name in sorted(filenames):
            if name.endswith(".md"):
                found.append(os.path.join(dirpath, name))
    return found


def _strip_code_fences(lines: List[str]) -> List[Tuple[int, str]]:
    """(lineno, text) pairs with fenced code block contents removed."""
    kept: List[Tuple[int, str]] = []
    in_fence = False
    for lineno, line in enumerate(lines, start=1):
        stripped = line.lstrip()
        if stripped.startswith("```"):
            in_fence = not in_fence
            continue
        if not in_fence:
            kept.append((lineno, line))
    return kept


def check_links(path: str, lines: List[str]) -> List[str]:
    """``file:line: message`` rows for broken relative link targets."""
    problems: List[str] = []
    base = os.path.dirname(os.path.abspath(path))
    for lineno, line in _strip_code_fences(lines):
        for match in _LINK_RE.finditer(line):
            target = match.group(1)
            if target.startswith(_EXTERNAL_PREFIXES) or target.startswith("#"):
                continue
            file_part = target.split("#", 1)[0]
            if not file_part:
                continue
            resolved = os.path.normpath(os.path.join(base, file_part))
            if not os.path.exists(resolved):
                problems.append(
                    f"{path}:{lineno}: broken link target {target!r} "
                    f"(resolved to {resolved})"
                )
    return problems


def _balanced(line: str) -> bool:
    """Bracket/paren/brace balance for one mermaid line (quotes opaque)."""
    stack: List[str] = []
    in_quote = False
    for ch in line:
        if ch == '"':
            in_quote = not in_quote
            continue
        if in_quote:
            continue
        if ch in _BRACKETS:
            stack.append(ch)
        elif ch in _CLOSERS:
            if not stack or stack[-1] != _CLOSERS[ch]:
                return False
            stack.pop()
    return not stack and not in_quote


def check_mermaid_block(path: str, start_line: int, block: List[str]) -> List[str]:
    """Validate one mermaid fence's contents (lenient structural parse)."""
    problems: List[str] = []
    body = [line for line in block if line.strip()]
    if not body:
        problems.append(f"{path}:{start_line}: empty mermaid block")
        return problems
    header = body[0].strip().split()[0]
    if header not in _MERMAID_HEADERS:
        problems.append(
            f"{path}:{start_line}: mermaid block starts with {header!r}, "
            f"expected one of {', '.join(_MERMAID_HEADERS)}"
        )
    for offset, line in enumerate(block):
        if line.strip() and not _balanced(line):
            problems.append(
                f"{path}:{start_line + offset + 1}: unbalanced "
                f"delimiters/quotes in mermaid line: {line.strip()!r}"
            )
    return problems


def check_mermaid(path: str, lines: List[str]) -> List[str]:
    """Find and validate every ```mermaid fence in one file."""
    problems: List[str] = []
    block: List[str] = []
    start = 0
    in_mermaid = False
    for lineno, line in enumerate(lines, start=1):
        stripped = line.strip()
        if not in_mermaid and stripped.startswith("```mermaid"):
            in_mermaid = True
            start = lineno
            block = []
            continue
        if in_mermaid and stripped.startswith("```"):
            in_mermaid = False
            problems.extend(check_mermaid_block(path, start, block))
            continue
        if in_mermaid:
            block.append(line)
    if in_mermaid:
        problems.append(f"{path}:{start}: unterminated mermaid fence")
    return problems


def _table_cells(line: str) -> int:
    """Cell count of one pipe-table row (outer pipes stripped)."""
    body = line.strip().strip("|")
    cells = 0
    escaped = False
    for ch in body:
        if escaped:
            escaped = False
            continue
        if ch == "\\":
            escaped = True
            continue
        if ch == "|":
            cells += 1
    return cells + 1


def _is_separator_row(line: str) -> bool:
    """Whether a row is the ``| --- | --- |`` header separator."""
    body = line.strip().strip("|")
    parts = [part.strip() for part in body.split("|")]
    return all(part and set(part) <= {"-", ":"} for part in parts)


def check_tables(path: str, lines: List[str]) -> List[str]:
    """``file:line: message`` rows for malformed pipe tables."""
    problems: List[str] = []
    block: List[Tuple[int, str]] = []
    kept = _strip_code_fences(lines)
    kept.append((len(lines) + 1, ""))  # sentinel flushes a trailing table
    for lineno, line in kept:
        if line.strip().startswith("|"):
            block.append((lineno, line))
            continue
        if len(block) >= 2:
            start, _header = block[0]
            if not _is_separator_row(block[1][1]):
                problems.append(
                    f"{path}:{start}: table is missing its '---' "
                    "separator as the second row"
                )
            else:
                width = _table_cells(block[0][1])
                for row_line, row in block[2:]:
                    if _table_cells(row) != width:
                        problems.append(
                            f"{path}:{row_line}: table row has "
                            f"{_table_cells(row)} cell(s), header has "
                            f"{width}"
                        )
        block = []
    return problems


#: ``#### `rule-id` (severity)`` -- one heading per analyzer rule.
_RULE_HEADING_RE = re.compile(r"^####\s+`([a-z0-9-]+)`\s+\((high|medium|low)\)\s*$")


def check_lint_rule_reference(path: str) -> List[str]:
    """docs/lint.md documents exactly the analyzer's registered rules."""
    from repro.lint import RULE_DESCRIPTIONS, RULE_SEVERITIES

    problems: List[str] = []
    documented: dict = {}
    with open(path, "r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle.read().splitlines(), start=1):
            match = _RULE_HEADING_RE.match(line)
            if match:
                documented[match.group(1)] = (lineno, match.group(2))
    for rule_id in sorted(RULE_DESCRIPTIONS):
        if rule_id not in documented:
            problems.append(
                f"{path}:1: rule {rule_id!r} is registered by the analyzer "
                "but has no '#### `rule-id` (severity)' section"
            )
            continue
        lineno, severity = documented[rule_id]
        if severity != RULE_SEVERITIES[rule_id]:
            problems.append(
                f"{path}:{lineno}: rule {rule_id!r} documented as "
                f"{severity!r} but registered as {RULE_SEVERITIES[rule_id]!r}"
            )
    for rule_id, (lineno, _severity) in sorted(documented.items()):
        if rule_id not in RULE_DESCRIPTIONS:
            problems.append(
                f"{path}:{lineno}: documented rule {rule_id!r} is not "
                "registered by the analyzer (renamed or removed?)"
            )
    return problems


def check_worker_protocol_reference(path: str) -> List[str]:
    """docs/scaling.md mentions every barrier-protocol control op."""
    from repro.shard.workers import CONTROL_OPS

    problems: List[str] = []
    with open(path, "r", encoding="utf-8") as handle:
        text = handle.read()
    for op in CONTROL_OPS:
        if f"`{op}`" not in text:
            problems.append(
                f"{path}:1: barrier-protocol op {op!r} "
                "(repro.shard.workers.CONTROL_OPS) is not documented as a "
                "backticked token"
            )
    return problems


def check_worker_stats_reference(path: str) -> List[str]:
    """docs/tracing.md mentions every lane-pool stats field."""
    from repro.shard.workers import STATS_FIELDS

    problems: List[str] = []
    with open(path, "r", encoding="utf-8") as handle:
        text = handle.read()
    for field in STATS_FIELDS:
        if f"`{field}`" not in text:
            problems.append(
                f"{path}:1: lane-pool stats field {field!r} "
                "(repro.shard.workers.STATS_FIELDS) is not documented as a "
                "backticked token"
            )
    return problems


def check_fault_event_reference(path: str) -> List[str]:
    """docs/tracing.md mentions every fault-row event the collector folds."""
    from repro.obs.timeseries import _FAULT_ROW_CODES

    problems: List[str] = []
    with open(path, "r", encoding="utf-8") as handle:
        text = handle.read()
    for name in _FAULT_ROW_CODES:
        if f"`{name}`" not in text:
            problems.append(
                f"{path}:1: fault trace event {name!r} "
                "(repro.obs.timeseries._FAULT_ROW_CODES) is not documented "
                "as a backticked token"
            )
    return problems


def check_perf_field_reference(path: str) -> List[str]:
    """docs/performance.md mentions every perf-report and pool field."""
    from repro.obs.perf import POOL_PERF_FIELDS
    from repro.obs.perf_report import PERF_REPORT_FIELDS

    problems: List[str] = []
    with open(path, "r", encoding="utf-8") as handle:
        text = handle.read()
    for field in PERF_REPORT_FIELDS:
        if f"`{field}`" not in text:
            problems.append(
                f"{path}:1: perf report field {field!r} "
                "(repro.obs.perf_report.PERF_REPORT_FIELDS) is not "
                "documented as a backticked token"
            )
    for field in POOL_PERF_FIELDS:
        if f"`{field}`" not in text:
            problems.append(
                f"{path}:1: pool perf section {field!r} "
                "(repro.obs.perf.POOL_PERF_FIELDS) is not documented as a "
                "backticked token"
            )
    return problems


def check_file(path: str) -> List[str]:
    """All problems for one markdown file."""
    with open(path, "r", encoding="utf-8") as handle:
        lines = handle.read().splitlines()
    problems = (
        check_links(path, lines)
        + check_mermaid(path, lines)
        + check_tables(path, lines)
    )
    in_docs = "docs" in path.split(os.sep)
    if os.path.basename(path) == "lint.md" and in_docs:
        problems += check_lint_rule_reference(path)
    if os.path.basename(path) == "scaling.md" and in_docs:
        problems += check_worker_protocol_reference(path)
    if os.path.basename(path) == "tracing.md" and in_docs:
        problems += check_worker_stats_reference(path)
        problems += check_fault_event_reference(path)
    if os.path.basename(path) == "performance.md" and in_docs:
        problems += check_perf_field_reference(path)
    return problems


def run(paths: Iterable[str]) -> int:
    """Check the given files (or discover *.md under '.'); 0 = clean."""
    targets = list(paths) or iter_markdown_files(".")
    problems: List[str] = []
    for path in targets:
        problems.extend(check_file(path))
    for problem in problems:
        print(problem)
    print(f"{len(problems)} problem(s) in {len(targets)} markdown file(s)")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(run(sys.argv[1:]))
