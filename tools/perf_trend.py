"""Fold the committed ``BENCH_*.json`` snapshots into a trend table.

Run from the repo root (no dependencies beyond git and the stdlib):

    python tools/perf_trend.py            # markdown trajectory tables
    python tools/perf_trend.py --check    # schema gate for CI (exit 1 on
                                          # malformed/missing snapshots)

Every benchmark snapshot is committed precisely so its history can be
read: this tool walks ``git log`` for each ``BENCH_*.json``, extracts
the file's **headline metric** (the one number its benchmark exists to
track -- see ``benchmarks/README.md``), and renders one markdown table
per file: commit, date, subject, headline value, and the delta against
the previous committed value.  A working-tree version that differs
from the last committed snapshot is appended as a final
``(working tree)`` row, so a PR's perf motion is visible before the
commit exists.

The numbers are machine-dependent (the snapshots record ``cpu_count``
for exactly this reason), so ``--check`` deliberately does **not**
gate on values or deltas -- the repo's standing rule is that CI never
asserts on committed wall-clock numbers, only on constructive bars
measured in-process.  What ``--check`` does gate on is structure: each
current snapshot must parse, carry the shared envelope written by
``benchmarks/harness.py`` (``bench_schema`` at the known version,
``benchmark``, ``command``, ``cpu_count``, ``timings_s``), and expose
its headline metric at the documented key.  A benchmark that silently
stops publishing its headline is the regression this gate catches.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
from typing import Any, Dict, List, Optional, Tuple

REPO_ROOT = os.path.normpath(os.path.join(os.path.dirname(__file__), ".."))

#: Known envelope version (mirrors ``benchmarks/harness.py``; kept as a
#: literal so this tool runs without PYTHONPATH or the benchmarks dir).
BENCH_SCHEMA_VERSION = 1

#: filename -> (dotted headline key, unit, higher-is-better).  The
#: headline is the quantity each snapshot's ``note`` declares; trend
#: deltas are signed so a drop in a higher-is-better metric reads as
#: negative.
HEADLINES: Dict[str, Tuple[str, str, bool]] = {
    "BENCH_engine.json": (
        "throughput_events_per_s.nodes_1000",
        "events/s",
        True,
    ),
    "BENCH_shard.json": (
        "throughput_events_per_s.shards_4",
        "events/s",
        True,
    ),
    "BENCH_faults.json": (
        "timings_s.grid_smoke",
        "s",
        False,
    ),
    "BENCH_timeseries.json": (
        "throughput_events_per_s.untraced",
        "events/s",
        True,
    ),
    "BENCH_parallel.json": ("timings_s.serial_jobs1", "s", False),
    "BENCH_lint.json": ("throughput_files_per_s", "files/s", True),
}

#: Envelope keys every *current* snapshot must carry (historical
#: revisions predate the shared harness and are rendered best-effort).
ENVELOPE_KEYS = ("bench_schema", "benchmark", "command", "cpu_count", "timings_s")


def dig(payload: Dict[str, Any], dotted: str) -> Optional[Any]:
    """Resolve ``a.b.c`` inside nested dicts; None when any hop is absent."""
    node: Any = payload
    for part in dotted.split("."):
        if not isinstance(node, dict) or part not in node:
            return None
        node = node[part]
    return node


def _git(*argv: str) -> Optional[str]:
    """Run one git command at the repo root; None on any failure."""
    try:
        out = subprocess.run(
            ("git", "-C", REPO_ROOT) + argv,
            capture_output=True,
            text=True,
            check=False,
        )
    except OSError:
        return None
    if out.returncode != 0:
        return None
    return out.stdout


def committed_revisions(filename: str) -> List[Dict[str, str]]:
    """Oldest-first commits touching ``filename``: sha, date, subject."""
    raw = _git(
        "log",
        "--reverse",
        "--format=%h\x1f%cs\x1f%s",
        "--",
        filename,
    )
    if not raw:
        return []
    revisions = []
    for line in raw.splitlines():
        sha, date, subject = line.split("\x1f", 2)
        revisions.append({"sha": sha, "date": date, "subject": subject})
    return revisions


def payload_at(sha: str, filename: str) -> Optional[Dict[str, Any]]:
    """The snapshot as committed at ``sha``; None if absent/unparsable."""
    blob = _git("show", f"{sha}:{filename}")
    if blob is None:
        return None
    try:
        payload = json.loads(blob)
    except json.JSONDecodeError:
        return None
    return payload if isinstance(payload, dict) else None


def working_payload(filename: str) -> Optional[Dict[str, Any]]:
    """The snapshot currently on disk; None if absent/unparsable."""
    path = os.path.join(REPO_ROOT, filename)
    try:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except (OSError, json.JSONDecodeError):
        return None
    return payload if isinstance(payload, dict) else None


def _fmt_value(value: Any, unit: str) -> str:
    if isinstance(value, float):
        return f"{value:g} {unit}"
    return f"{value} {unit}"


def _fmt_delta(value: Any, previous: Any) -> str:
    if not isinstance(value, (int, float)) or not isinstance(
        previous, (int, float)
    ):
        return ""
    if not previous:
        return ""
    pct = 100.0 * (value - previous) / previous
    return f"{pct:+.1f}%"


def trend_rows(filename: str) -> List[Dict[str, Any]]:
    """One row per revision (plus a working-tree row when it differs)."""
    key, _unit, _higher = HEADLINES[filename]
    rows: List[Dict[str, Any]] = []
    last_committed: Optional[Dict[str, Any]] = None
    for rev in committed_revisions(filename):
        payload = payload_at(rev["sha"], filename)
        if payload is None:
            continue
        last_committed = payload
        rows.append({**rev, "value": dig(payload, key)})
    current = working_payload(filename)
    if current is not None and current != last_committed:
        rows.append(
            {
                "sha": "—",
                "date": "(working tree)",
                "subject": "uncommitted",
                "value": dig(current, key),
            }
        )
    return rows


def render_trend(filenames: List[str]) -> str:
    """The full markdown report over ``filenames``."""
    lines = ["# Benchmark headline trends", ""]
    lines.append(
        "Values are machine-dependent snapshots (each records the "
        "producing host's `cpu_count`); read deltas as trajectory, "
        "not as a gate."
    )
    for filename in filenames:
        key, unit, higher = HEADLINES[filename]
        lines.append("")
        direction = "higher is better" if higher else "lower is better"
        lines.append(f"## {filename} — `{key}` ({direction})")
        lines.append("")
        rows = trend_rows(filename)
        if not rows:
            lines.append("_no committed snapshots and no working-tree file_")
            continue
        lines.append("| commit | date | subject | headline | delta |")
        lines.append("| --- | --- | --- | --- | --- |")
        previous = None
        for row in rows:
            value = row["value"]
            shown = "?" if value is None else _fmt_value(value, unit)
            delta = _fmt_delta(value, previous)
            subject = row["subject"]
            if len(subject) > 56:
                subject = subject[:53] + "..."
            lines.append(
                f"| {row['sha']} | {row['date']} | {subject} "
                f"| {shown} | {delta} |"
            )
            if value is not None:
                previous = value
    lines.append("")
    return "\n".join(lines)


def check_snapshots(filenames: List[str]) -> List[str]:
    """Structural problems with the *current* snapshots (CI gate)."""
    problems = []
    for filename in filenames:
        key, _unit, _higher = HEADLINES[filename]
        payload = working_payload(filename)
        if payload is None:
            problems.append(f"{filename}: missing or unparsable")
            continue
        for envelope_key in ENVELOPE_KEYS:
            if envelope_key not in payload:
                problems.append(f"{filename}: envelope key {envelope_key!r} missing")
        schema = payload.get("bench_schema")
        if schema is not None and schema != BENCH_SCHEMA_VERSION:
            problems.append(
                f"{filename}: bench_schema {schema!r} != {BENCH_SCHEMA_VERSION}"
            )
        if dig(payload, key) is None:
            problems.append(f"{filename}: headline key {key!r} missing")
    return problems


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--check",
        action="store_true",
        help="validate current snapshot structure instead of printing trends",
    )
    parser.add_argument(
        "files",
        nargs="*",
        choices=[[], *sorted(HEADLINES)],
        help="restrict to specific BENCH files (default: all known)",
    )
    args = parser.parse_args(argv)
    filenames = list(args.files) or sorted(HEADLINES)

    if args.check:
        problems = check_snapshots(filenames)
        for problem in problems:
            print(f"FAIL: {problem}", file=sys.stderr)
        if not problems:
            print(f"ok: {len(filenames)} snapshot(s) structurally sound")
        return 1 if problems else 0

    print(render_trend(filenames))
    return 0


if __name__ == "__main__":
    sys.exit(main())
