"""Unit tests for session progress tracking."""

import pytest

from repro.workload.session import SessionTracker


class TestSessionTracker:
    def test_invalid_plan_rejected(self):
        with pytest.raises(ValueError):
            SessionTracker(0, 10)
        with pytest.raises(ValueError):
            SessionTracker(10, 0)

    def test_basic_session_flow(self):
        tracker = SessionTracker(sessions_per_user=2, videos_per_session=3)
        tracker.begin_session(1)
        assert tracker.record_video(1) == 1
        assert tracker.record_video(1) == 2
        assert not tracker.session_finished(1)
        assert tracker.record_video(1) == 3
        assert tracker.session_finished(1)
        tracker.end_session(1)
        assert tracker.sessions_done(1) == 1
        assert not tracker.all_sessions_done(1)

    def test_all_sessions_done(self):
        tracker = SessionTracker(sessions_per_user=2, videos_per_session=1)
        for _ in range(2):
            tracker.begin_session(1)
            tracker.record_video(1)
            tracker.end_session(1)
        assert tracker.all_sessions_done(1)

    def test_double_begin_rejected(self):
        tracker = SessionTracker(1, 1)
        tracker.begin_session(1)
        with pytest.raises(RuntimeError):
            tracker.begin_session(1)

    def test_record_outside_session_rejected(self):
        tracker = SessionTracker(1, 1)
        with pytest.raises(RuntimeError):
            tracker.record_video(1)

    def test_end_outside_session_rejected(self):
        tracker = SessionTracker(1, 1)
        with pytest.raises(RuntimeError):
            tracker.end_session(1)

    def test_video_count_resets_per_session(self):
        tracker = SessionTracker(sessions_per_user=2, videos_per_session=2)
        tracker.begin_session(1)
        tracker.record_video(1)
        tracker.record_video(1)
        tracker.end_session(1)
        tracker.begin_session(1)
        assert tracker.videos_watched_in_session(1) == 0
        assert tracker.record_video(1) == 1

    def test_users_tracked_independently(self):
        tracker = SessionTracker(2, 2)
        tracker.begin_session(1)
        tracker.begin_session(2)
        tracker.record_video(1)
        assert tracker.videos_watched_in_session(2) == 0
