"""Unit tests for the window-batched lane engine (throughput mode)."""

import pytest

from repro.shard.lanes import LaneEngine
from repro.shard.mailbox import ShardViolation
from repro.sim.engine import SimulationError

LOOKAHEAD = 10.0


def timer_workload(engine, trace, period, stop_at):
    """Plant one self-rescheduling timer per lane, recording firings."""

    def tick(lane):
        trace.append((lane.index, lane.now))
        if lane.now + period <= stop_at:
            engine.post(lane, period, tick, lane)

    for lane in engine.lanes:
        engine.post(lane, period, tick, lane)


class TestWindowedMode:
    def test_deterministic_across_runs(self):
        traces = []
        for _ in range(2):
            engine = LaneEngine(3, LOOKAHEAD, seed=42)
            trace = []
            timer_workload(engine, trace, period=3.0, stop_at=90.0)
            engine.run_until(90.0)
            traces.append(trace)
        assert traces[0] == traces[1]
        assert traces[0]  # the workload actually ran

    def test_lane_order_within_window(self):
        # Within one window lanes run in ascending index, and within a
        # lane events run in (fire_time, seq) order.
        engine = LaneEngine(2, LOOKAHEAD, seed=0)
        trace = []
        timer_workload(engine, trace, period=2.0, stop_at=LOOKAHEAD)
        engine.run_until(LOOKAHEAD)
        lane0 = [t for idx, t in trace if idx == 0]
        lane1 = [t for idx, t in trace if idx == 1]
        assert lane0 == sorted(lane0)
        assert lane1 == sorted(lane1)
        # All of lane 0's window precedes all of lane 1's.
        assert trace.index((1, 2.0)) > trace.index((0, max(lane0)))

    def test_same_window_spill_keeps_order(self):
        engine = LaneEngine(1, LOOKAHEAD, seed=0)
        lane = engine.lanes[0]
        order = []

        def first():
            order.append(("first", lane.now))
            # Lane-local causality: posting into the executing window is
            # legal and must fire before the later entry at t=5.
            engine.post(lane, 1.0, order.append, ("spill", 2.0))

        engine.post(lane, 1.0, first)
        engine.post(lane, 5.0, order.append, ("late", 5.0))
        engine.run_until(LOOKAHEAD)
        assert order == [("first", 1.0), ("spill", 2.0), ("late", 5.0)]

    def test_lanes_park_at_horizon(self):
        engine = LaneEngine(2, LOOKAHEAD, seed=0)
        engine.post(engine.lanes[0], 1.0, lambda: None)
        engine.run_until(40.0)
        assert all(lane.now == 40.0 for lane in engine.lanes)

    def test_post_in_lane_past_rejected(self):
        engine = LaneEngine(1, LOOKAHEAD, seed=0)
        lane = engine.lanes[0]

        def fires_at_five():
            with pytest.raises(SimulationError):
                engine.post_at(lane, 1.0, lambda: None)

        engine.post(lane, 5.0, fires_at_five)
        engine.run_until(LOOKAHEAD)
        with pytest.raises(SimulationError):
            engine.post(lane, -1.0, lambda: None)

    def test_per_lane_rng_streams_are_independent(self):
        a = LaneEngine(2, LOOKAHEAD, seed=11)
        b = LaneEngine(2, LOOKAHEAD, seed=11)
        draws_a = [lane.rng.stream("latency").random() for lane in a.lanes]
        draws_b = [lane.rng.stream("latency").random() for lane in b.lanes]
        assert draws_a == draws_b  # same seed, same shard:k forks
        assert draws_a[0] != draws_a[1]  # but partition-local streams


class TestCrossLaneMessages:
    def test_delivered_at_barrier_in_canonical_order(self):
        engine = LaneEngine(2, LOOKAHEAD, seed=0)
        delivered = []
        engine.on_message = lambda eng, lane, msg: delivered.append(
            (lane.index, msg.kind, msg.fire_time)
        )

        def sender():
            # Lookahead bound: a cross-lane effect lands in a later window.
            engine.send(1, engine.lanes[0].now + LOOKAHEAD, "ping", ())
            engine.send(1, engine.lanes[0].now + 2 * LOOKAHEAD, "pong", ())

        engine.post(engine.lanes[0], 1.0, sender)
        engine.run_until(3 * LOOKAHEAD)
        assert delivered == [(1, "ping", 11.0), (1, "pong", 21.0)]
        assert engine.mailbox.violations == 0

    def test_handler_can_refile_as_lane_event(self):
        engine = LaneEngine(2, LOOKAHEAD, seed=0)
        ran = []
        engine.on_message = lambda eng, lane, msg: eng.post_at(
            lane, msg.fire_time, ran.append, ((lane.index, msg.fire_time),)
        )
        engine.post(
            engine.lanes[0], 1.0,
            lambda: engine.send(1, 15.0, "work", ()),
        )
        engine.run_until(2 * LOOKAHEAD)
        assert ran == [(1, 15.0)]

    def test_send_outside_event_rejected(self):
        engine = LaneEngine(2, LOOKAHEAD, seed=0)
        with pytest.raises(SimulationError):
            engine.send(1, 20.0, "nope", ())

    def test_in_window_send_violates_lookahead(self):
        engine = LaneEngine(2, LOOKAHEAD, seed=0)  # strict by default
        engine.on_message = lambda eng, lane, msg: None

        def bad_sender():
            engine.send(1, engine.lanes[0].now + 0.5, "too-soon", ())

        engine.post(engine.lanes[0], 1.0, bad_sender)
        with pytest.raises(ShardViolation):
            engine.run_until(LOOKAHEAD)

    def test_messages_without_handler_fail_loudly(self):
        engine = LaneEngine(2, LOOKAHEAD, seed=0)
        engine.post(
            engine.lanes[0], 1.0,
            lambda: engine.send(1, LOOKAHEAD + 1.0, "orphan", ()),
        )
        with pytest.raises(SimulationError):
            engine.run_until(2 * LOOKAHEAD)


class TestSerializedFallback:
    def test_zero_lookahead_runs_without_deadlock(self):
        # min cross-shard latency 0 -> every event time is a barrier;
        # chains of same-timestamp events must still make progress.
        engine = LaneEngine(2, 0.0, seed=0)
        order = []

        def chain(lane, depth):
            order.append((lane.index, lane.now, depth))
            if depth < 4:
                engine.post(lane, 0.0, chain, lane, depth + 1)

        for lane in engine.lanes:
            engine.post(lane, 1.0, chain, lane, 1)
        engine.run_until(1.0)
        assert len(order) == 8  # 4 per lane, all at t=1.0
        assert all(t == 1.0 for _idx, t, _d in order)

    def test_zero_lookahead_cross_lane_delivery(self):
        engine = LaneEngine(2, 0.0, seed=0)
        delivered = []
        engine.on_message = lambda eng, lane, msg: delivered.append(
            (lane.index, msg.fire_time)
        )
        engine.post(
            engine.lanes[0], 1.0,
            lambda: engine.send(1, 1.0, "same-time", ()),
        )
        engine.run_until(2.0)
        # fire_time == window_end satisfies the (empty) lookahead bound.
        assert delivered == [(1, 1.0)]
        assert engine.mailbox.violations == 0

    def test_serialized_and_windowed_agree_on_lane_local_workload(self):
        results = []
        # stop_at sits strictly inside the last window: the windowed
        # horizon is quantized to the barrier grid, so an event exactly
        # at the horizon runs in serialized mode but not windowed mode.
        for lookahead in (0.0, LOOKAHEAD):
            engine = LaneEngine(2, lookahead, seed=5)
            trace = []
            timer_workload(engine, trace, period=4.0, stop_at=38.0)
            engine.run_until(40.0)
            results.append(sorted(trace))
        assert results[0] == results[1]


class TestValidation:
    def test_invalid_construction_rejected(self):
        with pytest.raises(ValueError):
            LaneEngine(0, 1.0)
        with pytest.raises(ValueError):
            LaneEngine(2, -1.0)

    def test_negative_horizon_rejected(self):
        with pytest.raises(SimulationError):
            LaneEngine(2, 1.0).run_until(-1.0)

    def test_stats_shape(self):
        engine = LaneEngine(2, LOOKAHEAD, seed=0)
        trace = []
        timer_workload(engine, trace, period=3.0, stop_at=30.0)
        engine.run_until(30.0)
        stats = engine.stats()
        assert stats["num_shards"] == 2
        assert stats["total_events"] == len(trace)
        assert stats["total_events"] == sum(stats["events_by_lane"])
        assert stats["windows"] > 0
