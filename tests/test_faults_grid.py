"""Unit tests for the resilience grid scaffolding (repro.faults.grid).

The full grid is exercised by the CLI smoke / CI parity jobs; these
tests pin the cheap, deterministic surfaces -- family lookup, cell
serialization, canonical JSON shape, and the rendered table -- without
running a simulation.
"""

import json

import pytest

from repro.faults.grid import (
    GRID_FAMILIES,
    GRID_PROTOCOLS,
    GridCell,
    family_plan,
    grid_specs,
    grid_to_json_bytes,
    render_grid,
)
from repro.faults.plan import FaultPlan


def _cells():
    return [
        GridCell(
            protocol="socialtube",
            family="community_crash",
            continuity=0.98123456789,
            failover_latency_ms=123.4567,
            server_fallback_fraction=0.1234567,
            recovery_time_s=60.0,
            fault_events=15,
        ),
        GridCell(
            protocol="pavod",
            family="flash_crowd",
            continuity=0.75,
            failover_latency_ms=0.0,
            server_fallback_fraction=1.0,
            recovery_time_s=300.0,
            fault_events=42,
        ),
    ]


class TestFamilyPlan:
    def test_each_family_maps_to_its_demo(self):
        demos = {
            "community_crash": FaultPlan.community_crash_demo(),
            "tracker_outage": FaultPlan.tracker_outage_demo(),
            "partition": FaultPlan.partition_demo(),
            "flash_crowd": FaultPlan.flash_crowd_demo(),
        }
        assert set(GRID_FAMILIES) == set(demos)
        for name in GRID_FAMILIES:
            assert family_plan(name) == demos[name]

    def test_infra_maps_to_the_combined_demo(self):
        assert family_plan("infra") == FaultPlan.infra_demo()

    def test_unknown_family_rejected_by_name(self):
        with pytest.raises(ValueError, match="sabotage"):
            family_plan("sabotage")
        with pytest.raises(ValueError, match="flash_crowd"):
            family_plan("sabotage")  # the error lists the known families


class TestGridSpecs:
    def test_protocol_major_order_and_armed_plans(self):
        cells = grid_specs(seed=2014, scale="smoke")
        assert len(cells) == len(GRID_PROTOCOLS) * len(GRID_FAMILIES)
        assert [p for p, _f, _s in cells[: len(GRID_FAMILIES)]] == [
            GRID_PROTOCOLS[0]
        ] * len(GRID_FAMILIES)
        for _protocol, family, spec in cells:
            assert spec.faults == family_plan(family)

    def test_shards_and_workers_ride_on_the_spec(self):
        cells = grid_specs(seed=2014, scale="smoke", shards=4, workers=2)
        for _protocol, _family, spec in cells:
            assert spec.shards == 4
            assert spec.workers == 2


class TestScorecardSerialization:
    def test_json_is_canonical_and_newline_terminated(self):
        blob = grid_to_json_bytes(_cells(), seed=2014, scale="smoke")
        assert blob == grid_to_json_bytes(_cells(), seed=2014, scale="smoke")
        assert blob.endswith(b"\n")
        payload = json.loads(blob)
        assert payload["seed"] == 2014
        assert payload["protocols"] == ["socialtube", "pavod"]
        assert [c["family"] for c in payload["cells"]] == [
            "community_crash",
            "flash_crowd",
        ]

    def test_cell_values_are_rounded(self):
        cell = _cells()[0].to_dict()
        assert cell["continuity"] == 0.981235
        assert cell["failover_latency_ms"] == 123.457
        assert cell["server_fallback_fraction"] == 0.123457

    def test_render_has_one_line_per_cell(self):
        text = render_grid(_cells())
        lines = text.splitlines()
        assert len(lines) == 2 + len(_cells())  # title + header + cells
        assert "continuity" in lines[1]
        assert lines[2].startswith("socialtube")
