"""Unit tests for the PlanetLab testbed front-end (fast paths only).

The full WAN comparison lives in tests/integration/test_planetlab.py;
these cover the wiring.
"""

import pytest

from repro.experiments.config import SimulationConfig, simulator_environment
from repro.planetlab.testbed import PlanetLabTestbed
from repro.trace.synthesizer import TraceConfig


@pytest.fixture()
def tiny_testbed():
    config = SimulationConfig(
        num_nodes=40,
        trace=TraceConfig(num_users=40, num_channels=12, num_videos=240,
                          num_categories=6, seed=17),
        sessions_per_user=2,
        videos_per_session=3,
        mean_off_time_s=60.0,
        seed=17,
    )
    return PlanetLabTestbed(config=config)


class TestPlanetLabTestbed:
    def test_default_config_is_paper_scale(self):
        testbed = PlanetLabTestbed()
        assert testbed.config.num_nodes == 250
        assert testbed.environment.name == "planetlab"
        assert testbed.environment.peer_failure_prob > 0

    def test_run_single_protocol(self, tiny_testbed):
        result = tiny_testbed.run("socialtube")
        assert result.metrics.environment == "planetlab"
        assert result.metrics.num_requests == 40 * 2 * 3

    def test_protocol_overrides_forwarded(self, tiny_testbed):
        result = tiny_testbed.run("socialtube", enable_prefetch=False)
        assert result.prefetch_hit_rate == 0.0

    def test_compare_protocols_keys(self, tiny_testbed):
        results = tiny_testbed.compare_protocols(names=("pavod", "socialtube"))
        assert set(results) == {"pavod", "socialtube"}

    def test_custom_environment_honoured(self):
        config = SimulationConfig.smoke_scale(seed=3)
        testbed = PlanetLabTestbed(config=config, environment=simulator_environment())
        result = testbed.run("pavod")
        assert result.metrics.environment == "peersim"
