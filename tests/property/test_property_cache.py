"""Property-based tests for cache / prefetch-store invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cache import PrefetchStore, VideoCache
from repro.net.message import ChunkSource

VIDEO_IDS = st.integers(min_value=0, max_value=30)


@given(
    capacity=st.integers(min_value=1, max_value=8),
    videos=st.lists(VIDEO_IDS, max_size=100),
)
def test_cache_never_exceeds_capacity(capacity, videos):
    cache = VideoCache(max_videos=capacity)
    for video in videos:
        cache.add(video)
        assert len(cache) <= capacity


@given(videos=st.lists(VIDEO_IDS, max_size=100))
def test_unbounded_cache_retains_everything(videos):
    cache = VideoCache()
    for video in videos:
        cache.add(video)
    assert set(cache) == set(videos)
    assert cache.evictions == 0


@given(
    capacity=st.integers(min_value=1, max_value=8),
    videos=st.lists(VIDEO_IDS, min_size=1, max_size=100),
)
def test_most_recent_video_always_cached(capacity, videos):
    cache = VideoCache(max_videos=capacity)
    for video in videos:
        cache.add(video)
    assert videos[-1] in cache


@given(
    capacity=st.integers(min_value=1, max_value=8),
    ops=st.lists(st.tuples(st.sampled_from(["store", "take"]), VIDEO_IDS),
                 max_size=100),
)
@settings(max_examples=100)
def test_prefetch_store_bounded_and_consistent(capacity, ops):
    store = PrefetchStore(capacity=capacity)
    model = {}
    for op, video in ops:
        if op == "store":
            if video not in model:
                if len(model) >= capacity:
                    # Oldest-first eviction in the model too.
                    oldest = next(iter(model))
                    del model[oldest]
                model[video] = True
            store.store(video, ChunkSource.PREFETCH_PEER, 0.0)
        else:
            chunk = store.take(video)
            assert (chunk is not None) == (video in model)
            model.pop(video, None)
        assert len(store) <= capacity
    assert set(store.video_ids()) == set(model)


@given(ops=st.lists(st.tuples(st.sampled_from(["store", "take"]), VIDEO_IDS),
                    max_size=80))
def test_hit_rate_between_zero_and_one(ops):
    store = PrefetchStore(capacity=5)
    for op, video in ops:
        if op == "store":
            store.store(video, ChunkSource.PREFETCH_SERVER, 0.0)
        else:
            store.take(video)
    assert 0.0 <= store.hit_rate() <= 1.0
