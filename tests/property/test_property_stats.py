"""Property-based tests for the statistics toolkit."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.stats import (
    cdf_points,
    gini_coefficient,
    mean,
    pearson_correlation,
    percentile,
)

FINITE = st.floats(min_value=-1e9, max_value=1e9, allow_nan=False)
POSITIVE = st.floats(min_value=0.0, max_value=1e9, allow_nan=False)


@given(values=st.lists(FINITE, min_size=1, max_size=100),
       q=st.floats(min_value=0, max_value=100))
def test_percentile_within_range(values, q):
    result = percentile(values, q)
    # 1-ulp tolerance: interpolation of two equal floats can round up.
    span = max(abs(min(values)), abs(max(values)), 1.0)
    tolerance = 1e-12 * span
    assert min(values) - tolerance <= result <= max(values) + tolerance


@given(values=st.lists(FINITE, min_size=1, max_size=100),
       qs=st.lists(st.floats(min_value=0, max_value=100), min_size=2, max_size=6))
def test_percentile_monotone_in_q(values, qs):
    qs = sorted(qs)
    results = [percentile(values, q) for q in qs]
    scale = max(1.0, max(abs(v) for v in values))
    assert all(a <= b + 1e-9 * scale for a, b in zip(results, results[1:]))


@given(values=st.lists(FINITE, min_size=1, max_size=100))
def test_cdf_is_valid_distribution_function(values):
    points = cdf_points(values)
    xs = [x for x, _ in points]
    ys = [y for _, y in points]
    assert xs == sorted(xs)
    assert ys == sorted(ys)
    assert math.isclose(ys[-1], 1.0)
    assert all(0 < y <= 1 for y in ys)
    assert len(set(xs)) == len(xs)  # ties collapsed


@given(values=st.lists(FINITE, min_size=1, max_size=100))
def test_mean_between_extremes(values):
    assert min(values) - 1e-6 <= mean(values) <= max(values) + 1e-6


@given(
    xs=st.lists(
        st.floats(min_value=-1e6, max_value=1e6), min_size=2, max_size=50, unique=True
    ),
    a=st.floats(min_value=0.01, max_value=100),
    b=st.floats(min_value=-1e6, max_value=1e6),
)
@settings(max_examples=60)
def test_correlation_invariant_under_affine_map(xs, a, b):
    if max(xs) - min(xs) < 1e-3:
        return  # too little spread: variance underflows
    ys = [a * x + b for x in xs]
    if len(set(ys)) < 2:
        return  # degenerate after rounding
    assert pearson_correlation(xs, ys) > 0.999


@given(values=st.lists(POSITIVE, min_size=1, max_size=100))
def test_gini_in_unit_interval(values):
    g = gini_coefficient(values)
    assert -1e-9 <= g <= 1.0


@given(values=st.lists(st.floats(min_value=0.01, max_value=1e6), min_size=1, max_size=50),
       k=st.floats(min_value=0.01, max_value=100))
def test_gini_scale_invariant(values, k):
    original = gini_coefficient(values)
    scaled = gini_coefficient([v * k for v in values])
    assert math.isclose(original, scaled, abs_tol=1e-6)
