"""Property-based tests for the event engine."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.engine import EventScheduler


@given(delays=st.lists(st.floats(min_value=0.0, max_value=1e6), min_size=1, max_size=60))
def test_events_always_fire_in_nondecreasing_time_order(delays):
    sched = EventScheduler()
    fired_times = []
    for delay in delays:
        sched.schedule(delay, lambda: fired_times.append(sched.now))
    sched.run()
    assert fired_times == sorted(fired_times)
    assert len(fired_times) == len(delays)


@given(delays=st.lists(st.floats(min_value=0.0, max_value=100.0), min_size=1, max_size=40))
def test_simultaneous_events_fire_fifo(delays):
    sched = EventScheduler()
    order = []
    for index, _delay in enumerate(delays):
        sched.schedule(1.0, order.append, index)  # all at the same instant
    sched.run()
    assert order == list(range(len(delays)))


@given(
    delays=st.lists(st.floats(min_value=0.0, max_value=100.0), min_size=2, max_size=40),
    data=st.data(),
)
def test_cancelled_subset_never_fires(delays, data):
    sched = EventScheduler()
    fired = []
    events = [sched.schedule(d, fired.append, i) for i, d in enumerate(delays)]
    to_cancel = data.draw(
        st.sets(st.integers(min_value=0, max_value=len(delays) - 1))
    )
    for index in to_cancel:
        events[index].cancel()
    sched.run()
    assert set(fired) == set(range(len(delays))) - to_cancel


@given(
    delays=st.lists(st.floats(min_value=0.0, max_value=100.0), min_size=1, max_size=40),
    horizon=st.floats(min_value=0.0, max_value=100.0),
)
@settings(max_examples=50)
def test_run_until_partitions_events_by_horizon(delays, horizon):
    sched = EventScheduler()
    fired = []
    for delay in delays:
        sched.schedule(delay, fired.append, delay)
    sched.run_until(horizon)
    assert all(d <= horizon for d in fired)
    assert sched.pending_count() == sum(1 for d in delays if d > horizon)
    assert sched.now >= horizon
