"""Property-based tests for the samplers."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.model import prefetch_accuracy
from repro.trace.distributions import (
    DiscreteSampler,
    bounded_pareto,
    exponential_growth_day,
    zipf_probabilities,
)


@given(
    n=st.integers(min_value=1, max_value=200),
    exponent=st.floats(min_value=0.0, max_value=3.0),
)
def test_zipf_probabilities_normalised_and_decreasing(n, exponent):
    probs = zipf_probabilities(n, exponent)
    assert abs(sum(probs) - 1.0) < 1e-9
    assert all(a >= b - 1e-12 for a, b in zip(probs, probs[1:]))


@given(
    weights=st.lists(st.floats(min_value=0.0, max_value=100.0), min_size=1, max_size=30),
    seed=st.integers(min_value=0, max_value=2 ** 31),
)
@settings(max_examples=100)
def test_discrete_sampler_never_picks_zero_weight(weights, seed):
    if sum(weights) <= 0:
        return
    sampler = DiscreteSampler(weights)
    rng = random.Random(seed)
    for _ in range(50):
        index = sampler.sample(rng)
        assert 0 <= index < len(weights)
        assert weights[index] > 0


@given(
    alpha=st.floats(min_value=0.1, max_value=4.0),
    low=st.floats(min_value=0.1, max_value=10.0),
    span=st.floats(min_value=1.1, max_value=1000.0),
    seed=st.integers(min_value=0, max_value=2 ** 31),
)
@settings(max_examples=100)
def test_bounded_pareto_stays_in_bounds(alpha, low, span, seed):
    high = low * span
    rng = random.Random(seed)
    for _ in range(30):
        x = bounded_pareto(rng, alpha, low, high)
        assert low <= x <= high


@given(
    horizon=st.integers(min_value=1, max_value=2000),
    rate=st.floats(min_value=0.0, max_value=6.0),
    seed=st.integers(min_value=0, max_value=2 ** 31),
)
@settings(max_examples=100)
def test_growth_day_in_horizon(horizon, rate, seed):
    rng = random.Random(seed)
    for _ in range(20):
        day = exponential_growth_day(rng, horizon, rate)
        assert 0 <= day < horizon


@given(
    n=st.integers(min_value=1, max_value=100),
    k1=st.integers(min_value=0, max_value=100),
    k2=st.integers(min_value=0, max_value=100),
)
def test_prefetch_accuracy_monotone_and_bounded(n, k1, k2):
    a1 = prefetch_accuracy(n, k1)
    a2 = prefetch_accuracy(n, k2)
    assert 0.0 <= a1 <= 1.0
    if k1 <= k2:
        assert a1 <= a2 + 1e-12
