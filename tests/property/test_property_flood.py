"""Property-based tests for TTL flooding on random graphs."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.overlay.flood import ttl_flood


@st.composite
def random_graph(draw, max_nodes=12):
    n = draw(st.integers(min_value=2, max_value=max_nodes))
    adjacency = {i: set() for i in range(n)}
    edges = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=n - 1),
                st.integers(min_value=0, max_value=n - 1),
            ),
            max_size=3 * n,
        )
    )
    for a, b in edges:
        if a != b:
            adjacency[a].add(b)
            adjacency[b].add(a)
    return {k: sorted(v) for k, v in adjacency.items()}


def _bfs_distance(adjacency, src, predicate):
    from collections import deque

    seen = {src}
    queue = deque([(src, 0)])
    while queue:
        node, depth = queue.popleft()
        if node != src and predicate(node):
            return depth
        for neighbor in adjacency[node]:
            if neighbor not in seen:
                seen.add(neighbor)
                queue.append((neighbor, depth + 1))
    return None


@given(graph=random_graph(), data=st.data())
@settings(max_examples=150)
def test_flood_matches_bfs_reachability(graph, data):
    nodes = sorted(graph)
    requester = data.draw(st.sampled_from(nodes))
    holders = data.draw(st.sets(st.sampled_from(nodes)))
    ttl = data.draw(st.integers(min_value=1, max_value=5))

    result = ttl_flood(
        requester,
        graph[requester],
        graph.__getitem__,
        lambda n: n in holders,
        ttl=ttl,
    )
    truth = _bfs_distance(graph, requester, lambda n: n in holders)
    if truth is not None and truth <= ttl:
        assert result.success
        assert result.hops == truth  # BFS-minimal hop count
    else:
        assert not result.success


@given(graph=random_graph(), data=st.data())
@settings(max_examples=100)
def test_flood_path_is_walkable_and_ends_at_holder(graph, data):
    nodes = sorted(graph)
    requester = data.draw(st.sampled_from(nodes))
    holders = data.draw(st.sets(st.sampled_from(nodes), min_size=1))
    result = ttl_flood(
        requester,
        graph[requester],
        graph.__getitem__,
        lambda n: n in holders,
        ttl=4,
    )
    if result.success:
        assert result.path[0] == requester
        assert result.path[-1] == result.found
        assert result.found in holders
        for a, b in zip(result.path, result.path[1:]):
            assert b in graph[a]
        assert len(result.path) - 1 == result.hops


@given(graph=random_graph(), data=st.data())
@settings(max_examples=100)
def test_contacted_bounded_by_population(graph, data):
    nodes = sorted(graph)
    requester = data.draw(st.sampled_from(nodes))
    result = ttl_flood(
        requester, graph[requester], graph.__getitem__, lambda n: False, ttl=6
    )
    assert result.contacted <= len(nodes) - 1
