"""Property-based tests for link-table invariants.

The invariant the maintenance-overhead metric depends on: links are
always symmetric and degrees never exceed capacity (without eviction
the cap is hard; with eviction it still holds because eviction makes
room first).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.overlay.links import LinkTable

OPS = st.lists(
    st.tuples(
        st.sampled_from(["connect", "connect_evict", "disconnect", "drop_all"]),
        st.integers(min_value=0, max_value=9),
        st.integers(min_value=0, max_value=9),
    ),
    max_size=120,
)


def _apply(table, ops):
    for op, a, b in ops:
        if op == "drop_all":
            table.drop_all(a)
        elif a != b:
            if op == "connect":
                table.connect(a, b)
            elif op == "connect_evict":
                table.connect(a, b, evict=True)
            else:
                table.disconnect(a, b)


@given(ops=OPS, capacity=st.integers(min_value=1, max_value=5))
@settings(max_examples=150)
def test_links_always_symmetric(ops, capacity):
    table = LinkTable(capacity)
    _apply(table, ops)
    for node in range(10):
        for neighbor in table.neighbors(node):
            assert node in table.neighbors(neighbor), (node, neighbor)


@given(ops=OPS, capacity=st.integers(min_value=1, max_value=5))
@settings(max_examples=150)
def test_degree_never_exceeds_capacity(ops, capacity):
    table = LinkTable(capacity)
    _apply(table, ops)
    assert all(table.degree(node) <= capacity for node in range(10))


@given(ops=OPS, capacity=st.integers(min_value=1, max_value=5))
@settings(max_examples=100)
def test_total_links_consistent_with_degrees(ops, capacity):
    table = LinkTable(capacity)
    _apply(table, ops)
    degree_sum = sum(table.degree(node) for node in range(10))
    assert degree_sum % 2 == 0
    assert table.total_links() == degree_sum // 2


@given(ops=OPS)
@settings(max_examples=100)
def test_no_self_links_ever(ops):
    table = LinkTable(4)
    _apply(table, ops)
    for node in range(10):
        assert node not in table.neighbors(node)
