"""Property-based tests: protocol invariants under random op sequences.

Drives a SocialTube instance through arbitrary interleavings of session
starts/ends, video requests and maintenance, then checks the structural
invariants the design promises:

* total links never exceed N_l + N_h;
* all links are symmetric;
* offline nodes hold no links;
* locate() is always well-formed (exactly one of peer/server/cache).
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from helpers import make_protocol
from repro.core.socialtube import SocialTubeProtocol
from repro.trace.synthesizer import TraceConfig, TraceSynthesizer

_DATASET = TraceSynthesizer(
    TraceConfig(num_users=40, num_channels=8, num_videos=160,
                num_categories=4, seed=55)
).synthesize()

NUM_PEERS = 20

OPS = st.lists(
    st.tuples(
        st.sampled_from(["start", "end", "locate", "watch", "maintain"]),
        st.integers(min_value=0, max_value=NUM_PEERS - 1),
        st.integers(min_value=0, max_value=159),
    ),
    max_size=80,
)


def _drive(proto, ops):
    for op, node, video in ops:
        peer = proto.state(node)
        if op == "start" and not peer.online:
            proto.on_session_start(node)
        elif op == "end" and peer.online:
            if peer.current_video is not None:
                proto.on_watch_finished(node, peer.current_video)
            proto.on_session_end(node)
        elif op == "locate" and peer.online:
            proto.locate(node, video)
        elif op == "watch" and peer.online:
            proto.locate(node, video)
            proto.on_watch_started(node, video)
            proto.on_watch_finished(node, video)
        elif op == "maintain" and peer.online:
            proto.on_maintenance(node)


def _fresh_proto(seed):
    proto, _server = make_protocol(
        SocialTubeProtocol, _DATASET, num_peers=NUM_PEERS, seed=seed
    )
    return proto


@given(ops=OPS, seed=st.integers(min_value=0, max_value=100))
@settings(max_examples=60, deadline=None)
def test_link_budget_never_exceeded(ops, seed):
    proto = _fresh_proto(seed)
    _drive(proto, ops)
    budget = proto.structure.inner_link_limit + proto.structure.inter_link_limit
    for node in range(NUM_PEERS):
        assert proto.link_count(node) <= budget


@given(ops=OPS, seed=st.integers(min_value=0, max_value=100))
@settings(max_examples=60, deadline=None)
def test_links_symmetric_across_levels(ops, seed):
    proto = _fresh_proto(seed)
    _drive(proto, ops)
    for table in (proto.structure.inner, proto.structure.inter):
        for node in range(NUM_PEERS):
            for neighbor in table.neighbors(node):
                assert node in table.neighbors(neighbor)


@given(ops=OPS, seed=st.integers(min_value=0, max_value=100))
@settings(max_examples=60, deadline=None)
def test_offline_nodes_hold_no_links(ops, seed):
    proto = _fresh_proto(seed)
    _drive(proto, ops)
    for node in range(NUM_PEERS):
        if not proto.state(node).online:
            assert proto.link_count(node) == 0


@given(ops=OPS, seed=st.integers(min_value=0, max_value=100),
       video=st.integers(min_value=0, max_value=159))
@settings(max_examples=60, deadline=None)
def test_locate_result_well_formed(ops, seed, video):
    proto = _fresh_proto(seed)
    _drive(proto, ops)
    requester = 0
    if not proto.state(requester).online:
        proto.on_session_start(requester)
    result = proto.locate(requester, video)
    kinds = [result.from_cache, result.from_server, result.from_peer]
    assert sum(bool(k) for k in kinds) == 1
    if result.from_peer:
        provider = proto.state(result.provider_id)
        assert provider.online
        assert provider.has_video(video)
        assert result.provider_id != requester
