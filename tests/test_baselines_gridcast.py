"""Unit tests for the GridCast-style baseline."""

import pytest

from helpers import make_protocol
from repro.baselines.gridcast import GridCastProtocol


@pytest.fixture()
def proto(tiny_dataset):
    protocol, _server = make_protocol(GridCastProtocol, tiny_dataset)
    return protocol


VIDEO = 0


class TestReplicaRegistry:
    def test_watching_registers_replica(self, proto):
        proto.on_session_start(1)
        proto.on_watch_started(1, VIDEO)
        assert proto.replica_count(VIDEO) == 1

    def test_replica_survives_watch_end(self, proto):
        proto.on_session_start(1)
        proto.on_watch_started(1, VIDEO)
        proto.on_watch_finished(1, VIDEO)
        assert proto.replica_count(VIDEO) == 1

    def test_logoff_removes_replicas(self, proto):
        proto.on_session_start(1)
        proto.on_watch_started(1, VIDEO)
        proto.on_session_end(1)
        assert proto.replica_count(VIDEO) == 0

    def test_relogin_re_reports_cache(self, proto):
        proto.on_session_start(1)
        proto.on_watch_started(1, VIDEO)
        proto.on_session_end(1)
        proto.on_session_start(1)
        assert proto.replica_count(VIDEO) == 1


class TestLocate:
    def test_cache_hit(self, proto):
        proto.on_session_start(1)
        proto.on_watch_started(1, VIDEO)
        assert proto.locate(1, VIDEO).from_cache

    def test_no_replicas_server_serves(self, proto):
        proto.on_session_start(1)
        assert proto.locate(1, VIDEO).from_server

    def test_replica_found_via_tracker(self, proto):
        proto.on_session_start(1)
        proto.on_session_start(2)
        proto.on_watch_started(2, VIDEO)
        proto.on_watch_finished(2, VIDEO)  # not a current watcher anymore
        result = proto.locate(1, VIDEO)
        assert result.from_peer
        assert result.provider_id == 2

    def test_offline_replica_not_served(self, proto):
        proto.on_session_start(2)
        proto.on_watch_started(2, VIDEO)
        proto.on_session_end(2)
        proto.on_session_start(1)
        assert proto.locate(1, VIDEO).from_server

    def test_no_standing_links(self, proto):
        proto.on_session_start(1)
        proto.on_watch_started(1, VIDEO)
        assert proto.link_count(1) == 0

    def test_invalid_referral_count_rejected(self, tiny_dataset):
        with pytest.raises(ValueError):
            make_protocol(GridCastProtocol, tiny_dataset, replicas_per_referral=0)


class TestComparisonStory:
    def test_gridcast_beats_pavod_on_availability(self, tiny_dataset):
        """Caching alone lifts availability over current-watcher-only."""
        from repro.experiments.config import SimulationConfig
        from repro.experiments.runner import run_spec
        from repro.experiments.spec import ExperimentSpec

        config = SimulationConfig.smoke_scale(seed=31)
        gridcast = run_spec(ExperimentSpec(protocol="gridcast", config=config))
        pavod = run_spec(ExperimentSpec(protocol="pavod", config=config))
        assert (
            gridcast.metrics.peer_bandwidth_p50
            > pavod.metrics.peer_bandwidth_p50
        )
