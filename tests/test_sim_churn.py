"""Unit tests for the churn (session on/off) model."""

import random

import pytest

from repro.sim.churn import ChurnModel, SessionPlan


class TestSessionPlan:
    def test_valid_plan(self):
        plan = SessionPlan(sessions_per_user=25, videos_per_session=10, mean_off_time=500)
        assert plan.sessions_per_user == 25

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(sessions_per_user=0, videos_per_session=10, mean_off_time=500),
            dict(sessions_per_user=1, videos_per_session=0, mean_off_time=500),
            dict(sessions_per_user=1, videos_per_session=1, mean_off_time=-1),
        ],
    )
    def test_invalid_plans_rejected(self, kwargs):
        with pytest.raises(ValueError):
            SessionPlan(**kwargs)


class TestChurnModel:
    def _model(self, mean_off=500.0, warmup=600.0):
        plan = SessionPlan(sessions_per_user=5, videos_per_session=10, mean_off_time=mean_off)
        return ChurnModel(plan, random.Random(1), warmup_window=warmup)

    def test_negative_warmup_rejected(self):
        plan = SessionPlan(5, 10, 500)
        with pytest.raises(ValueError):
            ChurnModel(plan, random.Random(1), warmup_window=-1)

    def test_initial_join_within_warmup_window(self):
        model = self._model(warmup=300.0)
        for _ in range(100):
            assert 0.0 <= model.initial_join_delay() <= 300.0

    def test_off_durations_positive(self):
        model = self._model()
        assert all(model.off_duration() >= 0 for _ in range(100))

    def test_off_duration_mean_close_to_configured(self):
        # Exponential off-times: the sample mean of many draws should
        # land near the configured mean (Poisson process reading).
        model = self._model(mean_off=500.0)
        draws = [model.off_duration() for _ in range(5000)]
        assert 450 < sum(draws) / len(draws) < 550

    def test_zero_mean_off_time_gives_zero(self):
        model = self._model(mean_off=0.0)
        assert model.off_duration() == 0.0

    def test_plan_passthrough(self):
        model = self._model()
        assert model.session_count() == 5
        assert model.videos_per_session() == 10

    def test_deterministic_given_seed(self):
        plan = SessionPlan(5, 10, 500)
        a = ChurnModel(plan, random.Random(9))
        b = ChurnModel(plan, random.Random(9))
        assert [a.off_duration() for _ in range(5)] == [
            b.off_duration() for _ in range(5)
        ]


class _RecordingTracer:
    """Truthy stand-in capturing (name, attrs) event tuples."""

    def __init__(self):
        self.events = []

    def event(self, name, **attrs):
        self.events.append((name, attrs))


class TestEdgeCases:
    def test_zero_warmup_window_joins_at_time_zero(self):
        plan = SessionPlan(5, 10, 500)
        model = ChurnModel(plan, random.Random(1), warmup_window=0.0)
        for _ in range(20):
            assert model.initial_join_delay() == 0.0

    def test_zero_warmup_still_emits_join_delay_event(self):
        plan = SessionPlan(5, 10, 500)
        tracer = _RecordingTracer()
        model = ChurnModel(plan, random.Random(1), warmup_window=0.0, tracer=tracer)
        model.initial_join_delay()
        assert tracer.events == [("churn.join_delay", {"delay": 0.0})]

    def test_zero_mean_off_time_draws_no_randomness(self):
        """The fast path must not touch the RNG stream: a later consumer
        sharing the stream sees the same sequence either way."""
        plan = SessionPlan(5, 10, mean_off_time=0.0)
        rng = random.Random(33)
        model = ChurnModel(plan, rng)
        state_before = rng.getstate()
        for _ in range(10):
            assert model.off_duration() == 0.0
        assert rng.getstate() == state_before

    def test_zero_mean_off_time_emits_no_event(self):
        plan = SessionPlan(5, 10, mean_off_time=0.0)
        tracer = _RecordingTracer()
        model = ChurnModel(plan, random.Random(33), tracer=tracer)
        model.off_duration()
        assert tracer.events == []

    def test_event_attributes_carry_the_drawn_values(self):
        plan = SessionPlan(5, 10, 500)
        tracer = _RecordingTracer()
        model = ChurnModel(plan, random.Random(8), warmup_window=600.0, tracer=tracer)
        delay = model.initial_join_delay()
        duration = model.off_duration()
        assert tracer.events == [
            ("churn.join_delay", {"delay": delay}),
            ("churn.off_time", {"dur": duration}),
        ]
