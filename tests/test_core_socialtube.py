"""Unit tests for the SocialTube protocol (Algorithm 1)."""

import pytest

from helpers import make_protocol
from repro.core.socialtube import SocialTubeProtocol
from repro.net.message import ChunkSource


@pytest.fixture()
def proto(tiny_dataset):
    protocol, _server = make_protocol(SocialTubeProtocol, tiny_dataset)
    return protocol


def _any_video_of_channel(dataset, channel_id):
    return dataset.channels[channel_id].video_ids[0]


class TestLifecycle:
    def test_session_start_marks_online(self, proto):
        proto.on_session_start(1)
        assert proto.state(1).online
        assert proto.server.is_online(1)

    def test_session_end_leaves_overlays(self, proto, tiny_dataset):
        video = _any_video_of_channel(tiny_dataset, 0)
        proto.on_session_start(1)
        proto.locate(1, video)
        proto.on_session_end(1)
        assert not proto.state(1).online
        assert proto.link_count(1) == 0

    def test_cache_persists_across_sessions(self, proto, tiny_dataset):
        video = _any_video_of_channel(tiny_dataset, 0)
        proto.on_session_start(1)
        proto.on_watch_started(1, video)
        proto.on_watch_finished(1, video)
        proto.on_session_end(1)
        proto.on_session_start(1)
        assert proto.state(1).has_video(video)


class TestLocate:
    def test_cache_hit(self, proto, tiny_dataset):
        video = _any_video_of_channel(tiny_dataset, 0)
        proto.on_session_start(1)
        proto.on_watch_started(1, video)
        result = proto.locate(1, video)
        assert result.from_cache

    def test_first_request_server_fallback(self, proto, tiny_dataset):
        video = _any_video_of_channel(tiny_dataset, 0)
        proto.on_session_start(1)
        result = proto.locate(1, video)
        # Nobody else online: the server must serve.
        assert result.from_server

    def test_locate_joins_channel_overlay(self, proto, tiny_dataset):
        video = _any_video_of_channel(tiny_dataset, 0)
        proto.on_session_start(1)
        proto.locate(1, video)
        assert proto.structure.current_channel(1) == 0
        assert 1 in proto.server.channel_members(0)

    def test_finds_channel_peer_holder(self, proto, tiny_dataset):
        video = _any_video_of_channel(tiny_dataset, 0)
        proto.on_session_start(1)
        proto.on_session_start(2)
        # Node 2 watches the video (joins channel 0's overlay, caches it).
        proto.locate(2, video)
        proto.on_watch_started(2, video)
        # Node 1 requests the same video: found via inner links.
        result = proto.locate(1, video)
        assert result.from_peer
        assert result.provider_id == 2
        assert result.hops >= 1

    def test_provider_adopted_as_neighbor(self, proto, tiny_dataset):
        video = _any_video_of_channel(tiny_dataset, 0)
        proto.on_session_start(1)
        proto.on_session_start(2)
        proto.locate(2, video)
        proto.on_watch_started(2, video)
        result = proto.locate(1, video)
        assert result.from_peer
        assert proto.structure.inner.connected(1, 2)

    def test_offline_holder_not_found(self, proto, tiny_dataset):
        video = _any_video_of_channel(tiny_dataset, 0)
        proto.on_session_start(2)
        proto.locate(2, video)
        proto.on_watch_started(2, video)
        proto.on_session_end(2)
        proto.on_session_start(1)
        result = proto.locate(1, video)
        assert result.from_server

    def test_holder_assist_for_empty_channel(self, proto, tiny_dataset):
        # Node 2 caches a video of channel A, then moves to channel B
        # (same category).  Node 1, alone in channel A's overlay, should
        # still reach node 2 via the server's category holder assist or
        # the inter-link flood.
        cat = tiny_dataset.category_of_channel(0)
        same_cat = [
            c.channel_id
            for c in tiny_dataset.iter_channels()
            if c.category_id == cat and c.channel_id != 0
        ]
        if not same_cat:
            pytest.skip("tiny dataset category has a single channel")
        video_a = _any_video_of_channel(tiny_dataset, 0)
        video_b = _any_video_of_channel(tiny_dataset, same_cat[0])
        proto.on_session_start(2)
        proto.locate(2, video_a)
        proto.on_watch_started(2, video_a)
        proto.locate(2, video_b)  # switch channels within the category
        proto.on_session_start(1)
        result = proto.locate(1, video_a)
        assert result.from_peer
        assert result.provider_id == 2


class TestPrefetch:
    def test_candidates_are_channel_populars(self, proto, tiny_dataset):
        channel = max(tiny_dataset.iter_channels(), key=lambda c: c.num_videos)
        video = channel.video_ids[0]
        proto.on_session_start(1)
        proto.locate(1, video)
        candidates = proto.select_prefetch(1, video, 3)
        ranked = proto.server.top_videos_of_channel(channel.channel_id, 10)
        assert all(c in ranked for c in candidates)
        assert video not in candidates

    def test_candidates_skip_cached(self, proto, tiny_dataset):
        channel = max(tiny_dataset.iter_channels(), key=lambda c: c.num_videos)
        video = channel.video_ids[0]
        proto.on_session_start(1)
        proto.locate(1, video)
        first = proto.select_prefetch(1, video, 2)
        for v in first:
            proto.state(1).cache_video(v)
        second = proto.select_prefetch(1, video, 2)
        assert not set(first) & set(second)

    def test_prefetch_disabled(self, tiny_dataset):
        protocol, _ = make_protocol(
            SocialTubeProtocol, tiny_dataset, enable_prefetch=False
        )
        protocol.on_session_start(1)
        video = _any_video_of_channel(tiny_dataset, 0)
        protocol.locate(1, video)
        assert protocol.select_prefetch(1, video, 3) == []

    def test_prefetch_source_prefers_neighbor_holder(self, proto, tiny_dataset):
        video = _any_video_of_channel(tiny_dataset, 0)
        proto.on_session_start(1)
        proto.on_session_start(2)
        proto.locate(2, video)
        proto.on_watch_started(2, video)
        proto.locate(1, video)  # links 1 to 2
        assert proto.prefetch_source(1, video) is ChunkSource.PREFETCH_PEER

    def test_prefetch_source_server_when_unavailable(self, proto, tiny_dataset):
        video = _any_video_of_channel(tiny_dataset, 0)
        proto.on_session_start(1)
        proto.locate(1, video)
        assert proto.prefetch_source(1, video) is ChunkSource.PREFETCH_SERVER


class TestLinkBudget:
    def test_link_count_bounded(self, proto, tiny_dataset):
        # Many nodes all watching in the same channel: every node's
        # total links stay within N_l + N_h.
        video = _any_video_of_channel(tiny_dataset, 0)
        for node in range(30):
            proto.on_session_start(node)
            proto.locate(node, video)
            proto.on_watch_started(node, video)
            proto.on_maintenance(node)
        for node in range(30):
            assert proto.link_count(node) <= 5 + 10
