"""Unit tests for trace serialization and the profile summary."""

import os

import pytest

from repro.experiments.config import SimulationConfig
from repro.experiments.spec import ExperimentSpec
from repro.obs.export import (
    ProfileSummary,
    parse_jsonl_bytes,
    render_profile,
    trace_filename,
    trace_header,
    trace_to_jsonl_bytes,
    write_trace,
)
from repro.obs.tracer import TRACE_SCHEMA_VERSION, Tracer


@pytest.fixture
def spec():
    return ExperimentSpec(
        protocol="socialtube", config=SimulationConfig.smoke_scale()
    ).with_seed(7)


class TestHeaderAndFilename:
    def test_header_identifies_the_run(self, spec):
        header = trace_header(spec)
        assert header["kind"] == "header"
        assert header["schema"] == TRACE_SCHEMA_VERSION
        assert header["content_hash"] == spec.content_hash()
        assert header["protocol"] == "socialtube"
        assert header["seed"] == 7

    def test_filename_keyed_by_spec_identity(self, spec):
        name = trace_filename(spec)
        assert name == f"trace_socialtube_{spec.content_hash()[:16]}.jsonl"
        other = ExperimentSpec(
            protocol="socialtube", config=SimulationConfig.smoke_scale()
        ).with_seed(8)
        assert trace_filename(other) != name


class TestSerialization:
    def test_round_trip(self, spec):
        tracer = Tracer(clock=lambda: 1.0)
        with tracer.span("a", node=1):
            tracer.event("b", node=1)
        tracer.count("reqs", 3)
        tracer.observe("lat", 2.0)
        payload = trace_to_jsonl_bytes(
            trace_header(spec), tracer.rows(), tracer.counters(), tracer.histograms()
        )
        rows = parse_jsonl_bytes(payload)
        assert rows[0]["kind"] == "header"
        kinds = [r["kind"] for r in rows]
        assert kinds == ["header", "span_begin", "event", "span_end", "counter", "hist"]
        assert rows[-2] == {"kind": "counter", "name": "reqs", "value": 3}
        assert rows[-1] == {
            "kind": "hist", "name": "lat", "count": 1, "min": 2.0, "max": 2.0,
            "sum": 2.0,
        }

    def test_canonical_bytes_sorted_keys(self, spec):
        payload = trace_to_jsonl_bytes(trace_header(spec), [{"t": 0.0, "kind": "event", "name": "x", "attrs": {"b": 1, "a": 2}}])
        line = payload.decode().splitlines()[1]
        assert line == '{"attrs":{"a":2,"b":1},"kind":"event","name":"x","t":0.0}'

    def test_footer_order_is_sorted_not_insertion(self, spec):
        payload = trace_to_jsonl_bytes(
            trace_header(spec), [], counters={"zz": 1, "aa": 2}
        )
        names = [r["name"] for r in parse_jsonl_bytes(payload)[1:]]
        assert names == ["aa", "zz"]

    def test_write_trace_creates_parents(self, spec, tmp_path):
        path = os.path.join(str(tmp_path), "nested", "dir", trace_filename(spec))
        payload = trace_to_jsonl_bytes(trace_header(spec), [])
        assert write_trace(path, payload) == path
        with open(path, "rb") as handle:
            assert handle.read() == payload


class TestProfileSummary:
    def _rows(self):
        tracer = Tracer(clock=lambda: 0.0)
        clock = {"t": 0.0}
        tracer.bind_clock(lambda: clock["t"])
        with tracer.span("outer", node=1):
            clock["t"] = 4.0
            with tracer.span("inner", node=2):
                clock["t"] = 6.0
            tracer.event("tick", node=2)
            clock["t"] = 10.0
        return tracer.rows()

    def test_phase_times_are_inclusive(self):
        summary = ProfileSummary.from_rows(self._rows())
        assert summary.phases["outer"].total_sim_s == 10.0
        assert summary.phases["inner"].total_sim_s == 2.0
        assert summary.phases["outer"].count == 1

    def test_events_by_type_counts_named_rows(self):
        summary = ProfileSummary.from_rows(self._rows())
        assert summary.events_by_type == {"outer": 1, "inner": 1, "tick": 1}

    def test_node_hotspots_ranked_by_row_count(self):
        summary = ProfileSummary.from_rows(self._rows())
        assert summary.node_hotspots == [(2, 2), (1, 1)]

    def test_node_hotspot_ties_break_on_node_id(self):
        """Equal row counts rank by ascending node id, so the top-N
        cut is deterministic across runs regardless of dict order."""
        rows = [
            {"kind": "event", "t": 0.0, "name": "x", "attrs": {"node": n}}
            for n in (9, 2, 7, 2, 9, 7)
        ]
        summary = ProfileSummary.from_rows(rows)
        assert summary.node_hotspots == [(2, 2), (7, 2), (9, 2)]
        reversed_summary = ProfileSummary.from_rows(list(reversed(rows)))
        assert reversed_summary.node_hotspots == summary.node_hotspots

    def test_node_hotspot_tie_straddling_top_n_cut(self):
        """When the tie straddles the top-N boundary the lower id
        survives the cut -- the ordering contract, not luck."""
        rows = [
            {"kind": "event", "t": 0.0, "name": "x", "attrs": {"node": n}}
            for n in (5, 3, 8)
        ]
        summary = ProfileSummary.from_rows(rows, top_nodes=2)
        assert summary.node_hotspots == [(3, 1), (5, 1)]

    def test_header_and_footers_tolerated(self, spec):
        payload = trace_to_jsonl_bytes(
            trace_header(spec), self._rows(), counters={"reqs": 5}
        )
        summary = ProfileSummary.from_rows(parse_jsonl_bytes(payload))
        assert summary.counters == {"reqs": 5}
        assert summary.phases["outer"].total_sim_s == 10.0

    def test_render_profile_sections(self):
        text = render_profile(ProfileSummary.from_rows(self._rows()))
        assert "time in phase (inclusive sim seconds)" in text
        assert "events by type" in text
        assert "busiest nodes (trace rows)" in text
        assert text.splitlines()[-1].endswith("trace rows")

    def test_render_profile_deterministic(self):
        summary = ProfileSummary.from_rows(self._rows())
        assert render_profile(summary) == render_profile(summary)
