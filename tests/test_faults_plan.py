"""Unit tests for the declarative fault model (FaultPlan / RetryPolicy)."""

import json
import os

import pytest

from repro.faults.plan import FaultPlan, RetryPolicy

_V2_FIELDS = (
    "community_crash_at_s",
    "community_crash_fraction",
    "tracker_outage_at_s",
    "tracker_outage_duration_s",
    "partition_at_s",
    "partition_duration_s",
    "flash_crowd_at_s",
    "flash_crowd_duration_s",
    "flash_crowd_admission_limit",
)

_BASELINE_DIR = os.path.join(os.path.dirname(__file__), "..", "baselines")


class TestRetryPolicy:
    def test_defaults(self):
        policy = RetryPolicy()
        assert policy.max_retries == 2
        assert policy.detection_timeout_s == 2.0

    def test_backoff_is_exponential_and_capped(self):
        policy = RetryPolicy(backoff_base_s=1.0, backoff_factor=2.0, backoff_max_s=30.0)
        assert [policy.backoff_delay(a) for a in range(5)] == [1.0, 2.0, 4.0, 8.0, 16.0]
        assert policy.backoff_delay(10) == 30.0  # 1024 capped at the max

    def test_negative_attempt_rejected(self):
        with pytest.raises(ValueError):
            RetryPolicy().backoff_delay(-1)

    def test_backoff_is_monotone_nondecreasing(self):
        policy = RetryPolicy(
            backoff_base_s=0.5, backoff_factor=1.7, backoff_max_s=45.0
        )
        delays = [policy.backoff_delay(a) for a in range(64)]
        assert delays == sorted(delays)
        assert delays[-1] == 45.0

    def test_backoff_caps_without_overflow_at_huge_attempts(self):
        # 2.0**5000 is outside float range; the cap must win, not raise.
        policy = RetryPolicy()
        assert policy.backoff_delay(5000) == policy.backoff_max_s

    def test_zero_base_backoff_stays_zero(self):
        policy = RetryPolicy(backoff_base_s=0.0)
        assert policy.backoff_delay(0) == 0.0
        assert policy.backoff_delay(5000) == 0.0

    def test_factor_of_one_never_grows(self):
        policy = RetryPolicy(backoff_base_s=3.0, backoff_factor=1.0)
        assert [policy.backoff_delay(a) for a in (0, 1, 100)] == [3.0, 3.0, 3.0]

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(max_retries=-1),
            dict(detection_timeout_s=-0.1),
            dict(backoff_base_s=-1.0),
            dict(backoff_max_s=-1.0),
            dict(backoff_factor=0.5),
        ],
    )
    def test_invalid_policies_rejected(self, kwargs):
        with pytest.raises(ValueError):
            RetryPolicy(**kwargs)


class TestFaultPlan:
    def test_default_plan_is_zero(self):
        assert FaultPlan().is_zero()

    def test_demo_plan_is_nonzero_and_fires_every_class(self):
        plan = FaultPlan.demo()
        assert not plan.is_zero()
        assert plan.crash_rate_per_hour > 0
        assert plan.query_loss_prob > 0
        assert plan.slow_peer_prob > 0
        assert plan.brownout_period_s > 0 and plan.brownout_duty > 0

    def test_brownout_needs_both_period_and_duty(self):
        # A period with zero duty (or vice versa) can never fire.
        assert FaultPlan(brownout_period_s=600.0).is_zero()
        assert FaultPlan(brownout_duty=0.5).is_zero()
        assert not FaultPlan(brownout_period_s=600.0, brownout_duty=0.5).is_zero()

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(crash_rate_per_hour=-1.0),
            dict(query_loss_prob=1.5),
            dict(slow_peer_prob=-0.1),
            dict(brownout_duty=2.0),
            dict(slow_peer_factor=0.0),
            dict(brownout_factor=1.5),
            dict(brownout_period_s=-1.0),
            dict(repair_window_s=0.0),
        ],
    )
    def test_invalid_plans_rejected(self, kwargs):
        with pytest.raises(ValueError):
            FaultPlan(**kwargs)

    def test_retry_must_be_policy(self):
        with pytest.raises(TypeError):
            FaultPlan(retry={"max_retries": 1})

    def test_dict_round_trip(self):
        plan = FaultPlan.demo()
        rebuilt = FaultPlan.from_dict(plan.to_dict())
        assert rebuilt == plan
        assert rebuilt.retry == plan.retry

    def test_from_dict_none_passes_through(self):
        assert FaultPlan.from_dict(None) is None

    def test_from_dict_rejects_unknown_key_by_name(self):
        payload = FaultPlan.demo().to_dict()
        payload["crash_rate_per_hr"] = 1.0  # typo'd baseline edit
        with pytest.raises(ValueError, match="crash_rate_per_hr"):
            FaultPlan.from_dict(payload)

    def test_from_dict_rejects_unknown_retry_key_by_name(self):
        payload = FaultPlan.demo().to_dict()
        payload["retry"]["max_tries"] = 3
        with pytest.raises(ValueError, match="max_tries"):
            FaultPlan.from_dict(payload)


class TestInfraFamilies:
    """The v2 families: armed predicates and hash-stable serialization."""

    def test_family_demos_arm_exactly_their_family(self):
        assert FaultPlan.community_crash_demo().has_community_crash()
        assert not FaultPlan.community_crash_demo().has_partition()
        assert FaultPlan.tracker_outage_demo().has_tracker_outage()
        assert FaultPlan.partition_demo().has_partition()
        assert FaultPlan.flash_crowd_demo().has_flash_crowd()
        infra = FaultPlan.infra_demo()
        assert infra.has_community_crash() and infra.has_tracker_outage()
        assert infra.has_partition() and infra.has_flash_crowd()

    def test_armed_family_makes_plan_nonzero(self):
        for plan in (
            FaultPlan.community_crash_demo(),
            FaultPlan.tracker_outage_demo(),
            FaultPlan.partition_demo(),
            FaultPlan.flash_crowd_demo(),
        ):
            assert not plan.is_zero()

    def test_half_armed_family_stays_disarmed(self):
        # A window needs both an onset and a magnitude/duration to fire.
        assert FaultPlan(community_crash_at_s=600.0).is_zero()
        assert FaultPlan(community_crash_fraction=0.5).is_zero()
        assert FaultPlan(tracker_outage_at_s=600.0).is_zero()
        assert FaultPlan(partition_duration_s=400.0).is_zero()
        assert FaultPlan(flash_crowd_at_s=600.0, flash_crowd_duration_s=300.0).is_zero()

    def test_infra_round_trip(self):
        plan = FaultPlan.infra_demo()
        assert FaultPlan.from_dict(plan.to_dict()) == plan


class TestHashStability:
    """Pre-v2 plans and specs must keep their content hashes."""

    def test_pre_v2_plan_serializes_without_v2_fields(self):
        payload = FaultPlan.demo().to_dict()
        for name in _V2_FIELDS:
            assert name not in payload

    def test_omitted_family_fields_load_back_as_disarmed_defaults(self):
        rebuilt = FaultPlan.from_dict(FaultPlan.demo().to_dict())
        assert rebuilt == FaultPlan.demo()
        assert not rebuilt.has_community_crash()
        assert not rebuilt.has_tracker_outage()
        assert not rebuilt.has_partition()
        assert not rebuilt.has_flash_crowd()

    def test_committed_chaos_baseline_hash_still_matches(self):
        """The pre-v2 chaos spec rebuilt from the committed baseline must
        reproduce the committed content hash -- growing the FaultPlan
        schema must not re-hash existing experiments."""
        from repro.obs.baseline import spec_for_baseline

        path = os.path.join(
            _BASELINE_DIR, "baseline_socialtube_peersim_chaos.json"
        )
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
        for name in _V2_FIELDS:
            assert name not in payload["faults"]
        spec = spec_for_baseline(payload)
        assert spec.content_hash() == payload["content_hash"]

    def test_infra_baseline_hash_matches_infra_demo(self):
        from repro.obs.baseline import spec_for_baseline

        path = os.path.join(
            _BASELINE_DIR, "baseline_socialtube_peersim_chaos_infra.json"
        )
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
        spec = spec_for_baseline(payload)
        assert spec.faults == FaultPlan.infra_demo()
        assert spec.content_hash() == payload["content_hash"]
