"""Unit tests for the declarative fault model (FaultPlan / RetryPolicy)."""

import pytest

from repro.faults.plan import FaultPlan, RetryPolicy


class TestRetryPolicy:
    def test_defaults(self):
        policy = RetryPolicy()
        assert policy.max_retries == 2
        assert policy.detection_timeout_s == 2.0

    def test_backoff_is_exponential_and_capped(self):
        policy = RetryPolicy(backoff_base_s=1.0, backoff_factor=2.0, backoff_max_s=30.0)
        assert [policy.backoff_delay(a) for a in range(5)] == [1.0, 2.0, 4.0, 8.0, 16.0]
        assert policy.backoff_delay(10) == 30.0  # 1024 capped at the max

    def test_negative_attempt_rejected(self):
        with pytest.raises(ValueError):
            RetryPolicy().backoff_delay(-1)

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(max_retries=-1),
            dict(detection_timeout_s=-0.1),
            dict(backoff_base_s=-1.0),
            dict(backoff_max_s=-1.0),
            dict(backoff_factor=0.5),
        ],
    )
    def test_invalid_policies_rejected(self, kwargs):
        with pytest.raises(ValueError):
            RetryPolicy(**kwargs)


class TestFaultPlan:
    def test_default_plan_is_zero(self):
        assert FaultPlan().is_zero()

    def test_demo_plan_is_nonzero_and_fires_every_class(self):
        plan = FaultPlan.demo()
        assert not plan.is_zero()
        assert plan.crash_rate_per_hour > 0
        assert plan.query_loss_prob > 0
        assert plan.slow_peer_prob > 0
        assert plan.brownout_period_s > 0 and plan.brownout_duty > 0

    def test_brownout_needs_both_period_and_duty(self):
        # A period with zero duty (or vice versa) can never fire.
        assert FaultPlan(brownout_period_s=600.0).is_zero()
        assert FaultPlan(brownout_duty=0.5).is_zero()
        assert not FaultPlan(brownout_period_s=600.0, brownout_duty=0.5).is_zero()

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(crash_rate_per_hour=-1.0),
            dict(query_loss_prob=1.5),
            dict(slow_peer_prob=-0.1),
            dict(brownout_duty=2.0),
            dict(slow_peer_factor=0.0),
            dict(brownout_factor=1.5),
            dict(brownout_period_s=-1.0),
            dict(repair_window_s=0.0),
        ],
    )
    def test_invalid_plans_rejected(self, kwargs):
        with pytest.raises(ValueError):
            FaultPlan(**kwargs)

    def test_retry_must_be_policy(self):
        with pytest.raises(TypeError):
            FaultPlan(retry={"max_retries": 1})

    def test_dict_round_trip(self):
        plan = FaultPlan.demo()
        rebuilt = FaultPlan.from_dict(plan.to_dict())
        assert rebuilt == plan
        assert rebuilt.retry == plan.retry

    def test_from_dict_none_passes_through(self):
        assert FaultPlan.from_dict(None) is None
