"""Unit tests for the experiment runner."""

import pytest

from repro.experiments.config import SimulationConfig
from repro.experiments.registry import protocol_names, resolve_params
from repro.experiments.runner import ExperimentRunner, run_spec
from repro.experiments.spec import ExperimentSpec
from repro.trace.synthesizer import TraceConfig, TraceSynthesizer


MICRO = SimulationConfig(
    num_nodes=40,
    trace=TraceConfig(num_users=40, num_channels=10, num_videos=200,
                      num_categories=4, seed=10),
    sessions_per_user=2,
    videos_per_session=4,
    mean_off_time_s=60.0,
    seed=10,
)


def micro_spec(protocol="socialtube", **overrides):
    return ExperimentSpec(
        protocol=protocol,
        config=MICRO,
        params=resolve_params(protocol, MICRO, overrides or None),
    )


class TestConstruction:
    def test_unknown_protocol_rejected(self):
        with pytest.raises(ValueError):
            ExperimentSpec(protocol="bittorrent", config=MICRO)

    def test_registry_contents(self):
        assert set(protocol_names()) == {"socialtube", "nettube", "pavod", "gridcast"}

    def test_runner_requires_spec(self):
        with pytest.raises(TypeError):
            ExperimentRunner(MICRO)

    def test_dataset_population_checked(self):
        small = TraceSynthesizer(
            TraceConfig(num_users=10, num_channels=3, num_videos=30, seed=1)
        ).synthesize()
        with pytest.raises(ValueError):
            ExperimentRunner(micro_spec(), dataset=small)

    def test_protocol_overrides_forwarded(self):
        runner = ExperimentRunner(micro_spec(enable_prefetch=False))
        assert runner.protocol.enable_prefetch is False

    def test_run_experiment_shim_removed(self):
        import repro.experiments as experiments

        assert not hasattr(experiments, "run_experiment")
        assert "run_experiment" not in experiments.__all__


class TestRun:
    @pytest.mark.parametrize("name", ["socialtube", "nettube", "pavod"])
    def test_completes_all_sessions(self, name):
        result = run_spec(micro_spec(name))
        expected = MICRO.num_nodes * MICRO.sessions_per_user * MICRO.videos_per_session
        assert result.metrics.num_requests == expected

    def test_deterministic_runs(self):
        a = run_spec(micro_spec())
        b = run_spec(micro_spec())
        assert a.metrics.startup_delay_ms_mean == b.metrics.startup_delay_ms_mean
        assert a.metrics.peer_bandwidth_p50 == b.metrics.peer_bandwidth_p50
        assert a.events_processed == b.events_processed

    def test_different_seeds_differ(self):
        a = run_spec(micro_spec())
        b = run_spec(micro_spec().with_seed(11))
        assert a.metrics.startup_delay_ms_mean != b.metrics.startup_delay_ms_mean

    def test_all_peers_end_offline(self):
        runner = ExperimentRunner(micro_spec())
        runner.run()
        assert all(not peer.online for peer in runner.protocol.peers.values())
        assert runner.server.online_count == 0

    def test_bandwidth_slots_all_released(self):
        runner = ExperimentRunner(micro_spec("pavod"))
        runner.run()
        assert runner.server.uplink.active_transfers == 0
        assert all(
            peer.uplink.active_transfers == 0
            for peer in runner.protocol.peers.values()
        )

    def test_startup_delays_nonnegative(self):
        result = run_spec(micro_spec("nettube"))
        assert result.metrics.startup_delay_ms_p50 >= 0
        assert result.metrics.startup_delay_ms_p99 >= result.metrics.startup_delay_ms_p50

    def test_overhead_sampled_for_every_video_index(self):
        result = run_spec(micro_spec())
        assert set(result.metrics.overhead_by_video_index) == set(
            range(1, MICRO.videos_per_session + 1)
        )

    def test_prefetch_disabled_means_no_hits(self):
        result = run_spec(micro_spec(enable_prefetch=False))
        assert result.prefetch_hit_rate == 0.0

    def test_render_rows(self):
        result = run_spec(micro_spec())
        text = "\n".join(result.render_rows())
        assert "SocialTube" in text
        assert "server" in text

    def test_unsharded_result_has_no_shard_report(self):
        result = run_spec(micro_spec())
        assert result.shard_report is None
