"""Shared helpers for protocol-level tests."""

import random

from repro.baselines.protocol import PeerState
from repro.net.server import CentralServer


def make_protocol(protocol_cls, dataset, num_peers=40, seed=5, **kwargs):
    """Build a protocol instance with registered peers over ``dataset``.

    Peers are created offline; tests bring them online via
    ``on_session_start``.  Returns the protocol (its ``server``
    attribute exposes the tracker).
    """
    server = CentralServer(dataset, capacity_bps=50e6, rng=random.Random(seed))
    protocol = protocol_cls(dataset, server, random.Random(seed + 1), **kwargs)
    for user_id in range(num_peers):
        protocol.register_peer(PeerState(user_id, upload_capacity_bps=2e6))
    return protocol, server
